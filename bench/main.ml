(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation in the same row/column layout, plus Bechamel micro-benchmarks
   of the hot kernels.

   Usage:
     dune exec bench/main.exe                 run everything
     dune exec bench/main.exe -- table1 figure4 ...
                                              run a subset
     dune exec bench/main.exe -- micro        Bechamel suite + wall-clock
                                              end-to-end run (also writes
                                              BENCH_perf.json)
     dune exec bench/main.exe -- --jobs 4 ablation-dirmode
                                              sweep-parallel ablations on 4
                                              domains (0 = all cores);
                                              output identical to --jobs 1
   Targets: table1 table2 figure3 figure4 table3 table4 table5 table6
            ablation-policy ablation-locking ablation-consistency
            ablation-protocol ablation-routing ablation-threshold
            ablation-loss ablation-faults ablation-partition
            ablation-batching breakdown micro *)

let seed = 42

(* When --csv DIR is given, every table is additionally written as
   DIR/<target>.csv (one file per table in emission order). *)
let csv_dir : string option ref = ref None
let current_target = ref ""
let csv_counter = ref 0

(* --jobs N: domain count for the sweep-parallel ablations (A11/A12/A13).
   Sweep results are merged in point order, so tables are byte-identical
   for any value; 0 means "ask the runtime". *)
let jobs = ref 1

let emit t =
  Metrics.Table.print t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr csv_counter;
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%d.csv" !current_target !csv_counter)
      in
      let oc = open_out path in
      output_string oc (Metrics.Table.to_csv t);
      close_out oc

(* ------------------------------------------------------------------ *)
(* Paper tables and figures *)

let sec = Metrics.Table.fmt_f ~decimals:3

let bench_table1 () =
  let summary, rows = Swala.Experiments.table1 ~seed () in
  Printf.printf
    "Workload: %d requests, %d CGI (%.1f%%); total service %.0f s; mean \
     response %.2f s; mean file %.3f s; mean CGI %.2f s; CGI share of time \
     %.1f%%; longest %.1f s\n\n"
    summary.Workload.Analyzer.n_total summary.Workload.Analyzer.n_cgi
    (100. *. summary.Workload.Analyzer.cgi_fraction)
    summary.Workload.Analyzer.total_service
    summary.Workload.Analyzer.mean_response
    summary.Workload.Analyzer.mean_file_time
    summary.Workload.Analyzer.mean_cgi_time
    (100. *. summary.Workload.Analyzer.cgi_time_fraction)
    summary.Workload.Analyzer.longest;
  let t =
    Metrics.Table.create
      ~title:"Table 1. Potential time saving by caching CGI."
      ~columns:
        [
          ("Time threshold", Metrics.Table.Left);
          ("#long requests", Metrics.Table.Right);
          ("Total # repeats", Metrics.Table.Right);
          ("# uniq. repeats", Metrics.Table.Right);
          ("Time saved", Metrics.Table.Right);
          ("Saved %", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Workload.Analyzer.row) ->
      Metrics.Table.add_row t
        [
          Printf.sprintf "%.1f sec" r.Workload.Analyzer.threshold;
          Metrics.Table.fmt_i r.Workload.Analyzer.n_long;
          Metrics.Table.fmt_i r.Workload.Analyzer.total_repeats;
          Metrics.Table.fmt_i r.Workload.Analyzer.unique_repeats;
          Printf.sprintf "%.0f s" r.Workload.Analyzer.time_saved;
          Metrics.Table.fmt_pct r.Workload.Analyzer.saved_fraction;
        ])
    rows;
  emit t

let bench_table2 () =
  let rows = Swala.Experiments.table2 ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Table 2. File fetch average response time in seconds (WebStone mix)."
      ~columns:
        [
          ("# clients", Metrics.Table.Right);
          ("HTTPd", Metrics.Table.Right);
          ("Enterprise", Metrics.Table.Right);
          ("Swala", Metrics.Table.Right);
          ("HTTPd/Swala", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.table2_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.clients;
          sec r.Swala.Experiments.httpd;
          sec r.Swala.Experiments.enterprise;
          sec r.Swala.Experiments.swala;
          Printf.sprintf "%.1fx"
            (r.Swala.Experiments.httpd /. r.Swala.Experiments.swala);
        ])
    rows;
  emit t

let bench_figure3 () =
  let f = Swala.Experiments.figure3 ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Figure 3. Null-CGI request response time (24 clients, seconds)."
      ~columns:
        [ ("Configuration", Metrics.Table.Left); ("Response", Metrics.Table.Right) ]
  in
  List.iter
    (fun (name, v) -> Metrics.Table.add_row t [ name; sec v ])
    [
      ("Enterprise", f.Swala.Experiments.enterprise_f3);
      ("HTTPd", f.Swala.Experiments.httpd_f3);
      ("Swala no cache", f.Swala.Experiments.swala_no_cache);
      ("Swala remote cache", f.Swala.Experiments.swala_remote);
      ("Swala local cache", f.Swala.Experiments.swala_local);
    ];
  emit t;
  Printf.printf
    "Remote-fetch overhead over local fetch under load: %.3f s\n\n"
    (f.Swala.Experiments.swala_remote -. f.Swala.Experiments.swala_local)

let bench_figure4 () =
  let rows = Swala.Experiments.figure4 ~seed ~n_requests:12_000 () in
  let t =
    Metrics.Table.create
      ~title:
        "Figure 4. Multi-node mean response time (s), ADL-like replay, 16 \
         client threads."
      ~columns:
        [
          ("# servers", Metrics.Table.Right);
          ("No Cache", Metrics.Table.Right);
          ("Coop. Cache", Metrics.Table.Right);
          ("Speedup (NC)", Metrics.Table.Right);
          ("Improvement", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.figure4_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.nodes;
          Metrics.Table.fmt_f ~decimals:2 r.Swala.Experiments.no_cache;
          Metrics.Table.fmt_f ~decimals:2 r.Swala.Experiments.coop;
          Printf.sprintf "%.2fx" r.Swala.Experiments.speedup_no_cache;
          Metrics.Table.fmt_pct r.Swala.Experiments.improvement;
        ])
    rows;
  emit t

let bench_table3 () =
  let rows = Swala.Experiments.table3 ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Table 3. Response time overhead of insertion and information \
         broadcast (180 unique 1 s requests)."
      ~columns:
        [
          ("# nodes", Metrics.Table.Right);
          ("No Cache (s)", Metrics.Table.Right);
          ("Coop. Cache (s)", Metrics.Table.Right);
          ("Increase (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.table3_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.nodes_t3;
          sec r.Swala.Experiments.no_cache_t3;
          sec r.Swala.Experiments.coop_t3;
          sec r.Swala.Experiments.increase_t3;
        ])
    rows;
  emit t

let bench_table4 () =
  let rows = Swala.Experiments.table4 ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Table 4. Response time overhead of replicated directory maintenance \
         (180 uncacheable 1 s requests)."
      ~columns:
        [
          ("UPS", Metrics.Table.Right);
          ("Avg. response (s)", Metrics.Table.Right);
          ("Increase (s)", Metrics.Table.Right);
          ("Updates applied", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.table4_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.ups;
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.mean_response_t4;
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.increase_t4;
          Metrics.Table.fmt_i r.Swala.Experiments.updates_applied;
        ])
    rows;
  emit t

let hit_table ~title ~cache_size () =
  let rows = Swala.Experiments.hit_ratio_table ~seed ~cache_size () in
  let t =
    Metrics.Table.create ~title
      ~columns:
        [
          ("# nodes", Metrics.Table.Right);
          ("Stand. hits", Metrics.Table.Right);
          ("Coop. hits", Metrics.Table.Right);
          ("Stand. %UB", Metrics.Table.Right);
          ("Coop. %UB", Metrics.Table.Right);
          ("False misses", Metrics.Table.Right);
        ]
  in
  let upper = ref 0 in
  List.iter
    (fun (r : Swala.Experiments.hit_row) ->
      upper := r.Swala.Experiments.upper_bound;
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.nodes_h;
          Metrics.Table.fmt_i r.Swala.Experiments.standalone_hits;
          Metrics.Table.fmt_i r.Swala.Experiments.coop_hits;
          Metrics.Table.fmt_pct r.Swala.Experiments.standalone_pct;
          Metrics.Table.fmt_pct r.Swala.Experiments.coop_pct;
          Metrics.Table.fmt_i r.Swala.Experiments.coop_false_misses;
        ])
    rows;
  emit t;
  Printf.printf "Upper bound on hits: %d (1600 requests, 1122 unique)\n\n" !upper

let bench_table5 () =
  hit_table
    ~title:
      "Table 5. Cache hit ratios, stand-alone and cooperative caching, cache \
       size 2000."
    ~cache_size:2000 ()

let bench_table6 () =
  hit_table
    ~title:
      "Table 6. Cache hit ratios, stand-alone and cooperative caching, cache \
       size 20."
    ~cache_size:20 ()

let bench_ablation_policy () =
  let rows = Swala.Experiments.ablation_policy ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A1. Replacement policy under overflow (cache size 20, 4 \
         nodes, cooperative)."
      ~columns:
        [
          ("Policy", Metrics.Table.Left);
          ("Hits", Metrics.Table.Right);
          ("% of UB", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.policy_row) ->
      Metrics.Table.add_row t
        [
          Cache.Policy.to_string r.Swala.Experiments.policy;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_p;
          Metrics.Table.fmt_pct
            (float_of_int r.Swala.Experiments.hits_p
            /. float_of_int (Stdlib.max 1 r.Swala.Experiments.upper_p));
          sec r.Swala.Experiments.mean_response_p;
        ])
    rows;
  emit t

let bench_ablation_locking () =
  let rows = Swala.Experiments.ablation_locking ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A2. Directory locking granularity (4 nodes, cooperative)."
      ~columns:
        [
          ("Granularity", Metrics.Table.Left);
          ("Mean response (s)", Metrics.Table.Right);
          ("Read locks", Metrics.Table.Right);
          ("Write locks", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.locking_row) ->
      Metrics.Table.add_row t
        [
          Swala.Experiments.granularity_name r.Swala.Experiments.granularity;
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.mean_response_l;
          Metrics.Table.fmt_i r.Swala.Experiments.rd_locks;
          Metrics.Table.fmt_i r.Swala.Experiments.wr_locks;
        ])
    rows;
  emit t

let bench_ablation_consistency () =
  let rows = Swala.Experiments.ablation_consistency ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A3. Consistency anomalies vs directory-update delay (8 \
         nodes, 50 ms CGIs, cache size 40)."
      ~columns:
        [
          ("Update delay (s)", Metrics.Table.Right);
          ("False hits", Metrics.Table.Right);
          ("FM concurrent", Metrics.Table.Right);
          ("FM duplicate", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.consistency_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.latency;
          Metrics.Table.fmt_i r.Swala.Experiments.false_hits;
          Metrics.Table.fmt_i r.Swala.Experiments.false_miss_concurrent_c;
          Metrics.Table.fmt_i r.Swala.Experiments.false_miss_duplicate_c;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_c;
        ])
    rows;
  emit t

let bench_ablation_protocol () =
  let rows = Swala.Experiments.ablation_protocol ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A4. Weak vs strong directory consistency (8 nodes, \
         all-miss 0.2 s CGIs, 16 streams)."
      ~columns:
        [
          ("One-way latency (s)", Metrics.Table.Right);
          ("Weak (s)", Metrics.Table.Right);
          ("Strong (s)", Metrics.Table.Right);
          ("Penalty (s)", Metrics.Table.Right);
          ("Penalty %", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.protocol_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.latency_pr;
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.weak;
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.strong;
          Metrics.Table.fmt_f ~decimals:4 r.Swala.Experiments.penalty;
          Metrics.Table.fmt_pct (r.Swala.Experiments.penalty /. r.Swala.Experiments.weak);
        ])
    rows;
  emit t

let bench_ablation_routing () =
  let rows = Swala.Experiments.ablation_routing ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A5. Request routing x cache mode (4 nodes, Table-5 \
         workload, cache size 2000)."
      ~columns:
        [
          ("Routing", Metrics.Table.Left);
          ("Cache mode", Metrics.Table.Left);
          ("Hits", Metrics.Table.Right);
          ("% of UB", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.routing_row) ->
      Metrics.Table.add_row t
        [
          Swala.Router.policy_name r.Swala.Experiments.routing;
          Swala.Config.cache_mode_to_string r.Swala.Experiments.mode_r;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_r;
          Metrics.Table.fmt_pct
            (float_of_int r.Swala.Experiments.hits_r
            /. float_of_int (Stdlib.max 1 r.Swala.Experiments.upper_r));
          sec r.Swala.Experiments.mean_response_r;
        ])
    rows;
  emit t

let bench_ablation_threshold () =
  let rows = Swala.Experiments.ablation_threshold ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A6. Caching threshold x cache capacity (ADL replay, 4 \
         nodes, cooperative)."
      ~columns:
        [
          ("Capacity", Metrics.Table.Right);
          ("Threshold (s)", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("Inserts", Metrics.Table.Right);
          ("Evictions", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.threshold_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.capacity_t;
          Metrics.Table.fmt_f ~decimals:1 r.Swala.Experiments.threshold_t;
          sec r.Swala.Experiments.mean_response_thr;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_thr;
          Metrics.Table.fmt_i r.Swala.Experiments.inserts_thr;
          Metrics.Table.fmt_i r.Swala.Experiments.evictions_thr;
        ])
    rows;
  emit t

let bench_ablation_loss () =
  let rows = Swala.Experiments.ablation_loss ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A7. Protocol-message loss with 0.5 s fetch timeout (4 \
         nodes, Table-5 workload)."
      ~columns:
        [
          ("Loss", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("% of UB", Metrics.Table.Right);
          ("Fetch timeouts", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.loss_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_pct r.Swala.Experiments.loss;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_l;
          Metrics.Table.fmt_pct
            (float_of_int r.Swala.Experiments.hits_l
            /. float_of_int (Stdlib.max 1 r.Swala.Experiments.upper_l));
          Metrics.Table.fmt_i r.Swala.Experiments.fetch_timeouts_l;
          sec r.Swala.Experiments.mean_response_loss;
        ])
    rows;
  emit t

let bench_ablation_faults () =
  let rows = Swala.Experiments.ablation_faults ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A8. Injected faults: drop-rate x crash-frequency with 0.5 s \
         fetch timeout, 2 retries (4 nodes, Table-5 workload)."
      ~columns:
        [
          ("Drop", Metrics.Table.Right);
          ("MTBF (s)", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("% of UB", Metrics.Table.Right);
          ("Timeouts", Metrics.Table.Right);
          ("Retries", Metrics.Table.Right);
          ("Crashes", Metrics.Table.Right);
          ("503s", Metrics.Table.Right);
          ("Purges", Metrics.Table.Right);
          ("Msgs lost", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.fault_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_pct r.Swala.Experiments.drop_f;
          (if r.Swala.Experiments.mtbf_f = 0. then "-"
           else Printf.sprintf "%g" r.Swala.Experiments.mtbf_f);
          Metrics.Table.fmt_i r.Swala.Experiments.hits_f;
          Metrics.Table.fmt_pct
            (float_of_int r.Swala.Experiments.hits_f
            /. float_of_int (Stdlib.max 1 r.Swala.Experiments.upper_f));
          Metrics.Table.fmt_i r.Swala.Experiments.timeouts_f;
          Metrics.Table.fmt_i r.Swala.Experiments.retries_f;
          Metrics.Table.fmt_i r.Swala.Experiments.crashes_f;
          Metrics.Table.fmt_i r.Swala.Experiments.rejected_f;
          Metrics.Table.fmt_i r.Swala.Experiments.purged_f;
          Metrics.Table.fmt_i r.Swala.Experiments.net_lost_f;
          sec r.Swala.Experiments.mean_response_f;
        ])
    rows;
  emit t

let bench_ablation_partition () =
  let rows = Swala.Experiments.ablation_partition ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A9. Network partition (halves of a 4-node cluster, cut at \
         t=1 s) x anti-entropy period (Table-5 workload)."
      ~columns:
        [
          ("Partition (s)", Metrics.Table.Right);
          ("AE period (s)", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("False hits", Metrics.Table.Right);
          ("Dup execs", Metrics.Table.Right);
          ("AE rounds", Metrics.Table.Right);
          ("AE pulled", Metrics.Table.Right);
          ("Healed", Metrics.Table.Right);
          ("Msgs cut", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.partition_row) ->
      Metrics.Table.add_row t
        [
          (if r.Swala.Experiments.duration_pt = 0. then "-"
           else Printf.sprintf "%g" r.Swala.Experiments.duration_pt);
          (if r.Swala.Experiments.period_pt = 0. then "off"
           else Printf.sprintf "%g" r.Swala.Experiments.period_pt);
          Metrics.Table.fmt_i r.Swala.Experiments.hits_pt;
          Metrics.Table.fmt_i r.Swala.Experiments.false_hits_pt;
          Metrics.Table.fmt_i r.Swala.Experiments.false_miss_dup_pt;
          Metrics.Table.fmt_i r.Swala.Experiments.ae_rounds_pt;
          Metrics.Table.fmt_i r.Swala.Experiments.ae_pulled_pt;
          Metrics.Table.fmt_i r.Swala.Experiments.healed_pt;
          Metrics.Table.fmt_i r.Swala.Experiments.drops_partition_pt;
          sec r.Swala.Experiments.mean_response_pt;
        ])
    rows;
  emit t

let bench_ablation_batching () =
  let rows = Swala.Experiments.ablation_batching ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A10. Directory-update batching: flush interval x cluster \
         size (all-insert 5 ms CGIs, batch_max 64, 4 streams/node)."
      ~columns:
        [
          ("# nodes", Metrics.Table.Right);
          ("Flush (s)", Metrics.Table.Right);
          ("Updates", Metrics.Table.Right);
          ("Msgs", Metrics.Table.Right);
          ("KB", Metrics.Table.Right);
          ("Batches", Metrics.Table.Right);
          ("Batched upd", Metrics.Table.Right);
          ("Coalesced", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.batching_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.nodes_bt;
          (if r.Swala.Experiments.interval_bt = 0. then "off"
           else Printf.sprintf "%g" r.Swala.Experiments.interval_bt);
          Metrics.Table.fmt_i r.Swala.Experiments.updates_bt;
          Metrics.Table.fmt_i r.Swala.Experiments.msgs_bt;
          Printf.sprintf "%.1f"
            (float_of_int r.Swala.Experiments.bytes_bt /. 1024.);
          Metrics.Table.fmt_i r.Swala.Experiments.batches_bt;
          Metrics.Table.fmt_i r.Swala.Experiments.batched_updates_bt;
          Metrics.Table.fmt_i r.Swala.Experiments.coalesced_bt;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_bt;
          sec r.Swala.Experiments.mean_response_bt;
        ])
    rows;
  emit t

let bench_ablation_dirmode () =
  let rows = Swala.Experiments.ablation_dirmode ~jobs:!jobs ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A11. Metadata plane x cluster size (hot-headed coop mix, \
         24-key Zipf 1.1 head, 5 ms CGIs): replicated broadcast vs batched \
         broadcast vs consistent-hash sharding (+hotspot replication)."
      ~columns:
        [
          ("# nodes", Metrics.Table.Right);
          ("Plane", Metrics.Table.Left);
          ("Dir msgs", Metrics.Table.Right);
          ("Dir KB", Metrics.Table.Right);
          ("Mem mean", Metrics.Table.Right);
          ("Mem max", Metrics.Table.Right);
          ("Fwd", Metrics.Table.Right);
          ("LC hits", Metrics.Table.Right);
          ("Promoted", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("Hit lat (ms)", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.dirmode_row) ->
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i r.Swala.Experiments.nodes_dm;
          r.Swala.Experiments.variant_dm;
          Metrics.Table.fmt_i r.Swala.Experiments.dir_msgs_dm;
          Printf.sprintf "%.1f"
            (float_of_int r.Swala.Experiments.dir_bytes_dm /. 1024.);
          Printf.sprintf "%.1f" r.Swala.Experiments.mem_mean_dm;
          Metrics.Table.fmt_i r.Swala.Experiments.mem_max_dm;
          Metrics.Table.fmt_i r.Swala.Experiments.fwd_dm;
          Metrics.Table.fmt_i r.Swala.Experiments.lcache_hits_dm;
          Metrics.Table.fmt_i r.Swala.Experiments.promotions_dm;
          Metrics.Table.fmt_i r.Swala.Experiments.hits_dm;
          Printf.sprintf "%.2f" (1000. *. r.Swala.Experiments.hit_latency_dm);
          sec r.Swala.Experiments.mean_response_dm;
        ])
    rows;
  emit t

let bench_ablation_scenario () =
  let rows = Swala.Experiments.ablation_scenario ~jobs:!jobs ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A12. Time-varying scenario (flash crowd onto an 8-key \
         head for the middle of the run + rolling churn, one leave per \
         ~3 s): replicated vs sharded+hotspot metadata plane, per phase."
      ~columns:
        [
          ("Plane", Metrics.Table.Left);
          ("Phase", Metrics.Table.Left);
          ("N", Metrics.Table.Right);
          ("Mean (s)", Metrics.Table.Right);
          ("p50 (s)", Metrics.Table.Right);
          ("p99 (s)", Metrics.Table.Right);
          ("Hits", Metrics.Table.Right);
          ("Hit ratio", Metrics.Table.Right);
          ("Dir msgs", Metrics.Table.Right);
          ("Crashes", Metrics.Table.Right);
          ("Redirects", Metrics.Table.Right);
          ("Lost", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.scenario_row) ->
      let all = r.Swala.Experiments.phase_sc = "all" in
      Metrics.Table.add_row t
        [
          r.Swala.Experiments.variant_sc;
          r.Swala.Experiments.phase_sc;
          Metrics.Table.fmt_i r.Swala.Experiments.n_sc;
          sec r.Swala.Experiments.mean_sc;
          sec r.Swala.Experiments.p50_sc;
          sec r.Swala.Experiments.p99_sc;
          (if all then Metrics.Table.fmt_i r.Swala.Experiments.hits_sc else "");
          (if all then
             Printf.sprintf "%.1f%%"
               (100. *. r.Swala.Experiments.hit_ratio_sc)
           else "");
          (if all then Metrics.Table.fmt_i r.Swala.Experiments.dir_msgs_sc
           else "");
          (if all then Metrics.Table.fmt_i r.Swala.Experiments.crashes_sc
           else "");
          (if all then Metrics.Table.fmt_i r.Swala.Experiments.redirects_sc
           else "");
          (if all then Metrics.Table.fmt_i r.Swala.Experiments.net_lost_sc
           else "");
        ])
    rows;
  emit t

let bench_ablation_freshness () =
  let rows = Swala.Experiments.ablation_freshness ~jobs:!jobs ~seed () in
  let t =
    Metrics.Table.create
      ~title:
        "Ablation A13. Freshness policy x metadata plane under the A12 \
         flash crowd (no churn): fixed whole-cache TTLs (2/8/32 s) vs the \
         per-key adaptive controller vs adaptive + proactive refresh (4 \
         re-execs/s/node)."
      ~columns:
        [
          ("Plane", Metrics.Table.Left);
          ("Policy", Metrics.Table.Left);
          ("Stale mean (s)", Metrics.Table.Right);
          ("Stale p99 (s)", Metrics.Table.Right);
          ("Hit ratio", Metrics.Table.Right);
          ("CGI execs", Metrics.Table.Right);
          ("Refreshes", Metrics.Table.Right);
          ("Saved (ms)", Metrics.Table.Right);
          ("Stale>8s", Metrics.Table.Right);
          ("Dir KB", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun (r : Swala.Experiments.freshness_row) ->
      Metrics.Table.add_row t
        [
          r.Swala.Experiments.dirmode_fr;
          r.Swala.Experiments.variant_fr;
          Printf.sprintf "%.3f" r.Swala.Experiments.stale_mean_fr;
          Printf.sprintf "%.3f" r.Swala.Experiments.stale_p99_fr;
          Printf.sprintf "%.1f%%" (100. *. r.Swala.Experiments.hit_ratio_fr);
          Metrics.Table.fmt_i r.Swala.Experiments.cgi_execs_fr;
          Metrics.Table.fmt_i r.Swala.Experiments.refreshes_fr;
          Metrics.Table.fmt_i r.Swala.Experiments.refresh_saved_ms_fr;
          Metrics.Table.fmt_i r.Swala.Experiments.stale_served_fr;
          Printf.sprintf "%.1f"
            (float_of_int r.Swala.Experiments.dir_bytes_fr /. 1024.);
          sec r.Swala.Experiments.mean_response_fr;
        ])
    rows;
  emit t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot kernels *)

let micro_tests () =
  let open Bechamel in
  let rng = Sim.Rng.create 7 in
  let zipf = Sim.Dist.Zipf.make ~n:10_000 ~s:0.9 in
  let store =
    Cache.Store.create ~capacity:2000 ~policy:Cache.Policy.Lru
      ~clock:(fun () -> 0.)
      ()
  in
  let fill_meta i =
    Cache.Meta.make
      ~key:(Printf.sprintf "GET /cgi-bin/q?i=%d" i)
      ~owner:0 ~size:4096 ~exec_time:1.0 ~created:0. ~expires:None
  in
  for i = 0 to 1999 do
    ignore (Cache.Store.insert store (fill_meta i) "body")
  done;
  let ctr = ref 0 in
  let raw_request = Http.Request.to_wire (Http.Request.get "/cgi-bin/query?q=maps&xd=1.5") in
  let null_engine_step () =
    let eng = Sim.Engine.create () in
    Sim.Engine.spawn eng (fun () -> Sim.Engine.delay 1.0);
    Sim.Engine.run eng
  in
  [
    Test.make ~name:"rng-float" (Staged.stage (fun () -> Sim.Rng.float rng));
    Test.make ~name:"zipf-draw"
      (Staged.stage (fun () -> Sim.Dist.Zipf.draw zipf rng));
    Test.make ~name:"http-parse-request"
      (Staged.stage (fun () -> Http.Request.parse raw_request));
    Test.make ~name:"cache-store-lookup-hit"
      (Staged.stage (fun () ->
           incr ctr;
           Cache.Store.lookup store
             (Printf.sprintf "GET /cgi-bin/q?i=%d" (!ctr mod 2000))));
    Test.make ~name:"cache-store-insert-evict"
      (Staged.stage (fun () ->
           incr ctr;
           Cache.Store.insert store (fill_meta (2000 + !ctr)) "body"));
    Test.make ~name:"engine-spawn-delay-run"
      (Staged.stage null_engine_step);
    Test.make ~name:"trace-gen-coop-100"
      (Staged.stage (fun () ->
           incr ctr;
           Workload.Synthetic.coop ~seed:!ctr ~n:100 ~n_unique:70 ~n_hot:10 ()));
  ]

(* Wall-clock end-to-end benchmark: how fast does the simulator itself
   run on the host? Times a cooperative 4-node replay and records
   requests/sec and events/sec of {e wall} time in BENCH_perf.json, so
   future optimisation PRs have a perf trajectory to compare against. *)
let run_perf () =
  let n_requests = 2_000 in
  let out_bytes =
    match Sys.getenv_opt "SWALA_BENCH_OUT_BYTES" with
    | Some v -> int_of_string v
    | None -> 4096
  in
  let trace =
    Workload.Synthetic.coop ~seed ~n:n_requests ~n_unique:1400 ~locality:0.08
      ~out_bytes ()
  in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative ~seed ()
  in
  let go () = Swala.Cluster_runner.run cfg ~trace ~n_streams:16 () in
  (* One throwaway run warms the minor heap and code paths. *)
  ignore (go () : Swala.Cluster_runner.result);
  (* The run is deterministic, so wall-time spread across repeats is pure
     host noise; report the fastest of five to keep the committed
     baseline comparable across noisy machines (CI runners included). *)
  let best_wall = ref infinity and best_r = ref None and minor = ref 0. in
  for _ = 1 to 5 do
    let m0 = (Gc.quick_stat ()).Gc.minor_words in
    let t0 = Unix.gettimeofday () in
    let r = go () in
    let wall = Unix.gettimeofday () -. t0 in
    if wall < !best_wall then begin
      best_wall := wall;
      best_r := Some r;
      minor := (Gc.quick_stat ()).Gc.minor_words -. m0
    end
  done;
  let r = Option.get !best_r in
  let wall = !best_wall in
  let events = r.Swala.Cluster_runner.n_events in
  let rps = float_of_int n_requests /. wall in
  let eps = float_of_int events /. wall in
  let words_per_event = !minor /. float_of_int events in
  Printf.printf
    "End-to-end (4 nodes, %d requests, %d sim events): %.3f s wall -> %.0f \
     requests/s, %.0f events/s, %.1f minor words/event\n"
    n_requests events wall rps eps words_per_event;
  let module J = Metrics.Json in
  (* Simulated response-time quantiles ride along (in ms) so a perf PR that
     accidentally changes behaviour — not just speed — shows up here too. *)
  let ms q =
    J.float_opt
      (Option.map
         (fun v -> v *. 1000.)
         (Metrics.Sample.quantile_opt r.Swala.Cluster_runner.response q))
  in
  let oc = open_out "BENCH_perf.json" in
  J.write oc
    (J.Obj
       [
         ("benchmark", J.Str "swala-e2e-coop-4node");
         ("nodes", J.Int 4);
         ("requests", J.Int n_requests);
         ("sim_events", J.Int events);
         ("wall_seconds", J.Float wall);
         ("requests_per_sec_wall", J.Float rps);
         ("events_per_sec_wall", J.Float eps);
         ("gc_minor_words_per_event", J.Float words_per_event);
         ("p50_ms", ms 0.5);
         ("p95_ms", ms 0.95);
         ("p99_ms", ms 0.99);
         ("hit_ratio", J.Float r.Swala.Cluster_runner.hit_ratio);
         ( "max_ms",
           J.float_opt
             (Option.map
                (fun v -> v *. 1000.)
                (Metrics.Sample.max_opt r.Swala.Cluster_runner.response)) );
       ]);
  output_char oc '\n';
  close_out oc;
  let oc = open_out "BENCH_metrics.json" in
  output_string oc (Swala.Cluster_runner.result_to_json r);
  output_char oc '\n';
  close_out oc;
  Printf.printf "Wrote BENCH_perf.json and BENCH_metrics.json\n\n"

(* Traced replay: where does a request's time go, and what are the
   contention profiles? Runs the same cooperative 4-node coop-mix replay
   as the perf target, with tracing on. *)
let bench_breakdown () =
  let n_requests = 2_000 in
  let trace =
    Workload.Synthetic.coop ~seed ~n:n_requests ~n_unique:1400 ~locality:0.08 ()
  in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~trace:true ~seed ()
  in
  let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:16 () in
  (match r.Swala.Cluster_runner.tracer with
  | None -> ()
  | Some tr -> emit (Swala.Trace_report.breakdown_table tr ~root:"request"));
  emit
    (Swala.Trace_report.histogram_table r.Swala.Cluster_runner.wait_histograms)

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"kernels" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Metrics.Table.create ~title:"Micro-benchmarks (Bechamel, OLS estimate)"
      ~columns:
        [ ("kernel", Metrics.Table.Left); ("ns/run", Metrics.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.1f" e
        | Some [] | None -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Metrics.Table.add_row t [ name; est ])
    (List.sort compare !rows);
  emit t;
  run_perf ()

(* ------------------------------------------------------------------ *)

let all_targets =
  [
    ("table1", bench_table1);
    ("table2", bench_table2);
    ("figure3", bench_figure3);
    ("figure4", bench_figure4);
    ("table3", bench_table3);
    ("table4", bench_table4);
    ("table5", bench_table5);
    ("table6", bench_table6);
    ("ablation-policy", bench_ablation_policy);
    ("ablation-locking", bench_ablation_locking);
    ("ablation-consistency", bench_ablation_consistency);
    ("ablation-protocol", bench_ablation_protocol);
    ("ablation-routing", bench_ablation_routing);
    ("ablation-threshold", bench_ablation_threshold);
    ("ablation-loss", bench_ablation_loss);
    ("ablation-faults", bench_ablation_faults);
    ("ablation-partition", bench_ablation_partition);
    ("ablation-batching", bench_ablation_batching);
    ("ablation-dirmode", bench_ablation_dirmode);
    ("ablation-scenario", bench_ablation_scenario);
    ("ablation-freshness", bench_ablation_freshness);
    ("breakdown", bench_breakdown);
    ("micro", run_micro);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let rec parse_flags = function
    | "--csv" :: dir :: rest ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Printf.eprintf "--csv: %s is not a directory\n" dir;
          exit 2
        end;
        csv_dir := Some dir;
        parse_flags rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 0 ->
            jobs := (if j = 0 then Sim.Sweep.default_jobs () else j)
        | _ ->
            Printf.eprintf "--jobs: expected a non-negative integer, got %S\n" n;
            exit 2);
        parse_flags rest
    | other -> other
  in
  let args = parse_flags args in
  let requested =
    match args with [] -> List.map fst all_targets | some -> some
  in
  print_endline
    "Swala reproduction benchmarks (HPDC 1998). Absolute times are from the \
     simulated substrate;\ncompare shapes with the paper as recorded in \
     EXPERIMENTS.md.\n";
  List.iter
    (fun name ->
      match List.assoc_opt name all_targets with
      | Some f ->
          Printf.printf "=== %s ===\n%!" name;
          current_target := name;
          csv_counter := 0;
          let t0 = Sys.time () in
          f ();
          Printf.printf "(%s regenerated in %.1f s of host CPU)\n\n%!" name
            (Sys.time () -. t0)
      | None ->
          Printf.eprintf
            "unknown target %S; available: %s\n" name
            (String.concat ", " (List.map fst all_targets));
          exit 2)
    requested
