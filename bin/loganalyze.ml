(* Offline access-log analyzer: reproduces the paper's §3 study (Table 1)
   over any trace in logfmt (see `swala_sim gen`). *)

open Cmdliner

let file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Trace file in logfmt.")

let thresholds_t =
  Arg.(
    value
    & opt (list float) [ 0.5; 1.0; 2.0; 4.0 ]
    & info [ "t"; "thresholds" ] ~docv:"T1,T2,..."
        ~doc:"Execution-time thresholds in seconds.")

let format_t =
  Arg.(
    value & opt string "logfmt"
    & info [ "format" ] ~docv:"F"
        ~doc:
          "Input format: logfmt (swala_sim gen) or clf (Common Log Format, \
           optionally with a trailing service-time field).")

let read_trace path format =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match format with
  | "logfmt" -> Workload.Logfmt.of_string text
  | "clf" ->
      let trace, stats = Workload.Clf.to_trace text in
      Printf.printf
        "CLF import: %d kept, %d non-GET skipped, %d non-2xx skipped, %d \
         malformed.\n\n"
        stats.Workload.Clf.kept stats.Workload.Clf.skipped_method
        stats.Workload.Clf.skipped_status stats.Workload.Clf.malformed;
      Ok trace
  | other -> Error (Printf.sprintf "unknown format %S" other)

let analyze_impl path thresholds format =
  match read_trace path format with
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
  | Ok trace ->
      let s = Workload.Analyzer.summarize trace in
      Printf.printf
        "%d requests, %d CGI (%.1f%%); total service %.0f s; mean response \
         %.2f s;\nmean file %.3f s; mean CGI %.2f s; CGI share of service \
         time %.1f%%; longest %.1f s\n\n"
        s.Workload.Analyzer.n_total s.Workload.Analyzer.n_cgi
        (100. *. s.Workload.Analyzer.cgi_fraction)
        s.Workload.Analyzer.total_service s.Workload.Analyzer.mean_response
        s.Workload.Analyzer.mean_file_time s.Workload.Analyzer.mean_cgi_time
        (100. *. s.Workload.Analyzer.cgi_time_fraction)
        s.Workload.Analyzer.longest;
      let t =
        Metrics.Table.create ~title:"Potential time saving by caching CGI"
          ~columns:
            [
              ("Threshold", Metrics.Table.Left);
              ("#long", Metrics.Table.Right);
              ("Repeats", Metrics.Table.Right);
              ("Uniq. repeats", Metrics.Table.Right);
              ("Time saved", Metrics.Table.Right);
              ("Saved %", Metrics.Table.Right);
            ]
      in
      List.iter
        (fun (r : Workload.Analyzer.row) ->
          Metrics.Table.add_row t
            [
              Printf.sprintf "%.1f s" r.Workload.Analyzer.threshold;
              Metrics.Table.fmt_i r.Workload.Analyzer.n_long;
              Metrics.Table.fmt_i r.Workload.Analyzer.total_repeats;
              Metrics.Table.fmt_i r.Workload.Analyzer.unique_repeats;
              Printf.sprintf "%.0f s" r.Workload.Analyzer.time_saved;
              Metrics.Table.fmt_pct r.Workload.Analyzer.saved_fraction;
            ])
        (Workload.Analyzer.table1 trace ~thresholds);
      Metrics.Table.print t;
      Printf.printf "Upper bound on cache hits (infinite cache): %d\n"
        (Workload.Analyzer.upper_bound_hits trace)

let () =
  let doc = "Analyze a web-server access trace for cacheable CGI repetition." in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "loganalyze" ~doc)
          Term.(const analyze_impl $ file_t $ thresholds_t $ format_t)))
