(* metrics_diff: behavioral regression gate over metrics JSON payloads.

   Structurally diffs two files written by `swala_sim run --metrics-out`
   (or the bench harness) and exits non-zero when they drift beyond the
   configured tolerances. The simulator is deterministic, so CI can diff
   a freshly generated payload against a committed baseline with a tight
   default tolerance: any behavioral change — a hit-ratio shift, a
   counter appearing or disappearing, a latency quantile moving — shows
   up as a named path, while benign float-printing noise is absorbed.

   Usage:
     metrics_diff --baseline FILE --current FILE
                  [--default-tol REL] [--tol PATH=REL]... [--ignore PATH]...

   Paths are dot-separated ("counters.requests", "utilisation.0",
   "response_s.p99"); a "*" segment matches any one key or index
   ("wait_histograms.*.count"). Values match when
   |a - b| <= max(1e-12, REL * max(|a|, |b|)). Structural differences
   (missing/extra keys, length or type mismatches) are always drift.

   Exit status: 0 no drift, 1 drift, 2 usage or parse error. *)

module J = Metrics.Json

let usage =
  "usage: metrics_diff --baseline FILE --current FILE [--default-tol REL] \
   [--tol PATH=REL]... [--ignore PATH]...\n"

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error e ->
      Printf.eprintf "metrics_diff: %s\n" e;
      exit 2
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_json path =
  match J.of_string (read_file path) with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "metrics_diff: %s: %s\n" path e;
      exit 2

(* Paths are built root-first as reversed segment lists; patterns are
   matched segment-wise with "*" as a single-segment wildcard. *)
let path_str rev_path = String.concat "." (List.rev rev_path)

let pattern_match pattern rev_path =
  let pat = String.split_on_char '.' pattern in
  let segs = List.rev rev_path in
  List.length pat = List.length segs
  && List.for_all2
       (fun p s -> String.equal p "*" || String.equal p s)
       pat segs

type opts = {
  default_tol : float;
  tols : (string * float) list;  (* (pattern, rel tolerance), CLI order *)
  ignores : string list;
}

let tol_for opts rev_path =
  match List.find_opt (fun (p, _) -> pattern_match p rev_path) opts.tols with
  | Some (_, t) -> t
  | None -> opts.default_tol

let ignored opts rev_path =
  List.exists (fun p -> pattern_match p rev_path) opts.ignores

let type_name = function
  | J.Null -> "null"
  | J.Bool _ -> "bool"
  | J.Int _ | J.Float _ -> "number"
  | J.Str _ -> "string"
  | J.List _ -> "array"
  | J.Obj _ -> "object"

let numbers_match tol a b =
  let d = Float.abs (a -. b) in
  d <= Float.max 1e-12 (tol *. Float.max (Float.abs a) (Float.abs b))

let drifts = ref 0

let drift rev_path fmt =
  incr drifts;
  Printf.ksprintf
    (fun msg -> Printf.printf "metrics_diff: %s: %s\n" (path_str rev_path) msg)
    fmt

let rec diff opts rev_path a b =
  if not (ignored opts rev_path) then
    match (a, b) with
    | J.Obj fa, J.Obj fb ->
        List.iter
          (fun (k, va) ->
            match List.assoc_opt k fb with
            | Some vb -> diff opts (k :: rev_path) va vb
            | None -> drift (k :: rev_path) "missing from current")
          fa;
        List.iter
          (fun (k, _) ->
            if not (List.mem_assoc k fa) then
              drift (k :: rev_path) "missing from baseline")
          fb
    | J.List la, J.List lb ->
        let na = List.length la and nb = List.length lb in
        if na <> nb then
          drift rev_path "array length %d -> %d" na nb
        else
          List.iteri
            (fun i (va, vb) -> diff opts (string_of_int i :: rev_path) va vb)
            (List.combine la lb)
    | (J.Int _ | J.Float _), (J.Int _ | J.Float _) ->
        let va = Option.get (J.to_float_opt a)
        and vb = Option.get (J.to_float_opt b) in
        let tol = tol_for opts rev_path in
        if not (numbers_match tol va vb) then
          drift rev_path "%g -> %g (tolerance %g)" va vb tol
    | J.Null, J.Null -> ()
    | J.Bool ba, J.Bool bb ->
        if ba <> bb then drift rev_path "%b -> %b" ba bb
    | J.Str sa, J.Str sb ->
        if not (String.equal sa sb) then drift rev_path "%S -> %S" sa sb
    | _ -> drift rev_path "type %s -> %s" (type_name a) (type_name b)

let parse_tol spec =
  match String.index_opt spec '=' with
  | None ->
      Printf.eprintf "metrics_diff: --tol: expected PATH=REL, got %S\n" spec;
      exit 2
  | Some i -> (
      let path = String.sub spec 0 i
      and v = String.sub spec (i + 1) (String.length spec - i - 1) in
      match float_of_string_opt v with
      | Some t when t >= 0. -> (path, t)
      | _ ->
          Printf.eprintf "metrics_diff: --tol %s: bad tolerance %S\n" spec v;
          exit 2)

let () =
  let baseline = ref "" and current = ref "" in
  let default_tol = ref 0. and tols = ref [] and ignores = ref [] in
  let rec parse = function
    | "--baseline" :: v :: rest -> baseline := v; parse rest
    | "--current" :: v :: rest -> current := v; parse rest
    | "--default-tol" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0. -> default_tol := t; parse rest
        | _ ->
            Printf.eprintf "metrics_diff: --default-tol: bad value %S\n" v;
            exit 2)
    | "--tol" :: v :: rest -> tols := parse_tol v :: !tols; parse rest
    | "--ignore" :: v :: rest -> ignores := v :: !ignores; parse rest
    | [] -> ()
    | arg :: _ ->
        Printf.eprintf "metrics_diff: unknown argument %S\n%s" arg usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !baseline = "" || !current = "" then begin
    prerr_string usage;
    exit 2
  end;
  let opts =
    {
      default_tol = !default_tol;
      tols = List.rev !tols;
      ignores = List.rev !ignores;
    }
  in
  diff opts [] (parse_json !baseline) (parse_json !current);
  if !drifts > 0 then begin
    Printf.printf
      "metrics_diff: FAIL — %d path(s) drifted from %s; if the behavior \
       change is intended, regenerate and commit the baseline\n"
      !drifts !baseline;
    exit 1
  end
  else print_endline "metrics_diff: PASS"
