(* perf_gate: hold the line on simulator throughput.

   Compares a freshly measured BENCH_perf.json (written by
   [bench/main.exe micro]) against the committed baseline and fails when
   the measured metric falls below [min_ratio] x baseline. The ratio is
   deliberately generous in CI — shared runners are noisy — so the gate
   catches structural regressions (an accidental O(n) heap, a closure
   back on the hot path), not scheduling jitter.

   Usage:
     perf_gate --baseline FILE --current FILE [--min-ratio R] [--key K]...

   --key is repeatable; every key must pass. A key defaults to
   higher-is-better (current/baseline >= min-ratio); suffix it with
   ":lower" for lower-is-better metrics such as latencies, where the
   gate becomes baseline/current >= min-ratio.

   Defaults: min-ratio 0.5, keys [events_per_sec_wall].
   Exit status: 0 pass, 1 regression, 2 usage or parse error.

   The JSON "parser" below only needs to pull one numeric field out of
   the flat object bench emits, so it scans for the quoted key and reads
   the number after the colon — no JSON library in the repo, and none
   needed for this. *)

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error e ->
      Printf.eprintf "perf_gate: %s\n" e;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let number_field ~path json key =
  let pat = Printf.sprintf "\"%s\"" key in
  let plen = String.length pat and n = String.length json in
  let fail () =
    Printf.eprintf "perf_gate: %s: no numeric field %S\n" path key;
    exit 2
  in
  (* Position just past the first occurrence of the quoted key. *)
  let rec find i =
    if i + plen > n then fail ()
    else if String.sub json i plen = pat then i + plen
    else find (i + 1)
  in
  let i = find 0 in
  let rec skip i =
    if i < n && (json.[i] = ' ' || json.[i] = ':' || json.[i] = '\n') then
      skip (i + 1)
    else i
  in
  let start = skip i in
  let rec stop i =
    if
      i < n
      && (match json.[i] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    then stop (i + 1)
    else i
  in
  let stop = stop start in
  if stop = start then fail ()
  else
    match float_of_string_opt (String.sub json start (stop - start)) with
    | Some v -> v
    | None -> fail ()

(* "p95_ms:lower" -> ("p95_ms", lower-is-better). *)
let parse_key spec =
  match String.index_opt spec ':' with
  | None -> (spec, false)
  | Some i -> (
      let name = String.sub spec 0 i in
      match String.sub spec (i + 1) (String.length spec - i - 1) with
      | "lower" -> (name, true)
      | "higher" -> (name, false)
      | dir ->
          Printf.eprintf
            "perf_gate: --key %s: unknown direction %S (expected lower or \
             higher)\n"
            spec dir;
          exit 2)

let () =
  let baseline = ref "" and current = ref "" in
  let min_ratio = ref 0.5 and keys = ref [] in
  let rec parse = function
    | "--baseline" :: v :: rest -> baseline := v; parse rest
    | "--current" :: v :: rest -> current := v; parse rest
    | "--min-ratio" :: v :: rest -> (
        match float_of_string_opt v with
        | Some r when r > 0. -> min_ratio := r; parse rest
        | _ ->
            Printf.eprintf "perf_gate: --min-ratio: bad value %S\n" v;
            exit 2)
    | "--key" :: v :: rest -> keys := parse_key v :: !keys; parse rest
    | [] -> ()
    | arg :: _ ->
        Printf.eprintf
          "perf_gate: unknown argument %S\n\
           usage: perf_gate --baseline FILE --current FILE [--min-ratio R] \
           [--key K[:lower]]...\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !baseline = "" || !current = "" then begin
    Printf.eprintf
      "usage: perf_gate --baseline FILE --current FILE [--min-ratio R] \
       [--key K[:lower]]...\n";
    exit 2
  end;
  let keys =
    match List.rev !keys with
    | [] -> [ ("events_per_sec_wall", false) ]
    | ks -> ks
  in
  let bjson = read_file !baseline and cjson = read_file !current in
  let failed = ref false in
  List.iter
    (fun (key, lower_better) ->
      let b = number_field ~path:!baseline bjson key in
      let c = number_field ~path:!current cjson key in
      let num, den = if lower_better then (b, c) else (c, b) in
      if den <= 0. then begin
        Printf.eprintf "perf_gate: %s %s is %g; nothing to gate on\n"
          (if lower_better then "current" else "baseline")
          key den;
        exit 2
      end;
      let ratio = num /. den in
      Printf.printf
        "perf_gate: %s baseline %g, current %g, ratio %.3f (min %.3f%s)\n" key
        b c ratio !min_ratio
        (if lower_better then ", lower is better" else "");
      if ratio < !min_ratio then failed := true)
    keys;
  if !failed then begin
    Printf.printf
      "perf_gate: FAIL — a gated metric regressed beyond tolerance; if this \
       is a deliberate tradeoff, re-run `bench/main.exe micro` and commit \
       the new BENCH_perf.json\n";
    exit 1
  end
  else print_endline "perf_gate: PASS"
