(* Command-line driver for the Swala simulator.

   swala_sim run       free-form cluster simulation over a chosen workload
   swala_sim gen       generate a workload trace file (logfmt)
   swala_sim list      list the paper experiments exposed by bench/main.exe *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared options *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let nodes_t =
  Arg.(
    value & opt int 1
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of server nodes.")

let mode_t =
  let parse = function
    | "no-cache" -> Ok Swala.Config.Disabled
    | "standalone" -> Ok Swala.Config.Standalone
    | "cooperative" -> Ok Swala.Config.Cooperative
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Swala.Config.cache_mode_to_string m)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Swala.Config.Cooperative
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Cache mode: no-cache, standalone or cooperative.")

let policy_t =
  let parse s = Result.map_error (fun e -> `Msg e) (Cache.Policy.of_string s) in
  Arg.(
    value
    & opt (conv (parse, Cache.Policy.pp)) Cache.Policy.Lru
    & info [ "policy" ] ~docv:"P"
        ~doc:"Replacement policy: lru, fifo, lfu, size, exec-time, gdsf, random.")

let capacity_t =
  Arg.(
    value & opt int 2000
    & info [ "capacity" ] ~docv:"N" ~doc:"Cache entries per node.")

let streams_t =
  Arg.(
    value & opt int 16
    & info [ "streams" ] ~docv:"N" ~doc:"Closed-loop client streams.")

let requests_t =
  Arg.(
    value & opt int 2000
    & info [ "requests" ] ~docv:"N" ~doc:"Requests to generate.")

let workload_t =
  Arg.(
    value & opt string "adl"
    & info [ "workload" ] ~docv:"W"
        ~doc:
          "Workload: adl (digital-library replay), coop (hit-ratio mix), \
           webstone (file mix), nullcgi, or unique (all-miss CGIs).")

let router_t =
  let parse = function
    | "per-stream" -> Ok Swala.Router.Per_stream
    | "round-robin" -> Ok Swala.Router.Round_robin
    | "least-active" -> Ok Swala.Router.Least_active
    | "key-affinity" -> Ok Swala.Router.Key_affinity
    | s -> Error (`Msg (Printf.sprintf "unknown routing policy %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Swala.Router.policy_name p) in
  Arg.(
    value
    & opt (conv (parse, print)) Swala.Router.Per_stream
    & info [ "router" ] ~docv:"R"
        ~doc:
          "Request routing: per-stream, round-robin, least-active or \
           key-affinity.")

let rules_t =
  Arg.(
    value & opt (some file) None
    & info [ "rules" ] ~docv:"FILE"
        ~doc:"Administrator cacheability rules file (see Swala.Rules).")

(* Fault-profile options (see Sim.Fault). *)

let drop_rate_t =
  Arg.(
    value & opt float 0.
    & info [ "drop-rate" ] ~docv:"P"
        ~doc:
          "Probability that an inter-node protocol message is dropped \
           (fault injection; requires $(b,--fetch-timeout)).")

let delay_rate_t =
  Arg.(
    value & opt float 0.
    & info [ "delay-rate" ] ~docv:"P"
        ~doc:"Probability that a protocol message is delayed extra.")

let delay_mean_t =
  Arg.(
    value & opt float 0.05
    & info [ "delay-mean" ] ~docv:"SEC"
        ~doc:"Mean extra delay for delayed messages (exponential).")

let crash_mtbf_t =
  Arg.(
    value & opt (some float) None
    & info [ "crash-mtbf" ] ~docv:"SEC"
        ~doc:
          "Mean time between node failures; enables crash/restart \
           injection (requires $(b,--fetch-timeout)).")

let crash_mttr_t =
  Arg.(
    value & opt float 2.
    & info [ "crash-mttr" ] ~docv:"SEC"
        ~doc:"Mean time to repair a crashed node.")

let fault_horizon_t =
  Arg.(
    value & opt float 600.
    & info [ "fault-horizon" ] ~docv:"SEC"
        ~doc:"Crash schedules are generated within [0, horizon).")

(* A partition flag value looks like 5:25:0,1|2,3 — cut at t=5 s, heal at
   t=25 s, nodes {0,1} split from {2,3}. Unlisted nodes (and clients) form
   one implicit extra group. *)
let partition_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "bad partition %S (expected START:HEAL:ids,ids|ids,ids)" s))
    in
    match String.split_on_char ':' s with
    | [ cut; heal; groups ] -> (
        match (float_of_string_opt cut, float_of_string_opt heal) with
        | Some cut_at, Some heal_at -> (
            try
              let groups =
                List.map
                  (fun g ->
                    match String.split_on_char ',' (String.trim g) with
                    | [] | [ "" ] -> raise Exit
                    | ids -> List.map (fun id -> int_of_string (String.trim id)) ids)
                  (String.split_on_char '|' groups)
              in
              if List.length groups < 2 then fail ()
              else
                Ok
                  {
                    Sim.Fault.pname = s;
                    groups;
                    cut_at;
                    heal_at;
                  }
            with Exit | Failure _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let print ppf (p : Sim.Fault.partition) =
    Format.pp_print_string ppf p.Sim.Fault.pname
  in
  Arg.conv (parse, print)

let partitions_t =
  Arg.(
    value
    & opt_all partition_conv []
    & info [ "partition" ] ~docv:"SPEC"
        ~doc:
          "Time-varying network partition, as START:HEAL:ids,ids|ids,ids \
           (e.g. 5:25:0,1|2,3 splits nodes {0,1} from {2,3} between t=5 s \
           and t=25 s). Repeatable; overlapping partitions compose. \
           Requires $(b,--fetch-timeout).")

let anti_entropy_t =
  Arg.(
    value & opt (some float) None
    & info [ "anti-entropy-period" ] ~docv:"SEC"
        ~doc:
          "Run the anti-entropy directory-repair daemon with this period \
           (cooperative mode): each node periodically exchanges directory \
           digests with a random peer and pulls missing or stale entries, \
           so replicas reconverge after partitions heal.")

let batch_flush_t =
  Arg.(
    value & opt (some float) None
    & info [ "batch-flush-interval" ] ~docv:"SEC"
        ~doc:
          "Nagle-style timer for directory-update batching: each node \
           buffers outbound directory updates and flushes the buffer at \
           least this often (cooperative mode, weak consistency). \
           Requires $(b,--batch-max) > 1 to have any effect.")

let batch_max_t =
  Arg.(
    value & opt int 1
    & info [ "batch-max" ] ~docv:"N"
        ~doc:
          "Flush the directory-update buffer once it holds N updates; \
           same-key updates coalesce to the newest. 1 (default) disables \
           batching; > 1 requires $(b,--batch-flush-interval).")

let dir_hints_t =
  Arg.(
    value & flag
    & info [ "dir-hints" ]
        ~doc:
          "Maintain a key-to-owner hint index in each directory replica \
           so lookups probe only hinted tables (stale hints fall back to \
           the full scan).")

(* Metadata-plane options (see docs/METADATA_PLANE.md). *)

let dir_mode_t =
  let parse = function
    | "replicated" -> Ok Swala.Config.Replicated
    | "sharded" -> Ok Swala.Config.Sharded
    | s -> Error (`Msg (Printf.sprintf "unknown directory mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Swala.Config.dir_mode_to_string m)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Swala.Config.Replicated
    & info [ "dir-mode" ] ~docv:"MODE"
        ~doc:
          "Metadata plane: replicated (every node holds the full \
           directory, updates broadcast — the paper's design) or sharded \
           (each key has one consistent-hash home, updates are unicast \
           to the home and remote lookups are forwarded to it). Sharded \
           mode requires weak consistency and is incompatible with \
           $(b,--batch-max) > 1, $(b,--dir-hints) and \
           $(b,--anti-entropy-period).")

let shard_vnodes_t =
  Arg.(
    value & opt int 64
    & info [ "shard-vnodes" ] ~docv:"N"
        ~doc:
          "Virtual nodes per physical node on the consistent-hash ring \
           (sharded mode); more vnodes smooth the key distribution.")

let shard_lookup_cache_t =
  Arg.(
    value & opt int 128
    & info [ "shard-lookup-cache" ] ~docv:"N"
        ~doc:
          "Capacity of the per-node positive/negative lookup cache in \
           front of forwarded directory lookups (sharded mode); 0 \
           disables it.")

let shard_pos_ttl_t =
  Arg.(
    value & opt float 5.
    & info [ "shard-pos-ttl" ] ~docv:"SEC"
        ~doc:
          "Seconds a positive lookup-cache entry is trusted (sharded \
           mode) — the false-hit window.")

let shard_neg_ttl_t =
  Arg.(
    value & opt float 0.5
    & info [ "shard-neg-ttl" ] ~docv:"SEC"
        ~doc:
          "Seconds a negative lookup-cache entry is trusted (sharded \
           mode) — the false-miss window.")

let hotspot_threshold_t =
  Arg.(
    value & opt float 0.
    & info [ "hotspot-threshold" ] ~docv:"RATE"
        ~doc:
          "Forwarded-lookup rate (lookups/s per key at the shard home) \
           above which the key's directory entry is replicated to ring \
           successors (sharded mode); 0 disables hotspot replication.")

let hotspot_window_t =
  Arg.(
    value & opt float 2.
    & info [ "hotspot-window" ] ~docv:"SEC"
        ~doc:
          "Sliding-window length of the hotspot rate estimator and \
           period of the demotion sweep.")

let hotspot_replicas_t =
  Arg.(
    value & opt int 2
    & info [ "hotspot-replicas" ] ~docv:"K"
        ~doc:
          "Ring successors a promoted hotspot key's directory entry is \
           pushed to.")

(* Freshness-plane options (per-key adaptive TTLs + proactive refresh). *)

let freshness_t =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Cache.Freshness.mode_of_string s)
  in
  let print ppf m =
    Format.pp_print_string ppf (Cache.Freshness.mode_to_string m)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Cache.Freshness.Fixed
    & info [ "freshness" ] ~docv:"MODE"
        ~doc:
          "TTL policy for cached CGI results: fixed (rule/script TTL, \
           else $(b,--default-ttl) — the classic behaviour) or adaptive \
           (a per-key controller balances staleness risk against \
           recompute cost, giving cheap hot keys short TTLs and \
           expensive stable keys long ones; explicit rule/script TTLs \
           still win).")

let default_ttl_t =
  Arg.(
    value & opt (some float) None
    & info [ "default-ttl" ] ~docv:"SEC"
        ~doc:
          "Fallback TTL for cacheable scripts that set none (fixed \
           freshness). Unset (the default) means such entries never \
           expire; under adaptive freshness it is only the staleness \
           anchor for the stale_served counter.")

let refresh_budget_t =
  Arg.(
    value & opt float 0.
    & info [ "refresh-budget" ] ~docv:"R"
        ~doc:
          "Proactive-refresh budget, in re-executions per second per \
           node: a daemon re-runs hot, expensive, near-expiry cache \
           entries off the critical path so clients keep hitting instead \
           of missing at expiry. 0 (default) disables the daemon \
           entirely.")

let refresh_interval_t =
  Arg.(
    value & opt float 0.5
    & info [ "refresh-interval" ] ~docv:"SEC"
        ~doc:
          "Scan period of the proactive-refresh daemon; entries expiring \
           within two intervals are refresh candidates.")

let fetch_timeout_t =
  Arg.(
    value & opt (some float) None
    & info [ "fetch-timeout" ] ~docv:"SEC"
        ~doc:
          "Remote-fetch timeout; on expiry the node retries then falls \
           back to local CGI execution.")

let fetch_retries_t =
  Arg.(
    value & opt int 0
    & info [ "fetch-retries" ] ~docv:"N"
        ~doc:"Remote-fetch retransmissions before falling back locally.")

let fetch_backoff_t =
  Arg.(
    value & opt float 2.
    & info [ "fetch-backoff" ] ~docv:"F"
        ~doc:"Multiplier applied to the fetch timeout on each retry.")

let trace_file_t =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a causal trace of the run and write it as Chrome \
           trace-event JSON (load in Perfetto or chrome://tracing): one \
           track per node plus a clients track, one span tree per \
           request, instants for faults. Off by default; without it the \
           hot path carries no tracing work.")

let trace_breakdown_t =
  Arg.(
    value & flag
    & info [ "trace-breakdown" ]
        ~doc:
          "Trace the run and print a per-phase latency-breakdown table \
           (self time by span name) plus lock/mailbox/CPU contention \
           histograms.")

let metrics_out_t =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's counters, response-time summaries and wait \
           histograms as JSON to FILE. With $(b,--seeds) N > 1, one file \
           per seed is written as FILE.SEED.")

(* Flight-recorder options (see docs/OBSERVABILITY.md). *)

let telemetry_interval_t =
  Arg.(
    value & opt (some float) None
    & info [ "telemetry-interval" ] ~docv:"SEC"
        ~doc:
          "Enable the flight recorder: sample cluster and engine probes \
           into bounded timelines every SEC virtual seconds, run the \
           online health monitor, print timeline/incident tables after \
           the run, and add a ['timelines']/['incidents'] section to \
           $(b,--metrics-out). Off by default; a run without it is \
           byte-identical to one built without the plane.")

let telemetry_csv_t =
  Arg.(
    value & opt (some string) None
    & info [ "telemetry-csv" ] ~docv:"PREFIX"
        ~doc:
          "Write the sampled timelines as CSV: PREFIX.cluster.csv for \
           cluster-wide probes plus one PREFIX.nodeN.csv per node. \
           Requires $(b,--telemetry-interval).")

let incidents_out_t =
  Arg.(
    value & opt (some string) None
    & info [ "incidents-out" ] ~docv:"FILE"
        ~doc:
          "Write the health monitor's incident log as plain text, one \
           line per incident. Requires $(b,--telemetry-interval).")

let slo_target_t =
  Arg.(
    value & opt (some float) None
    & info [ "slo-target" ] ~docv:"SEC"
        ~doc:
          "Response-time SLO target driving the health monitor's \
           burn-rate detector. Requires $(b,--telemetry-interval).")

let slo_objective_t =
  Arg.(
    value & opt float 0.95
    & info [ "slo-objective" ] ~docv:"FRAC"
        ~doc:
          "Fraction of requests that must meet $(b,--slo-target), in \
           (0,1).")

let seeds_t =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:
          "Replay $(docv) consecutive seeds starting at $(b,--seed), \
           printing one summary line per seed in seed order. Each seed is \
           an independent deterministic run; combine with $(b,--jobs) to \
           spread the sweep over domains.")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"M"
        ~doc:
          "Domains to run a $(b,--seeds) sweep on (0 = all cores). \
           Results are merged in seed order, so output is byte-identical \
           for every value of $(docv).")

(* Time-varying scenario options (see Workload.Scenario). *)

let scenario_t =
  Arg.(
    value & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario preset: flash (crowd over the middle of the run), \
           diurnal (one sinusoidal cycle), geo (metro/regional/far client \
           tiers), churn (rolling node leave/rejoin; requires \
           $(b,--fetch-timeout)) or mixed (all four). Explicit \
           $(b,--flash-crowd)/$(b,--diurnal)/$(b,--geo-tiers)/\
           $(b,--churn-rate) flags override the preset's choices.")

let scenario_duration_t =
  Arg.(
    value & opt float 60.
    & info [ "scenario-duration" ] ~docv:"SEC"
        ~doc:
          "Virtual-time horizon the scenario phases tile; diurnal release \
           times and preset flash-crowd windows are laid out over it.")

(* AT:DUR:FRACTION:KEYS with an optional trailing :DECAY (defaults to DUR). *)
let flash_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "bad flash crowd %S (expected AT:DUR:FRACTION:KEYS[:DECAY])" s))
    in
    match String.split_on_char ':' s with
    | [ at; dur; frac; keys ] | [ at; dur; frac; keys; _ ] as fields -> (
        let decay =
          match fields with [ _; _; _; _; d ] -> float_of_string_opt d | _ -> None
        in
        match
          ( float_of_string_opt at,
            float_of_string_opt dur,
            float_of_string_opt frac,
            int_of_string_opt keys )
        with
        | Some at, Some duration, Some fraction, Some keys -> (
            try
              Ok
                (Workload.Scenario.flash_crowd ~at ~duration ?decay ~fraction
                   ~keys ())
            with Invalid_argument m -> Error (`Msg m))
        | _ -> fail ())
    | _ -> fail ()
  in
  let print ppf (f : Workload.Scenario.flash_crowd) =
    Format.fprintf ppf "%g:%g:%g:%d:%g" f.Workload.Scenario.fc_at
      f.Workload.Scenario.fc_duration f.Workload.Scenario.fc_fraction
      f.Workload.Scenario.fc_keys f.Workload.Scenario.fc_decay
  in
  Arg.conv (parse, print)

let flash_crowd_t =
  Arg.(
    value
    & opt (some flash_conv) None
    & info [ "flash-crowd" ] ~docv:"SPEC"
        ~doc:
          "Flash crowd, as AT:DUR:FRACTION:KEYS[:DECAY] (e.g. \
           10:20:0.8:8 re-points 80% of CGI traffic onto an 8-key Zipf \
           head between t=10 s and t=30 s, then decays linearly back to \
           baseline over another 20 s).")

(* PERIOD:TROUGH sinusoidal envelope. *)
let diurnal_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ period; trough ] -> (
        match (float_of_string_opt period, float_of_string_opt trough) with
        | Some period, Some trough ->
            Ok (Workload.Scenario.Sinusoid { period; trough })
        | _ -> Error (`Msg (Printf.sprintf "bad diurnal %S" s)))
    | _ ->
        Error
          (`Msg (Printf.sprintf "bad diurnal %S (expected PERIOD:TROUGH)" s))
  in
  let print ppf = function
    | Workload.Scenario.Sinusoid { period; trough } ->
        Format.fprintf ppf "%g:%g" period trough
    | Workload.Scenario.Piecewise _ -> Format.pp_print_string ppf "piecewise"
  in
  Arg.conv (parse, print)

let diurnal_t =
  Arg.(
    value
    & opt (some diurnal_conv) None
    & info [ "diurnal" ] ~docv:"SPEC"
        ~doc:
          "Sinusoidal arrival-rate envelope, as PERIOD:TROUGH (e.g. 60:0.2 \
           cycles once per 60 s between full rate mid-period and 20% rate \
           at the period edges). Release times are the envelope's \
           quantiles, so the trace's request count is preserved exactly.")

(* NAME:RTT:WEIGHT,NAME:RTT:WEIGHT geo tiers. *)
let geo_conv =
  let parse s =
    try
      let tiers =
        List.map
          (fun spec ->
            match String.split_on_char ':' (String.trim spec) with
            | [ name; rtt; weight ] -> (
                match (float_of_string_opt rtt, float_of_string_opt weight) with
                | Some rtt, Some weight ->
                    Workload.Scenario.tier ~name:(String.trim name) ~rtt ~weight
                | _ -> raise Exit)
            | _ -> raise Exit)
          (String.split_on_char ',' s)
      in
      if tiers = [] then raise Exit else Ok tiers
    with Exit ->
      Error
        (`Msg
           (Printf.sprintf
              "bad geo tiers %S (expected NAME:RTT:WEIGHT,NAME:RTT:WEIGHT,...)"
              s))
  in
  let print ppf tiers =
    Format.pp_print_string ppf
      (String.concat ","
         (List.map
            (fun (t : Workload.Scenario.tier) ->
              Printf.sprintf "%s:%g:%g" t.Workload.Scenario.tier_name
                t.Workload.Scenario.rtt t.Workload.Scenario.weight)
            tiers))
  in
  Arg.conv (parse, print)

let geo_tiers_t =
  Arg.(
    value
    & opt (some geo_conv) None
    & info [ "geo-tiers" ] ~docv:"SPEC"
        ~doc:
          "Geo-tiered client classes, as NAME:RTT:WEIGHT,... (e.g. \
           metro:0.002:6,regional:0.03:3,far:0.12:1). Client streams are \
           cut into contiguous runs proportional to the weights; each \
           tier's links gain RTT/2 one-way latency, and responses are \
           reported per tier.")

let churn_rate_t =
  Arg.(
    value & opt (some float) None
    & info [ "churn-rate" ] ~docv:"RATE"
        ~doc:
          "Rolling membership churn: node leave events per second, dealt \
           round-robin over the cluster (requires $(b,--fetch-timeout)). \
           Composes with $(b,--crash-mtbf) and $(b,--partition).")

let churn_downtime_t =
  Arg.(
    value & opt float 2.
    & info [ "churn-downtime" ] ~docv:"SEC"
        ~doc:"(Mean) downtime of each churn leave.")

let churn_fixed_t =
  Arg.(
    value & flag
    & info [ "churn-fixed" ]
        ~doc:
          "Make churn strictly periodic (fixed gaps and downtimes) \
           instead of Poisson.")

let trace_of_workload ~workload ~seed ~requests =
  match workload with
  | "adl" -> Ok (Workload.Synthetic.adl_scaled ~seed ~n:requests)
  | "coop" ->
      let n_unique = Stdlib.max 1 (requests * 7 / 10) in
      Ok (Workload.Synthetic.coop ~seed ~n:requests ~n_unique ~locality:0.08 ())
  | "webstone" -> Ok (Workload.Webstone.file_trace ~seed ~n:requests)
  | "nullcgi" -> Ok (Workload.Webstone.null_cgi_trace ~n:requests)
  | "unique" -> Ok (Workload.Synthetic.unique_cacheable ~n:requests ~demand:1.0)
  | other -> Error (Printf.sprintf "unknown workload %S" other)

(* ------------------------------------------------------------------ *)
(* run *)

(* Resolve a --scenario preset plus explicit overlay flags into the
   scenario overlays and churn spec (explicit flags win over the preset). *)
let resolve_scenario ~preset ~duration ~flash ~diurnal ~geo ~churn_rate
    ~churn_downtime ~churn_fixed =
  let module S = Workload.Scenario in
  let preset_flash, preset_diurnal, preset_geo, preset_churn =
    match preset with
    | None -> (None, None, None, None)
    | Some "flash" ->
        ( Some
            (S.flash_crowd ~at:(duration /. 4.) ~duration:(duration /. 4.) ()),
          None,
          None,
          None )
    | Some "diurnal" ->
        (None, Some (S.Sinusoid { period = duration; trough = 0.2 }), None, None)
    | Some "geo" ->
        ( None,
          None,
          Some
            [
              S.tier ~name:"metro" ~rtt:0.002 ~weight:6.;
              S.tier ~name:"regional" ~rtt:0.03 ~weight:3.;
              S.tier ~name:"far" ~rtt:0.12 ~weight:1.;
            ],
          None )
    | Some "churn" -> (None, None, None, Some 0.2)
    | Some "mixed" ->
        ( Some
            (S.flash_crowd ~at:(duration /. 4.) ~duration:(duration /. 4.) ()),
          Some (S.Sinusoid { period = duration; trough = 0.2 }),
          Some
            [
              S.tier ~name:"metro" ~rtt:0.002 ~weight:6.;
              S.tier ~name:"regional" ~rtt:0.03 ~weight:3.;
              S.tier ~name:"far" ~rtt:0.12 ~weight:1.;
            ],
          Some 0.2 )
    | Some other ->
        prerr_endline
          (Printf.sprintf
             "unknown scenario %S (expected flash, diurnal, geo, churn or \
              mixed)"
             other);
        exit 2
  in
  let first a b = match a with Some _ -> a | None -> b in
  let flash = first flash preset_flash in
  let diurnal = first diurnal preset_diurnal in
  let geo = first geo preset_geo in
  let churn_rate = first churn_rate preset_churn in
  let scenario =
    if flash = None && diurnal = None && geo = None then None
    else
      Some
        (S.make ~duration ?flash ?diurnal
           ?tiers:(Option.map (fun t -> t) geo)
           ())
  in
  let churn =
    Option.map
      (fun rate ->
        Sim.Fault.churn ~rate ~downtime:churn_downtime
          ~poisson:(not churn_fixed) ())
      churn_rate
  in
  (scenario, churn)

(* --seeds N: replay seeds seed..seed+N-1, one fresh engine per run,
   spread over --jobs domains. Workers return fully formatted report
   lines (and metrics JSON payloads) and the main domain prints/writes
   them in seed order, so stdout and any --metrics-out files are
   byte-identical whatever the parallelism. *)
let run_multi ~seeds ~jobs ~seed ~workload ~requests ~nodes ~mode ~policy
    ~capacity ~streams ~router ~metrics_out ~cfg_of =
  let jobs = if jobs = 0 then Sim.Sweep.default_jobs () else jobs in
  if jobs < 1 then begin
    prerr_endline "swala_sim run: --jobs must be >= 0";
    exit 2
  end;
  Printf.printf
    "workload=%s requests=%d nodes=%d mode=%s policy=%s capacity=%d \
     streams=%d seeds=%d..%d\n"
    workload requests nodes
    (Swala.Config.cache_mode_to_string mode)
    (Cache.Policy.to_string policy)
    capacity streams seed (seed + seeds - 1);
  let seed_list = Array.init seeds (fun i -> seed + i) in
  let results =
    try
      Sim.Sweep.map ~jobs
        (fun sd ->
          match trace_of_workload ~workload ~seed:sd ~requests with
          | Error e -> failwith e
          | Ok trace ->
              let r =
                Swala.Cluster_runner.run (cfg_of sd) ~trace ~n_streams:streams
                  ~router ()
              in
              let fmt = function
                | None -> "-"
                | Some v -> Printf.sprintf "%.4f" v
              in
              let resp = r.Swala.Cluster_runner.response in
              let line =
                Printf.sprintf
                  "seed %-5d makespan %8.2f s  mean %.4f s  p50/p95 %s/%s s  \
                   hits %d (%.1f%% of CGI)  events %d\n"
                  sd r.Swala.Cluster_runner.duration
                  (Swala.Cluster_runner.mean_response r)
                  (fmt (Metrics.Sample.median_opt resp))
                  (fmt (Metrics.Sample.quantile_opt resp 0.95))
                  r.Swala.Cluster_runner.hits
                  (100. *. r.Swala.Cluster_runner.hit_ratio)
                  r.Swala.Cluster_runner.n_events
              in
              let json =
                match metrics_out with
                | None -> None
                | Some _ -> Some (Swala.Cluster_runner.result_to_json r)
              in
              (line, json))
        seed_list
    with Sim.Sweep.Worker (Failure e, _) ->
      prerr_endline e;
      exit 2
  in
  Array.iteri
    (fun i (line, json) ->
      print_string line;
      match (metrics_out, json) with
      | Some path, Some j ->
          let path = Printf.sprintf "%s.%d" path seed_list.(i) in
          let oc = open_out path in
          output_string oc j;
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote metrics JSON to %s\n" path
      | _ -> ())
    results

(* The pid a probe's counter track lands on in the Chrome-trace export:
   per-node probes (names with an [n<i>.] prefix) on that node's track,
   cluster-wide probes on a dedicated "cluster" track after the clients
   track. *)
let probe_node_id name =
  if String.length name > 1 && name.[0] = 'n' then
    match String.index_opt name '.' with
    | Some dot when dot > 1 -> int_of_string_opt (String.sub name 1 (dot - 1))
    | _ -> None
  else None

let run_cmd_impl seed nodes mode policy capacity streams requests workload
    router rules_file drop_rate delay_rate delay_mean crash_mtbf crash_mttr
    fault_horizon partitions anti_entropy_period fetch_timeout fetch_retries
    fetch_backoff batch_flush_interval batch_max dir_hints dir_mode
    shard_vnodes shard_lookup_cache shard_pos_ttl shard_neg_ttl
    hotspot_threshold hotspot_window hotspot_replicas freshness default_ttl
    refresh_budget refresh_interval scenario_name scenario_duration flash_crowd
    diurnal geo_tiers churn_rate churn_downtime churn_fixed trace_file
    trace_breakdown metrics_out telemetry_interval telemetry_csv incidents_out
    slo_target slo_objective seeds jobs =
  if seeds < 1 then begin
    prerr_endline "swala_sim run: --seeds must be >= 1";
    exit 2
  end;
  if seeds > 1 && (trace_file <> None || trace_breakdown) then begin
    prerr_endline
      "swala_sim run: --trace-file/--trace-breakdown are single-run \
       reports; not available with --seeds > 1";
    exit 2
  end;
  if seeds > 1 && (telemetry_csv <> None || incidents_out <> None) then begin
    prerr_endline
      "swala_sim run: --telemetry-csv/--incidents-out are single-run \
       reports; not available with --seeds > 1";
    exit 2
  end;
  if telemetry_interval = None && (telemetry_csv <> None || incidents_out <> None)
  then begin
    prerr_endline
      "swala_sim run: --telemetry-csv/--incidents-out require \
       --telemetry-interval";
    exit 2
  end;
  let rules =
    match rules_file with
    | None -> Swala.Rules.empty
    | Some path -> (
        match Swala.Rules.load path with
        | Ok r -> r
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 2)
  in
  let scenario, churn =
    try
      resolve_scenario ~preset:scenario_name ~duration:scenario_duration
        ~flash:flash_crowd ~diurnal ~geo:geo_tiers ~churn_rate
        ~churn_downtime ~churn_fixed
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  let fault =
    if
      drop_rate = 0. && delay_rate = 0. && crash_mtbf = None
      && partitions = [] && churn = None
    then None
    else
      Some
        (Sim.Fault.make ~drop:drop_rate ~delay:delay_rate ~delay_mean
           ?node:
             (Option.map
                (fun mtbf -> { Sim.Fault.mtbf; mttr = crash_mttr })
                crash_mtbf)
           ~partitions ?churn ~horizon:fault_horizon ())
  in
  let cfg_of seed =
    Swala.Config.make ~n_nodes:nodes ~cache_mode:mode ~policy
      ~cache_capacity:capacity ~rules ~fault ~fetch_timeout ~fetch_retries
      ~fetch_backoff ~anti_entropy_period ~batch_max
      ~batch_flush_interval ~dir_hints ~dir_mode ~shard_vnodes
      ~shard_lookup_cache ~shard_pos_ttl ~shard_neg_ttl
      ~hotspot_threshold ~hotspot_window ~hotspot_replicas ~freshness
      ?default_ttl:(Option.map Option.some default_ttl)
      ~refresh_budget ~refresh_interval ~scenario
      ~trace:(trace_file <> None || trace_breakdown)
      ~telemetry_interval ~slo_target ~slo_objective ~seed ()
  in
  (* Validation otherwise happens inside the run; surface bad flag
     combinations (e.g. faults without --fetch-timeout) as a clean
     error instead of a backtrace. *)
  (try Swala.Config.validate (cfg_of seed)
   with Invalid_argument msg ->
     prerr_endline msg;
     exit 2);
  if seeds > 1 then
    run_multi ~seeds ~jobs ~seed ~workload ~requests ~nodes ~mode ~policy
      ~capacity ~streams ~router ~metrics_out ~cfg_of
  else
  match trace_of_workload ~workload ~seed ~requests with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok trace ->
      let result =
        Swala.Cluster_runner.run (cfg_of seed) ~trace ~n_streams:streams
          ~router ()
      in
      let summary = Workload.Analyzer.summarize trace in
      Printf.printf
        "workload=%s requests=%d (%.1f%% CGI) nodes=%d mode=%s policy=%s \
         capacity=%d streams=%d seed=%d\n"
        workload summary.Workload.Analyzer.n_total
        (100. *. summary.Workload.Analyzer.cgi_fraction)
        nodes
        (Swala.Config.cache_mode_to_string mode)
        (Cache.Policy.to_string policy)
        capacity streams seed;
      (match fault with
      | None -> ()
      | Some _ ->
          Printf.printf
            "fault profile             drop=%.3f delay=%.3f/%.3fs mtbf=%s \
             mttr=%.1fs horizon=%.0fs (messages lost: %d)\n"
            drop_rate delay_rate delay_mean
            (match crash_mtbf with
            | None -> "-"
            | Some m -> Printf.sprintf "%.1fs" m)
            crash_mttr fault_horizon result.Swala.Cluster_runner.net_lost;
          List.iter
            (fun (p : Sim.Fault.partition) ->
              Printf.printf "  partition               %s\n" p.Sim.Fault.pname)
            partitions);
      (match churn with
      | None -> ()
      | Some (c : Sim.Fault.churn) ->
          Printf.printf
            "rolling churn             %.3g leaves/s, downtime %.1fs (%s)\n"
            c.Sim.Fault.churn_rate c.Sim.Fault.churn_downtime
            (if c.Sim.Fault.churn_poisson then "poisson" else "fixed-period"));
      (match scenario with
      | None -> ()
      | Some sc ->
          Printf.printf "scenario phases           %s\n"
            (String.concat ", "
               (List.map
                  (fun (name, a, b) -> Printf.sprintf "%s[%g,%g)" name a b)
                  (Workload.Scenario.phases sc))));
      Printf.printf "simulated makespan        %.2f s\n"
        result.Swala.Cluster_runner.duration;
      Printf.printf "mean response time        %.4f s\n"
        (Swala.Cluster_runner.mean_response result);
      (let r = result.Swala.Cluster_runner.response in
       let fmt = function
         | None -> "-"
         | Some v -> Printf.sprintf "%.4f" v
       in
       Printf.printf "median / p95 / max        %s / %s / %s s\n"
         (fmt (Metrics.Sample.median_opt r))
         (fmt (Metrics.Sample.quantile_opt r 0.95))
         (fmt (Metrics.Sample.max_opt r)));
      Printf.printf "cache hits (local+remote) %d (hit ratio %.1f%% of CGI)\n"
        result.Swala.Cluster_runner.hits
        (100. *. result.Swala.Cluster_runner.hit_ratio);
      (* Freshness summary only when the plane is in play, keeping default
         runs' stdout identical to older builds. *)
      (if result.Swala.Cluster_runner.freshness_active then
         let st = result.Swala.Cluster_runner.staleness in
         let fmt = function
           | None -> "-"
           | Some v -> Printf.sprintf "%.3f" v
         in
         Printf.printf
           "freshness                 %s (hit age mean %.3f / p99 %s s over \
            %d hits)\n"
           result.Swala.Cluster_runner.freshness_mode
           (Metrics.Histogram.mean st)
           (fmt (Metrics.Histogram.quantile_opt st 0.99))
           (Metrics.Histogram.count st));
      Printf.printf "per-node CPU utilisation  %s\n"
        (String.concat " "
           (Array.to_list
              (Array.map
                 (fun u -> Printf.sprintf "%.0f%%" (100. *. u))
                 result.Swala.Cluster_runner.utilisation)));
      print_newline ();
      print_string "counters:\n";
      let c = result.Swala.Cluster_runner.counters in
      List.iter
        (fun name -> Printf.printf "  %-24s %d\n" name (Metrics.Counter.get c name))
        (Metrics.Counter.names c);
      (* Flight-recorder report: only when telemetry was on, keeping
         telemetry-off stdout identical to older builds. *)
      (match result.Swala.Cluster_runner.timelines with
      | None -> ()
      | Some reg ->
          print_newline ();
          Metrics.Table.print (Swala.Telemetry_report.timelines_table reg));
      (match result.Swala.Cluster_runner.health with
      | None -> ()
      | Some h ->
          Metrics.Table.print
            (Swala.Telemetry_report.incidents_table (Metrics.Health.incidents h)));
      (if trace_breakdown then
         match result.Swala.Cluster_runner.tracer with
         | None -> ()
         | Some tr ->
             print_newline ();
             Metrics.Table.print (Swala.Trace_report.breakdown_table tr ~root:"request");
             Metrics.Table.print
               (Swala.Trace_report.histogram_table
                  result.Swala.Cluster_runner.wait_histograms));
      (match (trace_file, result.Swala.Cluster_runner.tracer) with
      | Some path, Some tr ->
          (* With telemetry on, the sampled timelines ride along as
             Perfetto counter tracks: per-node probes on their node's
             track, cluster-wide probes on a dedicated track. *)
          let counters =
            match result.Swala.Cluster_runner.timelines with
            | None -> []
            | Some reg ->
                Metrics.Trace.set_track_name tr (nodes + 1) "cluster";
                List.map
                  (fun (s : Metrics.Registry.series) ->
                    let pid =
                      match probe_node_id s.Metrics.Registry.name with
                      | Some i when i >= 0 && i < nodes -> i
                      | _ -> nodes + 1
                    in
                    (pid, s.Metrics.Registry.name, s.Metrics.Registry.points))
                  (Metrics.Registry.series reg)
          in
          let oc = open_out path in
          output_string oc (Metrics.Trace.to_chrome_json ~counters tr);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %d spans to %s (Perfetto / chrome://tracing)\n"
            (Metrics.Trace.n_spans tr) path
      | _ -> ());
      (match metrics_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (Swala.Cluster_runner.result_to_json result);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote metrics JSON to %s\n" path);
      (match (telemetry_csv, result.Swala.Cluster_runner.timelines) with
      | Some prefix, Some reg ->
          let write path keep =
            let oc = open_out path in
            output_string oc (Metrics.Registry.to_csv ~keep reg);
            close_out oc
          in
          write
            (prefix ^ ".cluster.csv")
            (fun name -> probe_node_id name = None);
          for i = 0 to nodes - 1 do
            write
              (Printf.sprintf "%s.node%d.csv" prefix i)
              (fun name -> probe_node_id name = Some i)
          done;
          Printf.printf "wrote telemetry CSVs to %s.{cluster,node*}.csv\n"
            prefix
      | _ -> ());
      match (incidents_out, result.Swala.Cluster_runner.health) with
      | Some path, Some h ->
          let oc = open_out path in
          let ppf = Format.formatter_of_out_channel oc in
          List.iter
            (fun i -> Format.fprintf ppf "%a@." Metrics.Health.pp_incident i)
            (Metrics.Health.incidents h);
          Format.pp_print_flush ppf ();
          close_out oc;
          Printf.printf "wrote %d incident(s) to %s\n"
            (Metrics.Health.n_incidents h)
            path
      | _ -> ()

let run_cmd =
  let doc = "Run a cluster simulation and report response times and counters." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run_cmd_impl $ seed_t $ nodes_t $ mode_t $ policy_t $ capacity_t
      $ streams_t $ requests_t $ workload_t $ router_t $ rules_t $ drop_rate_t
      $ delay_rate_t $ delay_mean_t $ crash_mtbf_t $ crash_mttr_t
      $ fault_horizon_t $ partitions_t $ anti_entropy_t $ fetch_timeout_t
      $ fetch_retries_t $ fetch_backoff_t $ batch_flush_t $ batch_max_t
      $ dir_hints_t $ dir_mode_t $ shard_vnodes_t $ shard_lookup_cache_t
      $ shard_pos_ttl_t $ shard_neg_ttl_t $ hotspot_threshold_t
      $ hotspot_window_t $ hotspot_replicas_t $ freshness_t $ default_ttl_t
      $ refresh_budget_t $ refresh_interval_t $ scenario_t
      $ scenario_duration_t $ flash_crowd_t $ diurnal_t $ geo_tiers_t
      $ churn_rate_t $ churn_downtime_t $ churn_fixed_t $ trace_file_t
      $ trace_breakdown_t $ metrics_out_t $ telemetry_interval_t
      $ telemetry_csv_t $ incidents_out_t $ slo_target_t $ slo_objective_t
      $ seeds_t $ jobs_t)

(* ------------------------------------------------------------------ *)
(* gen *)

let output_t =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let gen_cmd_impl seed requests workload output =
  match trace_of_workload ~workload ~seed ~requests with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok trace -> (
      match output with
      | None -> print_string (Workload.Logfmt.to_string trace)
      | Some path ->
          let oc = open_out path in
          Workload.Logfmt.write oc trace;
          close_out oc;
          Printf.printf "wrote %d requests to %s\n" (List.length trace) path)

let gen_cmd =
  let doc = "Generate a workload trace in logfmt (see bin/loganalyze)." in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(const gen_cmd_impl $ seed_t $ requests_t $ workload_t $ output_t)

(* ------------------------------------------------------------------ *)
(* report *)

let report_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"METRICS_JSON"
        ~doc:"A metrics JSON file written by $(b,run --metrics-out).")

let report_cmd_impl file =
  let payload =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match Metrics.Json.of_string payload with
  | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 2
  | Ok json -> (
      match Swala.Telemetry_report.render_json_report json with
      | Some text -> print_string text
      | None ->
          Printf.eprintf
            "%s: no timelines/incidents sections (was the run made with \
             --telemetry-interval?)\n"
            file;
          exit 1)

let report_cmd =
  let doc =
    "Render a metrics JSON file's flight-recorder sections (probe \
     timelines with sparklines, health incidents) as plain-text tables."
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report_cmd_impl $ report_file_t)

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let doc = "List the paper-experiment targets (run them via bench/main.exe)." in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          print_endline
            "Paper experiments (run with `dune exec bench/main.exe -- \
             <target>`):";
          List.iter print_endline
            [
              "  table1                potential saving from CGI caching";
              "  table2                file-fetch response times by server";
              "  figure3               null-CGI response times";
              "  figure4               multi-node scaling, cache on/off";
              "  table3                insert+broadcast overhead";
              "  table4                directory maintenance overhead";
              "  table5                hit ratios, cache size 2000";
              "  table6                hit ratios, cache size 20";
              "  ablation-policy       replacement policies under overflow";
              "  ablation-locking      directory locking granularity";
              "  ablation-consistency  anomalies vs update delay";
              "  ablation-protocol     weak vs strong consistency cost";
              "  ablation-routing      routing policy x cache mode";
              "  ablation-threshold    caching threshold x capacity";
              "  ablation-loss         message loss + timeout recovery";
              "  ablation-faults       drop-rate x crash-frequency degradation";
              "  ablation-partition    partition duration x anti-entropy period";
              "  ablation-batching     directory-update batching: flush x nodes";
              "  ablation-dirmode      metadata plane: replicated vs batched vs \
               sharded (+hotspot)";
              "  ablation-scenario     flash crowd + rolling churn: replicated \
               vs sharded, per phase";
              "  ablation-freshness    fixed vs adaptive TTL (+refresh) under \
               a flash crowd";
              "  breakdown             traced replay: latency breakdown + \
               contention histograms";
              "  micro                 Bechamel micro-benchmarks + wall-clock \
               e2e (BENCH_perf.json)";
            ])
      $ const ())

let () =
  let doc = "Swala cooperative-caching web-server simulator (HPDC 1998)." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "swala_sim" ~doc)
          [ run_cmd; gen_cmd; report_cmd; list_cmd ]))
