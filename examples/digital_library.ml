(* The paper's motivating scenario: a digital-library web site whose CGI
   queries dominate service time (Alexandria Digital Library, §3).

   Replays an ADL-like synthetic trace against a 4-node cluster in the
   three cache modes and reports what cooperative caching buys.

   Run with:  dune exec examples/digital_library.exe *)

let () =
  let seed = 2024 in
  let trace = Workload.Synthetic.adl_scaled ~seed ~n:4_000 in
  let summary = Workload.Analyzer.summarize trace in
  Printf.printf
    "Digital-library workload: %d requests, %.1f%% CGI, mean CGI %.2f s, \
     CGI is %.0f%% of service time.\n\n"
    summary.Workload.Analyzer.n_total
    (100. *. summary.Workload.Analyzer.cgi_fraction)
    summary.Workload.Analyzer.mean_cgi_time
    (100. *. summary.Workload.Analyzer.cgi_time_fraction);

  let run mode =
    let cfg = Swala.Config.make ~n_nodes:4 ~cache_mode:mode ~seed () in
    Swala.Cluster_runner.run cfg ~trace ~n_streams:16 ()
  in
  let t =
    Metrics.Table.create ~title:"4-node cluster, 16 client threads"
      ~columns:
        [
          ("Mode", Metrics.Table.Left);
          ("Mean response (s)", Metrics.Table.Right);
          ("p95 (s)", Metrics.Table.Right);
          ("Cache hits", Metrics.Table.Right);
          ("CGI execs", Metrics.Table.Right);
        ]
  in
  let baseline = ref 0. in
  List.iter
    (fun mode ->
      let r = run mode in
      let mean = Swala.Cluster_runner.mean_response r in
      if mode = Swala.Config.Disabled then baseline := mean;
      Metrics.Table.add_row t
        [
          Swala.Config.cache_mode_to_string mode;
          Metrics.Table.fmt_f mean;
          Metrics.Table.fmt_f
            (Metrics.Sample.quantile r.Swala.Cluster_runner.response 0.95);
          Metrics.Table.fmt_i r.Swala.Cluster_runner.hits;
          Metrics.Table.fmt_i
            (Metrics.Counter.get r.Swala.Cluster_runner.counters
               Swala.Server.K.cgi_execs);
        ])
    [ Swala.Config.Disabled; Swala.Config.Standalone; Swala.Config.Cooperative ];
  Metrics.Table.print t;

  let coop = run Swala.Config.Cooperative in
  Printf.printf
    "Cooperative caching cuts mean response time by %.0f%% versus no \
     caching on this trace.\n"
    (100.
    *. ((!baseline -. Swala.Cluster_runner.mean_response coop) /. !baseline))
