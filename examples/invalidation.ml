(* Content consistency beyond TTLs (paper §4.2 future work).

   Three ways to keep cached CGI results fresh, demonstrated end to end:
   1. TTL expiry        — the paper's shipping mechanism;
   2. application push  — the application invalidates a specific result
                          when its data changes (IBM's model);
   3. source monitoring — scripts declare their input files; changing a
                          file invalidates every dependent result
                          (Vahdat & Anderson's model).

   Run with:  dune exec examples/invalidation.exe *)

let () =
  let registry = Cgi.Registry.create () in
  (* A catalogue query that reads two data files, refreshed hourly by TTL. *)
  Cgi.Registry.register registry
    (Cgi.Script.make ~name:"/cgi-bin/catalogue" ~ttl:(Some 3600.)
       ~sources:[ "/data/catalogue.db"; "/data/prices.tsv" ]
       (Cgi.Cost.make ~output_bytes:8_192 (Cgi.Cost.Fixed 2.0)));
  (* A stock-level query invalidated explicitly by the application. *)
  Cgi.Registry.register registry
    (Cgi.Script.make ~name:"/cgi-bin/stock"
       (Cgi.Cost.make ~output_bytes:1_024 (Cgi.Cost.Fixed 1.0)));

  let engine = Sim.Engine.create () in
  let cfg = Swala.Config.make ~n_nodes:2 () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints:1
  in
  let monitor = Swala.Filemon.create registry in
  Swala.Server.start cluster;

  let client = 2 in
  Sim.Engine.spawn engine (fun () ->
      let fetch node target =
        let t0 = Sim.Engine.now () in
        let (_ : Http.Response.t) =
          Swala.Server.submit cluster ~client ~node (Http.Request.get target)
        in
        Printf.printf "  [node %d] GET %-32s %.3f s\n" node target
          (Sim.Engine.now () -. t0)
      in
      print_endline "Warm both caches:";
      fetch 0 "/cgi-bin/catalogue?section=maps";
      fetch 0 "/cgi-bin/stock?item=42";
      Sim.Engine.delay 0.1;
      print_endline "Repeats are cache hits (node 1 fetches remotely):";
      fetch 0 "/cgi-bin/catalogue?section=maps";
      fetch 1 "/cgi-bin/catalogue?section=maps";

      print_endline "\nApplication updates item 42 and pushes an invalidation:";
      let dropped =
        Swala.Server.invalidate cluster ~key:"GET /cgi-bin/stock?item=42"
      in
      Printf.printf "  invalidate -> %d cached cop%s dropped\n" dropped
        (if dropped = 1 then "y" else "ies");
      fetch 0 "/cgi-bin/stock?item=42";

      print_endline "\n/data/catalogue.db changes; the monitor reacts:";
      Printf.printf "  %s is read by: %s\n" "/data/catalogue.db"
        (String.concat ", " (Swala.Filemon.scripts_for monitor "/data/catalogue.db"));
      let dropped = Swala.Filemon.on_change monitor cluster "/data/catalogue.db" in
      Printf.printf "  on_change -> %d cached result%s dropped cluster-wide\n"
        dropped
        (if dropped = 1 then "" else "s");
      print_endline "Next catalogue query re-executes, then caches again:";
      fetch 0 "/cgi-bin/catalogue?section=maps";
      fetch 0 "/cgi-bin/catalogue?section=maps";
      Swala.Server.stop cluster);

  Sim.Engine.run engine;
  let c = Swala.Server.merged_counters cluster in
  Printf.printf
    "\nTotals: %d executions, %d local hits, %d remote hits, %d invalidations.\n"
    (Metrics.Counter.get c Swala.Server.K.cgi_execs)
    (Metrics.Counter.get c Swala.Server.K.hit_local)
    (Metrics.Counter.get c Swala.Server.K.hit_remote)
    (Metrics.Counter.get c Swala.Server.K.invalidations)
