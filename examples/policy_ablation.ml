(* Replacement-policy comparison under cache overflow.

   The paper's §3 notes the threshold/cache-size trade-off and defers its five
   replacement methods to a tech report; this example runs the whole policy
   family on the Table-6 workload (per-node cache far smaller than the
   working set) and shows which policies keep the valuable entries.

   Run with:  dune exec examples/policy_ablation.exe *)

let () =
  let seed = 123 in
  let trace =
    Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08 ()
  in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  Printf.printf
    "Workload: 1600 CGI requests over 1122 distinct queries; at most %d \
     hits are possible.\nPer-node cache: 20 entries on a 4-node cooperative \
     cluster (aggregate 80 << 1122).\n\n"
    upper;
  let t =
    Metrics.Table.create ~title:"Replacement policy vs achieved hits"
      ~columns:
        [
          ("Policy", Metrics.Table.Left);
          ("Hits", Metrics.Table.Right);
          ("% of possible", Metrics.Table.Right);
          ("Mean response (s)", Metrics.Table.Right);
        ]
  in
  let best = ref (Cache.Policy.Lru, 0) in
  List.iter
    (fun policy ->
      let cfg =
        Swala.Config.make ~n_nodes:4 ~cache_capacity:20 ~policy ~seed ()
      in
      let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:16 () in
      if r.Swala.Cluster_runner.hits > snd !best then
        best := (policy, r.Swala.Cluster_runner.hits);
      Metrics.Table.add_row t
        [
          Cache.Policy.to_string policy;
          Metrics.Table.fmt_i r.Swala.Cluster_runner.hits;
          Metrics.Table.fmt_pct
            (float_of_int r.Swala.Cluster_runner.hits /. float_of_int upper);
          Metrics.Table.fmt_f (Swala.Cluster_runner.mean_response r);
        ])
    Cache.Policy.all;
  Metrics.Table.print t;
  Printf.printf
    "Best policy on this workload: %s. Frequency+cost aware policies keep \
     hot, expensive results;\nsize-based eviction throws them away.\n"
    (Cache.Policy.to_string (fst !best))
