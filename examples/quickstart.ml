(* Quickstart: a single Swala node serving files and a CGI, driven by hand.

   Shows the three layers of the public API:
   - [Cgi.Registry] declares what the server can serve,
   - [Swala.Server] builds and runs a (simulated) cluster,
   - requests are plain [Http.Request] values; all activity happens inside
     the deterministic [Sim.Engine].

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Declare content: one static page and one slow, cacheable CGI. *)
  let registry = Cgi.Registry.create () in
  Cgi.Registry.register_file registry ~path:"/index.html" ~bytes:2_048;
  Cgi.Registry.register registry
    (Cgi.Script.make ~name:"/cgi-bin/search"
       (Cgi.Cost.make ~output_bytes:4_096 (Cgi.Cost.Fixed 1.5)));

  (* 2. Build a one-node cooperative server on a fresh engine. *)
  let engine = Sim.Engine.create () in
  let cfg = Swala.Config.make ~n_nodes:1 () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints:1
  in
  Swala.Server.start cluster;

  (* 3. A client process: fetch the page, then run the same query twice.
     The second query is served from the result cache. *)
  let client = 1 (* endpoint 0 is the server node *) in
  Sim.Engine.spawn engine (fun () ->
      let fetch target =
        let t0 = Sim.Engine.now () in
        let resp =
          Swala.Server.submit cluster ~client ~node:0 (Http.Request.get target)
        in
        Printf.printf "%-34s -> %3d  (%.3f s)\n" target
          (Http.Status.code resp.Http.Response.status)
          (Sim.Engine.now () -. t0)
      in
      fetch "/index.html";
      fetch "/cgi-bin/search?q=digital+maps";
      fetch "/cgi-bin/search?q=digital+maps";
      fetch "/missing.html";
      Swala.Server.stop cluster);

  (* 4. Run the simulation to completion and inspect the counters. *)
  Sim.Engine.run engine;
  let c = Swala.Server.merged_counters cluster in
  Printf.printf
    "\nCGI executions: %d, cache hits: %d, files served: %d, 404s: %d\n"
    (Metrics.Counter.get c Swala.Server.K.cgi_execs)
    (Metrics.Counter.get c Swala.Server.K.hit_local)
    (Metrics.Counter.get c Swala.Server.K.file_fetches)
    (Metrics.Counter.get c Swala.Server.K.not_found)
