(* Cache warm-up transient.

   A cooperative cache starts cold: early requests all execute their CGIs,
   later ones increasingly hit. This example buckets client-observed
   response times into windows ([Metrics.Timeseries]) and prints the curve
   as a crude terminal plot — cold vs pre-warmed cluster side by side.

   Run with:  dune exec examples/warmup_curve.exe *)

let () =
  let seed = 31 in
  let trace =
    Workload.Synthetic.coop ~seed ~n:2_400 ~n_unique:400 ~n_hot:60
      ~locality:1.0 ()
  in
  let cfg = Swala.Config.make ~n_nodes:4 ~seed () in
  let run ~warm =
    let ts = Metrics.Timeseries.create ~window:5.0 in
    let warmup cluster =
      if warm then begin
        (* Preload every distinct request, spread over the nodes. *)
        let seen = Hashtbl.create 256 in
        List.iter
          (fun item ->
            let key = Workload.Trace.key item in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              Swala.Server.preload cluster
                ~node:(Hashtbl.length seen mod 4)
                (Workload.Trace.to_request item)
                ~exec_time:1.0
            end)
          trace;
        Sim.Engine.delay 0.1
      end
    in
    let result =
      Swala.Cluster_runner.run cfg ~trace ~n_streams:16 ~warmup
        ~observe:(fun ~time dt -> Metrics.Timeseries.add ts ~time dt)
        ()
    in
    (ts, result)
  in
  let cold_ts, cold = run ~warm:false in
  let warm_ts, warm = run ~warm:true in
  Printf.printf
    "Mean response: cold start %.2f s, pre-warmed %.2f s (workload: 2400 \
     requests, 400 unique).\n\n"
    (Swala.Cluster_runner.mean_response cold)
    (Swala.Cluster_runner.mean_response warm);
  let bar v vmax =
    let cells = int_of_float (Float.round (40. *. v /. vmax)) in
    String.make (Stdlib.max 0 (Stdlib.min 40 cells)) '#'
  in
  let cold_means = Metrics.Timeseries.bucket_means cold_ts in
  let warm_means = Metrics.Timeseries.bucket_means warm_ts in
  let vmax =
    Array.fold_left
      (fun acc v -> if Float.is_nan v then acc else Float.max acc v)
      0.1 cold_means
  in
  Printf.printf "%-10s %-6s %-42s %-6s\n" "window" "cold" "" "warm";
  let n = Stdlib.max (Array.length cold_means) (Array.length warm_means) in
  for i = 0 to n - 1 do
    let get a = if i < Array.length a && not (Float.is_nan a.(i)) then a.(i) else 0. in
    let c = get cold_means and w = get warm_means in
    Printf.printf "%3.0f-%3.0fs  %6.2f %-42s %6.2f %s\n"
      (float_of_int i *. 5.)
      (float_of_int (i + 1) *. 5.)
      c
      (bar c vmax) w (bar w vmax)
  done;
  print_newline ();
  print_endline
    "The cold cluster's first windows run every CGI; as the hot set gets \
     cached the curve falls\nto the pre-warmed level - the transient the \
     paper's steady-state tables do not show."
