(* A WebStone-style shoot-out between the three server models (paper §5.1):
   Swala (threaded, mmap I/O), NCSA-HTTPd-like (process per request) and
   Netscape-Enterprise-like (threaded, cheapest accept path).

   Run with:  dune exec examples/webstone_shootout.exe *)

let () =
  let seed = 7 in
  let client_counts = [ 8; 32; 96 ] in
  let t =
    Metrics.Table.create
      ~title:"WebStone file mix: mean response time (s) by server model"
      ~columns:
        [
          ("# clients", Metrics.Table.Right);
          ("HTTPd", Metrics.Table.Right);
          ("Enterprise", Metrics.Table.Right);
          ("Swala", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun clients ->
      let run model =
        let trace = Workload.Webstone.file_trace ~seed ~n:(clients * 30) in
        let cfg =
          Swala.Config.make ~cache_mode:Swala.Config.Disabled ~model
            ~threads_per_node:(Stdlib.max 16 clients) ~seed ()
        in
        Swala.Cluster_runner.mean_response
          (Swala.Cluster_runner.run cfg ~trace ~n_streams:clients ())
      in
      Metrics.Table.add_row t
        [
          Metrics.Table.fmt_i clients;
          Metrics.Table.fmt_f (run Swala.Config.httpd_model);
          Metrics.Table.fmt_f (run Swala.Config.enterprise_model);
          Metrics.Table.fmt_f (run Swala.Config.swala_model);
        ])
    client_counts;
  Metrics.Table.print t;
  print_endline
    "The process-per-request model (HTTPd) trails the threaded servers; \
     Enterprise wins at low\nclient counts and loses at high ones - the \
     shape of the paper's Table 2.";
  print_newline ();

  (* The null-CGI comparison (paper Figure 3): invocation overhead only. *)
  let f = Swala.Experiments.figure3 ~seed ~requests_per_client:20 () in
  let t2 =
    Metrics.Table.create ~title:"Null CGI, 24 concurrent clients (s)"
      ~columns:[ ("Configuration", Metrics.Table.Left); ("Mean", Metrics.Table.Right) ]
  in
  List.iter
    (fun (name, v) -> Metrics.Table.add_row t2 [ name; Metrics.Table.fmt_f v ])
    [
      ("Enterprise", f.Swala.Experiments.enterprise_f3);
      ("HTTPd", f.Swala.Experiments.httpd_f3);
      ("Swala (no cache)", f.Swala.Experiments.swala_no_cache);
      ("Swala (remote cache hit)", f.Swala.Experiments.swala_remote);
      ("Swala (local cache hit)", f.Swala.Experiments.swala_local);
    ];
  Metrics.Table.print t2
