type granularity = Global | Per_table | Per_entry

type table = {
  lock : Sim.Rwlock.t;  (* the table's lock under Per_table *)
  entries : (string, Meta.t) Hashtbl.t;
  mutable last_touch : float;
  mutable digest_xor : int;
      (* xor of meta_hash over [entries], maintained incrementally so
         [digest] is O(1) instead of re-hashing every entry. *)
}

type t = {
  gran : granularity;
  lock_overhead : float;
  scan_cost : float;
  charge_fn : float -> unit;
  global_lock : Sim.Rwlock.t;  (* used under Global *)
  tables : table array;
  (* Per_entry is modelled by charging one acquisition per entry scanned;
     the per-entry locks themselves would never contend in our serial probe,
     so only their cost is simulated. We still take the table lock to keep
     exclusion correct. *)
  mutable extra_rd : int;
  mutable extra_wr : int;
  orders : int array array;
      (* orders.(self) is self followed by the other node ids in index
         order — the probe chain, precomputed once at create. *)
  hints : (string, int) Hashtbl.t option;
      (* key -> bitmask of tables hinted to hold the key. Advisory only:
         a set bit may be stale (expired/deleted entry), a clear bit may
         miss a live one; lookups always fall back to the full scan. *)
  mutable hint_saved : int;  (* table probes skipped thanks to hints *)
  mutable hint_false : int;  (* lookups where every hinted probe missed *)
}

let create ?(granularity = Per_table) ?(lock_overhead = 2e-6) ?(scan_cost = 0.)
    ?(charge = Sim.Engine.delay) ?(hints = false) ?lock_observe ~nodes () =
  if nodes < 1 then invalid_arg "Directory.create: nodes must be >= 1";
  if lock_overhead < 0. then invalid_arg "Directory.create: negative overhead";
  if scan_cost < 0. then invalid_arg "Directory.create: negative scan cost";
  if hints && nodes > Sys.int_size - 2 then
    invalid_arg "Directory.create: hint bitmask cannot cover that many nodes";
  {
    gran = granularity;
    lock_overhead;
    scan_cost;
    charge_fn = charge;
    global_lock = Sim.Rwlock.create ?observe:lock_observe ();
    tables =
      Array.init nodes (fun _ ->
          {
            lock = Sim.Rwlock.create ?observe:lock_observe ();
            entries = Hashtbl.create 64;
            last_touch = 0.;
            digest_xor = 0;
          });
    extra_rd = 0;
    extra_wr = 0;
    orders =
      Array.init nodes (fun self ->
          Array.init nodes (fun i ->
              if i = 0 then self
              else if i <= self then i - 1
              else i));
    hints = (if hints then Some (Hashtbl.create 256) else None);
    hint_saved = 0;
    hint_false = 0;
  }

let check_node t node =
  if node < 0 || node >= Array.length t.tables then
    invalid_arg "Directory: node out of range"

let charge t n =
  if n > 0 && t.lock_overhead > 0. then
    t.charge_fn (float_of_int n *. t.lock_overhead)

(* FNV-1a over a canonical rendering of one meta. Stable across runs,
   unlike the polymorphic Hashtbl.hash contract. *)
let meta_hash (m : Meta.t) =
  let s =
    Printf.sprintf "%s|%d|%d|%.17g|%.17g|%s" m.Meta.key m.Meta.owner
      m.Meta.size m.Meta.exec_time m.Meta.created
      (match m.Meta.expires with
      | None -> "-"
      | Some e -> Printf.sprintf "%.17g" e)
  in
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFFFFFFFFF)
    s;
  !h

let hint_add t ~node key =
  match t.hints with
  | None -> ()
  | Some h ->
      let mask = Option.value (Hashtbl.find_opt h key) ~default:0 in
      Hashtbl.replace h key (mask lor (1 lsl node))

let hint_remove t ~node key =
  match t.hints with
  | None -> ()
  | Some h -> (
      match Hashtbl.find_opt h key with
      | None -> ()
      | Some mask ->
          let mask = mask land lnot (1 lsl node) in
          if mask = 0 then Hashtbl.remove h key
          else Hashtbl.replace h key mask)

(* Drop [node]'s bit from every hint; used when a whole table is wiped. *)
let hint_clear_node t ~node tbl =
  match t.hints with
  | None -> ()
  | Some _ -> Hashtbl.iter (fun key _ -> hint_remove t ~node key) tbl.entries

(* Time spent examining the probed table, charged while the lock is held. *)
let scan_charge t tbl =
  if t.scan_cost > 0. then
    t.charge_fn
      (float_of_int (Stdlib.max 1 (Hashtbl.length tbl.entries)) *. t.scan_cost)

(* Run [f] on [tbl] with read (or write) protection per granularity. The
   lock-operation cost is charged while the lock is held (the probe scans
   the table under its lock), so a single global lock serialises all that
   scan time — the contention the paper's §4.2 argument predicts. *)
let with_table_rd t tbl f =
  match t.gran with
  | Global ->
      Sim.Rwlock.with_rd t.global_lock (fun () ->
          charge t 1;
          scan_charge t tbl;
          f ())
  | Per_table ->
      Sim.Rwlock.with_rd tbl.lock (fun () ->
          charge t 1;
          scan_charge t tbl;
          f ())
  | Per_entry ->
      (* One acquisition per entry scanned in this probe. *)
      let scanned = Stdlib.max 1 (Hashtbl.length tbl.entries) in
      t.extra_rd <- t.extra_rd + scanned - 1;
      Sim.Rwlock.with_rd tbl.lock (fun () ->
          charge t scanned;
          scan_charge t tbl;
          f ())

let with_table_wr t tbl f =
  let lock =
    match t.gran with Global -> t.global_lock | Per_table | Per_entry -> tbl.lock
  in
  Sim.Rwlock.with_wr lock (fun () ->
      charge t 1;
      scan_charge t tbl;
      f ())

let probe t tbl ~now key =
  with_table_rd t tbl (fun () ->
      match Hashtbl.find_opt tbl.entries key with
      | Some meta when not (Meta.expired meta ~now) -> Some meta
      | Some _ | None -> None)

(* Scan the probe chain [order] from position [from], skipping any table
   whose bit is set in [skip] (already probed). Returns the hit's table
   id alongside the meta so the hint repair below can re-hint it. *)
let scan_order t order ~now key ~from ~skip =
  let n = Array.length order in
  let rec go i =
    if i >= n then None
    else
      let node = order.(i) in
      if skip land (1 lsl node) <> 0 then go (i + 1)
      else
        match probe t t.tables.(node) ~now key with
        | Some meta -> Some (meta, node)
        | None -> go (i + 1)
  in
  go from

let lookup_from t ~self ~now key =
  check_node t self;
  let order = t.orders.(self) in
  match t.hints with
  | None -> Option.map fst (scan_order t order ~now key ~from:0 ~skip:0)
  | Some h -> (
      match Hashtbl.find_opt h key with
      | None | Some 0 ->
          (* No hint: the key should be nowhere, but hints are advisory,
             so fall back to the full ordered scan. *)
          Option.map fst (scan_order t order ~now key ~from:0 ~skip:0)
      | Some mask ->
          (* Probe only the hinted tables, in probe-chain order. On a hit
             we saved every un-hinted table that precedes it in the
             chain; if every hinted probe misses, the hint was false and
             the full scan (minus tables already probed) takes over. *)
          let n = Array.length order in
          let rec go i probed =
            if i >= n then begin
              t.hint_false <- t.hint_false + 1;
              (* Every hinted table was probed and missed, so the whole
                 mask is stale (expired entries, or an owner change after
                 a handoff). Drop it — otherwise every future lookup of
                 this key would pay the false-hint fallback again — and
                 re-hint wherever the fallback scan finds the key now. *)
              Hashtbl.remove h key;
              (match scan_order t order ~now key ~from:0 ~skip:mask with
              | Some (meta, node) ->
                  hint_add t ~node key;
                  Some meta
              | None -> None)
            end
            else
              let node = order.(i) in
              if mask land (1 lsl node) = 0 then go (i + 1) probed
              else
                match probe t t.tables.(node) ~now key with
                | Some meta ->
                    t.hint_saved <- t.hint_saved + (i + 1 - (probed + 1));
                    Some meta
                | None -> go (i + 1) (probed + 1)
          in
          go 0 0)

let lookup t ~now key = lookup_from t ~self:0 ~now key

(* The unlocked bodies below keep [digest_xor] and the hint index in step
   with [entries]; every mutation of a table goes through one of them. *)
let insert_unlocked t tbl ~node meta =
  (match Hashtbl.find_opt tbl.entries meta.Meta.key with
  | Some old -> tbl.digest_xor <- tbl.digest_xor lxor meta_hash old
  | None -> ());
  tbl.digest_xor <- tbl.digest_xor lxor meta_hash meta;
  Hashtbl.replace tbl.entries meta.Meta.key meta;
  hint_add t ~node meta.Meta.key

let delete_unlocked t tbl ~node key =
  match Hashtbl.find_opt tbl.entries key with
  | Some old ->
      tbl.digest_xor <- tbl.digest_xor lxor meta_hash old;
      Hashtbl.remove tbl.entries key;
      hint_remove t ~node key;
      true
  | None -> false

let wipe_unlocked t tbl ~node =
  let n = Hashtbl.length tbl.entries in
  hint_clear_node t ~node tbl;
  Hashtbl.reset tbl.entries;
  tbl.digest_xor <- 0;
  n

let insert t ~node meta =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () -> insert_unlocked t tbl ~node meta)

let delete t ~node key =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () -> delete_unlocked t tbl ~node key)

let purge_node t ~node =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () -> wipe_unlocked t tbl ~node)

let reset_node t ~node =
  check_node t node;
  wipe_unlocked t t.tables.(node) ~node

let touch t ~node key ~now =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () ->
      tbl.last_touch <- now;
      Hashtbl.mem tbl.entries key)

let entries t ~node =
  check_node t node;
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tables.(node).entries []

let find t ~node key =
  check_node t node;
  Hashtbl.find_opt t.tables.(node).entries key

let digest_slow t ~node =
  check_node t node;
  let tbl = t.tables.(node) in
  let hash = Hashtbl.fold (fun _ m acc -> acc lxor meta_hash m) tbl.entries 0 in
  (Hashtbl.length tbl.entries, hash)

(* Debug path: recompute the digest from scratch and compare against the
   incrementally maintained xor, catching any update path that forgot to
   fold its delta in. Opt-in because it defeats the O(1) purpose. *)
let verify_digests =
  match Sys.getenv_opt "SWALA_VERIFY_DIGESTS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let digest t ~node =
  check_node t node;
  let tbl = t.tables.(node) in
  if verify_digests then begin
    let slow = digest_slow t ~node in
    assert (slow = (Hashtbl.length tbl.entries, tbl.digest_xor))
  end;
  (Hashtbl.length tbl.entries, tbl.digest_xor)

let table_size t ~node =
  check_node t node;
  Hashtbl.length t.tables.(node).entries

let total_size t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl.entries) 0 t.tables

let nodes t = Array.length t.tables
let hints_enabled t = t.hints <> None
let hint_stats t = (t.hint_saved, t.hint_false)

let lock_acquisitions t =
  let rd = ref (Sim.Rwlock.rd_acquisitions t.global_lock + t.extra_rd) in
  let wr = ref (Sim.Rwlock.wr_acquisitions t.global_lock + t.extra_wr) in
  Array.iter
    (fun tbl ->
      rd := !rd + Sim.Rwlock.rd_acquisitions tbl.lock;
      wr := !wr + Sim.Rwlock.wr_acquisitions tbl.lock)
    t.tables;
  (!rd, !wr)
