type granularity = Global | Per_table | Per_entry

type table = {
  lock : Sim.Rwlock.t;  (* the table's lock under Per_table *)
  entries : (string, Meta.t) Hashtbl.t;
  mutable last_touch : float;
}

type t = {
  gran : granularity;
  lock_overhead : float;
  scan_cost : float;
  charge_fn : float -> unit;
  global_lock : Sim.Rwlock.t;  (* used under Global *)
  tables : table array;
  (* Per_entry is modelled by charging one acquisition per entry scanned;
     the per-entry locks themselves would never contend in our serial probe,
     so only their cost is simulated. We still take the table lock to keep
     exclusion correct. *)
  mutable extra_rd : int;
  mutable extra_wr : int;
}

let create ?(granularity = Per_table) ?(lock_overhead = 2e-6) ?(scan_cost = 0.)
    ?(charge = Sim.Engine.delay) ~nodes () =
  if nodes < 1 then invalid_arg "Directory.create: nodes must be >= 1";
  if lock_overhead < 0. then invalid_arg "Directory.create: negative overhead";
  if scan_cost < 0. then invalid_arg "Directory.create: negative scan cost";
  {
    gran = granularity;
    lock_overhead;
    scan_cost;
    charge_fn = charge;
    global_lock = Sim.Rwlock.create ();
    tables =
      Array.init nodes (fun _ ->
          {
            lock = Sim.Rwlock.create ();
            entries = Hashtbl.create 64;
            last_touch = 0.;
          });
    extra_rd = 0;
    extra_wr = 0;
  }

let check_node t node =
  if node < 0 || node >= Array.length t.tables then
    invalid_arg "Directory: node out of range"

let charge t n =
  if n > 0 && t.lock_overhead > 0. then
    t.charge_fn (float_of_int n *. t.lock_overhead)

(* Time spent examining the probed table, charged while the lock is held. *)
let scan_charge t tbl =
  if t.scan_cost > 0. then
    t.charge_fn
      (float_of_int (Stdlib.max 1 (Hashtbl.length tbl.entries)) *. t.scan_cost)

(* Run [f] on [tbl] with read (or write) protection per granularity. The
   lock-operation cost is charged while the lock is held (the probe scans
   the table under its lock), so a single global lock serialises all that
   scan time — the contention the paper's §4.2 argument predicts. *)
let with_table_rd t tbl f =
  match t.gran with
  | Global ->
      Sim.Rwlock.with_rd t.global_lock (fun () ->
          charge t 1;
          scan_charge t tbl;
          f ())
  | Per_table ->
      Sim.Rwlock.with_rd tbl.lock (fun () ->
          charge t 1;
          scan_charge t tbl;
          f ())
  | Per_entry ->
      (* One acquisition per entry scanned in this probe. *)
      let scanned = Stdlib.max 1 (Hashtbl.length tbl.entries) in
      t.extra_rd <- t.extra_rd + scanned - 1;
      Sim.Rwlock.with_rd tbl.lock (fun () ->
          charge t scanned;
          scan_charge t tbl;
          f ())

let with_table_wr t tbl f =
  let lock =
    match t.gran with Global -> t.global_lock | Per_table | Per_entry -> tbl.lock
  in
  Sim.Rwlock.with_wr lock (fun () ->
      charge t 1;
      scan_charge t tbl;
      f ())

let probe t tbl ~now key =
  with_table_rd t tbl (fun () ->
      match Hashtbl.find_opt tbl.entries key with
      | Some meta when not (Meta.expired meta ~now) -> Some meta
      | Some _ | None -> None)

let lookup_order n self =
  self :: List.filter (fun i -> i <> self) (List.init n (fun i -> i))

let lookup_from t ~self ~now key =
  check_node t self;
  let rec go = function
    | [] -> None
    | i :: rest -> (
        match probe t t.tables.(i) ~now key with
        | Some meta -> Some meta
        | None -> go rest)
  in
  go (lookup_order (Array.length t.tables) self)

let lookup t ~now key = lookup_from t ~self:0 ~now key

let insert t ~node meta =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () ->
      Hashtbl.replace tbl.entries meta.Meta.key meta)

let delete t ~node key =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () ->
      if Hashtbl.mem tbl.entries key then begin
        Hashtbl.remove tbl.entries key;
        true
      end
      else false)

let purge_node t ~node =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () ->
      let n = Hashtbl.length tbl.entries in
      Hashtbl.reset tbl.entries;
      n)

let reset_node t ~node =
  check_node t node;
  let tbl = t.tables.(node) in
  let n = Hashtbl.length tbl.entries in
  Hashtbl.reset tbl.entries;
  n

let touch t ~node key ~now =
  check_node t node;
  let tbl = t.tables.(node) in
  with_table_wr t tbl (fun () ->
      tbl.last_touch <- now;
      Hashtbl.mem tbl.entries key)

let entries t ~node =
  check_node t node;
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tables.(node).entries []

let find t ~node key =
  check_node t node;
  Hashtbl.find_opt t.tables.(node).entries key

(* FNV-1a over a canonical rendering of one meta. Stable across runs,
   unlike the polymorphic Hashtbl.hash contract. *)
let meta_hash (m : Meta.t) =
  let s =
    Printf.sprintf "%s|%d|%d|%.17g|%.17g|%s" m.Meta.key m.Meta.owner
      m.Meta.size m.Meta.exec_time m.Meta.created
      (match m.Meta.expires with
      | None -> "-"
      | Some e -> Printf.sprintf "%.17g" e)
  in
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFFFFFFFFF)
    s;
  !h

let digest t ~node =
  check_node t node;
  let tbl = t.tables.(node) in
  let hash = Hashtbl.fold (fun _ m acc -> acc lxor meta_hash m) tbl.entries 0 in
  (Hashtbl.length tbl.entries, hash)

let table_size t ~node =
  check_node t node;
  Hashtbl.length t.tables.(node).entries

let total_size t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl.entries) 0 t.tables

let nodes t = Array.length t.tables

let lock_acquisitions t =
  let rd = ref (Sim.Rwlock.rd_acquisitions t.global_lock + t.extra_rd) in
  let wr = ref (Sim.Rwlock.wr_acquisitions t.global_lock + t.extra_wr) in
  Array.iter
    (fun tbl ->
      rd := !rd + Sim.Rwlock.rd_acquisitions tbl.lock;
      wr := !wr + Sim.Rwlock.wr_acquisitions tbl.lock)
    t.tables;
  (!rd, !wr)
