(** Replicated global cache directory (paper §4.2).

    Every node holds one table per node in the group; table [j] describes
    what node [j] has cached. A lookup probes the tables one by one under
    read locks; insert/delete messages (local or broadcast from peers)
    update a single table under a write lock.

    The paper argues for table-granularity locking against two
    alternatives: one lock for the whole directory (too much contention)
    and one lock per entry (too many lock operations per lookup). All three
    are implemented behind {!granularity} so the trade-off can be measured
    (ablation A2): each lock acquisition charges [lock_overhead] seconds of
    simulated delay, and with [Per_entry] a table probe charges one
    acquisition per entry scanned, following the paper's argument that a
    lookup searches a portion of each table.

    Locking operations can suspend the calling process, so directory calls
    must happen inside a simulated process. *)

type granularity = Global | Per_table | Per_entry

type t

val create :
  ?granularity:granularity ->
  ?lock_overhead:float ->
  ?scan_cost:float ->
  ?charge:(float -> unit) ->
  ?hints:bool ->
  ?lock_observe:(kind:[ `Read | `Write ] -> wait:float -> depth:int -> unit) ->
  nodes:int ->
  unit ->
  t
(** [nodes] is the group size; tables are indexed [0 .. nodes-1].
    [lock_overhead] defaults to [2e-6] s per acquisition. [scan_cost]
    (default [0.]) is charged per entry of the probed table {e while the
    lock is held} — it models the paper's table scan, whose serialisation
    is exactly what distinguishes the three granularities under load.
    [charge] spends the accumulated seconds (default [Sim.Engine.delay]);
    the server passes the owning node's CPU so that lock and scan work
    contends with request processing.

    [hints] (default [false]) maintains a key→owner-set hint index so
    {!lookup_from} probes only tables hinted to hold the key. Hints may
    be stale but are never authoritative: a false hint (every hinted
    probe misses) falls back to the full ordered scan, exactly like the
    paper tolerates false hits/misses. The owner set is an [int] bitmask,
    so [hints] caps [nodes] at [Sys.int_size - 2].

    [lock_observe] is installed on the global lock and every table lock
    (see {!Sim.Rwlock.create}): one observation per acquisition, with the
    access kind and simulated wait. Contention profiling only — it does
    not affect timing. *)

(** [lookup t key] probes every table (self first is the caller's choice;
    this probes in index order) and returns the first live entry. Expired
    metas are treated as absent but not removed (the owner's purge daemon
    broadcasts the delete). *)
val lookup : t -> now:float -> string -> Meta.t option

(** [lookup_from t ~self ~now key] probes [self]'s table first, then the
    others in index order — preferring a local hit over a remote one. The
    probe order is precomputed per node at {!create} time, so the chain
    allocates nothing. With [hints] enabled only hinted tables are
    probed, falling back to the full scan when the hint set is empty or
    every hinted probe misses. A fully false hint (every hinted probe
    missed — the entries expired, or the owner changed under the key)
    additionally {e repairs} the index: the stale mask is dropped and
    the table where the fallback scan finds the key, if any, is
    re-hinted, so one stale hint costs one fallback scan rather than one
    per lookup forever. *)
val lookup_from : t -> self:int -> now:float -> string -> Meta.t option

(** [insert t ~node meta] records [meta] in [node]'s table. *)
val insert : t -> node:int -> Meta.t -> unit

(** [delete t ~node key] removes [key] from [node]'s table; [true] if it
    was present. *)
val delete : t -> node:int -> string -> bool

(** [purge_node t ~node] empties [node]'s table under its write lock,
    charging lock overhead like any other update; returns how many entries
    were dropped. This is the lazy repair path of the failure model: when a
    peer stops answering fetches, the requester discards its replica of
    that peer's table wholesale rather than waiting for delete broadcasts
    that will never come. Must run inside a simulated process. *)
val purge_node : t -> node:int -> int

(** [reset_node t ~node] is {!purge_node} without locks or simulated
    charges, for use from plain event callbacks (a crashing node wiping its
    own table is a failure event, not simulated work). *)
val reset_node : t -> node:int -> int

(** [touch t ~node key ~now] updates nothing structural but lets the owner
    bump meta statistics after a fetch; present for symmetry with §4.1
    ("the cache manager on the node that owns the item updates meta-data
    statistics"). Returns [true] if the entry exists. *)
val touch : t -> node:int -> string -> now:float -> bool

(** [entries t ~node] lists a table's metas (unordered). *)
val entries : t -> node:int -> Meta.t list

(** [find t ~node key] is the raw stored meta for [key] in [node]'s table,
    expired or not, without locks or simulated charges — the anti-entropy
    merge's recency probe (the caller charges its own round cost and
    serialises rounds itself). *)
val find : t -> node:int -> string -> Meta.t option

(** [digest t ~node] is [(count, hash)] over one table's content: the
    entry count plus an order-independent XOR of stable per-entry hashes.
    Two replicas of a table agree element-wise iff (modulo the usual hash
    caveat) their digests agree — the anti-entropy daemon's comparison.
    Pure: takes no locks and charges no simulated time (the daemon charges
    its own CPU cost per round). O(1): the XOR is maintained incrementally
    by insert/delete/purge. Setting [SWALA_VERIFY_DIGESTS=1] in the
    environment asserts the incremental value against {!digest_slow} on
    every call. *)
val digest : t -> node:int -> int * int

(** [digest_slow t ~node] recomputes the digest from scratch by hashing
    every entry — the pre-optimization behaviour, kept as the reference
    for the incremental path. *)
val digest_slow : t -> node:int -> int * int

(** [table_size t ~node] is the number of metas in one table. *)
val table_size : t -> node:int -> int

(** [total_size t] sums all tables. *)
val total_size : t -> int

val nodes : t -> int

(** [hints_enabled t] is whether the hint index is maintained. *)
val hints_enabled : t -> bool

(** [hint_stats t] is [(probes_saved, false_hints)]: table probes skipped
    thanks to the hint index, and lookups where every hinted probe missed
    and the full-scan fallback ran. *)
val hint_stats : t -> int * int

(** [lock_acquisitions t] is the cumulative (read, write) acquisition count
    across the whole directory — the ablation's measured quantity. *)
val lock_acquisitions : t -> int * int
