(* Per-key adaptive freshness controller.

   The paper expires every cached CGI result after one fixed TTL, but its
   own premise — results are expensive to regenerate and go stale at
   different rates — argues for per-key control, the trade-off formalised
   in "An Optimal Trade-off between Content Freshness and Refresh Cost"
   (PAPERS.md). This module implements the controller: it observes, per
   cache key, the access rate (the same two-bucket sliding-window
   estimator as {!Hotspot}), the recompute rate (EWMA of the gap between
   successive inserts of the key) and the recompute cost (EWMA of the
   measured CGI execution time), and picks the TTL minimising the
   steady-state cost rate

     J(T) = penalty * lambda * T / 2  +  cost / T

   where [lambda] is the observed access rate. The first term is the
   staleness risk: each of the [lambda] accesses per second serves a
   result whose expected age under TTL [T] is [T/2], weighted by the
   administrator's [penalty] (staleness-seconds are worth [penalty]
   seconds of CPU). The second is the refresh cost rate: one [cost]-
   second recomputation every [T] seconds. Setting dJ/dT = 0 gives

     T* = sqrt (2 * cost / (penalty * lambda))

   clamped to [min_ttl, max_ttl]. Hot keys age fast in hit-weighted
   staleness, so they get short TTLs; cold expensive keys get long ones —
   exactly the allocation no single fixed TTL can make. T* is monotone:
   nondecreasing in [cost], nonincreasing in [lambda] and [penalty]
   (property-tested in test/test_freshness.ml).

   The controller is pure host-side bookkeeping: it never blocks, charges
   no simulated cost and draws no randomness, so attaching it perturbs
   nothing but the TTLs it emits. *)

type mode = Fixed | Adaptive

let mode_to_string = function Fixed -> "fixed" | Adaptive -> "adaptive"

let mode_of_string = function
  | "fixed" -> Ok Fixed
  | "adaptive" -> Ok Adaptive
  | s -> Error (Printf.sprintf "unknown freshness mode %S" s)

(* EWMA weight for the per-key gap and cost trackers: heavy enough to
   smooth lognormal demand draws, light enough to track a regime change
   within a handful of recomputations. *)
let ewma_alpha = 0.3

type key_state = {
  (* two-bucket sliding-window access counter (see Hotspot) *)
  mutable start : float;
  mutable cur : int;
  mutable prev : int;
  (* recompute tracking *)
  mutable last_insert : float option;
  mutable gap_ewma : float option;  (* mean seconds between inserts *)
  mutable cost_ewma : float option;  (* mean recompute cost, seconds *)
  mutable inserts : int;
}

type t = {
  min_ttl : float;
  max_ttl : float;
  penalty : float;
  window : float;
  half : float;
  keys : (string, key_state) Hashtbl.t;
}

let create ~min_ttl ~max_ttl ~penalty ~window () =
  if min_ttl <= 0. then invalid_arg "Freshness.create: min_ttl must be positive";
  if max_ttl < min_ttl then
    invalid_arg "Freshness.create: max_ttl must be >= min_ttl";
  if penalty <= 0. then
    invalid_arg "Freshness.create: penalty must be positive";
  if window <= 0. then invalid_arg "Freshness.create: window must be positive";
  {
    min_ttl;
    max_ttl;
    penalty;
    window;
    half = window /. 2.;
    keys = Hashtbl.create 256;
  }

let state t ~now key =
  match Hashtbl.find_opt t.keys key with
  | Some s -> s
  | None ->
      let s =
        {
          start = now;
          cur = 0;
          prev = 0;
          last_insert = None;
          gap_ewma = None;
          cost_ewma = None;
          inserts = 0;
        }
      in
      Hashtbl.replace t.keys key s;
      s

(* Roll the buckets forward so [s.start] is within [half] of [now]. *)
let advance t s ~now =
  if now -. s.start >= t.half then
    if now -. s.start >= 2. *. t.half then begin
      s.prev <- 0;
      s.cur <- 0;
      s.start <- now
    end
    else begin
      s.prev <- s.cur;
      s.cur <- 0;
      s.start <- s.start +. t.half
    end

let rate t s ~now =
  advance t s ~now;
  let elapsed = now -. s.start in
  let overlap = Float.max 0. ((t.half -. elapsed) /. t.half) in
  ((float_of_int s.prev *. overlap) +. float_of_int s.cur) /. t.window

let observe_access t ~now key =
  let s = state t ~now key in
  advance t s ~now;
  s.cur <- s.cur + 1

let observe_insert t ~now ~cost key =
  let s = state t ~now key in
  (match s.last_insert with
  | Some prev when now > prev ->
      let gap = now -. prev in
      s.gap_ewma <-
        Some
          (match s.gap_ewma with
          | None -> gap
          | Some g -> ((1. -. ewma_alpha) *. g) +. (ewma_alpha *. gap))
  | Some _ | None -> ());
  s.last_insert <- Some now;
  s.cost_ewma <-
    Some
      (match s.cost_ewma with
      | None -> cost
      | Some c -> ((1. -. ewma_alpha) *. c) +. (ewma_alpha *. cost));
  s.inserts <- s.inserts + 1

let access_rate t ~now key =
  match Hashtbl.find_opt t.keys key with
  | None -> 0.
  | Some s -> rate t s ~now

let update_interval t key =
  match Hashtbl.find_opt t.keys key with None -> None | Some s -> s.gap_ewma

let observed_cost t key =
  match Hashtbl.find_opt t.keys key with None -> None | Some s -> s.cost_ewma

let clamp t v = Float.min t.max_ttl (Float.max t.min_ttl v)

let ttl t ~now ~cost key =
  let s = state t ~now key in
  (* Smooth the (possibly lognormal) per-execution cost draw with the
     key's history, so one tail draw does not whipsaw the TTL. *)
  let c =
    Float.max 1e-9
      (match s.cost_ewma with
      | Some hist -> ((1. -. ewma_alpha) *. hist) +. (ewma_alpha *. cost)
      | None -> cost)
  in
  (* The access triggering this very recomputation is evidence of at
     least one access per window, so the rate is floored there; without
     the floor a first-seen key would get max_ttl unconditionally. *)
  let lambda = Float.max (1. /. t.window) (rate t s ~now) in
  clamp t (sqrt (2. *. c /. (t.penalty *. lambda)))

(* Rule overrides beat per-script TTLs beat the server-wide layer — the
   administrator's configuration-file precedence (§4.1), shared by the
   fixed and adaptive paths and property-tested directly. *)
let effective_ttl ~rule ~script ~default =
  match rule with
  | Some _ as ttl -> ttl
  | None -> ( match script with Some _ as ttl -> ttl | None -> default)

(* Garbage-collect key states that have gone fully cold — no access in a
   full window and no insert either — so the tracker's memory follows the
   working set, like Hotspot.sweep. *)
let sweep t ~now =
  let dead =
    Hashtbl.fold
      (fun key s acc ->
        (* Roll the buckets to [now] first: a fully-out-of-window state
           zeroes both counts, leaving stale counts in place would keep
           every once-accessed key alive forever. *)
        advance t s ~now;
        let cold_insert =
          match s.last_insert with
          | None -> true
          | Some at -> now -. at >= 2. *. t.window
        in
        if s.cur = 0 && s.prev = 0 && cold_insert then key :: acc else acc)
      t.keys []
  in
  List.iter (Hashtbl.remove t.keys) dead;
  List.length dead

let clear t = Hashtbl.reset t.keys
let tracked t = Hashtbl.length t.keys
let min_ttl t = t.min_ttl
let max_ttl t = t.max_ttl
