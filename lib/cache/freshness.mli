(** Per-key adaptive freshness controller.

    Replaces the single fixed [Config.default_ttl] with a per-key TTL
    balancing staleness risk against recompute cost ("An Optimal
    Trade-off between Content Freshness and Refresh Cost", PAPERS.md).
    Per key it tracks the access rate (two-bucket sliding window, as in
    {!Hotspot}), the recompute rate (EWMA of inter-insert gaps) and the
    recompute cost (EWMA of measured execution times), and emits

      T* = clamp [min_ttl, max_ttl] (sqrt (2 c / (penalty lambda)))

    — the minimiser of the steady-state cost rate
    [penalty * lambda * T/2 + c/T]. T* is nondecreasing in the cost and
    nonincreasing in the access rate and penalty (property-tested).

    Pure host-side bookkeeping: no blocking, no simulated charges, no
    randomness — attaching a controller perturbs nothing but the TTLs it
    emits. *)

type mode = Fixed | Adaptive

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

type t

(** [create ~min_ttl ~max_ttl ~penalty ~window ()]: [min_ttl > 0],
    [max_ttl >= min_ttl] bound the emitted TTLs; [penalty > 0] is the
    staleness weight (one staleness-second across one access costs
    [penalty] CPU-seconds); [window > 0] is the access-rate estimator's
    sliding window. Raises [Invalid_argument] otherwise. *)
val create :
  min_ttl:float -> max_ttl:float -> penalty:float -> window:float -> unit -> t

(** [observe_access t ~now key] counts one cache-directed access (hit or
    miss) toward the key's rate estimate. *)
val observe_access : t -> now:float -> string -> unit

(** [observe_insert t ~now ~cost key] records one recomputation: updates
    the key's inter-insert gap and cost EWMAs. *)
val observe_insert : t -> now:float -> cost:float -> string -> unit

(** [ttl t ~now ~cost key] is the controller's TTL for a result of [key]
    just recomputed at [cost] seconds: T* from the key's tracked state,
    with [cost] blended into the cost EWMA-to-date, clamped to
    [[min_ttl, max_ttl]]. A first-seen key uses one access per [window]
    as the rate floor. *)
val ttl : t -> now:float -> cost:float -> string -> float

(** [access_rate t ~now key] is the current sliding-window estimate,
    [0.] for untracked keys. *)
val access_rate : t -> now:float -> string -> float

(** [update_interval t key] is the EWMA of gaps between successive
    inserts of [key] — the key's observed recompute period ([None]
    before the second insert). *)
val update_interval : t -> string -> float option

(** [observed_cost t key] is the cost EWMA ([None] before the first
    insert). *)
val observed_cost : t -> string -> float option

(** [effective_ttl ~rule ~script ~default] is the TTL layer precedence
    shared by both freshness modes: a {!Rules} override beats the
    per-script TTL beats the server-wide default (fixed [default_ttl] or
    the adaptive controller). Pure; property-tested. *)
val effective_ttl :
  rule:float option -> script:float option -> default:float option ->
  float option

(** [sweep t ~now] drops key states fully cold for over a window (no
    accesses, no recent insert); returns how many were dropped. Run it
    periodically so memory follows the working set. *)
val sweep : t -> now:float -> int

val clear : t -> unit

(** [tracked t] is the number of keys currently holding state. *)
val tracked : t -> int

val min_ttl : t -> float
val max_ttl : t -> float
