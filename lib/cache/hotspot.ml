(* Sliding-window hotspot detector, run by each shard home over the
   forwarded lookups it serves.

   Per key, two adjacent half-window buckets approximate a true sliding
   window: the estimated rate at time [now] is

     (prev * overlap + cur) / window

   where [overlap] is the fraction of the sliding window still covered
   by the previous bucket. This is the classic two-bucket estimator —
   O(1) per observation, no per-event timestamps — and is exact for
   steady arrivals while reacting within one half-window to bursts.

   Hysteresis: a key promotes when its rate reaches [threshold] and
   demotes (in [sweep]) only when it falls below [threshold / 2], so a
   key oscillating around the threshold does not flap its replica set
   with every bucket turn. *)

type counter = {
  mutable start : float;  (* start of the current half-window bucket *)
  mutable cur : int;
  mutable prev : int;
}

type t = {
  threshold : float;  (* lookups/s; > 0 *)
  window : float;
  half : float;
  keys : (string, counter) Hashtbl.t;
  hot : (string, unit) Hashtbl.t;
  mutable promotions : int;
  mutable demotions : int;
}

let create ~threshold ~window =
  if threshold <= 0. then
    invalid_arg "Hotspot.create: threshold must be positive";
  if window <= 0. then invalid_arg "Hotspot.create: window must be positive";
  {
    threshold;
    window;
    half = window /. 2.;
    keys = Hashtbl.create 64;
    hot = Hashtbl.create 16;
    promotions = 0;
    demotions = 0;
  }

(* Roll the buckets forward so [c.start] is within [half] of [now]. *)
let advance t c ~now =
  if now -. c.start >= t.half then begin
    if now -. c.start >= 2. *. t.half then begin
      (* Both buckets are entirely in the past. *)
      c.prev <- 0;
      c.cur <- 0;
      c.start <- now
    end
    else begin
      c.prev <- c.cur;
      c.cur <- 0;
      c.start <- c.start +. t.half
    end
  end

let rate t c ~now =
  advance t c ~now;
  let elapsed = now -. c.start in
  let overlap = Float.max 0. ((t.half -. elapsed) /. t.half) in
  ((float_of_int c.prev *. overlap) +. float_of_int c.cur) /. t.window

let record t ~now key =
  let c =
    match Hashtbl.find_opt t.keys key with
    | Some c -> c
    | None ->
        let c = { start = now; cur = 0; prev = 0 } in
        Hashtbl.replace t.keys key c;
        c
  in
  advance t c ~now;
  c.cur <- c.cur + 1;
  if (not (Hashtbl.mem t.hot key)) && rate t c ~now >= t.threshold then begin
    Hashtbl.replace t.hot key ();
    t.promotions <- t.promotions + 1;
    `Promoted
  end
  else `Noted

let is_hot t key = Hashtbl.mem t.hot key

let sweep t ~now =
  let cooled =
    Hashtbl.fold
      (fun key () acc ->
        match Hashtbl.find_opt t.keys key with
        | None -> key :: acc
        | Some c ->
            if rate t c ~now < t.threshold /. 2. then key :: acc else acc)
      t.hot []
  in
  let cooled = List.sort compare cooled in
  List.iter
    (fun key ->
      Hashtbl.remove t.hot key;
      t.demotions <- t.demotions + 1)
    cooled;
  (* Garbage-collect counters that have gone fully cold, so the tracker's
     memory follows the working set rather than the key universe. *)
  let dead =
    Hashtbl.fold
      (fun key c acc ->
        if (not (Hashtbl.mem t.hot key)) && now -. c.start >= 2. *. t.half
        then key :: acc
        else acc)
      t.keys []
  in
  List.iter (Hashtbl.remove t.keys) dead;
  cooled

let forget t key =
  Hashtbl.remove t.keys key;
  if Hashtbl.mem t.hot key then begin
    Hashtbl.remove t.hot key;
    t.demotions <- t.demotions + 1;
    true
  end
  else false

let clear t =
  Hashtbl.reset t.keys;
  Hashtbl.reset t.hot

let hot_count t = Hashtbl.length t.hot
let hot_keys t = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.hot [])
let stats t = (t.promotions, t.demotions)
