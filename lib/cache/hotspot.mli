(** Sliding-window hotspot detector for the sharded metadata plane (see
    {!Metadata_plane} and docs/METADATA_PLANE.md).

    Each shard home records the forwarded lookups it serves per key in a
    two-bucket sliding-window rate estimator (O(1) per observation, no
    per-event timestamps). A key whose rate reaches the promotion
    threshold is {e hot}: the server pushes its directory entry to k
    ring successors so their local probes answer without forwarding. A
    hot key is demoted by {!sweep} only once its rate falls below {e
    half} the threshold — promote-at-T / demote-at-T/2 hysteresis, so a
    key hovering at the threshold does not flap its replica set.

    Purely host-side and deterministic: no simulated charges, no random
    stream. The caller drives all effects — this module only decides. *)

type t

(** [create ~threshold ~window] — promotion at [threshold] lookups/s
    measured over a [window]-second sliding window; demotion below
    [threshold /. 2]. Both must be positive. *)
val create : threshold:float -> window:float -> t

(** [record t ~now key] counts one forwarded lookup for [key] at time
    [now]. Returns [`Promoted] exactly when this observation lifts a
    cold key over the threshold (the caller then pushes the entry to the
    replica set); [`Noted] otherwise. *)
val record : t -> now:float -> string -> [ `Promoted | `Noted ]

(** [is_hot t key] is whether [key] is currently promoted. *)
val is_hot : t -> string -> bool

(** [sweep t ~now] demotes every hot key whose rate has fallen below
    half the threshold and returns them (sorted, so the caller's
    demotion messages are deterministically ordered); also
    garbage-collects counters of fully cold keys. Call once per window
    (the server's hotspot sweeper daemon does). *)
val sweep : t -> now:float -> string list

(** [forget t key] drops all state for [key] (it was deleted from the
    shard); [true] when the key was hot — the caller must then retract
    the replicas. Counts as a demotion. *)
val forget : t -> string -> bool

(** [clear t] wipes all state (crash). *)
val clear : t -> unit

(** [hot_count t] is the number of currently promoted keys. *)
val hot_count : t -> int

(** [hot_keys t] lists the promoted keys, sorted. *)
val hot_keys : t -> string list

(** [stats t] is cumulative [(promotions, demotions)]. *)
val stats : t -> int * int
