(* Positive/negative cache fronting forwarded directory lookups.

   Pure host-side bookkeeping: no locks, no simulated charges — consulting
   a small local table is free at the simulation's resolution, and the
   win it models (not crossing the network) is charged where it is saved.

   Eviction is FIFO over insertion order via a queue of keys; a queue
   entry whose key has since been overwritten or invalidated is skipped
   lazily, so the queue may transiently exceed [capacity] but the live
   table never does. FIFO keeps the structure deterministic without a
   seeded stream. *)

type entry =
  | Pos of { meta : Meta.t; until : float }
  | Neg of { until : float }

type verdict = Hit of Meta.t | Absent | Unknown

type t = {
  capacity : int;
  pos_ttl : float;
  neg_ttl : float;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t;
  mutable pos_hits : int;
  mutable neg_hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity ~pos_ttl ~neg_ttl =
  if capacity < 1 then invalid_arg "Lookup_cache.create: capacity must be >= 1";
  if pos_ttl <= 0. || neg_ttl <= 0. then
    invalid_arg "Lookup_cache.create: TTLs must be positive";
  {
    capacity;
    pos_ttl;
    neg_ttl;
    table = Hashtbl.create (2 * capacity);
    order = Queue.create ();
    pos_hits = 0;
    neg_hits = 0;
    misses = 0;
    evictions = 0;
  }

let find t ~now key =
  match Hashtbl.find_opt t.table key with
  | Some (Pos { meta; until })
    when now < until && not (Meta.expired meta ~now) ->
      t.pos_hits <- t.pos_hits + 1;
      Hit meta
  | Some (Neg { until }) when now < until ->
      t.neg_hits <- t.neg_hits + 1;
      Absent
  | Some _ ->
      (* TTL (or the meta itself) expired; drop so the slot frees up. *)
      Hashtbl.remove t.table key;
      t.misses <- t.misses + 1;
      Unknown
  | None ->
      t.misses <- t.misses + 1;
      Unknown

let rec make_room t =
  if Hashtbl.length t.table >= t.capacity then
    match Queue.take_opt t.order with
    | None -> ()
    | Some victim ->
        if Hashtbl.mem t.table victim then begin
          Hashtbl.remove t.table victim;
          t.evictions <- t.evictions + 1
        end;
        make_room t

let note t key entry =
  if not (Hashtbl.mem t.table key) then begin
    make_room t;
    Queue.push key t.order
  end;
  Hashtbl.replace t.table key entry

let note_pos t ~now (meta : Meta.t) =
  note t meta.Meta.key (Pos { meta; until = now +. t.pos_ttl })

let note_neg t ~now key = note t key (Neg { until = now +. t.neg_ttl })

let invalidate t key = Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let length t = Hashtbl.length t.table
let stats t = (t.pos_hits, t.neg_hits, t.misses, t.evictions)
