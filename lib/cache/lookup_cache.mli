(** Per-node positive/negative cache fronting forwarded directory
    lookups (sharded metadata plane, see {!Metadata_plane}).

    A node that is not a key's shard home must cross the network to learn
    who caches the key. This small TTL-bounded cache remembers recent
    answers: a {e positive} entry short-circuits the forward straight to
    the cache owner, a {e negative} entry short-circuits straight to
    local execution. Both are advisory, never authoritative — a stale
    positive entry ends in a [Miss] reply from the owner (the false-hit
    path), a stale negative entry in a duplicate execution reconciled at
    the shard home (a false miss) — so the TTLs trade metadata traffic
    against the width of the weak-consistency window.

    Purely host-side and deterministic: no simulated charges, no random
    stream (eviction is FIFO by first insertion). *)

type t

(** The cache's answer for one key. *)
type verdict =
  | Hit of Meta.t  (** fresh positive entry: fetch from [meta.owner] *)
  | Absent  (** fresh negative entry: execute locally, skip the forward *)
  | Unknown  (** no fresh information: forward to the shard home *)

(** [create ~capacity ~pos_ttl ~neg_ttl] — [capacity >= 1] live entries
    (FIFO-evicted beyond that); TTLs in simulated seconds, both
    positive. Raises [Invalid_argument] otherwise. *)
val create : capacity:int -> pos_ttl:float -> neg_ttl:float -> t

(** [find t ~now key] consults the cache. A positive entry answers
    {!Hit} only while within its TTL {e and} the meta itself is
    unexpired; out-of-TTL entries are dropped and answer {!Unknown}. *)
val find : t -> now:float -> string -> verdict

(** [note_pos t ~now meta] records a forwarded lookup's positive answer,
    trusted until [now + pos_ttl]. *)
val note_pos : t -> now:float -> Meta.t -> unit

(** [note_neg t ~now key] records a forwarded lookup's negative answer,
    trusted until [now + neg_ttl]. *)
val note_neg : t -> now:float -> string -> unit

(** [invalidate t key] drops whatever is cached for [key] — called when
    a fetch based on a positive entry came back [Miss] (the entry was
    provably stale). *)
val invalidate : t -> string -> unit

(** [clear t] empties the cache (crash wipe). *)
val clear : t -> unit

(** [length t] is the number of live entries (counts toward the node's
    metadata memory). *)
val length : t -> int

(** [stats t] is [(pos_hits, neg_hits, misses, evictions)]. *)
val stats : t -> int * int * int * int
