type t = {
  key : string;
  owner : int;
  size : int;
  exec_time : float;
  created : float;
  expires : float option;
}

let make ~key ~owner ~size ~exec_time ~created ~expires =
  if size < 0 then invalid_arg "Meta.make: negative size";
  if exec_time < 0. then invalid_arg "Meta.make: negative exec_time";
  { key; owner; size; exec_time; created; expires }

let expired t ~now = match t.expires with Some e -> now >= e | None -> false
let cost t = t.exec_time
let age t ~now = now -. t.created

let pp ppf t =
  Format.fprintf ppf "%s@@node%d (%d B, exec %.3fs)" t.key t.owner t.size
    t.exec_time
