(** Cache-entry meta-data: what the replicated global directory stores about
    each cached CGI result (the result body itself lives only in the owner
    node's local store, in a per-entry disk file). *)

type t = {
  key : string;  (** canonical request key *)
  owner : int;  (** node holding the result file *)
  size : int;  (** result size in bytes *)
  exec_time : float;  (** measured CGI execution time, drives replacement *)
  created : float;  (** simulation time of insertion *)
  expires : float option;  (** absolute expiry (creation + TTL), if any *)
}

val make :
  key:string ->
  owner:int ->
  size:int ->
  exec_time:float ->
  created:float ->
  expires:float option ->
  t

(** [expired t ~now] is [true] when [t] has an expiry in the past. *)
val expired : t -> now:float -> bool

val pp : Format.formatter -> t -> unit
