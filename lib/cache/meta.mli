(** Cache-entry meta-data: what the replicated global directory stores about
    each cached CGI result (the result body itself lives only in the owner
    node's local store, in a per-entry disk file). *)

type t = {
  key : string;  (** canonical request key *)
  owner : int;  (** node holding the result file *)
  size : int;  (** result size in bytes *)
  exec_time : float;  (** measured CGI execution time, drives replacement *)
  created : float;  (** simulation time of insertion *)
  expires : float option;  (** absolute expiry (creation + TTL), if any *)
}

val make :
  key:string ->
  owner:int ->
  size:int ->
  exec_time:float ->
  created:float ->
  expires:float option ->
  t

(** [expired t ~now] is [true] when [t] has an expiry in the past — or at
    the exact expiry instant: a result is stale the moment its TTL has
    fully elapsed, so a hit's age is strictly below its TTL. *)
val expired : t -> now:float -> bool

(** [cost t] is the recompute cost of the entry — the measured CGI
    execution time the {!Freshness} controller and proactive refresh
    weigh against staleness. *)
val cost : t -> float

(** [age t ~now] is [now - created], the staleness of a result served at
    [now]. *)
val age : t -> now:float -> float

val pp : Format.formatter -> t -> unit
