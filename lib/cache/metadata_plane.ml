(* The pluggable metadata plane: what a node keeps locally so the cluster
   can answer "who caches key k?".

   Two implementations share the LOCAL signature below. The transport
   differences — broadcast vs point-to-point announcements, local probe
   vs forwarded lookup — live in the server layer, which dispatches on
   the packed variant [t]; this module owns the node-local state and the
   operations the runner and the failure paths need uniformly. *)

module type LOCAL = sig
  type state

  val mode : string
  val entries : state -> int
  val lock_acquisitions : state -> int * int
  val reset : node:int -> state -> int
end

module Replicated = struct
  type state = Directory.t

  let mode = "replicated"
  let entries = Directory.total_size
  let lock_acquisitions = Directory.lock_acquisitions

  (* A crashing node loses only its own table — the other tables are its
     (now stale) view of peers, repaired lazily after restart. *)
  let reset ~node d = Directory.reset_node d ~node
end

module Sharded = struct
  type state = {
    ring : Ring.t;  (* shared, immutable; same structure on every node *)
    table : Shard_table.t;
    lcache : Lookup_cache.t option;
    hotspot : Hotspot.t option;
  }

  let mode = "sharded"

  let entries s =
    Shard_table.length s.table
    + match s.lcache with None -> 0 | Some lc -> Lookup_cache.length lc

  let lock_acquisitions s = Shard_table.lock_acquisitions s.table

  (* A crash loses the whole node-local sharded state: its partition of
     the directory, the lookup cache and the hotspot tracker. *)
  let reset ~node:_ s =
    let n = Shard_table.reset s.table in
    (match s.lcache with None -> () | Some lc -> Lookup_cache.clear lc);
    (match s.hotspot with None -> () | Some h -> Hotspot.clear h);
    n
end

type t = Replicated of Directory.t | Sharded of Sharded.state

let replicated d = Replicated d

let sharded ~ring ~table ?lookup_cache ?hotspot () =
  Sharded { Sharded.ring; table; lcache = lookup_cache; hotspot }

let mode_name = function
  | Replicated _ -> Replicated.mode
  | Sharded _ -> Sharded.mode

let entries = function
  | Replicated d -> Replicated.entries d
  | Sharded s -> Sharded.entries s

let lock_acquisitions = function
  | Replicated d -> Replicated.lock_acquisitions d
  | Sharded s -> Sharded.lock_acquisitions s

let reset ~node = function
  | Replicated d -> Replicated.reset ~node d
  | Sharded s -> Sharded.reset ~node s

let directory = function Replicated d -> Some d | Sharded _ -> None
let shard = function Sharded s -> Some s | Replicated _ -> None
