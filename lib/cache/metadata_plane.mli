(** The pluggable metadata plane: the node-local state behind "who caches
    key k?", with two implementations behind one signature.

    - {b Replicated} (the paper's design, {!Directory}): every node holds
      a full directory replica — one table per cluster node — kept
      consistent by broadcasting every insert/delete. O(n) memory per
      node, O(n) messages per update, zero-message lookups.
    - {b Sharded} ({!Ring} + {!Shard_table}): the directory is
      partitioned over a consistent-hash ring; each key's entry lives
      only at its home node. O(total/n) memory per node and O(1)
      messages per update, but a lookup from a non-home node crosses the
      network (softened by a {!Lookup_cache} and, for Zipf-head keys, by
      {!Hotspot} replication to k ring successors).

    This module owns what both planes must expose uniformly to the
    runner and the failure paths ({!LOCAL}); the transport half of each
    plane — broadcast vs point-to-point announcement, local probe vs
    forwarded lookup, crash handoff — lives in [Core.Server], which
    dispatches on the packed variant {!t}. The mode-selection trade-off
    table is in docs/METADATA_PLANE.md. *)

(** What every metadata-plane implementation exposes about its node-local
    state. [entries] is the node's metadata footprint (the memory metric
    of the dirmode ablation); [lock_acquisitions] the cumulative
    (read, write) lock counts under the shared locking cost model;
    [reset ~node] the fail-stop crash wipe of node [node]'s authoritative
    state (no locks, no simulated charges), returning how many entries
    were lost — the whole replica minus the peer tables for the
    replicated plane, everything node-local for the sharded one. *)
module type LOCAL = sig
  type state

  val mode : string
  val entries : state -> int
  val lock_acquisitions : state -> int * int
  val reset : node:int -> state -> int
end

(** The replicated plane's local state is a full {!Directory} replica. *)
module Replicated : LOCAL with type state = Directory.t

(** The sharded plane's local state: the shared ring plus this node's
    shard partition, and the optional lookup cache and hotspot tracker. *)
module Sharded : sig
  type state = {
    ring : Ring.t;
        (** immutable and shared — every node computes the same mapping *)
    table : Shard_table.t;  (** this node's partition of the directory *)
    lcache : Lookup_cache.t option;
        (** fronts forwarded lookups; [None] when disabled *)
    hotspot : Hotspot.t option;
        (** promotion tracker; [None] when hotspot replication is off *)
  }

  include LOCAL with type state := state
end

(** A node's plane, packed. The server matches on this to route
    announcements and lookups; everything mode-agnostic goes through the
    functions below. *)
type t = Replicated of Directory.t | Sharded of Sharded.state

(** [replicated d] packs a directory replica as a plane. *)
val replicated : Directory.t -> t

(** [sharded ~ring ~table ?lookup_cache ?hotspot ()] packs one node's
    sharded state. [ring] should be the single shared ring of the
    cluster. *)
val sharded :
  ring:Ring.t ->
  table:Shard_table.t ->
  ?lookup_cache:Lookup_cache.t ->
  ?hotspot:Hotspot.t ->
  unit ->
  t

(** [mode_name t] is ["replicated"] or ["sharded"]. *)
val mode_name : t -> string

(** [entries t] is this node's metadata footprint in entries: the whole
    replica (replicated) or the shard partition plus lookup cache
    (sharded). *)
val entries : t -> int

(** [lock_acquisitions t] is the plane's cumulative (read, write) lock
    acquisitions — {!Directory.lock_acquisitions} or
    {!Shard_table.lock_acquisitions}. *)
val lock_acquisitions : t -> int * int

(** [reset ~node t] is the crash wipe of node [node]'s plane state; see
    {!LOCAL.reset}. *)
val reset : node:int -> t -> int

(** [directory t] is the underlying replica when the plane is
    replicated. *)
val directory : t -> Directory.t option

(** [shard t] is the underlying sharded state when the plane is
    sharded. *)
val shard : t -> Sharded.state option
