type t =
  | Lru
  | Fifo
  | Lfu
  | Largest_size
  | Cheapest_recompute
  | Gdsf
  | Random

let all = [ Lru; Fifo; Lfu; Largest_size; Cheapest_recompute; Gdsf; Random ]

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Lfu -> "lfu"
  | Largest_size -> "size"
  | Cheapest_recompute -> "exec-time"
  | Gdsf -> "gdsf"
  | Random -> "random"

let of_string = function
  | "lru" -> Ok Lru
  | "fifo" -> Ok Fifo
  | "lfu" -> Ok Lfu
  | "size" -> Ok Largest_size
  | "exec-time" -> Ok Cheapest_recompute
  | "gdsf" -> Ok Gdsf
  | "random" -> Ok Random
  | s -> Error (Printf.sprintf "unknown policy %S" s)

type access = { last_access : float; hits : int; inserted : float }

let priority p ~clock ~meta ~access =
  match p with
  | Lru -> access.last_access
  | Fifo -> access.inserted
  | Lfu -> float_of_int access.hits
  | Largest_size -> -.float_of_int meta.Meta.size
  | Cheapest_recompute -> meta.Meta.exec_time
  | Gdsf ->
      let size = float_of_int (Stdlib.max 1 meta.Meta.size) in
      clock
      +. (float_of_int (access.hits + 1) *. meta.Meta.exec_time /. size)
  | Random -> 0.

let uses_clock = function
  | Gdsf -> true
  | Lru | Fifo | Lfu | Largest_size | Cheapest_recompute | Random -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)
