(** Cache-replacement policies.

    The paper defers its five replacement methods to the companion technical
    report, describing them as based on "execution time, access frequency,
    time of access, size etc." (§3). We implement that whole family. A
    policy is expressed as a priority: the entry with the {e smallest}
    priority is evicted first. Priorities may depend on access history, so
    the store recomputes them on every touch (with lazy heap invalidation).

    [Gdsf] (GreedyDual-Size-Frequency, Cao-Irani style with CGI execution
    time as the cost metric) additionally uses an inflation clock supplied
    by the store so that recently useful entries age rather than starve. *)

type t =
  | Lru  (** evict least recently used *)
  | Fifo  (** evict oldest insertion *)
  | Lfu  (** evict least frequently used *)
  | Largest_size  (** evict biggest result first *)
  | Cheapest_recompute  (** evict the result cheapest to regenerate *)
  | Gdsf  (** frequency x exec-time / size, with aging *)
  | Random  (** evict uniformly at random *)

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result

(** Access statistics a priority may depend on. *)
type access = { last_access : float; hits : int; inserted : float }

(** [priority p ~clock ~meta ~access] computes the eviction priority
    (smaller = evicted sooner). [clock] is the store's GDSF inflation value;
    other policies ignore it. [Random] has no meaningful priority and the
    store handles it separately. *)
val priority : t -> clock:float -> meta:Meta.t -> access:access -> float

(** [uses_clock p] is [true] only for [Gdsf]. *)
val uses_clock : t -> bool

val pp : Format.formatter -> t -> unit
