(* Consistent-hash ring with virtual nodes.

   The ring is a static, immutable structure shared by every node of a
   cluster: [nodes * vnodes] points on a 62-bit hash circle, each point
   claiming the arc that ends at it. A key's home is the physical node
   owning the first point at or clockwise after the key's hash. Liveness
   is *not* baked into the ring — crash handoff is expressed by walking
   the distinct-successor order and skipping nodes the caller reports
   down, so the mapping needs no rebuild on membership churn and every
   node computes the same answer from the same liveness view. *)

type t = {
  points : (int * int) array;  (* (hash, node), sorted by hash *)
  nodes : int;
  vnodes : int;
}

(* FNV-1a, folded to 62 bits so the arithmetic stays in OCaml's tagged
   int range on 64-bit platforms. Stable across runs and processes,
   unlike the polymorphic [Hashtbl.hash] contract. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFFFFFFFFF)
    s;
  !h

let create ~nodes ~vnodes =
  if nodes < 1 then invalid_arg "Ring.create: nodes must be >= 1";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let points = Array.make (nodes * vnodes) (0, 0) in
  for n = 0 to nodes - 1 do
    for v = 0 to vnodes - 1 do
      points.((n * vnodes) + v) <- (fnv1a (Printf.sprintf "vn:%d:%d" n v), n)
    done
  done;
  (* Ties between points are broken by node id so the sort — and hence
     every ownership decision — is deterministic. *)
  Array.sort compare points;
  { points; nodes; vnodes }

let nodes t = t.nodes
let vnodes t = t.vnodes

(* Index of the first point with hash >= h, wrapping to 0 past the end. *)
let first_at_or_after t h =
  let n = Array.length t.points in
  if h > fst t.points.(n - 1) then 0
  else begin
    (* Binary search for the leftmost point with hash >= h. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) >= h then hi := mid else lo := mid + 1
    done;
    !lo
  end

let owner t key =
  snd t.points.(first_at_or_after t (fnv1a key))

(* Walk the ring clockwise from the key's point, collecting the first [k]
   distinct physical nodes. The walk touches each point at most once, so
   it terminates even when [k > nodes] (the result is then every node, in
   successor order). *)
let successors t key ~k =
  if k < 1 then invalid_arg "Ring.successors: k must be >= 1";
  let n = Array.length t.points in
  let start = first_at_or_after t (fnv1a key) in
  let seen = Array.make t.nodes false in
  let out = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < k && !i < n do
    let node = snd t.points.((start + !i) mod n) in
    if not seen.(node) then begin
      seen.(node) <- true;
      out := node :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out

let acting_owner t ~up key =
  let n = Array.length t.points in
  let start = first_at_or_after t (fnv1a key) in
  let seen = Array.make t.nodes false in
  let rec go i =
    if i >= n then None
    else
      let node = snd t.points.((start + i) mod n) in
      if seen.(node) then go (i + 1)
      else if up node then Some node
      else begin
        seen.(node) <- true;
        go (i + 1)
      end
  in
  go 0

let spread t ~keys =
  let counts = Array.make t.nodes 0 in
  List.iter (fun k -> counts.(owner t k) <- counts.(owner t k) + 1) keys;
  counts
