(** Consistent-hash ring with virtual nodes — the key→shard-home mapping
    of the sharded metadata plane (see {!Metadata_plane} and
    docs/METADATA_PLANE.md).

    Each physical node contributes [vnodes] points to a 62-bit hash
    circle; a key is homed at the physical node owning the first point
    clockwise of the key's hash. The structure is immutable and shared:
    liveness is supplied per query ({!acting_owner}), so node crashes and
    restarts never rebuild the ring and every node that agrees on the
    liveness view agrees on the mapping. Hashing is FNV-1a over stable
    strings, so the mapping is identical across runs and processes. *)

type t

(** [create ~nodes ~vnodes] builds the ring for physical nodes
    [0 .. nodes-1] with [vnodes] points each. Raises [Invalid_argument]
    unless both are [>= 1]. O(nodes·vnodes·log) once per cluster. *)
val create : nodes:int -> vnodes:int -> t

(** [nodes t] is the physical node count the ring was built for. *)
val nodes : t -> int

(** [vnodes t] is the points-per-node parameter. *)
val vnodes : t -> int

(** [owner t key] is the key's home node — the physical node owning the
    first ring point at or clockwise after [hash key]. O(log points). *)
val owner : t -> string -> int

(** [successors t key ~k] is the first [min k nodes] {e distinct}
    physical nodes encountered walking clockwise from the key's point.
    The head of the list is {!owner}; the tail is the replica set a
    promoted hotspot key is pushed to, and the handoff order when the
    home crashes. Raises [Invalid_argument] when [k < 1]. *)
val successors : t -> string -> k:int -> int list

(** [acting_owner t ~up key] is the first node in successor order for
    which [up node] holds — the node that currently answers for the
    key's shard. [None] only when every node is down. With all nodes up
    this is [Some (owner t key)]. *)
val acting_owner : t -> up:(int -> bool) -> string -> int option

(** [spread t ~keys] counts, per physical node, how many of [keys] it
    homes — the load-balance diagnostic behind the shard-imbalance
    histogram. *)
val spread : t -> keys:string list -> int array
