(* One node's partition of the sharded directory: a single key→meta table
   covering the keys the ring homes (or replicates) here, guarded by one
   rwlock whose acquisitions charge simulated CPU exactly like the
   replicated Directory's per-table locks. Unlike the Directory there is
   no per-owner table array — a probe takes one lock and one hash lookup
   regardless of cluster size, which is the point of sharding.

   A secondary owner index (cache-owner node → key set) makes the suspect
   purge ("drop everything cached at the crashed node j") O(|j's keys|)
   instead of a full scan. *)

type t = {
  lock : Sim.Rwlock.t;
  lock_overhead : float;
  charge_fn : float -> unit;
  entries : (string, Meta.t) Hashtbl.t;
  by_owner : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable dup_announces : int;
}

let create ?(lock_overhead = 2e-6) ?(charge = Sim.Engine.delay) ?lock_observe
    () =
  if lock_overhead < 0. then
    invalid_arg "Shard_table.create: negative overhead";
  {
    lock = Sim.Rwlock.create ?observe:lock_observe ();
    lock_overhead;
    charge_fn = charge;
    entries = Hashtbl.create 64;
    by_owner = Hashtbl.create 8;
    dup_announces = 0;
  }

let charge t = if t.lock_overhead > 0. then t.charge_fn t.lock_overhead

let owner_index t node =
  match Hashtbl.find_opt t.by_owner node with
  | Some set -> set
  | None ->
      let set = Hashtbl.create 16 in
      Hashtbl.replace t.by_owner node set;
      set

let index_add t (m : Meta.t) = Hashtbl.replace (owner_index t m.Meta.owner) m.Meta.key ()

let index_remove t (m : Meta.t) =
  match Hashtbl.find_opt t.by_owner m.Meta.owner with
  | None -> ()
  | Some set -> Hashtbl.remove set m.Meta.key

(* The unlocked bodies keep the owner index in step with [entries]; every
   mutation goes through one of them. *)
let insert_unlocked t (meta : Meta.t) =
  match Hashtbl.find_opt t.entries meta.Meta.key with
  | Some old when old.Meta.created > meta.Meta.created ->
      (* A newer announcement already landed (e.g. a fresh execution
         raced a handoff re-announcement); keep it. *)
      `Stale
  | Some old ->
      if old.Meta.owner <> meta.Meta.owner then
        t.dup_announces <- t.dup_announces + 1;
      index_remove t old;
      Hashtbl.replace t.entries meta.Meta.key meta;
      index_add t meta;
      `Replaced old
  | None ->
      Hashtbl.replace t.entries meta.Meta.key meta;
      index_add t meta;
      `Inserted

let delete_unlocked t ?owner key =
  match Hashtbl.find_opt t.entries key with
  | None -> false
  | Some old -> (
      match owner with
      | Some node when old.Meta.owner <> node ->
          (* The delete names a stale copy (the key has since been
             re-announced by another cache owner); the live entry wins. *)
          false
      | Some _ | None ->
          index_remove t old;
          Hashtbl.remove t.entries key;
          true)

let probe t ~now key =
  Sim.Rwlock.with_rd t.lock (fun () ->
      charge t;
      match Hashtbl.find_opt t.entries key with
      | Some meta when not (Meta.expired meta ~now) -> Some meta
      | Some _ | None -> None)

let insert t meta =
  Sim.Rwlock.with_wr t.lock (fun () ->
      charge t;
      insert_unlocked t meta)

let delete t ?owner key =
  Sim.Rwlock.with_wr t.lock (fun () ->
      charge t;
      delete_unlocked t ?owner key)

let purge_owner t ~node =
  Sim.Rwlock.with_wr t.lock (fun () ->
      charge t;
      match Hashtbl.find_opt t.by_owner node with
      | None -> 0
      | Some set ->
          let n = Hashtbl.length set in
          Hashtbl.iter (fun key () -> Hashtbl.remove t.entries key) set;
          Hashtbl.remove t.by_owner node;
          n)

let prune t ~keep =
  let victims =
    Hashtbl.fold
      (fun key meta acc -> if keep key then acc else meta :: acc)
      t.entries []
  in
  List.iter
    (fun (m : Meta.t) ->
      index_remove t m;
      Hashtbl.remove t.entries m.Meta.key)
    victims;
  List.length victims

let reset t =
  let n = Hashtbl.length t.entries in
  Hashtbl.reset t.entries;
  Hashtbl.reset t.by_owner;
  n

let find t key = Hashtbl.find_opt t.entries key

let entries t = Hashtbl.fold (fun _ m acc -> m :: acc) t.entries []
let length t = Hashtbl.length t.entries
let dup_announces t = t.dup_announces

let lock_acquisitions t =
  (Sim.Rwlock.rd_acquisitions t.lock, Sim.Rwlock.wr_acquisitions t.lock)
