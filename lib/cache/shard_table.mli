(** One node's partition of the sharded directory (see {!Metadata_plane}).

    Where the replicated {!Directory} keeps one table per cluster node on
    every node, a shard table is a single key→meta map holding only the
    keys the consistent-hash ring homes at (or hotspot-replicates to)
    this node. A probe takes one lock acquisition and one hash lookup
    regardless of cluster size — the O(n)→O(1) local-work change that
    motivates the sharded plane.

    Locked operations ({!probe}, {!insert}, {!delete}, {!purge_owner})
    charge [lock_overhead] simulated seconds per acquisition through
    [charge], exactly like the replicated directory, so the two planes
    are compared under the same cost model; they must run inside a
    simulated process. The unlocked operations ({!prune}, {!reset},
    {!find}, {!entries}) are for event callbacks and post-run
    introspection and charge nothing. *)

type t

(** [create ?lock_overhead ?charge ?lock_observe ()] builds an empty
    shard table. [lock_overhead] (default [2e-6] s) is charged through
    [charge] (default [Sim.Engine.delay]; the server passes the owning
    node's CPU) on every locked operation. [lock_observe] is installed
    on the rwlock for contention profiling, as in {!Directory.create}. *)
val create :
  ?lock_overhead:float ->
  ?charge:(float -> unit) ->
  ?lock_observe:(kind:[ `Read | `Write ] -> wait:float -> depth:int -> unit) ->
  unit ->
  t

(** [probe t ~now key] is the live meta stored for [key], under a read
    lock. Expired metas are treated as absent but not removed (the cache
    owner's purge daemon announces the delete, as in replicated mode). *)
val probe : t -> now:float -> string -> Meta.t option

(** [insert t meta] records an announcement under the write lock.
    Announcements are reconciled newest-wins on [Meta.created] (a handoff
    re-announcement must not clobber a fresher execution):
    [`Inserted] — the key was absent; [`Replaced old] — [meta] superseded
    [old] (when the cache owners differ this also counts a duplicate
    execution, see {!dup_announces}); [`Stale] — a newer entry was kept
    and [meta] was discarded. *)
val insert : t -> Meta.t -> [ `Inserted | `Replaced of Meta.t | `Stale ]

(** [delete t ?owner key] removes [key] under the write lock; [true] if
    removed. With [owner] set, the entry is only removed when its cache
    owner matches — a delete announcement for a copy that has since been
    re-announced by another node must not kill the live entry. *)
val delete : t -> ?owner:int -> string -> bool

(** [purge_owner t ~node] drops every entry cached at [node], under the
    write lock; returns the count. O(entries dropped) via the owner
    index. The sharded analogue of {!Directory.purge_node}: run when
    [node] is declared dead (crash event or fetch-timeout suspicion). *)
val purge_owner : t -> node:int -> int

(** [prune t ~keep] removes every entry whose key fails [keep], without
    locks or simulated charges — the handoff path dropping entries whose
    ring home moved elsewhere runs from plain event callbacks. Returns
    the count removed. *)
val prune : t -> keep:(string -> bool) -> int

(** [reset t] empties the table without locks or charges (a crashing
    node losing its shard is a failure event, not simulated work);
    returns how many entries were dropped. *)
val reset : t -> int

(** [find t key] is the raw stored meta, expired or not, without locks
    or charges — for tests and merge probes. *)
val find : t -> string -> Meta.t option

(** [entries t] lists the stored metas (unordered), uncharged. *)
val entries : t -> Meta.t list

(** [length t] is the number of stored entries — this node's share of
    the directory, the sharded plane's memory metric. *)
val length : t -> int

(** [dup_announces t] counts inserts that replaced an entry announced by
    a {e different} cache owner — duplicate executions of the same key
    on two nodes, the sharded observation point for the paper's second
    kind of false miss. *)
val dup_announces : t -> int

(** [lock_acquisitions t] is the cumulative (read, write) acquisition
    count, comparable with {!Directory.lock_acquisitions}. *)
val lock_acquisitions : t -> int * int
