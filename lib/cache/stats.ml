type t = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable bytes_stored : int;
}

let create () =
  {
    hits = 0;
    misses = 0;
    inserts = 0;
    evictions = 0;
    expirations = 0;
    bytes_stored = 0;
  }

let hit_ratio t =
  let lookups = t.hits + t.misses in
  if lookups = 0 then 0. else float_of_int t.hits /. float_of_int lookups

let merge a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    inserts = a.inserts + b.inserts;
    evictions = a.evictions + b.evictions;
    expirations = a.expirations + b.expirations;
    bytes_stored = a.bytes_stored + b.bytes_stored;
  }

let pp ppf t =
  Format.fprintf ppf
    "hits=%d misses=%d (ratio %.3f) inserts=%d evictions=%d expirations=%d"
    t.hits t.misses (hit_ratio t) t.inserts t.evictions t.expirations
