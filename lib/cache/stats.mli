(** Cache statistics, kept by each local store. *)

type t = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable bytes_stored : int;  (** current resident bytes *)
}

val create : unit -> t

(** [hit_ratio t] is hits / (hits + misses), [0.] when no lookups. *)
val hit_ratio : t -> float

val merge : t -> t -> t
val pp : Format.formatter -> t -> unit
