type entry = { meta : Meta.t; body : string }

type slot = {
  entry : entry;
  mutable last_access : float;
  mutable hits : int;
  inserted : float;
  mutable version : int;  (* bumped on every touch; stale heap items skip *)
  mutable index : int;  (* position in [order], for O(1) random eviction *)
}

type heap_item = { priority : float; h_version : int; h_key : string }

type t = {
  capacity : int;
  capacity_bytes : int option;
  pol : Policy.t;
  clock : unit -> float;
  rng : Sim.Rng.t option;
  table : (string, slot) Hashtbl.t;
  heap : heap_item Sim.Pqueue.t;
  mutable order : string array;  (* dense key array for Random *)
  mutable n_keys : int;
  mutable gdsf_clock : float;
  mutable vgen : int;
      (* store-global version generator: heap items must never match a
         slot they were not pushed for, even across remove/re-insert of
         the same key *)
  stats : Stats.t;
}

(* Equal priorities (common under LFU) break towards the least recently
   touched entry: versions are allocated monotonically per touch/insert. *)
let cmp_item a b =
  let c = Float.compare a.priority b.priority in
  if c <> 0 then c else Int.compare a.h_version b.h_version

let create ~capacity ?capacity_bytes ~policy ~clock ?rng () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be >= 1";
  (match capacity_bytes with
  | Some b when b < 1 ->
      invalid_arg "Store.create: capacity_bytes must be >= 1"
  | Some _ | None -> ());
  (match (policy, rng) with
  | Policy.Random, None ->
      invalid_arg "Store.create: Random policy needs an rng"
  | _ -> ());
  {
    capacity;
    capacity_bytes;
    pol = policy;
    clock;
    rng;
    table = Hashtbl.create (Stdlib.min capacity 4096);
    heap = Sim.Pqueue.create ~cmp:cmp_item;
    order = [||];
    n_keys = 0;
    gdsf_clock = 0.;
    vgen = 0;
    stats = Stats.create ();
  }

let next_version t =
  t.vgen <- t.vgen + 1;
  t.vgen

let slot_priority t slot =
  Policy.priority t.pol ~clock:t.gdsf_clock ~meta:slot.entry.meta
    ~access:
      {
        Policy.last_access = slot.last_access;
        hits = slot.hits;
        inserted = slot.inserted;
      }

let push_heap t slot =
  if t.pol <> Policy.Random then
    Sim.Pqueue.push t.heap
      {
        priority = slot_priority t slot;
        h_version = slot.version;
        h_key = slot.entry.meta.Meta.key;
      }

(* Dense key array bookkeeping (swap-remove). *)
let order_add t key =
  if t.n_keys = Array.length t.order then begin
    let ncap = Stdlib.max 16 (2 * Array.length t.order) in
    let narr = Array.make ncap "" in
    Array.blit t.order 0 narr 0 t.n_keys;
    t.order <- narr
  end;
  t.order.(t.n_keys) <- key;
  t.n_keys <- t.n_keys + 1;
  t.n_keys - 1

let order_remove t idx =
  let last = t.n_keys - 1 in
  if idx <> last then begin
    let moved = t.order.(last) in
    t.order.(idx) <- moved;
    (match Hashtbl.find_opt t.table moved with
    | Some s -> s.index <- idx
    | None -> assert false)
  end;
  t.n_keys <- last

let delete_slot t slot =
  Hashtbl.remove t.table slot.entry.meta.Meta.key;
  t.stats.Stats.bytes_stored <-
    t.stats.Stats.bytes_stored - slot.entry.meta.Meta.size;
  order_remove t slot.index;
  slot.version <- next_version t (* invalidate heap items *)

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some slot ->
      delete_slot t slot;
      true

let remove_matching t pred =
  let victims =
    Hashtbl.fold
      (fun key slot acc -> if pred key then slot :: acc else acc)
      t.table []
  in
  List.map
    (fun slot ->
      delete_slot t slot;
      slot.entry.meta)
    victims

let expired_now t slot = Meta.expired slot.entry.meta ~now:(t.clock ())

let drop_expired t slot =
  delete_slot t slot;
  t.stats.Stats.expirations <- t.stats.Stats.expirations + 1

let peek t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some slot ->
      if expired_now t slot then begin
        drop_expired t slot;
        None
      end
      else Some slot.entry

let lookup t key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.stats.Stats.misses <- t.stats.Stats.misses + 1;
      None
  | Some slot ->
      if expired_now t slot then begin
        drop_expired t slot;
        t.stats.Stats.misses <- t.stats.Stats.misses + 1;
        None
      end
      else begin
        slot.last_access <- t.clock ();
        slot.hits <- slot.hits + 1;
        slot.version <- next_version t;
        push_heap t slot;
        t.stats.Stats.hits <- t.stats.Stats.hits + 1;
        Some slot.entry
      end

(* Pop heap items until one still describes a live, untouched slot. *)
let rec heap_victim t =
  match Sim.Pqueue.pop t.heap with
  | None -> None
  | Some item -> (
      match Hashtbl.find_opt t.table item.h_key with
      | Some slot when slot.version = item.h_version -> Some (item, slot)
      | Some _ | None -> heap_victim t)

let evict_one t =
  let victim =
    match t.pol with
    | Policy.Random -> (
        match t.rng with
        | None -> assert false
        | Some rng ->
            if t.n_keys = 0 then None
            else
              let idx = Sim.Rng.int rng t.n_keys in
              Hashtbl.find_opt t.table t.order.(idx))
    | _ -> (
        match heap_victim t with
        | None -> None
        | Some (item, slot) ->
            if Policy.uses_clock t.pol then t.gdsf_clock <- item.priority;
            Some slot)
  in
  match victim with
  | None -> None
  | Some slot ->
      delete_slot t slot;
      t.stats.Stats.evictions <- t.stats.Stats.evictions + 1;
      Some slot.entry.meta

let insert t meta body =
  let key = meta.Meta.key in
  (* Replacing an existing entry never needs eviction. *)
  ignore (remove t key : bool);
  let evicted = ref [] in
  let over_bytes () =
    match t.capacity_bytes with
    | Some cap ->
        Hashtbl.length t.table > 0
        && t.stats.Stats.bytes_stored + meta.Meta.size > cap
    | None -> false
  in
  while Hashtbl.length t.table >= t.capacity || over_bytes () do
    match evict_one t with
    | Some m -> evicted := m :: !evicted
    | None -> assert false (* table non-empty implies a victim exists *)
  done;
  let now = t.clock () in
  let slot =
    {
      entry = { meta; body };
      last_access = now;
      hits = 0;
      inserted = now;
      version = next_version t;
      index = -1;
    }
  in
  slot.index <- order_add t key;
  Hashtbl.add t.table key slot;
  push_heap t slot;
  t.stats.Stats.inserts <- t.stats.Stats.inserts + 1;
  t.stats.Stats.bytes_stored <- t.stats.Stats.bytes_stored + meta.Meta.size;
  List.rev !evicted

let purge_expired t =
  let victims =
    Hashtbl.fold
      (fun _ slot acc -> if expired_now t slot then slot :: acc else acc)
      t.table []
  in
  List.map
    (fun slot ->
      drop_expired t slot;
      slot.entry.meta)
    victims

let clear t =
  let n = Hashtbl.length t.table in
  let victims = Hashtbl.fold (fun _ slot acc -> slot :: acc) t.table [] in
  List.iter (fun slot -> delete_slot t slot) victims;
  Sim.Pqueue.clear t.heap;
  n

let mem t key = match peek t key with Some _ -> true | None -> false
let length t = Hashtbl.length t.table
let capacity t = t.capacity
let capacity_bytes t = t.capacity_bytes
let bytes t = t.stats.Stats.bytes_stored

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare

(* Candidates for proactive refresh: live entries whose expiry falls
   within (now, now + horizon], with the access statistics the refresh
   daemon filters on. Read-only — no touch, no stats — and sorted by
   (expiry, key) so iteration order is deterministic regardless of
   hash-table layout. *)
type candidate = {
  c_entry : entry;
  c_last_access : float;
  c_hits : int;
  c_expires : float;
}

let expiring t ~now ~horizon =
  Hashtbl.fold
    (fun _ slot acc ->
      match slot.entry.meta.Meta.expires with
      | Some e when e > now && e -. now <= horizon ->
          {
            c_entry = slot.entry;
            c_last_access = slot.last_access;
            c_hits = slot.hits;
            c_expires = e;
          }
          :: acc
      | Some _ | None -> acc)
    t.table []
  |> List.sort (fun a b ->
         let c = Float.compare a.c_expires b.c_expires in
         if c <> 0 then c
         else
           String.compare a.c_entry.meta.Meta.key b.c_entry.meta.Meta.key)

let stats t = t.stats
let policy t = t.pol
