(** Bounded local result cache of one Swala node.

    Holds the cached bodies (standing in for the per-entry disk files of
    §4.1) together with their meta-data, enforces an entry-count capacity
    with a pluggable replacement {!Policy}, and applies TTL expiry. All
    operations are O(log n) amortised via a lazily-invalidated priority
    heap; [Random] replacement uses an O(1) indexed key table instead.

    The store is purely a data structure: it never blocks, so it can be used
    from simulated processes and plain test code alike. Time is supplied by
    the [clock] function given at creation. *)

type t

type entry = { meta : Meta.t; body : string }

val create :
  capacity:int -> ?capacity_bytes:int -> policy:Policy.t ->
  clock:(unit -> float) -> ?rng:Sim.Rng.t -> unit -> t
(** [capacity] is the maximum number of entries ([>= 1]);
    [capacity_bytes] optionally also bounds the total body bytes (entries
    are evicted until both bounds hold; a single entry larger than the
    byte bound still resides alone). [rng] is required for [Policy.Random]
    and ignored otherwise. *)

(** [lookup t key] returns the entry and updates recency/frequency, or
    [None] (counting a miss). An entry past its expiry is dropped and
    reported as a miss (+1 expiration). *)
val lookup : t -> string -> entry option

(** [peek t key] is {!lookup} without touching access statistics or
    counting hit/miss; expired entries still return [None]. *)
val peek : t -> string -> entry option

(** [insert t meta body] adds or replaces; evicts per policy when full.
    Returns the evicted metas (oldest victim first) so the caller can
    broadcast the corresponding delete messages. *)
val insert : t -> Meta.t -> string -> Meta.t list

(** [remove t key] deletes an entry; [true] if present. Used when a remote
    delete broadcast arrives or consistency demands invalidation. *)
val remove : t -> string -> bool

(** [remove_matching t pred] deletes every entry whose key satisfies
    [pred]; returns the removed metas. This is the invalidation hook:
    application-driven and source-monitoring invalidation drop all results
    of an affected script in one sweep. *)
val remove_matching : t -> (string -> bool) -> Meta.t list

(** [purge_expired t] drops every entry past its expiry (the cacher
    module's third daemon thread); returns their metas. *)
val purge_expired : t -> Meta.t list

(** [clear t] drops every entry at once, returning how many were held.
    This models losing the cache wholesale (a node crash): unlike
    {!remove_matching} it does not enumerate victims, and it counts
    neither evictions nor expirations. *)
val clear : t -> int

(** A proactive-refresh candidate: the live entry plus the access
    statistics the refresh daemon filters on ([c_expires] is the entry's
    absolute expiry, always set for candidates). *)
type candidate = {
  c_entry : entry;
  c_last_access : float;
  c_hits : int;
  c_expires : float;
}

(** [expiring t ~now ~horizon] lists the entries expiring within
    [(now, now + horizon]], sorted by (expiry, key) for deterministic
    iteration. Read-only: touches no access statistics and counts
    nothing; already-expired entries are not listed (the purge daemon
    owns those). *)
val expiring : t -> now:float -> horizon:float -> candidate list

val mem : t -> string -> bool
val length : t -> int
val capacity : t -> int
val capacity_bytes : t -> int option
val bytes : t -> int
val keys : t -> string list
val stats : t -> Stats.t
val policy : t -> Policy.t
