type demand =
  | Fixed of float
  | Lognormal of { mean : float; cv : float }
  | Uniform of { lo : float; hi : float }
  | From_query of { default : float }

type t = { fork_exec : float; demand : demand; output_bytes : int }

let make ?(fork_exec = 0.03) ?(output_bytes = 4096) demand =
  if fork_exec < 0. then invalid_arg "Cost.make: negative fork_exec";
  if output_bytes < 0 then invalid_arg "Cost.make: negative output size";
  (match demand with
  | Fixed d when d < 0. -> invalid_arg "Cost.make: negative demand"
  | Lognormal { mean; cv } when mean <= 0. || cv < 0. ->
      invalid_arg "Cost.make: bad lognormal parameters"
  | Uniform { lo; hi } when lo < 0. || hi < lo ->
      invalid_arg "Cost.make: bad uniform parameters"
  | From_query { default } when default < 0. ->
      invalid_arg "Cost.make: negative default demand"
  | Fixed _ | Lognormal _ | Uniform _ | From_query _ -> ());
  { fork_exec; demand; output_bytes }

let sample_demand t rng =
  match t.demand with
  | Fixed d -> d
  | Lognormal { mean; cv } -> Sim.Dist.lognormal_mean_cv rng ~mean ~cv
  | Uniform { lo; hi } -> Sim.Dist.uniform rng lo hi
  | From_query { default } -> default

let query_float query name =
  match List.assoc_opt name query with
  | Some v -> float_of_string_opt v
  | None -> None

let demand_for t rng ~query =
  match t.demand with
  | From_query { default } -> (
      match query_float query "xd" with
      | Some d when d >= 0. -> d
      | Some _ | None -> default)
  | Fixed _ | Lognormal _ | Uniform _ -> sample_demand t rng

let output_bytes_for t ~query =
  match query_float query "xb" with
  | Some b when b >= 0. -> int_of_float b
  | Some _ | None -> t.output_bytes

let mean_demand t =
  match t.demand with
  | Fixed d -> d
  | Lognormal { mean; _ } -> mean
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | From_query { default } -> default
