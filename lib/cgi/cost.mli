(** CGI cost model.

    The paper's central observation is the cost structure of dynamic
    requests: a CGI costs a fixed operating-system startup overhead
    (fork + exec; significant, per their Figure 3 experiment) plus a CPU
    demand that is typically orders of magnitude larger than a file fetch.
    Output size matters only for transmission. This module describes those
    costs; the server model charges them against the node's simulated CPU. *)

(** CPU demand of one execution, in dedicated-CPU seconds. *)
type demand =
  | Fixed of float  (** deterministic demand *)
  | Lognormal of { mean : float; cv : float }
      (** heavy-ish tail, parameterised by mean and coefficient of
          variation *)
  | Uniform of { lo : float; hi : float }
  | From_query of { default : float }
      (** trace-replay hook: the demand is carried in the request's ["xd"]
          query parameter (falling back to [default]), so replaying a
          recorded trace reproduces the recorded service times exactly *)

type t = {
  fork_exec : float;  (** per-invocation OS startup overhead, seconds *)
  demand : demand;
  output_bytes : int;  (** size of the generated document *)
}

(** [make ?fork_exec ?output_bytes demand]. Default [fork_exec] is
    [0.03 s] — the measured-scale cost of fork+exec+pipe setup on the
    paper's era of hardware; default output is 4 KiB of HTML. *)
val make : ?fork_exec:float -> ?output_bytes:int -> demand -> t

(** [sample_demand t rng] draws the CPU demand for one execution
    (deterministic variants ignore [rng]; [From_query] yields its
    default — use {!demand_for} when the request's query is at hand). *)
val sample_demand : t -> Sim.Rng.t -> float

(** [demand_for t rng ~query] is {!sample_demand} except that a
    [From_query] demand reads the ["xd"] parameter from [query]. *)
val demand_for : t -> Sim.Rng.t -> query:(string * string) list -> float

(** [output_bytes_for t ~query] is [t.output_bytes] unless the ["xb"]
    replay parameter overrides it. *)
val output_bytes_for : t -> query:(string * string) list -> int

(** [mean_demand t] is the expectation of {!sample_demand}. *)
val mean_demand : t -> float
