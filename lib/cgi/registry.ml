type target =
  | Cgi_script of Script.t
  | Static_file of { path : string; bytes : int }

type t = {
  scripts : (string, Script.t) Hashtbl.t;
  files : (string, int) Hashtbl.t;
}

let create () = { scripts = Hashtbl.create 64; files = Hashtbl.create 64 }

let register t (script : Script.t) =
  Hashtbl.replace t.scripts script.Script.name script

let register_file t ~path ~bytes =
  if bytes < 0 then invalid_arg "Registry.register_file: negative size";
  Hashtbl.replace t.files path bytes

let resolve t path =
  match Hashtbl.find_opt t.scripts path with
  | Some s -> Some (Cgi_script s)
  | None -> (
      match Hashtbl.find_opt t.files path with
      | Some bytes -> Some (Static_file { path; bytes })
      | None -> None)

let find_script t name = Hashtbl.find_opt t.scripts name

let scripts t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.scripts []
  |> List.sort (fun a b -> String.compare a.Script.name b.Script.name)

let file_count t = Hashtbl.length t.files
