(** Registry mapping URL paths to CGI programs, and static file metadata.

    A Swala node consults the registry to classify an incoming request:
    a path registered as a script is executed through the CGI machinery,
    a path registered as a file is served from the (simulated) file system,
    anything else is a 404. *)

type t

val create : unit -> t

(** [register t script] binds [script.name]; re-registering replaces. *)
val register : t -> Script.t -> unit

(** [register_file t ~path ~bytes] declares a static document. *)
val register_file : t -> path:string -> bytes:int -> unit

type target =
  | Cgi_script of Script.t
  | Static_file of { path : string; bytes : int }

(** [resolve t path] classifies a decoded request path. *)
val resolve : t -> string -> target option

val find_script : t -> string -> Script.t option
val scripts : t -> Script.t list
val file_count : t -> int
