type t = {
  name : string;
  cost : Cost.t;
  cacheable : bool;
  ttl : float option;
  failure_rate : float;
  sources : string list;
}

let make ?(cacheable = true) ?(ttl = None) ?(failure_rate = 0.) ?(sources = [])
    ~name cost =
  if String.length name = 0 || name.[0] <> '/' then
    invalid_arg "Script.make: name must be an absolute path";
  if failure_rate < 0. || failure_rate > 1. then
    invalid_arg "Script.make: failure_rate out of [0,1]";
  { name; cost; cacheable; ttl; failure_rate; sources }

let null =
  make ~name:"/cgi-bin/nullcgi"
    (Cost.make ~output_bytes:64 (Cost.Fixed 0.))

(* Deterministic body: experiments compare bodies fetched from cache with
   bodies from re-execution, so identical keys must yield identical text. *)
let output_sized t ~key ~bytes =
  let h = Hashtbl.hash (t.name, key) in
  let payload_len = Stdlib.max 0 (bytes - 96) in
  let buf = Buffer.create (payload_len + 96) in
  Buffer.add_string buf "<html><body><!-- ";
  Buffer.add_string buf t.name;
  Buffer.add_string buf (Printf.sprintf " h=%08x -->" h);
  for i = 0 to payload_len - 1 do
    (* Cheap deterministic filler. *)
    Buffer.add_char buf (Char.chr (32 + ((h + i) mod 95)))
  done;
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

let output t ~key = output_sized t ~key ~bytes:t.cost.Cost.output_bytes
