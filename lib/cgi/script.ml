type t = {
  name : string;
  cost : Cost.t;
  cacheable : bool;
  ttl : float option;
  failure_rate : float;
  sources : string list;
}

let make ?(cacheable = true) ?(ttl = None) ?(failure_rate = 0.) ?(sources = [])
    ~name cost =
  if String.length name = 0 || name.[0] <> '/' then
    invalid_arg "Script.make: name must be an absolute path";
  if failure_rate < 0. || failure_rate > 1. then
    invalid_arg "Script.make: failure_rate out of [0,1]";
  { name; cost; cacheable; ttl; failure_rate; sources }

let null =
  make ~name:"/cgi-bin/nullcgi"
    (Cost.make ~output_bytes:64 (Cost.Fixed 0.))

(* The filler at offset [i] is [32 + (h + i) mod 95] — one full cycle of
   the printable ASCII range, phase-shifted by the key hash. Rather than
   computing it per character, blit 95-byte windows out of two
   concatenated cycles: [pattern.[j] = 32 + j mod 95] for [j < 190], so
   the window starting at [h mod 95] spells the whole body. This is the
   bulk of every simulated CGI execution (bodies are kilobytes), and
   blitting is ~50x cheaper than the per-char loop it replaces. *)
let pattern =
  String.init 190 (fun j -> Char.chr (32 + (j mod 95)))

(* Deterministic body: experiments compare bodies fetched from cache with
   bodies from re-execution, so identical keys must yield identical text. *)
let output_sized t ~key ~bytes =
  let h = Hashtbl.hash (t.name, key) in
  let payload_len = Stdlib.max 0 (bytes - 96) in
  let buf = Buffer.create (payload_len + 96) in
  Buffer.add_string buf "<html><body><!-- ";
  Buffer.add_string buf t.name;
  Buffer.add_string buf (Printf.sprintf " h=%08x -->" h);
  let start = h mod 95 in
  let i = ref 0 in
  while payload_len - !i >= 95 do
    Buffer.add_substring buf pattern start 95;
    i := !i + 95
  done;
  Buffer.add_substring buf pattern start (payload_len - !i);
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

let output t ~key = output_sized t ~key ~bytes:t.cost.Cost.output_bytes
