(** A registered CGI program.

    [cacheable] mirrors Swala's configuration file: the administrator marks
    which programs may have their results cached (scripts whose output
    depends on the requesting user must not be). [ttl] is the per-CGI
    Time-To-Live that implements the paper's weak content consistency. *)

type t = {
  name : string;  (** URL path, e.g. ["/cgi-bin/query"] *)
  cost : Cost.t;
  cacheable : bool;
  ttl : float option;  (** [None] = never expires *)
  failure_rate : float;  (** probability an execution exits non-zero *)
  sources : string list;
      (** input files this program reads; when one changes, every cached
          result of the program is stale (the Vahdat-Anderson transparent
          result-caching model the paper cites as future work) *)
}

val make :
  ?cacheable:bool -> ?ttl:float option -> ?failure_rate:float ->
  ?sources:string list -> name:string -> Cost.t -> t

(** [null] is WebStone's [nullcgi]: no work, under a hundred bytes of
    output. Running it measures pure invocation overhead (paper §5.1). *)
val null : t

(** [output t ~key] deterministically renders the body this script produces
    for a given canonical request key, sized per the script's cost model. *)
val output : t -> key:string -> string

(** [output_sized t ~key ~bytes] renders a body of approximately [bytes]
    bytes (used when a trace overrides the script's default output size). *)
val output_sized : t -> key:string -> bytes:int -> string
