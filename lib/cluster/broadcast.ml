let info ?(should_abort = fun () -> false) ?(span = 0) net endpoints ~src msg =
  let bytes = Msg.info_bytes msg in
  let sent = ref 0 in
  (* The fan-out pays one NIC transmission per peer, so simulated time
     passes between sends — a crash event can land mid-loop. Checking the
     abort predicate before each send makes the broadcast genuinely
     partial: peers already messaged keep the update, the rest never see
     it (as opposed to the network dropping the remaining sends, which
     would count as drops). *)
  (try
     Array.iter
       (fun (ep : Endpoint.t) ->
         if should_abort () then raise Exit;
         if ep.Endpoint.node <> src then begin
           Sim.Net.send net ~src ~dst:ep.Endpoint.node ~bytes
             ep.Endpoint.info_mb
             { Msg.info = msg; ack = None; span };
           incr sent
         end)
       endpoints
   with Exit -> ());
  !sent

let info_sync ?(span = 0) net endpoints ~src msg =
  let bytes = Msg.info_bytes msg in
  let ack = Sim.Mailbox.create () in
  let sent = ref 0 in
  Array.iter
    (fun (ep : Endpoint.t) ->
      if ep.Endpoint.node <> src then begin
        Sim.Net.send net ~src ~dst:ep.Endpoint.node ~bytes ep.Endpoint.info_mb
          { Msg.info = msg; ack = Some (src, ack); span };
        incr sent
      end)
    endpoints;
  for _ = 1 to !sent do
    Sim.Mailbox.recv ack
  done;
  !sent

let info_to ?(span = 0) net endpoints ~src ~dst msg =
  match
    Array.find_opt (fun (ep : Endpoint.t) -> ep.Endpoint.node = dst) endpoints
  with
  | None -> invalid_arg "Broadcast.info_to: unknown destination endpoint"
  | Some ep ->
      Sim.Net.send net ~src ~dst ~bytes:(Msg.info_bytes msg) ep.Endpoint.info_mb
        { Msg.info = msg; ack = None; span }

let lookup net endpoints ~src ~home req =
  match
    Array.find_opt (fun (ep : Endpoint.t) -> ep.Endpoint.node = home) endpoints
  with
  | None -> invalid_arg "Broadcast.lookup: unknown home endpoint"
  | Some ep ->
      Sim.Net.send net ~src ~dst:home
        ~bytes:(Msg.lookup_request_bytes req)
        ep.Endpoint.lookup_mb req

let sync net endpoints ~src ~peer req =
  match
    Array.find_opt (fun (ep : Endpoint.t) -> ep.Endpoint.node = peer) endpoints
  with
  | None -> invalid_arg "Broadcast.sync: unknown peer endpoint"
  | Some ep ->
      Sim.Net.send net ~src ~dst:peer
        ~bytes:(Msg.sync_request_bytes req)
        ep.Endpoint.sync_mb req

let fetch net endpoints ~src ~owner req =
  match
    Array.find_opt (fun (ep : Endpoint.t) -> ep.Endpoint.node = owner) endpoints
  with
  | None -> invalid_arg "Broadcast.fetch: unknown owner endpoint"
  | Some ep ->
      Sim.Net.send net ~src ~dst:owner
        ~bytes:(Msg.fetch_request_bytes req)
        ep.Endpoint.data_mb req

let fetch_sync ?(span = 0) net endpoints ~src ~owner ~timeout ~retries ~backoff
    key =
  if timeout <= 0. then invalid_arg "Broadcast.fetch_sync: timeout must be > 0";
  if retries < 0 then invalid_arg "Broadcast.fetch_sync: retries must be >= 0";
  if backoff < 1. then invalid_arg "Broadcast.fetch_sync: backoff must be >= 1";
  let rec attempt n timeout =
    (* A fresh reply mailbox per attempt: a reply to an abandoned attempt
       must not satisfy a later one out of order. *)
    let reply = Sim.Mailbox.create () in
    fetch net endpoints ~src ~owner { Msg.key; requester = src; reply; span };
    match Sim.Mailbox.recv_timeout reply ~timeout with
    | Some r -> (Some r, n)
    | None -> if n < retries then attempt (n + 1) (timeout *. backoff)
              else (None, n)
  in
  attempt 0 timeout
