let info net endpoints ~src msg =
  let bytes = Msg.info_bytes msg in
  let sent = ref 0 in
  Array.iter
    (fun (ep : Endpoint.t) ->
      if ep.Endpoint.node <> src then begin
        Sim.Net.send net ~src ~dst:ep.Endpoint.node ~bytes ep.Endpoint.info_mb
          { Msg.info = msg; ack = None };
        incr sent
      end)
    endpoints;
  !sent

let info_sync net endpoints ~src msg =
  let bytes = Msg.info_bytes msg in
  let ack = Sim.Mailbox.create () in
  let sent = ref 0 in
  Array.iter
    (fun (ep : Endpoint.t) ->
      if ep.Endpoint.node <> src then begin
        Sim.Net.send net ~src ~dst:ep.Endpoint.node ~bytes ep.Endpoint.info_mb
          { Msg.info = msg; ack = Some (src, ack) };
        incr sent
      end)
    endpoints;
  for _ = 1 to !sent do
    Sim.Mailbox.recv ack
  done;
  !sent

let fetch net endpoints ~src ~owner req =
  match
    Array.find_opt (fun (ep : Endpoint.t) -> ep.Endpoint.node = owner) endpoints
  with
  | None -> invalid_arg "Broadcast.fetch: unknown owner endpoint"
  | Some ep ->
      Sim.Net.send net ~src ~dst:owner
        ~bytes:(Msg.fetch_request_bytes req)
        ep.Endpoint.data_mb req
