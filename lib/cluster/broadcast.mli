(** Asynchronous directory-information broadcast.

    When a node inserts or deletes a cache entry it sends the update to
    every peer without waiting for acknowledgements — the paper's weak
    inter-node consistency protocol (no two-phase commit, no global locks;
    replicas may briefly diverge, producing false hits/misses). *)

(** [info ?should_abort net endpoints ~src msg] transmits [msg] from node
    [src] to every other endpoint (in endpoint order), fire-and-forget.
    The caller's simulated thread pays the (tiny) NIC transmission times;
    deliveries happen after the network latency. Returns the number of
    peers actually messaged.

    [should_abort] (default: never) is consulted before each per-peer
    send; once it returns [true] the remaining peers are skipped. The
    server passes the node's liveness so that a crash landing mid-fan-out
    leaves a {e genuinely partial} replica update — some peers applied the
    insert, the rest never heard of it — which is the divergence the
    paper's weak-consistency model allows and the anti-entropy daemon
    repairs. Must run in a process.

    [span] (default [0] = untraced) is stamped into each envelope so
    receivers can parent their apply spans on the originating request. *)
val info :
  ?should_abort:(unit -> bool) ->
  ?span:int ->
  Sim.Net.t -> Endpoint.t array -> src:int -> Msg.info -> int

(** [info_to net endpoints ~src ~dst msg] unicasts one directory update
    to [dst]'s info receiver — the sharded plane's point-to-point
    announcement path (an insert/delete travels to the key's shard home
    only, instead of fanning out to every peer). Fire-and-forget, same
    envelope and receiver daemon as {!info}. Must run in a process.
    [span] as in {!info}. *)
val info_to :
  ?span:int ->
  Sim.Net.t -> Endpoint.t array -> src:int -> dst:int -> Msg.info -> unit

(** [lookup net endpoints ~src ~home req] sends a forwarded directory
    lookup to [home]'s lookup server (sharded plane). The reply arrives
    in [req.lreply]; on timeout the requester abandons the mailbox and
    executes locally. Must run in a process. *)
val lookup :
  Sim.Net.t -> Endpoint.t array -> src:int -> home:int ->
  Msg.lookup_request -> unit

(** [sync net endpoints ~src ~peer req] sends one anti-entropy digest
    exchange request to [peer]'s sync responder. Fire-and-forget like
    {!info}; the reply (if the peer is up and reachable) arrives in
    [req.sync_reply]. Must run in a process. *)
val sync :
  Sim.Net.t -> Endpoint.t array -> src:int -> peer:int ->
  Msg.sync_request -> unit

(** [info_sync net endpoints ~src msg] sends [msg] with acknowledgement
    requests and blocks until every peer has applied it — the strong
    protocol of the consistency ablation. Returns the number of peers.
    [span] as in {!info}. *)
val info_sync :
  ?span:int ->
  Sim.Net.t -> Endpoint.t array -> src:int -> Msg.info -> int

(** [fetch net endpoints ~src ~owner req] sends a data-fetch request to
    [owner]'s data server. *)
val fetch :
  Sim.Net.t -> Endpoint.t array -> src:int -> owner:int ->
  Msg.fetch_request -> unit

(** [fetch_sync net endpoints ~src ~owner ~timeout ~retries ~backoff key]
    is the blocking data-server round-trip with bounded retry: it sends a
    fetch request and waits up to [timeout] simulated seconds for the
    reply; on timeout it retries with the timeout multiplied by [backoff]
    (exponential backoff), up to [retries] additional attempts. Returns
    [(reply, n)] where [n] is the number of retries actually performed;
    [reply] is [None] when every attempt timed out — the caller's cue to
    fall back to local CGI execution (the paper's false-hit path, §4.2,
    now also reachable through message loss or a crashed owner).

    Requires [timeout > 0], [retries >= 0], [backoff >= 1]. Each attempt
    uses a fresh reply mailbox, so a straggling reply to an abandoned
    attempt is ignored rather than mistaken for the current one. Must run
    in a process. [span] as in {!info}, stamped into each attempt's
    request. *)
val fetch_sync :
  ?span:int ->
  Sim.Net.t -> Endpoint.t array -> src:int -> owner:int -> timeout:float ->
  retries:int -> backoff:float -> string -> Msg.fetch_reply option * int
