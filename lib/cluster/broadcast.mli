(** Asynchronous directory-information broadcast.

    When a node inserts or deletes a cache entry it sends the update to
    every peer without waiting for acknowledgements — the paper's weak
    inter-node consistency protocol (no two-phase commit, no global locks;
    replicas may briefly diverge, producing false hits/misses). *)

(** [info net endpoints ~src msg] transmits [msg] from node [src] to every
    other endpoint (in endpoint order), fire-and-forget. The caller's
    simulated thread pays the (tiny) NIC transmission times; deliveries
    happen after the network latency. Returns the number of peers
    messaged. Must run in a process. *)
val info :
  Sim.Net.t -> Endpoint.t array -> src:int -> Msg.info -> int

(** [info_sync net endpoints ~src msg] sends [msg] with acknowledgement
    requests and blocks until every peer has applied it — the strong
    protocol of the consistency ablation. Returns the number of peers. *)
val info_sync :
  Sim.Net.t -> Endpoint.t array -> src:int -> Msg.info -> int

(** [fetch net endpoints ~src ~owner req] sends a data-fetch request to
    [owner]'s data server. *)
val fetch :
  Sim.Net.t -> Endpoint.t array -> src:int -> owner:int ->
  Msg.fetch_request -> unit
