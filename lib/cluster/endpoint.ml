type t = {
  node : int;
  info_mb : Msg.info_envelope Sim.Mailbox.t;
  data_mb : Msg.fetch_request Sim.Mailbox.t;
  sync_mb : Msg.sync_request Sim.Mailbox.t;
  lookup_mb : Msg.lookup_request Sim.Mailbox.t;
}

let make ~node =
  {
    node;
    info_mb = Sim.Mailbox.create ();
    data_mb = Sim.Mailbox.create ();
    sync_mb = Sim.Mailbox.create ();
    lookup_mb = Sim.Mailbox.create ();
  }

let backlog t =
  Sim.Mailbox.length t.info_mb
  + Sim.Mailbox.length t.data_mb
  + Sim.Mailbox.length t.sync_mb
  + Sim.Mailbox.length t.lookup_mb
