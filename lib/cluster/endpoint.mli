(** A node's protocol endpoints: the mailboxes its cacher-module daemons
    listen on, plus its network address. *)

type t = {
  node : int;  (** node id; doubles as the network endpoint id *)
  info_mb : Msg.info_envelope Sim.Mailbox.t;
      (** consumed by the info receiver *)
  data_mb : Msg.fetch_request Sim.Mailbox.t;  (** consumed by the data server *)
  sync_mb : Msg.sync_request Sim.Mailbox.t;
      (** consumed by the anti-entropy responder *)
  lookup_mb : Msg.lookup_request Sim.Mailbox.t;
      (** consumed by the sharded plane's lookup server *)
}

(** [make ~node] allocates fresh mailboxes for [node]'s daemons. *)
val make : node:int -> t

(** [backlog t] is the total number of messages queued across all four
    daemon mailboxes — an O(1) read for the flight recorder's
    protocol-backlog probe. *)
val backlog : t -> int
