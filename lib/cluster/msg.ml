type info =
  | Insert of Cache.Meta.t
  | Delete of { node : int; key : string }
  | Batch of info list
  | Promote of Cache.Meta.t
  | Demote of { key : string }

type info_envelope = {
  info : info;
  ack : (int * unit Sim.Mailbox.t) option;
  span : int;
}

type fetch_reply =
  | Hit of { meta : Cache.Meta.t; body : string }
  | Miss of { key : string }

type fetch_request = {
  key : string;
  requester : int;
  reply : fetch_reply Sim.Mailbox.t;
  span : int;
}

type lookup_reply = Found of Cache.Meta.t | Absent of { key : string }

type lookup_request = {
  lkey : string;
  lrequester : int;
  lreply : lookup_reply Sim.Mailbox.t;
  lspan : int;
}

type digest = { n_entries : int; hash : int }

type sync_reply = { tables : (int * Cache.Meta.t list) list }

type sync_request = {
  from_node : int;
  digests : digest array;
  sync_reply : sync_reply Sim.Mailbox.t;
  span : int;
}

(* Wire-size estimates: key text plus a fixed envelope. *)
let envelope = 64

(* Per-update payload, without the envelope. A batch shares one envelope
   across its updates; each update then costs a 12-byte sub-header plus
   its body, so [info_bytes] amortizes the fixed cost. *)
let rec info_body = function
  | Insert meta | Promote meta -> String.length meta.Cache.Meta.key + 40
  | Delete { key; _ } | Demote { key } -> String.length key
  | Batch updates ->
      List.fold_left (fun acc u -> acc + 12 + info_body u) 0 updates

let info_bytes i = envelope + info_body i

let fetch_request_bytes { key; _ } = envelope + String.length key

let lookup_request_bytes { lkey; _ } = envelope + String.length lkey

let lookup_reply_bytes = function
  | Found meta -> envelope + String.length meta.Cache.Meta.key + 40
  | Absent { key } -> envelope + String.length key

let fetch_reply_bytes = function
  | Hit { meta; body } ->
      envelope + String.length meta.Cache.Meta.key + String.length body
  | Miss { key } -> envelope + String.length key

let sync_request_bytes { digests; _ } = envelope + (12 * Array.length digests)

let sync_reply_bytes { tables } =
  List.fold_left
    (fun acc (_, metas) ->
      List.fold_left
        (fun acc (m : Cache.Meta.t) ->
          acc + 40 + String.length m.Cache.Meta.key)
        (acc + 8) metas)
    envelope tables
