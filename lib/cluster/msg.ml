type info =
  | Insert of Cache.Meta.t
  | Delete of { node : int; key : string }

type info_envelope = {
  info : info;
  ack : (int * unit Sim.Mailbox.t) option;
}

type fetch_reply =
  | Hit of { meta : Cache.Meta.t; body : string }
  | Miss of { key : string }

type fetch_request = {
  key : string;
  requester : int;
  reply : fetch_reply Sim.Mailbox.t;
}

(* Wire-size estimates: key text plus a fixed envelope. *)
let envelope = 64

let info_bytes = function
  | Insert meta -> envelope + String.length meta.Cache.Meta.key + 40
  | Delete { key; _ } -> envelope + String.length key

let fetch_request_bytes { key; _ } = envelope + String.length key

let fetch_reply_bytes = function
  | Hit { meta; body } ->
      envelope + String.length meta.Cache.Meta.key + String.length body
  | Miss { key } -> envelope + String.length key
