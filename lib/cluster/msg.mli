(** Inter-node protocol messages (paper §4.1-4.2).

    Three daemon threads per node consume these: the info receiver applies
    {!info} broadcasts to the local directory replica, the data server
    answers {!fetch_request}s, and the purge thread originates [Delete]
    broadcasts for expired entries. *)

(** Directory maintenance traffic, broadcast after local inserts/deletes. *)
type info =
  | Insert of Cache.Meta.t
  | Delete of { node : int; key : string }

(** What actually travels on the info channel. Under the paper's weak
    protocol [ack] is [None] (fire-and-forget); the synchronous-consistency
    ablation sets it to [(sender, mailbox)], and the receiver acknowledges
    over the network after applying the update, letting the sender block
    until every replica is consistent — the "variation of a two-phase
    commit" §4.2 rejects as too expensive. *)
type info_envelope = {
  info : info;
  ack : (int * unit Sim.Mailbox.t) option;  (** (sender endpoint, inbox) *)
}

(** Reply to a remote-cache fetch. [Miss] is the protocol's "false hit"
    outcome: the entry was deleted at the owner after the requester looked
    it up; the requester then executes the CGI locally (Figure 2). *)
type fetch_reply =
  | Hit of { meta : Cache.Meta.t; body : string }
  | Miss of { key : string }

(** A remote-cache fetch, sent to the owner's data server. The reply
    arrives in [reply]; under a fetch timeout the requester may abandon
    the mailbox and retransmit with a fresh one. *)
type fetch_request = {
  key : string;
  requester : int;  (** endpoint id awaiting the reply *)
  reply : fetch_reply Sim.Mailbox.t;
}

(** Approximate wire sizes, used to charge the network model. *)
val info_bytes : info -> int

(** [fetch_request_bytes r] is the request's approximate wire size. *)
val fetch_request_bytes : fetch_request -> int

(** [fetch_reply_bytes r] is the reply's approximate wire size ([Hit]
    includes the cached body). *)
val fetch_reply_bytes : fetch_reply -> int
