(** Inter-node protocol messages (paper §4.1-4.2).

    Three daemon threads per node consume these: the info receiver applies
    {!info} broadcasts to the local directory replica, the data server
    answers {!fetch_request}s, and the purge thread originates [Delete]
    broadcasts for expired entries. *)

(** Directory maintenance traffic. Under the replicated metadata plane,
    [Insert]/[Delete] are broadcast after local inserts/deletes, and
    [Batch] carries several coalesced updates under one shared envelope
    (Nagle-style batching, see [Core.Server]); receivers apply the
    updates in list order, so a later update to the same key wins.

    Under the sharded plane the same channel carries point-to-point
    announcements instead: [Insert]/[Delete] travel only to the key's
    shard home, and [Promote]/[Demote] are the hotspot-replication
    control messages a home sends its replica set — [Promote] pushes a
    hot key's entry to a ring successor, [Demote] retracts it once the
    key cools. The replicated plane never sends [Promote]/[Demote]. *)
type info =
  | Insert of Cache.Meta.t
  | Delete of { node : int; key : string }
  | Batch of info list
  | Promote of Cache.Meta.t
  | Demote of { key : string }

(** What actually travels on the info channel. Under the paper's weak
    protocol [ack] is [None] (fire-and-forget); the synchronous-consistency
    ablation sets it to [(sender, mailbox)], and the receiver acknowledges
    over the network after applying the update, letting the sender block
    until every replica is consistent — the "variation of a two-phase
    commit" §4.2 rejects as too expensive. *)
type info_envelope = {
  info : info;
  ack : (int * unit Sim.Mailbox.t) option;  (** (sender endpoint, inbox) *)
  span : int;
      (** originating span id for causal tracing ([0] = untraced); carries
          no simulated bytes — it models nothing the 1998 protocol sent *)
}

(** Reply to a remote-cache fetch. [Miss] is the protocol's "false hit"
    outcome: the entry was deleted at the owner after the requester looked
    it up; the requester then executes the CGI locally (Figure 2). *)
type fetch_reply =
  | Hit of { meta : Cache.Meta.t; body : string }
  | Miss of { key : string }

(** A remote-cache fetch, sent to the owner's data server. The reply
    arrives in [reply]; under a fetch timeout the requester may abandon
    the mailbox and retransmit with a fresh one. *)
type fetch_request = {
  key : string;
  requester : int;  (** endpoint id awaiting the reply *)
  reply : fetch_reply Sim.Mailbox.t;
  span : int;  (** originating span id for causal tracing; [0] = untraced *)
}

(** {1 Sharded-plane directory lookups}

    Under the sharded metadata plane a node that is not a key's shard
    home learns who caches the key by asking the home — a blocking
    request/reply round trip, answered by the home's lookup server. *)

(** The home's answer: the live directory entry, or proof of absence
    (the requester's cue to execute locally and announce the result). *)
type lookup_reply = Found of Cache.Meta.t | Absent of { key : string }

(** A forwarded directory lookup, sent to the key's acting shard home.
    Like a fetch, the requester may abandon [lreply] on timeout (home
    crashed or partitioned away) and fall back to local execution. *)
type lookup_request = {
  lkey : string;  (** the cache key being resolved *)
  lrequester : int;  (** endpoint id awaiting the reply *)
  lreply : lookup_reply Sim.Mailbox.t;
  lspan : int;  (** originating span id for causal tracing; [0] = untraced *)
}

(** {1 Anti-entropy (directory repair)}

    Periodic digest exchange between random peers, the lazy repair channel
    that reconverges directory replicas after a partition heals or a
    mid-broadcast crash left a partial update. The paper's weak protocol
    tolerates divergent replicas; anti-entropy bounds how long they stay
    divergent. *)

(** Content summary of one directory table: entry count plus an
    order-independent hash (see [Cache.Directory.digest]). *)
type digest = { n_entries : int; hash : int }

(** The responder's answer: for every table whose digest differed, its
    full entry list. The requester merges each table by recency (newest
    [created] wins per key); anti-entropy never deletes — deletions
    travel on the ordinary broadcast and purge paths. *)
type sync_reply = { tables : (int * Cache.Meta.t list) list }

(** One round's opening message: the requester's per-table digests. The
    reply arrives in [sync_reply]; like a fetch, the requester may abandon
    the mailbox on timeout (peer down or partitioned away). *)
type sync_request = {
  from_node : int;  (** requesting endpoint, for the reply's address *)
  digests : digest array;  (** indexed by table/node id *)
  sync_reply : sync_reply Sim.Mailbox.t;
  span : int;  (** originating span id for causal tracing; [0] = untraced *)
}

(** Approximate wire sizes, used to charge the network model. A [Batch]
    pays one envelope plus a 12-byte sub-header per update, so batching
    amortizes the fixed per-message cost. *)
val info_bytes : info -> int

(** [fetch_request_bytes r] is the request's approximate wire size. *)
val fetch_request_bytes : fetch_request -> int

(** [lookup_request_bytes r] is a forwarded directory lookup's size
    (envelope plus the key text). *)
val lookup_request_bytes : lookup_request -> int

(** [lookup_reply_bytes r] is the home's answer size; [Found] carries a
    meta record like an [Insert]. *)
val lookup_reply_bytes : lookup_reply -> int

(** [fetch_reply_bytes r] is the reply's approximate wire size ([Hit]
    includes the cached body). *)
val fetch_reply_bytes : fetch_reply -> int

(** [sync_request_bytes r] is a digest exchange's opening size (12 bytes
    per table digest plus the envelope). *)
val sync_request_bytes : sync_request -> int

(** [sync_reply_bytes r] is the pull reply's size: each shipped meta costs
    its key plus a fixed record, mirroring [info_bytes]. *)
val sync_reply_bytes : sync_reply -> int
