type result = {
  response : Metrics.Sample.t;
  cgi_response : Metrics.Sample.t;
  file_response : Metrics.Sample.t;
  counters : Metrics.Counter.t;
  per_node_counters : Metrics.Counter.t array;
  duration : float;
  n_requests : int;
  hits : int;
  hit_ratio : float;
  utilisation : float array;
  dir_locks : int * int;
  dir_mode : string;
  dir_entries : int array;
  shard_imbalance : Metrics.Histogram.t;
  forward_wait : Metrics.Histogram.t;
  hit_latency : Metrics.Sample.t;
  store_stats : Cache.Stats.t;
  net_lost : int;
  net_lost_partition : int;
  n_events : int;
  tracer : Metrics.Trace.t option;
  wait_histograms : (string * Metrics.Histogram.t) list;
  tier_response : (string * Metrics.Sample.t) list;
  freshness_mode : string;
  freshness_active : bool;
  staleness : Metrics.Histogram.t;
  timelines : Metrics.Registry.t option;
  health : Metrics.Health.t option;
}

let mean_response r = Metrics.Sample.mean r.response

(* Scenario draws (flash-crowd redirects) come from their own salted root,
   like the fault and anti-entropy planes: enabling a scenario never
   perturbs the workload, CPU, cache or fault streams, and a run without
   one creates no generator at all. *)
let scenario_seed_salt = 0x5CE7A810

(* Split the trace round-robin over the streams, preserving order. *)
let split_streams trace n_streams =
  let streams = Array.make n_streams [] in
  List.iteri
    (fun i item -> streams.(i mod n_streams) <- item :: streams.(i mod n_streams))
    trace;
  Array.map List.rev streams

let run_with cfg ~trace ~n_streams ?warmup ?(assign = fun s -> s mod cfg.Config.n_nodes)
    ?router ?(observe = fun ~time:_ _ -> ()) ~registry () =
  if n_streams < 1 then invalid_arg "Cluster_runner.run: n_streams must be >= 1";
  let scenario = cfg.Config.scenario in
  (* Scenario state, all created only when one is configured. Per-stream
     generators are split from the salted root in stream order, so a
     stream's redirect draws are independent of interleaving. *)
  let scenario_rngs =
    match scenario with
    | None -> [||]
    | Some _ ->
        let root = Sim.Rng.create (cfg.Config.seed lxor scenario_seed_salt) in
        Array.init n_streams (fun _ -> Sim.Rng.split root)
  in
  let arrivals =
    match scenario with
    | None -> [||]
    | Some sc ->
        Workload.Scenario.arrival_times sc ~n:(Workload.Trace.length trace)
  in
  let tiers =
    match scenario with None -> [||] | Some sc -> Workload.Scenario.tiers sc
  in
  let tier_of_stream =
    match scenario with
    | Some sc when Array.length tiers > 0 ->
        Array.init n_streams (fun stream ->
            Workload.Scenario.tier_of_stream sc ~n_streams ~stream)
    | Some _ | None -> [||]
  in
  let client_extra_latency =
    match scenario with
    | Some sc when Array.length tiers > 0 ->
        Some
          (Array.map
             (fun t -> Workload.Scenario.tier_extra_latency sc t)
             tier_of_stream)
    | Some _ | None -> None
  in
  let tier_samples =
    Array.map (fun _ -> Metrics.Sample.create ()) tiers
  in
  let flash_redirects = ref 0 in
  let engine = Sim.Engine.create () in
  let cluster =
    Server.create_cluster engine cfg ~registry ?client_extra_latency
      ~n_client_endpoints:n_streams
  in
  let router = Option.map Router.create router in
  let tracer = Server.tracer cluster in
  let client_track = cfg.Config.n_nodes in
  let streams = split_streams trace n_streams in
  let response = Metrics.Sample.create () in
  let cgi_response = Metrics.Sample.create () in
  let file_response = Metrics.Sample.create () in
  let latch = Sim.Latch.create n_streams in
  let finished_at = ref 0. in
  Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      (match warmup with Some f -> f cluster | None -> ());
      (* Release the client streams only after warm-up completes. *)
      Array.iteri
        (fun s items ->
          let client = cfg.Config.n_nodes + s in
          let pinned = assign s in
          Sim.Engine.spawn_child (fun () ->
              List.iteri
                (fun p item ->
                  (* Diurnal pacing: hold the p-th item of this stream
                     until its envelope release time (global trace index
                     p * n_streams + s — the inverse of [split_streams]).
                     A stream running behind its envelope just stays
                     closed-loop. *)
                  (if Array.length arrivals > 0 then
                     let g = (p * n_streams) + s in
                     if g < Array.length arrivals then begin
                       let release = arrivals.(g) in
                       let now = Sim.Engine.now () in
                       if release > now then Sim.Engine.delay (release -. now)
                     end);
                  (* Flash crowd: re-point this item onto the crowd head
                     with the intensity at (post-pacing) virtual now. *)
                  let item =
                    match scenario with
                    | None -> item
                    | Some sc -> (
                        match
                          Workload.Scenario.rewrite sc ~rng:scenario_rngs.(s)
                            ~now:(Sim.Engine.now ()) item
                        with
                        | Some item' ->
                            incr flash_redirects;
                            item'
                        | None -> item)
                  in
                  let req = Workload.Trace.to_request item in
                  let t0 = Sim.Engine.now () in
                  (* Each client request roots its own span tree; the id
                     rides the fiber-local slot into [Server.submit] and
                     from there across the cluster. *)
                  let root =
                    match tracer with
                    | None -> 0
                    | Some tr ->
                        let id =
                          Metrics.Trace.begin_span tr ~track:client_track
                            ~name:"request"
                            ~attrs:
                              [
                                ("path", req.Http.Request.uri.Http.Uri.path);
                                ("stream", string_of_int s);
                              ]
                            ()
                        in
                        Sim.Engine.set_local id;
                        id
                  in
                  let (_ : Http.Response.t) =
                    match router with
                    | Some r ->
                        (* The dispatcher path: routed, and resubmitted to a
                           survivor on a 503 from a node that just crashed. *)
                        let target = Router.pick r cluster ~stream:s req in
                        Router.submit r cluster ~client ~node:target req
                    | None -> Server.submit cluster ~client ~node:pinned req
                  in
                  (match tracer with
                  | None -> ()
                  | Some tr ->
                      Metrics.Trace.end_span tr root;
                      Sim.Engine.set_local 0);
                  let dt = Sim.Engine.now () -. t0 in
                  Metrics.Sample.add response dt;
                  Server.observe_response cluster dt;
                  observe ~time:(Sim.Engine.now ()) dt;
                  if Array.length tier_of_stream > 0 then
                    Metrics.Sample.add tier_samples.(tier_of_stream.(s)) dt;
                  if Workload.Trace.is_cgi item then
                    Metrics.Sample.add cgi_response dt
                  else Metrics.Sample.add file_response dt)
                items;
              Sim.Latch.arrive latch))
        streams;
      Sim.Latch.wait latch;
      finished_at := Sim.Engine.now ();
      Server.stop cluster);
  Sim.Engine.run engine;
  let duration = !finished_at in
  (* Hint statistics live in the directory; surface them as counters so
     runs with hints on report them alongside everything else (absent
     when zero, keeping hint-less counter sets unchanged). Same for the
     sharded plane's lookup-cache outcomes. *)
  Server.record_hint_stats cluster;
  Server.record_shard_stats cluster;
  (* Per-node metadata footprint at run end: replica size (replicated)
     or shard partition + lookup cache (sharded) — the memory metric and
     load-balance diagnostic of the dirmode ablation. *)
  let dir_entries =
    Array.init (Server.n_nodes cluster) (fun i ->
        Cache.Metadata_plane.entries
          (Server.node_plane (Server.node cluster i)))
  in
  let shard_imbalance =
    let h =
      Metrics.Histogram.create ~bounds:(Metrics.Histogram.pow2_bounds ()) ()
    in
    Array.iter (fun n -> Metrics.Histogram.add h (float_of_int n)) dir_entries;
    h
  in
  let per_node_counters =
    Array.init (Server.n_nodes cluster) (fun i ->
        Server.node_counters (Server.node cluster i))
  in
  let counters = Server.merged_counters cluster in
  (* The router lives client-side; fold its retry count into the cluster
     totals so one table carries the whole fault story. *)
  (match router with
  | Some r when Router.retries r > 0 ->
      Metrics.Counter.add counters Server.K.router_retries (Router.retries r)
  | Some _ | None -> ());
  (* Scenario counters are client-side too: flash redirects and per-tier
     request counts, absent when zero/unconfigured so scenario-free runs
     keep their counter sets unchanged. *)
  if !flash_redirects > 0 then
    Metrics.Counter.add counters "scenario_flash_redirects" !flash_redirects;
  (match scenario with
  | Some sc when Array.length tiers > 0 ->
      Array.iteri
        (fun i sample ->
          Metrics.Counter.add counters
            ("tier_" ^ Workload.Scenario.tier_name sc i ^ "_requests")
            (Metrics.Sample.count sample))
        tier_samples
  | Some _ | None -> ());
  let hits = Server.total_hits cluster in
  let n_cgi =
    Metrics.Counter.get counters Server.K.cgi_execs
    + Metrics.Counter.get counters Server.K.hit_local
    + Metrics.Counter.get counters Server.K.hit_remote
  in
  {
    response;
    cgi_response;
    file_response;
    counters;
    per_node_counters;
    duration;
    n_requests = Workload.Trace.length trace;
    hits;
    hit_ratio = (if n_cgi = 0 then 0. else float_of_int hits /. float_of_int n_cgi);
    utilisation =
      Array.init (Server.n_nodes cluster) (fun i ->
          Sim.Cpu.utilisation
            (Server.node_cpu (Server.node cluster i))
            ~elapsed:(Stdlib.max duration 1e-9));
    dir_locks =
      (let rd = ref 0 and wr = ref 0 in
       for i = 0 to Server.n_nodes cluster - 1 do
         let r, w =
           Cache.Metadata_plane.lock_acquisitions
             (Server.node_plane (Server.node cluster i))
         in
         rd := !rd + r;
         wr := !wr + w
       done;
       (!rd, !wr));
    dir_mode = Config.dir_mode_to_string cfg.Config.dir_mode;
    dir_entries;
    shard_imbalance;
    forward_wait = Server.forward_wait_histogram cluster;
    hit_latency = Server.hit_latency cluster;
    store_stats =
      (let acc = ref (Cache.Stats.create ()) in
       for i = 0 to Server.n_nodes cluster - 1 do
         acc :=
           Cache.Stats.merge !acc
             (Cache.Store.stats (Server.node_store (Server.node cluster i)))
       done;
       !acc);
    net_lost = Sim.Net.messages_lost (Server.net cluster);
    net_lost_partition =
      (match Server.fault cluster with
      | Some f -> Sim.Fault.drops_partition f
      | None -> 0);
    n_events = Sim.Engine.events_processed engine;
    tracer;
    wait_histograms = Server.wait_histograms cluster;
    tier_response =
      (match scenario with
      | Some sc when Array.length tiers > 0 ->
          Array.to_list
            (Array.mapi
               (fun i sample -> (Workload.Scenario.tier_name sc i, sample))
               tier_samples)
      | Some _ | None -> []);
    freshness_mode = Cache.Freshness.mode_to_string cfg.Config.freshness;
    (* The staleness histogram is recorded in every mode (it is pure
       host-side observation), but only surfaces in the JSON payload when
       the freshness plane is actually in play — keeping fixed-mode
       payloads identical to pre-freshness builds. *)
    freshness_active =
      cfg.Config.freshness = Cache.Freshness.Adaptive
      || cfg.Config.refresh_budget > 0.;
    staleness = Server.staleness_histogram cluster;
    timelines = Server.telemetry_registry cluster;
    health = Server.health cluster;
  }

(* JSON rendering of a run's metrics (the [--metrics-out] payload, also
   written by the bench harness). Statistics over empty collections render
   as null rather than crashing or inventing a zero. *)

let sample_json s =
  let module J = Metrics.Json in
  J.Obj
    [
      ("count", J.Int (Metrics.Sample.count s));
      ("mean", J.Float (Metrics.Sample.mean s));
      ("p50", J.float_opt (Metrics.Sample.quantile_opt s 0.5));
      ("p95", J.float_opt (Metrics.Sample.quantile_opt s 0.95));
      ("p99", J.float_opt (Metrics.Sample.quantile_opt s 0.99));
      ("min", J.float_opt (Metrics.Sample.min_opt s));
      ("max", J.float_opt (Metrics.Sample.max_opt s));
    ]

let histogram_json h =
  let module J = Metrics.Json in
  let module H = Metrics.Histogram in
  J.Obj
    [
      ("count", J.Int (H.count h));
      ("mean", J.Float (H.mean h));
      ("p50", J.float_opt (H.quantile_opt h 0.5));
      ("p99", J.float_opt (H.quantile_opt h 0.99));
      ("min", J.float_opt (H.min_opt h));
      ("max", J.float_opt (H.max_opt h));
      ( "buckets",
        (* The overflow bucket's bound is infinity, rendered as null. *)
        J.List
          (List.map
             (fun (le, count) ->
               J.Obj [ ("le", J.Float le); ("count", J.Int count) ])
             (H.buckets h)) );
    ]

let result_to_json r =
  let module J = Metrics.Json in
  let rd, wr = r.dir_locks in
  J.to_string
    (J.Obj
       ([
          ("duration_s", J.Float r.duration);
         ("n_requests", J.Int r.n_requests);
         ("n_events", J.Int r.n_events);
         ("hits", J.Int r.hits);
         ("hit_ratio", J.Float r.hit_ratio);
         ("net_lost", J.Int r.net_lost);
         ("net_lost_partition", J.Int r.net_lost_partition);
         ( "dir_lock_acquisitions",
           J.Obj [ ("read", J.Int rd); ("write", J.Int wr) ] );
         ("dir_mode", J.Str r.dir_mode);
         ( "dir_entries",
           J.List
             (Array.to_list (Array.map (fun n -> J.Int n) r.dir_entries)) );
         ("shard_imbalance", histogram_json r.shard_imbalance);
         ("forward_wait_s", histogram_json r.forward_wait);
         ("hit_latency_s", sample_json r.hit_latency);
         ( "utilisation",
           J.List (Array.to_list (Array.map (fun u -> J.Float u) r.utilisation))
         );
         ("response_s", sample_json r.response);
         ("cgi_response_s", sample_json r.cgi_response);
         ("file_response_s", sample_json r.file_response);
         ( "counters",
           J.Obj
             (List.map
                (fun n -> (n, J.Int (Metrics.Counter.get r.counters n)))
                (Metrics.Counter.names r.counters)) );
         ( "wait_histograms",
           J.Obj
             (List.map (fun (name, h) -> (name, histogram_json h))
                r.wait_histograms) );
       ]
    @
    (* Per-tier response summaries only appear on geo-tiered runs, keeping
       the scenario-free payload identical. *)
    (match r.tier_response with
    | [] -> []
    | tiers ->
        [
          ( "tier_response_s",
            J.Obj (List.map (fun (name, s) -> (name, sample_json s)) tiers) );
        ])
    @
    (* The freshness plane's keys only appear when it is on (adaptive TTLs
       or a refresh budget), keeping default payloads identical. *)
    (if r.freshness_active then
       [
         ("freshness", J.Str r.freshness_mode);
         ("staleness_s", histogram_json r.staleness);
       ]
     else [])
    @
    (* The flight recorder's sections exist only when telemetry was on,
       keeping telemetry-off payloads byte-identical to older builds. *)
    (match r.timelines with
    | None -> []
    | Some reg -> [ ("timelines", Metrics.Registry.to_json reg) ])
    @
    match r.health with
    | None -> []
    | Some h -> [ ("incidents", Metrics.Health.to_json h) ]))

let default_registry trace =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  Workload.Webstone.register_files registry;
  Workload.Synthetic.register_trace_files registry trace;
  registry

let run cfg ~trace ~n_streams ?warmup ?assign ?router ?observe () =
  run_with cfg ~trace ~n_streams ?warmup ?assign ?router ?observe
    ~registry:(default_registry trace) ()
