type result = {
  response : Metrics.Sample.t;
  cgi_response : Metrics.Sample.t;
  file_response : Metrics.Sample.t;
  counters : Metrics.Counter.t;
  per_node_counters : Metrics.Counter.t array;
  duration : float;
  n_requests : int;
  hits : int;
  hit_ratio : float;
  utilisation : float array;
  dir_locks : int * int;
  store_stats : Cache.Stats.t;
  net_lost : int;
  net_lost_partition : int;
  n_events : int;
}

let mean_response r = Metrics.Sample.mean r.response

(* Split the trace round-robin over the streams, preserving order. *)
let split_streams trace n_streams =
  let streams = Array.make n_streams [] in
  List.iteri
    (fun i item -> streams.(i mod n_streams) <- item :: streams.(i mod n_streams))
    trace;
  Array.map List.rev streams

let run_with cfg ~trace ~n_streams ?warmup ?(assign = fun s -> s mod cfg.Config.n_nodes)
    ?router ?(observe = fun ~time:_ _ -> ()) ~registry () =
  if n_streams < 1 then invalid_arg "Cluster_runner.run: n_streams must be >= 1";
  let engine = Sim.Engine.create () in
  let cluster =
    Server.create_cluster engine cfg ~registry ~n_client_endpoints:n_streams
  in
  let router = Option.map Router.create router in
  let streams = split_streams trace n_streams in
  let response = Metrics.Sample.create () in
  let cgi_response = Metrics.Sample.create () in
  let file_response = Metrics.Sample.create () in
  let latch = Sim.Latch.create n_streams in
  let finished_at = ref 0. in
  Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      (match warmup with Some f -> f cluster | None -> ());
      (* Release the client streams only after warm-up completes. *)
      Array.iteri
        (fun s items ->
          let client = cfg.Config.n_nodes + s in
          let pinned = assign s in
          Sim.Engine.spawn_child (fun () ->
              List.iter
                (fun item ->
                  let req = Workload.Trace.to_request item in
                  let t0 = Sim.Engine.now () in
                  let (_ : Http.Response.t) =
                    match router with
                    | Some r ->
                        (* The dispatcher path: routed, and resubmitted to a
                           survivor on a 503 from a node that just crashed. *)
                        let target = Router.pick r cluster ~stream:s req in
                        Router.submit r cluster ~client ~node:target req
                    | None -> Server.submit cluster ~client ~node:pinned req
                  in
                  let dt = Sim.Engine.now () -. t0 in
                  Metrics.Sample.add response dt;
                  observe ~time:(Sim.Engine.now ()) dt;
                  if Workload.Trace.is_cgi item then
                    Metrics.Sample.add cgi_response dt
                  else Metrics.Sample.add file_response dt)
                items;
              Sim.Latch.arrive latch))
        streams;
      Sim.Latch.wait latch;
      finished_at := Sim.Engine.now ();
      Server.stop cluster);
  Sim.Engine.run engine;
  let duration = !finished_at in
  (* Hint statistics live in the directory; surface them as counters so
     runs with hints on report them alongside everything else (absent
     when zero, keeping hint-less counter sets unchanged). *)
  Server.record_hint_stats cluster;
  let per_node_counters =
    Array.init (Server.n_nodes cluster) (fun i ->
        Server.node_counters (Server.node cluster i))
  in
  let counters = Server.merged_counters cluster in
  (* The router lives client-side; fold its retry count into the cluster
     totals so one table carries the whole fault story. *)
  (match router with
  | Some r when Router.retries r > 0 ->
      Metrics.Counter.add counters Server.K.router_retries (Router.retries r)
  | Some _ | None -> ());
  let hits = Server.total_hits cluster in
  let n_cgi =
    Metrics.Counter.get counters Server.K.cgi_execs
    + Metrics.Counter.get counters Server.K.hit_local
    + Metrics.Counter.get counters Server.K.hit_remote
  in
  {
    response;
    cgi_response;
    file_response;
    counters;
    per_node_counters;
    duration;
    n_requests = Workload.Trace.length trace;
    hits;
    hit_ratio = (if n_cgi = 0 then 0. else float_of_int hits /. float_of_int n_cgi);
    utilisation =
      Array.init (Server.n_nodes cluster) (fun i ->
          Sim.Cpu.utilisation
            (Server.node_cpu (Server.node cluster i))
            ~elapsed:(Stdlib.max duration 1e-9));
    dir_locks =
      (let rd = ref 0 and wr = ref 0 in
       for i = 0 to Server.n_nodes cluster - 1 do
         let r, w =
           Cache.Directory.lock_acquisitions
             (Server.node_directory (Server.node cluster i))
         in
         rd := !rd + r;
         wr := !wr + w
       done;
       (!rd, !wr));
    store_stats =
      (let acc = ref (Cache.Stats.create ()) in
       for i = 0 to Server.n_nodes cluster - 1 do
         acc :=
           Cache.Stats.merge !acc
             (Cache.Store.stats (Server.node_store (Server.node cluster i)))
       done;
       !acc);
    net_lost = Sim.Net.messages_lost (Server.net cluster);
    net_lost_partition =
      (match Server.fault cluster with
      | Some f -> Sim.Fault.drops_partition f
      | None -> 0);
    n_events = Sim.Engine.events_processed engine;
  }

let default_registry trace =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  Workload.Webstone.register_files registry;
  Workload.Synthetic.register_trace_files registry trace;
  registry

let run cfg ~trace ~n_streams ?warmup ?assign ?router ?observe () =
  run_with cfg ~trace ~n_streams ?warmup ?assign ?router ?observe
    ~registry:(default_registry trace) ()
