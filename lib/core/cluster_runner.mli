(** Drive a Swala cluster with a workload and collect metrics.

    Replays a {!Workload.Trace.t} through closed-loop client streams, the
    way WebStone and the paper's trace replays drive their servers: the
    trace is split round-robin over [n_streams] client threads (preserving
    each stream's relative order), stream [i] targets node [i mod n_nodes],
    and every stream issues its requests back-to-back, waiting for each
    response before sending the next. *)

type result = {
  response : Metrics.Sample.t;  (** client-observed response times *)
  cgi_response : Metrics.Sample.t;
  file_response : Metrics.Sample.t;
  counters : Metrics.Counter.t;  (** merged over all nodes *)
  per_node_counters : Metrics.Counter.t array;
  duration : float;  (** simulated makespan *)
  n_requests : int;
  hits : int;  (** local + remote cache hits *)
  hit_ratio : float;  (** hits over CGI requests *)
  utilisation : float array;  (** per-node CPU utilisation over [duration] *)
  dir_locks : int * int;
      (** (read, write) metadata-plane lock acquisitions summed over
          nodes (directory rwlocks or shard-table rwlocks) *)
  dir_mode : string;  (** ["replicated"] or ["sharded"], from the config *)
  dir_entries : int array;
      (** per-node metadata footprint at run end, in entries: the full
          replica (replicated) or shard partition + lookup cache
          (sharded) — the memory metric of the dirmode ablation *)
  shard_imbalance : Metrics.Histogram.t;
      (** [dir_entries] as a histogram (power-of-two buckets): the
          spread quantifies consistent-hash load imbalance *)
  forward_wait : Metrics.Histogram.t;
      (** forwarded directory-lookup round-trip waits (sharded plane;
          empty under the replicated one) *)
  hit_latency : Metrics.Sample.t;
      (** cache-hit service times, lookup start to response sent — see
          {!Server.hit_latency} *)
  store_stats : Cache.Stats.t;  (** local-store statistics merged over nodes *)
  net_lost : int;
      (** protocol messages dropped by the network (uniform loss and the
          fault plan combined); [0] on a healthy run *)
  net_lost_partition : int;
      (** the subset of [net_lost] discarded because an active partition
          separated the endpoints *)
  n_events : int;
      (** simulation events the engine executed during the run — the
          denominator of the wall-clock events/sec benchmark *)
  tracer : Metrics.Trace.t option;
      (** the causal tracer, when [cfg.trace] was set: one ["request"]
          root span per client request, with the server-side tree hanging
          off it *)
  wait_histograms : (string * Metrics.Histogram.t) list;
      (** cluster-wide contention histograms (see
          {!Server.wait_histograms}); empty when tracing is off *)
  tier_response : (string * Metrics.Sample.t) list;
      (** per-tier client response times on geo-tiered scenario runs
          ([cfg.scenario] with tiers), in tier order; empty otherwise *)
  freshness_mode : string;  (** ["fixed"] or ["adaptive"], from the config *)
  freshness_active : bool;
      (** whether the freshness plane was in play (adaptive TTLs or a
          refresh budget); gates the ["freshness"]/["staleness_s"] JSON
          keys so default payloads stay identical to older builds *)
  staleness : Metrics.Histogram.t;
      (** content ages at cache hits (seconds since entry creation) —
          recorded in every mode; the freshness ablation's staleness
          metric *)
  timelines : Metrics.Registry.t option;
      (** the flight recorder's probe timelines, when
          [cfg.telemetry_interval] was set; gates the ["timelines"] JSON
          section *)
  health : Metrics.Health.t option;
      (** the online health monitor (incident log), when telemetry was
          on; gates the ["incidents"] JSON section *)
}

val mean_response : result -> float

(** [result_to_json r] renders the run's metrics — counters, response-time
    summaries, utilisation, lock acquisitions, wait histograms — as one
    JSON object (no trailing newline). Statistics over empty samples
    render as [null]. *)
val result_to_json : result -> string

(** [run cfg ~trace ~n_streams ?warmup ?assign ?router ()] builds a fresh
    engine and cluster, replays [trace], and returns collected metrics.

    [warmup] runs inside the simulation before any client starts (use it
    with [Server.preload] to warm caches). [assign] overrides the
    stream→node mapping (default [fun stream -> stream mod n_nodes]);
    [router] instead picks a node per request and takes precedence over
    [assign] when given.

    [observe] is called after every completed request with the completion
    time (simulated) and the response time — hook a [Metrics.Timeseries]
    in to study transients such as cache warm-up (or bucket latencies per
    scenario phase).

    When [cfg.scenario] is set, the replay applies its overlays: items are
    held until their diurnal release times, flash-crowd redirection
    rewrites CGI items at submit time (counted in the
    ["scenario_flash_redirects"] counter), and geo tiers put extra latency
    on client links and split response times per tier
    (["tier_<name>_requests"] counters, [tier_response] samples). All
    scenario randomness comes from a dedicated salted root, so a run
    without a scenario is byte-identical to earlier builds.

    The run is deterministic given [cfg.seed] and the trace. *)
val run :
  Config.t ->
  trace:Workload.Trace.t ->
  n_streams:int ->
  ?warmup:(Server.cluster -> unit) ->
  ?assign:(int -> int) ->
  ?router:Router.policy ->
  ?observe:(time:float -> float -> unit) ->
  unit ->
  result

(** [run_with cfg ~trace ~n_streams ?warmup ?assign ?router ~registry ()]
    is {!run} with a caller-prepared script/file registry (the default
    registers the synthetic scripts, the WebStone files and the trace's
    static files). *)
val run_with :
  Config.t ->
  trace:Workload.Trace.t ->
  n_streams:int ->
  ?warmup:(Server.cluster -> unit) ->
  ?assign:(int -> int) ->
  ?router:Router.policy ->
  ?observe:(time:float -> float -> unit) ->
  registry:Cgi.Registry.t ->
  unit ->
  result
