type cache_mode = Disabled | Standalone | Cooperative

let cache_mode_to_string = function
  | Disabled -> "no-cache"
  | Standalone -> "standalone"
  | Cooperative -> "cooperative"

type consistency = Weak | Strong

let consistency_to_string = function Weak -> "weak" | Strong -> "strong"

type dir_mode = Replicated | Sharded

let dir_mode_to_string = function
  | Replicated -> "replicated"
  | Sharded -> "sharded"

type server_model = {
  model_name : string;
  accept_cost : float;
  per_request_fork : float;
  per_byte_send : float;
  cgi_overhead_factor : float;
  contention_coeff : float;
}

(* Swala: threaded, memory-mapped I/O — cheap per-byte path and little
   per-connection bookkeeping. *)
let swala_model =
  {
    model_name = "swala";
    accept_cost = 0.0015;
    per_request_fork = 0.;
    per_byte_send = 2.5e-8;
    cgi_overhead_factor = 1.0;
    contention_coeff = 2e-5;
  }

(* NCSA HTTPd: a process per request (the paper names this as the reason it
   trails threaded servers by 2-7x), double-buffered writes. *)
let httpd_model =
  {
    model_name = "httpd";
    accept_cost = 0.002;
    per_request_fork = 0.008;
    per_byte_send = 6e-8;
    cgi_overhead_factor = 1.0;
    contention_coeff = 8e-5;
  }

(* Netscape Enterprise: fastest accept path (wins at low client counts) but
   more per-connection bookkeeping (loses at high counts) and a slower CGI
   interface (slowest bar in the paper's Figure 3). *)
let enterprise_model =
  {
    model_name = "enterprise";
    accept_cost = 0.0010;
    per_request_fork = 0.;
    per_byte_send = 2.5e-8;
    cgi_overhead_factor = 1.6;
    contention_coeff = 4e-5;
  }

type t = {
  n_nodes : int;
  threads_per_node : int;
  cores_per_node : int;
  cpu_speed : float;
  model : server_model;
  cache_mode : cache_mode;
  cache_capacity : int;
  policy : Cache.Policy.t;
  consistency : consistency;
  rules : Rules.t;
  cache_threshold : float;
  default_ttl : float option;
  purge_interval : float;
  local_fetch_cost : float;
  remote_fetch_cost : float;
  data_server_cost : float;
  insert_cost : float;
  info_apply_cost : float;
  dir_granularity : Cache.Directory.granularity;
  dir_lock_overhead : float;
  dir_scan_cost : float;
  net_latency : float;
  net_bandwidth : float;
  net_loss : float;
  fetch_timeout : float option;
  fetch_retries : int;
  fetch_backoff : float;
  fault : Sim.Fault.profile option;
  anti_entropy_period : float option;
  broadcast_latency : float option;
  batch_max : int;
  batch_flush_interval : float option;
  dir_hints : bool;
  dir_mode : dir_mode;
  shard_vnodes : int;
  shard_lookup_cache : int;
  shard_pos_ttl : float;
  shard_neg_ttl : float;
  hotspot_threshold : float;
  hotspot_window : float;
  hotspot_replicas : int;
  freshness : Cache.Freshness.mode;
  freshness_min_ttl : float;
  freshness_max_ttl : float;
  freshness_penalty : float;
  freshness_window : float;
  refresh_budget : float;
  refresh_interval : float;
  fs_cache_hit : float;
  scenario : Workload.Scenario.t option;
  trace : bool;
  telemetry_interval : float option;
  slo_target : float option;
  slo_objective : float;
  seed : int;
}

let default =
  {
    n_nodes = 1;
    threads_per_node = 16;
    cores_per_node = 1;
    cpu_speed = 1.0;
    model = swala_model;
    cache_mode = Cooperative;
    cache_capacity = 2000;
    policy = Cache.Policy.Lru;
    consistency = Weak;
    rules = Rules.empty;
    cache_threshold = 0.1;
    default_ttl = None;
    purge_interval = 5.0;
    local_fetch_cost = 0.004;
    remote_fetch_cost = 0.0055;
    data_server_cost = 0.002;
    insert_cost = 0.002;
    info_apply_cost = 0.0001;
    dir_granularity = Cache.Directory.Per_table;
    dir_lock_overhead = 2e-6;
    dir_scan_cost = 0.;
    net_latency = 0.0002;
    net_bandwidth = 12.5e6;
    net_loss = 0.;
    fetch_timeout = None;
    fetch_retries = 0;
    fetch_backoff = 2.;
    fault = None;
    anti_entropy_period = None;
    broadcast_latency = None;
    batch_max = 1;
    batch_flush_interval = None;
    dir_hints = false;
    dir_mode = Replicated;
    shard_vnodes = 64;
    shard_lookup_cache = 128;
    shard_pos_ttl = 5.0;
    shard_neg_ttl = 0.5;
    hotspot_threshold = 0.;
    hotspot_window = 2.0;
    hotspot_replicas = 2;
    freshness = Cache.Freshness.Fixed;
    freshness_min_ttl = 0.25;
    freshness_max_ttl = 120.;
    freshness_penalty = 0.01;
    freshness_window = 2.0;
    refresh_budget = 0.;
    refresh_interval = 0.5;
    fs_cache_hit = 0.95;
    scenario = None;
    trace = false;
    telemetry_interval = None;
    slo_target = None;
    slo_objective = 0.95;
    seed = 42;
  }

let make ?(n_nodes = default.n_nodes)
    ?(threads_per_node = default.threads_per_node)
    ?(cores_per_node = default.cores_per_node) ?(cpu_speed = default.cpu_speed)
    ?(model = default.model) ?(cache_mode = default.cache_mode)
    ?(cache_capacity = default.cache_capacity) ?(policy = default.policy)
    ?(consistency = default.consistency) ?(rules = default.rules)
    ?(cache_threshold = default.cache_threshold)
    ?(default_ttl = default.default_ttl)
    ?(purge_interval = default.purge_interval)
    ?(local_fetch_cost = default.local_fetch_cost)
    ?(remote_fetch_cost = default.remote_fetch_cost)
    ?(data_server_cost = default.data_server_cost)
    ?(insert_cost = default.insert_cost)
    ?(info_apply_cost = default.info_apply_cost)
    ?(dir_granularity = default.dir_granularity)
    ?(dir_lock_overhead = default.dir_lock_overhead)
    ?(dir_scan_cost = default.dir_scan_cost)
    ?(net_latency = default.net_latency)
    ?(net_bandwidth = default.net_bandwidth) ?(net_loss = default.net_loss)
    ?(fetch_timeout = default.fetch_timeout)
    ?(fetch_retries = default.fetch_retries)
    ?(fetch_backoff = default.fetch_backoff) ?(fault = default.fault)
    ?(anti_entropy_period = default.anti_entropy_period)
    ?(broadcast_latency = default.broadcast_latency)
    ?(batch_max = default.batch_max)
    ?(batch_flush_interval = default.batch_flush_interval)
    ?(dir_hints = default.dir_hints) ?(dir_mode = default.dir_mode)
    ?(shard_vnodes = default.shard_vnodes)
    ?(shard_lookup_cache = default.shard_lookup_cache)
    ?(shard_pos_ttl = default.shard_pos_ttl)
    ?(shard_neg_ttl = default.shard_neg_ttl)
    ?(hotspot_threshold = default.hotspot_threshold)
    ?(hotspot_window = default.hotspot_window)
    ?(hotspot_replicas = default.hotspot_replicas)
    ?(freshness = default.freshness)
    ?(freshness_min_ttl = default.freshness_min_ttl)
    ?(freshness_max_ttl = default.freshness_max_ttl)
    ?(freshness_penalty = default.freshness_penalty)
    ?(freshness_window = default.freshness_window)
    ?(refresh_budget = default.refresh_budget)
    ?(refresh_interval = default.refresh_interval)
    ?(fs_cache_hit = default.fs_cache_hit) ?(scenario = default.scenario)
    ?(trace = default.trace)
    ?(telemetry_interval = default.telemetry_interval)
    ?(slo_target = default.slo_target)
    ?(slo_objective = default.slo_objective) ?(seed = default.seed) () =
  {
    n_nodes;
    threads_per_node;
    cores_per_node;
    cpu_speed;
    model;
    cache_mode;
    cache_capacity;
    policy;
    consistency;
    rules;
    cache_threshold;
    default_ttl;
    purge_interval;
    local_fetch_cost;
    remote_fetch_cost;
    data_server_cost;
    insert_cost;
    info_apply_cost;
    dir_granularity;
    dir_lock_overhead;
    dir_scan_cost;
    net_latency;
    net_bandwidth;
    net_loss;
    fetch_timeout;
    fetch_retries;
    fetch_backoff;
    fault;
    anti_entropy_period;
    broadcast_latency;
    batch_max;
    batch_flush_interval;
    dir_hints;
    dir_mode;
    shard_vnodes;
    shard_lookup_cache;
    shard_pos_ttl;
    shard_neg_ttl;
    hotspot_threshold;
    hotspot_window;
    hotspot_replicas;
    freshness;
    freshness_min_ttl;
    freshness_max_ttl;
    freshness_penalty;
    freshness_window;
    refresh_budget;
    refresh_interval;
    fs_cache_hit;
    scenario;
    trace;
    telemetry_interval;
    slo_target;
    slo_objective;
    seed;
  }

let validate t =
  let check cond msg = if not cond then invalid_arg ("Config: " ^ msg) in
  check (t.n_nodes >= 1) "n_nodes must be >= 1";
  check (t.threads_per_node >= 1) "threads_per_node must be >= 1";
  check (t.cores_per_node >= 1) "cores_per_node must be >= 1";
  check (t.cpu_speed > 0.) "cpu_speed must be positive";
  check (t.cache_capacity >= 1) "cache_capacity must be >= 1";
  check (t.cache_threshold >= 0.) "cache_threshold must be >= 0";
  check (t.purge_interval > 0.) "purge_interval must be positive";
  check (t.net_bandwidth > 0.) "net_bandwidth must be positive";
  check (t.net_latency >= 0.) "net_latency must be >= 0";
  check
    (t.fs_cache_hit >= 0. && t.fs_cache_hit <= 1.)
    "fs_cache_hit must be in [0,1]";
  (match t.default_ttl with
  | Some ttl -> check (ttl > 0.) "default_ttl must be positive"
  | None -> ());
  (match t.broadcast_latency with
  | Some d -> check (d >= 0.) "broadcast_latency must be >= 0"
  | None -> ());
  (match t.anti_entropy_period with
  | Some p -> check (p > 0.) "anti_entropy_period must be positive"
  | None -> ());
  check (t.net_loss >= 0. && t.net_loss <= 1.) "net_loss must be in [0,1]";
  check (t.fetch_retries >= 0) "fetch_retries must be >= 0";
  check (t.fetch_backoff >= 1.) "fetch_backoff must be >= 1";
  (match t.fault with Some p -> Sim.Fault.validate p | None -> ());
  (match t.scenario with
  | Some sc -> Workload.Scenario.validate sc
  | None -> ());
  let lossy =
    t.net_loss > 0.
    || match t.fault with Some p -> Sim.Fault.is_lossy p | None -> false
  in
  (match t.fetch_timeout with
  | Some d -> check (d > 0.) "fetch_timeout must be positive"
  | None ->
      check (not lossy)
        "message loss or node crashes require a fetch_timeout (lost \
         replies would wedge request threads)");
  if t.consistency = Strong then
    check (not lossy)
      "the strong protocol has no ack retransmission; it tolerates neither \
       net_loss nor a lossy fault profile";
  check (t.batch_max >= 1) "batch_max must be >= 1";
  (match t.batch_flush_interval with
  | Some d -> check (d > 0.) "batch_flush_interval must be positive"
  | None -> ());
  if t.batch_max > 1 then begin
    check
      (t.batch_flush_interval <> None)
      "batch_max > 1 requires a batch_flush_interval (buffered updates \
       would otherwise wait for the size threshold forever)";
    check (t.consistency = Weak)
      "update batching applies only to the weak protocol (the strong \
       protocol acknowledges each update synchronously)"
  end;
  check (t.shard_vnodes >= 1) "shard_vnodes must be >= 1";
  check (t.shard_lookup_cache >= 0) "shard_lookup_cache must be >= 0";
  check (t.shard_pos_ttl > 0.) "shard_pos_ttl must be positive";
  check (t.shard_neg_ttl > 0.) "shard_neg_ttl must be positive";
  check (t.hotspot_threshold >= 0.) "hotspot_threshold must be >= 0";
  check (t.hotspot_window > 0.) "hotspot_window must be positive";
  check (t.hotspot_replicas >= 0) "hotspot_replicas must be >= 0";
  if t.dir_mode = Sharded then begin
    check (t.consistency = Weak)
      "the sharded metadata plane implements only the weak protocol (point-\
       to-point announcements carry no acknowledgements)";
    check (t.batch_max <= 1)
      "update batching amortizes broadcast fan-out; the sharded plane sends \
       point-to-point updates, so batch_max must be 1";
    check (not t.dir_hints)
      "the hint index accelerates the replicated per-owner table scan; the \
       sharded plane has a single partitioned table, so dir_hints must be off";
    check
      (t.anti_entropy_period = None)
      "anti-entropy repairs replicated directory divergence; the sharded \
       plane repairs by shard handoff re-announcement instead";
    check
      (t.broadcast_latency = None)
      "broadcast_latency models broadcast propagation; the sharded plane \
       does not broadcast"
  end
  else
    check (t.hotspot_threshold = 0.)
      "hotspot_threshold requires dir_mode = Sharded (replicated mode \
       already holds every entry on every node)";
  check (t.freshness_min_ttl > 0.) "freshness_min_ttl must be positive";
  check
    (t.freshness_max_ttl >= t.freshness_min_ttl)
    "freshness_max_ttl must be >= freshness_min_ttl";
  check (t.freshness_penalty > 0.) "freshness_penalty must be positive";
  check (t.freshness_window > 0.) "freshness_window must be positive";
  check (t.refresh_budget >= 0.) "refresh_budget must be >= 0";
  check (t.refresh_interval > 0.) "refresh_interval must be positive";
  if t.freshness = Cache.Freshness.Adaptive then
    check
      (t.cache_mode <> Disabled)
      "adaptive freshness controls cache TTLs; it requires a cache \
       (cache_mode must not be no-cache)";
  if t.refresh_budget > 0. then
    check
      (t.cache_mode <> Disabled)
      "proactive refresh re-executes cached entries; it requires a cache \
       (cache_mode must not be no-cache)";
  (match t.telemetry_interval with
  | Some dt -> check (dt > 0.) "telemetry_interval must be positive"
  | None -> ());
  (match t.slo_target with
  | Some s ->
      check (s > 0.) "slo_target must be positive";
      check
        (t.telemetry_interval <> None)
        "slo_target drives the health monitor, which runs on the telemetry \
         cadence; set a telemetry_interval"
  | None -> ());
  check
    (t.slo_objective > 0. && t.slo_objective < 1.)
    "slo_objective must be in (0,1)";
  check (t.dir_scan_cost >= 0.) "dir_scan_cost must be >= 0";
  check (t.local_fetch_cost >= 0.) "local_fetch_cost must be >= 0";
  check (t.remote_fetch_cost >= 0.) "remote_fetch_cost must be >= 0";
  check (t.data_server_cost >= 0.) "data_server_cost must be >= 0";
  check (t.insert_cost >= 0.) "insert_cost must be >= 0";
  check (t.info_apply_cost >= 0.) "info_apply_cost must be >= 0"
