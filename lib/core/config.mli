(** Swala server and experiment configuration.

    The cost constants parameterise the simulated substrate. They are
    calibrated so that an unloaded reference node reproduces the paper's
    measured scale: file fetches of a few milliseconds, CGI start-up
    (fork + exec) around 30 ms, CGI executions of 0.1-10 s, and cache
    fetches an order of magnitude cheaper than re-execution. Experiments
    compare configurations, so shapes — orderings, ratios, crossovers —
    are what these constants are tuned for (see EXPERIMENTS.md). *)

type cache_mode =
  | Disabled  (** execute every CGI; the no-cache baseline *)
  | Standalone  (** each node caches privately; no directory traffic *)
  | Cooperative  (** replicated directory + remote fetch (the paper) *)

val cache_mode_to_string : cache_mode -> string

(** Inter-node directory consistency. [Weak] is the paper's protocol:
    updates are broadcast asynchronously and replicas may briefly diverge.
    [Strong] makes every insert/delete wait for acknowledgement from every
    peer before the client is answered — the commit-style protocol §4.2
    rejects; it exists to measure what that rejection saves. *)
type consistency = Weak | Strong

val consistency_to_string : consistency -> string

(** Which metadata plane keeps track of who caches what. [Replicated] is
    the paper's design: every node holds a full copy of the directory and
    every update is broadcast — O(n) memory per node, O(n) messages per
    update. [Sharded] partitions the directory over a consistent-hash
    ring: each key has one home node, updates are point-to-point
    announcements to the home, and lookups from other nodes are forwarded
    over the network (with a small positive/negative lookup cache in
    front). See [Cache.Metadata_plane] and docs/METADATA_PLANE.md. *)
type dir_mode = Replicated | Sharded

val dir_mode_to_string : dir_mode -> string

(** Cost profile of a server implementation. Three models reproduce the
    paper's comparison: Swala (threaded, memory-mapped I/O), NCSA
    HTTPd-like (process per request) and Netscape Enterprise-like
    (threaded; cheapest accept path but more per-connection bookkeeping,
    and a slower CGI interface). *)
type server_model = {
  model_name : string;
  accept_cost : float;  (** CPU s per request: accept, parse, dispatch *)
  per_request_fork : float;  (** CPU s to fork a handler process (HTTPd) *)
  per_byte_send : float;  (** CPU s per body byte written to the client *)
  cgi_overhead_factor : float;  (** multiplier on a script's fork+exec cost *)
  contention_coeff : float;
      (** extra CPU s per concurrently-active request, modelling
          per-connection bookkeeping/locking that grows with load *)
}

val swala_model : server_model
val httpd_model : server_model
val enterprise_model : server_model

type t = {
  n_nodes : int;
  threads_per_node : int;  (** request-thread pool size (HTTP module) *)
  cores_per_node : int;
  cpu_speed : float;
  model : server_model;
  cache_mode : cache_mode;
  cache_capacity : int;  (** entries per node *)
  policy : Cache.Policy.t;
  consistency : consistency;
  rules : Rules.t;
      (** administrator cacheability rules (§4.1's configuration file);
          a rule's decision composes with the script's own [cacheable]
          flag, and its ttl/threshold attributes override the defaults *)
  cache_threshold : float;
      (** only results whose execution took at least this many seconds are
          cached (the paper's runtime-defined limit) *)
  default_ttl : float option;  (** TTL for scripts that don't set one *)
  purge_interval : float;  (** purge-daemon wake-up period *)
  local_fetch_cost : float;  (** CPU s to open+map a cached result file *)
  remote_fetch_cost : float;
      (** CPU s on the requester to run the remote-fetch protocol *)
  data_server_cost : float;  (** CPU s on the owner to serve one fetch *)
  insert_cost : float;  (** CPU s to create the entry + result file *)
  info_apply_cost : float;  (** CPU s to apply one directory update *)
  dir_granularity : Cache.Directory.granularity;
  dir_lock_overhead : float;  (** s per directory lock acquisition *)
  dir_scan_cost : float;
      (** s per table entry examined while holding the directory lock
          (default 0; raised by the locking ablation) *)
  net_latency : float;
  net_bandwidth : float;
  net_loss : float;
      (** probability a protocol message (directory update, fetch
          request/reply) is silently dropped — failure injection; requires
          [fetch_timeout] so lost fetches cannot wedge request threads *)
  fetch_timeout : float option;
      (** how long a request thread waits for a remote-fetch reply before
          giving up and executing the CGI locally ([None] = forever, safe
          only on a loss-free network) *)
  fetch_retries : int;
      (** how many times a timed-out remote fetch is retried before the
          node falls back to local execution (default [0]: fail over
          immediately, the pre-retry behaviour) *)
  fetch_backoff : float;
      (** multiplier applied to the fetch timeout on each retry
          (exponential backoff; [>= 1], default [2.]) *)
  fault : Sim.Fault.profile option;
      (** fault-injection plan: per-link message drop/delay and per-node
          crash/restart behaviour, instantiated deterministically from
          [seed]. [None] (the default) leaves the fault layer entirely out
          of the run. A lossy profile requires [fetch_timeout], and the
          [Strong] protocol (no ack retransmission) tolerates no faults *)
  anti_entropy_period : float option;
      (** if set (cooperative mode only), every node runs an anti-entropy
          daemon: once per period it exchanges per-table directory digests
          with one seeded-random peer and pulls the entries it is missing
          or holds stale, so replicas provably reconverge after a
          partition heals or a mid-broadcast crash — instead of relying
          only on the lazy suspect purge. [None] (the default) disables
          the daemon and leaves runs byte-identical to builds without it *)
  broadcast_latency : float option;
      (** if set, directory-update broadcasts are delivered after this
          delay instead of the network latency — models slow or batched
          propagation of the weak-consistency protocol (ablation A3) *)
  batch_max : int;
      (** directory updates buffered per node before a size-triggered
          flush. [1] (the default) disables batching: every update is
          transmitted immediately, bare, exactly as before the batching
          layer existed. [> 1] requires [batch_flush_interval] and the
          [Weak] protocol *)
  batch_flush_interval : float option;
      (** Nagle-style timer: with [batch_max > 1], a flusher daemon per
          node transmits whatever the outbound buffer holds every this
          many seconds, bounding how stale a buffered update can get *)
  dir_hints : bool;
      (** maintain a key→owner-set hint index in each directory replica
          so lookups probe only hinted tables (stale-tolerant; false
          hints fall back to the full scan). Default [false] *)
  dir_mode : dir_mode;
      (** which metadata plane to run. [Replicated] (the default) is the
          paper's full-replication directory and is byte-identical to the
          pre-plane builds; [Sharded] requires the [Weak] protocol and is
          incompatible with batching, hints, anti-entropy and
          [broadcast_latency] (each is a replication-specific mechanism) *)
  shard_vnodes : int;
      (** virtual nodes per physical node on the consistent-hash ring
          (sharded mode). More vnodes smooth the key distribution at the
          cost of a larger (still O(n·vnodes)) static ring. Default 64 *)
  shard_lookup_cache : int;
      (** capacity of the per-node positive/negative lookup cache that
          fronts forwarded directory lookups; [0] disables it (every
          non-home lookup is forwarded). Default 128 *)
  shard_pos_ttl : float;
      (** seconds a positive lookup-cache entry is trusted. Bounds how
          long a node may keep fetching from an owner that has dropped
          the entry (the false-hit window). Default 5 s *)
  shard_neg_ttl : float;
      (** seconds a negative lookup-cache entry is trusted. Bounds how
          long a node may re-execute a script another node has cached in
          the meantime (the false-miss window). Default 0.5 s *)
  hotspot_threshold : float;
      (** forwarded-lookup rate (lookups/s per key, measured by the shard
          home over [hotspot_window]) above which a key is promoted: its
          directory entry is pushed to [hotspot_replicas] ring successors
          so their local probes hit without forwarding. [0.] (the
          default) disables hotspot replication; positive values require
          [Sharded] *)
  hotspot_window : float;
      (** sliding-window length (s) of the hotspot rate estimator, and
          the period of the demotion sweep. Default 2 s *)
  hotspot_replicas : int;
      (** extra replica owners a promoted key's directory entry is pushed
          to (the k distinct ring successors of the home). Default 2 *)
  freshness : Cache.Freshness.mode;
      (** how TTLs are assigned to results whose rule and script set none.
          [Fixed] (the default) uses [default_ttl] — byte-identical to
          builds without the freshness layer. [Adaptive] runs a per-node
          {!Cache.Freshness} controller that picks a per-key TTL from the
          observed access rate and recompute cost; requires a cache.
          Rule and per-script TTLs always win over either layer *)
  freshness_min_ttl : float;
      (** lower clamp on controller-emitted TTLs (s). Default 0.25 *)
  freshness_max_ttl : float;
      (** upper clamp on controller-emitted TTLs (s). Default 120 *)
  freshness_penalty : float;
      (** staleness weight: serving one second of staleness across one
          access costs this many CPU-seconds in the controller's
          objective. Larger values push TTLs down. The default (0.01) is
          sized against this simulator's CGI demands (tens of
          milliseconds), giving a typical key seconds of TTL:
          [T* = sqrt(2 cost / (penalty rate))] *)
  freshness_window : float;
      (** sliding window (s) of the controller's per-key access-rate
          estimator, and the recency horizon of the refresh daemon's
          "hot" filter. Default 2 s *)
  refresh_budget : float;
      (** proactive refreshes per second per node the refresh daemon may
          spend re-executing hot, expensive, near-expiry entries off the
          critical path. [0.] (the default) disables the daemon entirely;
          positive values require a cache. Works under either freshness
          mode *)
  refresh_interval : float;
      (** refresh-daemon wake-up period (s); each tick scans entries
          expiring within twice this horizon. Default 0.5 s *)
  fs_cache_hit : float;  (** P(static file is in the OS buffer cache) *)
  scenario : Workload.Scenario.t option;
      (** time-varying workload scenario (flash crowd, diurnal envelope,
          geo-tiered clients) the runner overlays on the replayed trace.
          [None] (the default) leaves the replay untouched — no scenario
          random numbers are drawn, no release-time pacing, no rewritten
          items, no per-tier latency — byte-identical to builds without
          the scenario layer. Rolling membership churn is configured on
          the {!Sim.Fault.profile} ([fault]) instead, since it is a
          membership fault, not a traffic shape *)
  trace : bool;
      (** record causal request spans and lock-wait histograms. Default
          [false]; tracing is observation-only, so every simulated
          quantity (counters, response times, replay digests) is
          byte-identical with it on or off *)
  telemetry_interval : float option;
      (** flight-recorder cadence (s): if set, a sampler daemon reads the
          cluster's telemetry probes ({!Metrics.Registry}) every this many
          virtual seconds and the health monitor ({!Metrics.Health}) runs
          on the same tick. [None] (the default) allocates none of it —
          like [trace], the plane is observation-only and a disabled run
          is byte-identical to builds without it (the sampler does add
          engine events, so [n_events] differs when {e enabled}) *)
  slo_target : float option;
      (** response-time SLO target (s) for the health monitor's burn-rate
          detector; requires [telemetry_interval]. [None] (the default)
          leaves the burn detector off *)
  slo_objective : float;
      (** fraction of requests that must meet [slo_target], in (0,1).
          Default 0.95 *)
  seed : int;
}

(** [default] is a single cooperative Swala node with a 2000-entry LRU
    cache, 16 request threads, and the calibrated cost constants. *)
val default : t

(** [make ?...] overrides fields of {!default}. *)
val make :
  ?n_nodes:int ->
  ?threads_per_node:int ->
  ?cores_per_node:int ->
  ?cpu_speed:float ->
  ?model:server_model ->
  ?cache_mode:cache_mode ->
  ?cache_capacity:int ->
  ?policy:Cache.Policy.t ->
  ?consistency:consistency ->
  ?rules:Rules.t ->
  ?cache_threshold:float ->
  ?default_ttl:float option ->
  ?purge_interval:float ->
  ?local_fetch_cost:float ->
  ?remote_fetch_cost:float ->
  ?data_server_cost:float ->
  ?insert_cost:float ->
  ?info_apply_cost:float ->
  ?dir_granularity:Cache.Directory.granularity ->
  ?dir_lock_overhead:float ->
  ?dir_scan_cost:float ->
  ?net_latency:float ->
  ?net_bandwidth:float ->
  ?net_loss:float ->
  ?fetch_timeout:float option ->
  ?fetch_retries:int ->
  ?fetch_backoff:float ->
  ?fault:Sim.Fault.profile option ->
  ?anti_entropy_period:float option ->
  ?broadcast_latency:float option ->
  ?batch_max:int ->
  ?batch_flush_interval:float option ->
  ?dir_hints:bool ->
  ?dir_mode:dir_mode ->
  ?shard_vnodes:int ->
  ?shard_lookup_cache:int ->
  ?shard_pos_ttl:float ->
  ?shard_neg_ttl:float ->
  ?hotspot_threshold:float ->
  ?hotspot_window:float ->
  ?hotspot_replicas:int ->
  ?freshness:Cache.Freshness.mode ->
  ?freshness_min_ttl:float ->
  ?freshness_max_ttl:float ->
  ?freshness_penalty:float ->
  ?freshness_window:float ->
  ?refresh_budget:float ->
  ?refresh_interval:float ->
  ?fs_cache_hit:float ->
  ?scenario:Workload.Scenario.t option ->
  ?trace:bool ->
  ?telemetry_interval:float option ->
  ?slo_target:float option ->
  ?slo_objective:float ->
  ?seed:int ->
  unit ->
  t

(** [validate t] raises [Invalid_argument] on nonsensical settings. *)
val validate : t -> unit
