(* Experiment drivers. Layout conventions:
   - every driver takes ?seed and derives all randomness from it;
   - "mean response" is the client-observed mean over every request of the
     run, matching how WebStone and the paper's replays report results. *)

let default_seed = 42

(* ------------------------------------------------------------------ *)
(* E1 — Table 1 *)

let table1 ?(seed = default_seed) ?params ?(thresholds = [ 0.5; 1.0; 2.0; 4.0 ])
    () =
  let trace = Workload.Synthetic.adl ~seed ?params () in
  ( Workload.Analyzer.summarize trace,
    Workload.Analyzer.table1 trace ~thresholds )

(* ------------------------------------------------------------------ *)
(* E2 — Table 2 *)

type table2_row = {
  clients : int;
  httpd : float;
  enterprise : float;
  swala : float;
}

let run_file_mix ~seed ~model ~clients ~requests_per_client =
  let trace =
    Workload.Webstone.file_trace ~seed ~n:(clients * requests_per_client)
  in
  let cfg =
    Config.make ~cache_mode:Config.Disabled ~model
      ~threads_per_node:(Stdlib.max 16 clients) ~seed ()
  in
  let result = Cluster_runner.run cfg ~trace ~n_streams:clients () in
  Cluster_runner.mean_response result

let table2 ?(seed = default_seed) ?(clients = [ 4; 8; 16; 32; 64; 128 ])
    ?(requests_per_client = 40) () =
  List.map
    (fun c ->
      {
        clients = c;
        httpd =
          run_file_mix ~seed ~model:Config.httpd_model ~clients:c
            ~requests_per_client;
        enterprise =
          run_file_mix ~seed ~model:Config.enterprise_model ~clients:c
            ~requests_per_client;
        swala =
          run_file_mix ~seed ~model:Config.swala_model ~clients:c
            ~requests_per_client;
      })
    clients

(* ------------------------------------------------------------------ *)
(* E3 — Figure 3 *)

type figure3 = {
  enterprise_f3 : float;
  httpd_f3 : float;
  swala_no_cache : float;
  swala_remote : float;
  swala_local : float;
}

let null_request () =
  Workload.Trace.to_request
    (List.hd (Workload.Webstone.null_cgi_trace ~n:1))

let figure3 ?(seed = default_seed) ?(clients = 24) ?(requests_per_client = 40)
    () =
  let trace = Workload.Webstone.null_cgi_trace ~n:(clients * requests_per_client) in
  let run_plain model =
    let cfg =
      Config.make ~cache_mode:Config.Disabled ~model ~threads_per_node:clients
        ~seed ()
    in
    Cluster_runner.mean_response (Cluster_runner.run cfg ~trace ~n_streams:clients ())
  in
  (* Local fetch: one cooperative node, cache warmed with the null CGI. *)
  let local =
    let cfg =
      Config.make ~cache_mode:Config.Cooperative ~threads_per_node:clients
        ~cache_threshold:0. ~seed ()
    in
    let warmup cluster =
      Server.preload cluster ~node:0 (null_request ()) ~exec_time:0.03
    in
    Cluster_runner.mean_response
      (Cluster_runner.run cfg ~trace ~n_streams:clients ~warmup ())
  in
  (* Remote fetch: two nodes; node 0 holds the entry, all clients hit node 1. *)
  let remote =
    let cfg =
      Config.make ~n_nodes:2 ~cache_mode:Config.Cooperative
        ~threads_per_node:clients ~cache_threshold:0. ~seed ()
    in
    let warmup cluster =
      Server.preload cluster ~node:0 (null_request ()) ~exec_time:0.03;
      (* Let the insert broadcast reach node 1's directory replica. *)
      Sim.Engine.delay 0.01
    in
    Cluster_runner.mean_response
      (Cluster_runner.run cfg ~trace ~n_streams:clients ~warmup
         ~assign:(fun _ -> 1) ())
  in
  {
    enterprise_f3 = run_plain Config.enterprise_model;
    httpd_f3 = run_plain Config.httpd_model;
    swala_no_cache = run_plain Config.swala_model;
    swala_remote = remote;
    swala_local = local;
  }

(* ------------------------------------------------------------------ *)
(* E4 — Figure 4 *)

type figure4_row = {
  nodes : int;
  no_cache : float;
  coop : float;
  speedup_no_cache : float;
  improvement : float;
}

let figure4 ?(seed = default_seed) ?(node_counts = [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ?(n_requests = 8_000) () =
  let trace = Workload.Synthetic.adl_scaled ~seed ~n:n_requests in
  (* Two client machines x eight threads, as in §5.2. *)
  let n_streams = 16 in
  let run nodes mode =
    let cfg =
      Config.make ~n_nodes:nodes ~cache_mode:mode ~seed
        ~threads_per_node:16 ()
    in
    Cluster_runner.mean_response
      (Cluster_runner.run cfg ~trace ~n_streams ())
  in
  let rows =
    List.map
      (fun nodes ->
        let no_cache = run nodes Config.Disabled in
        let coop = run nodes Config.Cooperative in
        (nodes, no_cache, coop))
      node_counts
  in
  let base =
    match rows with
    | (_, nc, _) :: _ -> nc
    | [] -> invalid_arg "figure4: empty node_counts"
  in
  List.map
    (fun (nodes, no_cache, coop) ->
      {
        nodes;
        no_cache;
        coop;
        speedup_no_cache = base /. no_cache;
        improvement = (no_cache -. coop) /. no_cache;
      })
    rows

(* ------------------------------------------------------------------ *)
(* E5 — Table 3 *)

type table3_row = {
  nodes_t3 : int;
  no_cache_t3 : float;
  coop_t3 : float;
  increase_t3 : float;
}

let table3 ?(seed = default_seed) ?(node_counts = [ 2; 3; 4; 5; 6; 7; 8 ])
    ?(n_requests = 180) () =
  let trace = Workload.Synthetic.unique_cacheable ~n:n_requests ~demand:1.0 in
  let run nodes mode =
    let cfg = Config.make ~n_nodes:nodes ~cache_mode:mode ~seed () in
    (* All requests to one node, back to back (single stream). *)
    Cluster_runner.mean_response
      (Cluster_runner.run cfg ~trace ~n_streams:1 ~assign:(fun _ -> 0) ())
  in
  List.map
    (fun nodes ->
      let no_cache = run nodes Config.Disabled in
      let coop = run nodes Config.Cooperative in
      {
        nodes_t3 = nodes;
        no_cache_t3 = no_cache;
        coop_t3 = coop;
        increase_t3 = coop -. no_cache;
      })
    node_counts

(* ------------------------------------------------------------------ *)
(* E6 — Table 4 *)

type table4_row = {
  ups : int;
  mean_response_t4 : float;
  increase_t4 : float;
  updates_applied : int;
}

(* One live node told it belongs to an eight-node group; a pseudo-server
   process injects directory updates at a fixed rate while 180 uncacheable
   one-second requests run back to back. *)
let table4_run ~seed ~ups ~n_requests =
  let engine = Sim.Engine.create () in
  let cfg =
    Config.make ~n_nodes:8 ~cache_mode:Config.Cooperative ~seed ()
  in
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cluster =
    Server.create_cluster engine cfg ~registry ~n_client_endpoints:1
  in
  let trace = Workload.Synthetic.uncacheable ~n:n_requests ~demand:1.0 in
  let sample = Metrics.Sample.create () in
  let done_ = ref false in
  Server.start cluster;
  let client = 8 (* first client endpoint *) in
  Sim.Engine.spawn engine (fun () ->
      List.iter
        (fun item ->
          let req = Workload.Trace.to_request item in
          let t0 = Sim.Engine.now () in
          let (_ : Http.Response.t) = Server.submit cluster ~client ~node:0 req in
          Metrics.Sample.add sample (Sim.Engine.now () -. t0))
        trace;
      done_ := true;
      Server.stop cluster);
  if ups > 0 then
    Sim.Engine.spawn engine (fun () ->
        let period = 1. /. float_of_int ups in
        let k = ref 0 in
        let rec loop () =
          if not !done_ then begin
            Sim.Engine.delay period;
            incr k;
            let meta =
              Cache.Meta.make
                ~key:(Printf.sprintf "GET /pseudo?i=%d" !k)
                ~owner:(1 + (!k mod 7))
                ~size:4096 ~exec_time:1.0 ~created:(Sim.Engine.now ())
                ~expires:None
            in
            Sim.Net.post (Server.net cluster) ~src:(1 + (!k mod 7)) ~dst:0
              ~bytes:128
              (Server.node_info_mailbox (Server.node cluster 0))
              { Cluster.Msg.info = Cluster.Msg.Insert meta; ack = None; span = 0 };
            loop ()
          end
        in
        loop ());
  Sim.Engine.run engine;
  let counters = Server.node_counters (Server.node cluster 0) in
  ( Metrics.Sample.mean sample,
    Metrics.Counter.get counters Server.K.info_applied )

let table4 ?(seed = default_seed) ?(ups_list = [ 0; 5; 10; 20; 40; 80 ])
    ?(n_requests = 180) () =
  let rows =
    List.map (fun ups -> (ups, table4_run ~seed ~ups ~n_requests)) ups_list
  in
  let base =
    match rows with
    | (_, (m, _)) :: _ -> m
    | [] -> invalid_arg "table4: empty ups_list"
  in
  List.map
    (fun (ups, (mean, applied)) ->
      {
        ups;
        mean_response_t4 = mean;
        increase_t4 = mean -. base;
        updates_applied = applied;
      })
    rows

(* ------------------------------------------------------------------ *)
(* E7/E8 — Tables 5-6 *)

type hit_row = {
  nodes_h : int;
  standalone_hits : int;
  coop_hits : int;
  upper_bound : int;
  standalone_pct : float;
  coop_pct : float;
  coop_false_misses : int;
}

let hit_ratio_table ?(seed = default_seed) ?(node_counts = [ 1; 2; 4; 6; 8 ])
    ?(n = 1600) ?(n_unique = 1122) ~cache_size () =
  let trace =
    Workload.Synthetic.coop ~seed ~n ~n_unique ~locality:0.08 ()
  in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  let run nodes mode =
    let cfg =
      Config.make ~n_nodes:nodes ~cache_mode:mode ~cache_capacity:cache_size
        ~seed ()
    in
    Cluster_runner.run cfg ~trace ~n_streams:16 ()
  in
  List.map
    (fun nodes ->
      let st = run nodes Config.Standalone in
      let co = run nodes Config.Cooperative in
      let pct h = if upper = 0 then 0. else float_of_int h /. float_of_int upper in
      {
        nodes_h = nodes;
        standalone_hits = st.Cluster_runner.hits;
        coop_hits = co.Cluster_runner.hits;
        upper_bound = upper;
        standalone_pct = pct st.Cluster_runner.hits;
        coop_pct = pct co.Cluster_runner.hits;
        coop_false_misses =
          Metrics.Counter.get co.Cluster_runner.counters
            Server.K.false_miss_concurrent
          + Metrics.Counter.get co.Cluster_runner.counters
              Server.K.false_miss_duplicate;
      })
    node_counts

(* ------------------------------------------------------------------ *)
(* A1 — replacement policies *)

type policy_row = {
  policy : Cache.Policy.t;
  hits_p : int;
  upper_p : int;
  mean_response_p : float;
}

let ablation_policy ?(seed = default_seed) ?(cache_size = 20) ?(nodes = 4) () =
  let trace = Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08 () in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  List.map
    (fun policy ->
      let cfg =
        Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
          ~cache_capacity:cache_size ~policy ~seed ()
      in
      let r = Cluster_runner.run cfg ~trace ~n_streams:16 () in
      {
        policy;
        hits_p = r.Cluster_runner.hits;
        upper_p = upper;
        mean_response_p = Cluster_runner.mean_response r;
      })
    Cache.Policy.all

(* ------------------------------------------------------------------ *)
(* A2 — locking granularity *)

type locking_row = {
  granularity : Cache.Directory.granularity;
  mean_response_l : float;
  rd_locks : int;
  wr_locks : int;
}

let granularity_name = function
  | Cache.Directory.Global -> "global"
  | Cache.Directory.Per_table -> "per-table"
  | Cache.Directory.Per_entry -> "per-entry"

let ablation_locking ?(seed = default_seed) ?(nodes = 4) () =
  (* Write-heavy, directory-bound regime: every 5 ms CGI is unique, so each
     request inserts into the directory and every peer applies the
     broadcast — four write-lock acquisitions per request cluster-wide. The
     table scan is charged under the lock (100 us per probe), so with one
     global lock those writes block every concurrent lookup, with per-table
     locks only the owner's table is blocked, and per-entry locking pays
     one acquisition per entry scanned — the three-way trade-off of §4.2. *)
  let trace = Workload.Synthetic.unique_cacheable ~n:4000 ~demand:0.005 in
  List.map
    (fun granularity ->
      let cfg =
        Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
          ~dir_granularity:granularity ~dir_scan_cost:2e-6
          ~cache_threshold:0.001 ~seed ()
      in
      let r = Cluster_runner.run cfg ~trace ~n_streams:(12 * nodes) () in
      let rd, wr = r.Cluster_runner.dir_locks in
      {
        granularity;
        mean_response_l = Cluster_runner.mean_response r;
        rd_locks = rd;
        wr_locks = wr;
      })
    [ Cache.Directory.Global; Cache.Directory.Per_table; Cache.Directory.Per_entry ]

(* ------------------------------------------------------------------ *)
(* A3 — consistency anomalies vs latency *)

(* ------------------------------------------------------------------ *)
(* A4 — weak vs strong consistency protocol *)

type protocol_row = {
  latency_pr : float;
  weak : float;
  strong : float;
  penalty : float;
}

let ablation_protocol ?(seed = default_seed) ?(nodes = 8)
    ?(latencies = [ 0.0002; 0.002; 0.02 ]) ?(n_requests = 1_000)
    ?(demand = 0.2) () =
  let trace = Workload.Synthetic.unique_cacheable ~n:n_requests ~demand in
  let run latency consistency =
    let cfg =
      Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative ~consistency
        ~net_latency:latency ~cache_threshold:0.05 ~seed ()
    in
    Cluster_runner.mean_response
      (Cluster_runner.run cfg ~trace ~n_streams:16 ())
  in
  List.map
    (fun latency ->
      let weak = run latency Config.Weak in
      let strong = run latency Config.Strong in
      { latency_pr = latency; weak; strong; penalty = strong -. weak })
    latencies

(* ------------------------------------------------------------------ *)
(* A5 — routing policy *)

type routing_row = {
  routing : Router.policy;
  mode_r : Config.cache_mode;
  hits_r : int;
  upper_r : int;
  mean_response_r : float;
}

let ablation_routing ?(seed = default_seed) ?(nodes = 4) ?(cache_size = 2000)
    () =
  let trace =
    Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08 ()
  in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  List.concat_map
    (fun routing ->
      List.map
        (fun mode ->
          let cfg =
            Config.make ~n_nodes:nodes ~cache_mode:mode
              ~cache_capacity:cache_size ~seed ()
          in
          let r =
            Cluster_runner.run cfg ~trace ~n_streams:16 ~router:routing ()
          in
          {
            routing;
            mode_r = mode;
            hits_r = r.Cluster_runner.hits;
            upper_r = upper;
            mean_response_r = Cluster_runner.mean_response r;
          })
        [ Config.Standalone; Config.Cooperative ])
    Router.all_policies

(* ------------------------------------------------------------------ *)
(* A6 — caching threshold sweep *)

type threshold_row = {
  threshold_t : float;
  capacity_t : int;
  mean_response_thr : float;
  hits_thr : int;
  inserts_thr : int;
  evictions_thr : int;
}

let ablation_threshold ?(seed = default_seed)
    ?(thresholds = [ 0.0; 0.5; 1.0; 2.0; 4.0 ]) ?(capacities = [ 2000; 50 ])
    ?(n_requests = 6_000) () =
  let trace = Workload.Synthetic.adl_scaled ~seed ~n:n_requests in
  List.concat_map
    (fun capacity ->
      List.map
        (fun threshold ->
          let cfg =
            Config.make ~n_nodes:4 ~cache_mode:Config.Cooperative
              ~cache_capacity:capacity ~cache_threshold:threshold ~seed ()
          in
          let r = Cluster_runner.run cfg ~trace ~n_streams:16 () in
          {
            threshold_t = threshold;
            capacity_t = capacity;
            mean_response_thr = Cluster_runner.mean_response r;
            hits_thr = r.Cluster_runner.hits;
            inserts_thr =
              Metrics.Counter.get r.Cluster_runner.counters Server.K.inserts;
            evictions_thr = r.Cluster_runner.store_stats.Cache.Stats.evictions;
          })
        thresholds)
    capacities

(* ------------------------------------------------------------------ *)
(* A7 — protocol-message loss *)

type loss_row = {
  loss : float;
  hits_l : int;
  upper_l : int;
  fetch_timeouts_l : int;
  mean_response_loss : float;
}

let ablation_loss ?(seed = default_seed) ?(losses = [ 0.0; 0.05; 0.2; 0.5 ])
    ?(nodes = 4) () =
  let trace =
    Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08 ()
  in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  List.map
    (fun loss ->
      let cfg =
        Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
          ~net_loss:loss ~fetch_timeout:(Some 0.5) ~seed ()
      in
      let r = Cluster_runner.run cfg ~trace ~n_streams:16 () in
      {
        loss;
        hits_l = r.Cluster_runner.hits;
        upper_l = upper;
        fetch_timeouts_l =
          Metrics.Counter.get r.Cluster_runner.counters Server.K.fetch_timeouts;
        mean_response_loss = Cluster_runner.mean_response r;
      })
    losses

type consistency_row = {
  latency : float;
  false_hits : int;
  false_miss_concurrent_c : int;
  false_miss_duplicate_c : int;
  hits_c : int;
}

let ablation_consistency ?(seed = default_seed)
    ?(latencies = [ 0.0002; 0.005; 0.05; 0.5 ]) ?(nodes = 8) () =
  (* Short executions (50 ms) make the inconsistency window latency-bound:
     a peer stays ignorant of an insert for [latency] seconds, so higher
     latency means more duplicate executions of the same hot query. *)
  let trace =
    Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08
      ~demand:0.05 ()
  in
  List.map
    (fun latency ->
      (* A small cache keeps replacement active, so delete broadcasts race
         with remote fetches — the false-hit window of §4.2. *)
      let cfg =
        Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
          ~broadcast_latency:(Some latency) ~cache_threshold:0.01
          ~cache_capacity:40 ~seed ()
      in
      let r = Cluster_runner.run cfg ~trace ~n_streams:16 () in
      let get = Metrics.Counter.get r.Cluster_runner.counters in
      {
        latency;
        false_hits = get Server.K.false_hit;
        false_miss_concurrent_c = get Server.K.false_miss_concurrent;
        false_miss_duplicate_c = get Server.K.false_miss_duplicate;
        hits_c = r.Cluster_runner.hits;
      })
    latencies

type fault_row = {
  drop_f : float;
  mtbf_f : float;
  hits_f : int;
  upper_f : int;
  timeouts_f : int;
  retries_f : int;
  crashes_f : int;
  rejected_f : int;
  purged_f : int;
  net_lost_f : int;
  mean_response_f : float;
}

let ablation_faults ?(seed = default_seed) ?(drops = [ 0.0; 0.05; 0.2 ])
    ?(mtbfs = [ 0.; 60.; 15. ]) ?(nodes = 4) () =
  let trace =
    Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08 ()
  in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  List.concat_map
    (fun drop ->
      List.map
        (fun mtbf ->
          (* mtbf = 0 means "no crashes"; a 2 s repair keeps churn high
             enough that restarts also happen within the run. *)
          let node =
            if mtbf > 0. then Some { Sim.Fault.mtbf; mttr = 2.0 } else None
          in
          let fault = Sim.Fault.make ~drop ?node ~horizon:600. () in
          let cfg =
            Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
              ~fault:(Some fault) ~fetch_timeout:(Some 0.5) ~fetch_retries:2
              ~fetch_backoff:2.0 ~seed ()
          in
          (* Route via the front-end so requests fail over around down
             nodes (Per_stream keeps the paper's pinning while healthy). *)
          let r =
            Cluster_runner.run cfg ~trace ~n_streams:16
              ~router:Router.Per_stream ()
          in
          let get = Metrics.Counter.get r.Cluster_runner.counters in
          {
            drop_f = drop;
            mtbf_f = mtbf;
            hits_f = r.Cluster_runner.hits;
            upper_f = upper;
            timeouts_f = get Server.K.fetch_timeouts;
            retries_f = get Server.K.fetch_retries;
            crashes_f = get Server.K.crashes;
            rejected_f = get Server.K.rejected_down;
            purged_f = get Server.K.dir_suspect_purged;
            net_lost_f = r.Cluster_runner.net_lost;
            mean_response_f = Cluster_runner.mean_response r;
          })
        mtbfs)
    drops

type partition_row = {
  duration_pt : float;
  period_pt : float;
  hits_pt : int;
  false_hits_pt : int;
  false_miss_dup_pt : int;
  ae_rounds_pt : int;
  ae_pulled_pt : int;
  healed_pt : int;
  drops_partition_pt : int;
  mean_response_pt : float;
}

let ablation_partition ?(seed = default_seed)
    ?(durations = [ 0.; 10.; 20. ]) ?(periods = [ 0.; 2.; 10. ]) () =
  (* Short executions and a pinch of locality keep the two halves working
     the same hot keys, so a split produces divergence worth repairing. *)
  let trace =
    Workload.Synthetic.coop ~seed ~n:1600 ~n_unique:1122 ~locality:0.08
      ~demand:0.05 ()
  in
  List.concat_map
    (fun duration ->
      List.map
        (fun period ->
          let partitions =
            if duration > 0. then
              [
                {
                  Sim.Fault.pname = "halves";
                  groups = [ [ 0; 1 ]; [ 2; 3 ] ];
                  cut_at = 1.0;
                  heal_at = 1.0 +. duration;
                };
              ]
            else []
          in
          let fault =
            if partitions = [] then None
            else Some (Sim.Fault.make ~partitions ())
          in
          let cfg =
            Config.make ~n_nodes:4 ~cache_mode:Config.Cooperative
              ~cache_threshold:0.01 ~fault
              ~fetch_timeout:(Some 0.5)
              ~anti_entropy_period:(if period > 0. then Some period else None)
              ~seed ()
          in
          let r =
            Cluster_runner.run cfg ~trace ~n_streams:16
              ~router:Router.Per_stream ()
          in
          let get = Metrics.Counter.get r.Cluster_runner.counters in
          {
            duration_pt = duration;
            period_pt = period;
            hits_pt = r.Cluster_runner.hits;
            false_hits_pt = get Server.K.false_hit;
            false_miss_dup_pt = get Server.K.false_miss_duplicate;
            ae_rounds_pt = get Server.K.anti_entropy_rounds;
            ae_pulled_pt = get Server.K.anti_entropy_pulled;
            healed_pt = get Server.K.partitions_healed;
            drops_partition_pt = r.Cluster_runner.net_lost_partition;
            mean_response_pt = Cluster_runner.mean_response r;
          })
        periods)
    durations

(* ------------------------------------------------------------------ *)
(* A10 — directory-update batching *)

type batching_row = {
  nodes_bt : int;
  interval_bt : float;  (* 0. = batching off (batch_max 1) *)
  updates_bt : int;  (* directory updates originated *)
  msgs_bt : int;  (* unicast messages actually sent *)
  bytes_bt : int;  (* wire bytes of those messages *)
  batches_bt : int;  (* Batch envelopes among them *)
  batched_updates_bt : int;  (* updates those envelopes carried *)
  coalesced_bt : int;  (* buffered updates overwritten before sending *)
  hits_bt : int;
  mean_response_bt : float;
}

let ablation_batching ?(seed = default_seed) ?(node_counts = [ 2; 4; 8; 16 ])
    ?(intervals = [ 0.; 0.005; 0.02; 0.05 ]) ?(n_requests = 4000) () =
  (* Same write-heavy regime as the locking ablation: every CGI result is
     unique and cacheable, so each request broadcasts one insert — the
     directory-metadata worst case that batching targets. The WebStone
     file mix generates no directory traffic at all, which is the other
     end of the spectrum and needs no batching. An interval of 0 means
     batching off ([batch_max = 1]), the exact pre-batching path. *)
  let trace = Workload.Synthetic.unique_cacheable ~n:n_requests ~demand:0.005 in
  List.concat_map
    (fun nodes ->
      List.map
        (fun interval ->
          let batching = interval > 0. in
          let cfg =
            Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
              ~cache_threshold:0.001
              ~batch_max:(if batching then 64 else 1)
              ~batch_flush_interval:(if batching then Some interval else None)
              ~seed ()
          in
          let r = Cluster_runner.run cfg ~trace ~n_streams:(4 * nodes) () in
          let get = Metrics.Counter.get r.Cluster_runner.counters in
          {
            nodes_bt = nodes;
            interval_bt = interval;
            updates_bt =
              get Server.K.broadcast_insert + get Server.K.broadcast_delete;
            msgs_bt = get Server.K.info_msgs;
            bytes_bt = get Server.K.info_bytes;
            batches_bt = get Server.K.batches_sent;
            batched_updates_bt = get Server.K.batch_updates;
            coalesced_bt = get Server.K.batch_coalesced;
            hits_bt = r.Cluster_runner.hits;
            mean_response_bt = Cluster_runner.mean_response r;
          })
        intervals)
    node_counts

(* ------------------------------------------------------------------ *)
(* A11 — metadata plane: replicated vs batched vs sharded (+hotspot) *)

type dirmode_row = {
  nodes_dm : int;
  variant_dm : string;
  dir_msgs_dm : int;  (* info_msgs + dir_lookup_msgs *)
  dir_bytes_dm : int;  (* info_bytes + dir_lookup_bytes *)
  mem_mean_dm : float;  (* mean per-node directory entries at run end *)
  mem_max_dm : int;  (* the most loaded node *)
  fwd_dm : int;  (* forwarded directory lookups *)
  lcache_hits_dm : int;  (* positive + negative lookup-cache hits *)
  promotions_dm : int;  (* hotspot promotions at shard homes *)
  hits_dm : int;
  hit_latency_dm : float;  (* mean cache-hit service time, seconds *)
  mean_response_dm : float;
}

let ablation_dirmode ?jobs ?(seed = default_seed)
    ?(node_counts = [ 8; 64; 256; 512 ]) ?(n_requests = 3000) () =
  (* A hot-headed read-mostly mix: a quarter of the requests are unique
     inserts (metadata writes), the rest re-reference a 24-key Zipf head
     (metadata reads). Replicated pays O(n) messages per insert and keeps
     the full key population in every replica; sharded pays O(1) per
     insert plus a forwarded round trip per uncached remote lookup, and
     each node holds only its ring partition plus the bounded lookup
     cache. The hotspot variant promotes head keys to 3 ring successors.
     Thresholds: with a positive-lookup TTL of 5 s, a shard home sees
     each node at most every 5 s per hot key, so a promotion threshold of
     1/s needs ~5 live nodes re-referencing the key — hot keys promote at
     every swept cluster size, cold keys never do. *)
  let trace =
    Workload.Synthetic.coop ~seed ~n:n_requests
      ~n_unique:(Stdlib.max 1 (n_requests / 4))
      ~n_hot:24 ~zipf_s:1.1 ~demand:0.005 ()
  in
  let variants =
    [ "replicated"; "batched"; "sharded"; "sharded+hotspot" ]
  in
  (* Each (nodes, variant) point is an independent deterministic run, so
     the grid sweeps on a domain pool; [Sweep.map_list] keeps point
     order, so output is identical whatever [jobs] is. *)
  let points =
    List.concat_map
      (fun nodes -> List.map (fun variant -> (nodes, variant)) variants)
      node_counts
  in
  Sim.Sweep.map_list ?jobs
    (fun (nodes, variant) ->
          let cfg =
            match variant with
            | "replicated" ->
                Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
                  ~cache_threshold:0.001 ~seed ()
            | "batched" ->
                Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
                  ~cache_threshold:0.001 ~batch_max:8
                  ~batch_flush_interval:(Some 0.005) ~seed ()
            | "sharded" ->
                Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
                  ~cache_threshold:0.001 ~dir_mode:Config.Sharded ~seed ()
            | "sharded+hotspot" ->
                Config.make ~n_nodes:nodes ~cache_mode:Config.Cooperative
                  ~cache_threshold:0.001 ~dir_mode:Config.Sharded
                  ~hotspot_threshold:1.0 ~hotspot_window:2.0
                  ~hotspot_replicas:3 ~seed ()
            | _ -> assert false
          in
          (* Streams scale with the cluster up to a cap, but never below
             one per node, so every node serves clients at every size. *)
          let n_streams =
            Stdlib.max nodes (Stdlib.min (4 * nodes) 256)
          in
          let r = Cluster_runner.run cfg ~trace ~n_streams () in
          let get = Metrics.Counter.get r.Cluster_runner.counters in
          let entries = r.Cluster_runner.dir_entries in
          {
            nodes_dm = nodes;
            variant_dm = variant;
            dir_msgs_dm = get Server.K.info_msgs + get Server.K.dir_lookup_msgs;
            dir_bytes_dm =
              get Server.K.info_bytes + get Server.K.dir_lookup_bytes;
            mem_mean_dm =
              (if Array.length entries = 0 then 0.
               else
                 float_of_int (Array.fold_left ( + ) 0 entries)
                 /. float_of_int (Array.length entries));
            mem_max_dm = Array.fold_left Stdlib.max 0 entries;
            fwd_dm = get Server.K.shard_fwd_lookups;
            lcache_hits_dm =
              get Server.K.lcache_pos_hits + get Server.K.lcache_neg_hits;
            promotions_dm = get Server.K.hotspot_promotions;
            hits_dm = r.Cluster_runner.hits;
            hit_latency_dm =
              Metrics.Sample.mean r.Cluster_runner.hit_latency;
            mean_response_dm = Cluster_runner.mean_response r;
          })
    points

(* ------------------------------------------------------------------ *)
(* A12 — time-varying scenario: flash crowd + rolling churn *)

type scenario_row = {
  variant_sc : string;
  phase_sc : string;  (* "all" carries run-wide counters, then one row per phase *)
  n_sc : int;  (* responses completing inside the phase *)
  mean_sc : float;
  p50_sc : float;
  p99_sc : float;
  hits_sc : int;  (* run-wide fields below: populated on the "all" row only *)
  hit_ratio_sc : float;
  dir_msgs_sc : int;
  crashes_sc : int;
  redirects_sc : int;
  net_lost_sc : int;
}

let ablation_scenario ?jobs ?(seed = default_seed) ?(n_nodes = 8)
    ?(n_requests = 4000) () =
  (* The regime PR 5's sharded plane was built for, applied as one run:
     a hot-headed coop mix whose middle third is hit by a flash crowd
     (80 % of CGI traffic onto an 8-key Zipf head) while the cluster
     rides rolling churn (one leave every ~3 s, 1.5 s down). Replicated
     keeps broadcasting every insert to n-1 peers through the turbulence;
     sharded+hotspot unicasts to homes, promotes the crowd head, and
     re-announces across each handoff. Per-phase latency rows come from
     bucketing completions by the scenario's phase schedule. *)
  let trace =
    Workload.Synthetic.coop ~seed ~n:n_requests
      ~n_unique:(Stdlib.max 1 (n_requests / 4))
      ~n_hot:24 ~zipf_s:1.1 ~demand:0.02 ()
  in
  let scenario =
    Workload.Scenario.make ~duration:12.
      ~flash:
        (Workload.Scenario.flash_crowd ~at:3. ~duration:3. ~decay:3.
           ~fraction:0.8 ~keys:8 ~zipf_s:1.0 ~demand:0.02 ())
      ()
  in
  let churn = Sim.Fault.churn ~rate:0.3 ~downtime:1.5 ~poisson:true () in
  let fault = Sim.Fault.make ~churn ~horizon:120. () in
  let variants = [ "replicated"; "sharded+hotspot" ] in
  List.concat
  @@ Sim.Sweep.map_list ?jobs
    (fun variant ->
      let cfg =
        match variant with
        | "replicated" ->
            Config.make ~n_nodes ~cache_mode:Config.Cooperative
              ~cache_threshold:0.001 ~scenario:(Some scenario)
              ~fault:(Some fault) ~fetch_timeout:(Some 0.25) ~fetch_retries:1
              ~seed ()
        | "sharded+hotspot" ->
            Config.make ~n_nodes ~cache_mode:Config.Cooperative
              ~cache_threshold:0.001 ~dir_mode:Config.Sharded
              ~hotspot_threshold:1.0 ~hotspot_window:2.0 ~hotspot_replicas:3
              ~scenario:(Some scenario) ~fault:(Some fault)
              ~fetch_timeout:(Some 0.25) ~fetch_retries:1 ~seed ()
        | _ -> assert false
      in
      let phases = Workload.Scenario.phases scenario in
      let phase_samples =
        List.map (fun (name, _, _) -> (name, Metrics.Sample.create ())) phases
      in
      let observe ~time dt =
        let name = Workload.Scenario.phase_of scenario ~now:time in
        Metrics.Sample.add (List.assoc name phase_samples) dt
      in
      let r =
        Cluster_runner.run cfg ~trace ~n_streams:(4 * n_nodes)
          ~router:Router.Per_stream ~observe ()
      in
      let get = Metrics.Counter.get r.Cluster_runner.counters in
      let q s p = match Metrics.Sample.quantile_opt s p with
        | Some v -> v
        | None -> 0.
      in
      let all_row =
        {
          variant_sc = variant;
          phase_sc = "all";
          n_sc = Metrics.Sample.count r.Cluster_runner.response;
          mean_sc = Cluster_runner.mean_response r;
          p50_sc = q r.Cluster_runner.response 0.5;
          p99_sc = q r.Cluster_runner.response 0.99;
          hits_sc = r.Cluster_runner.hits;
          hit_ratio_sc = r.Cluster_runner.hit_ratio;
          dir_msgs_sc = get Server.K.info_msgs + get Server.K.dir_lookup_msgs;
          crashes_sc = get Server.K.crashes;
          redirects_sc = get "scenario_flash_redirects";
          net_lost_sc = r.Cluster_runner.net_lost;
        }
      in
      all_row
      :: List.map
           (fun (name, sample) ->
             {
               variant_sc = variant;
               phase_sc = name;
               n_sc = Metrics.Sample.count sample;
               mean_sc = Metrics.Sample.mean sample;
               p50_sc = q sample 0.5;
               p99_sc = q sample 0.99;
               hits_sc = 0;
               hit_ratio_sc = 0.;
               dir_msgs_sc = 0;
               crashes_sc = 0;
               redirects_sc = 0;
               net_lost_sc = 0;
             })
           phase_samples)
    variants

(* ------------------------------------------------------------------ *)
(* A13 — freshness: fixed vs adaptive TTL under a flash crowd *)

type freshness_row = {
  dirmode_fr : string;
  variant_fr : string;
  stale_mean_fr : float;
  stale_p99_fr : float;
  hit_ratio_fr : float;
  cgi_execs_fr : int;
  refreshes_fr : int;
  refresh_saved_ms_fr : int;
  stale_served_fr : int;
  dir_bytes_fr : int;
  mean_response_fr : float;
}

let ablation_freshness ?jobs ?(seed = default_seed) ?(n_nodes = 4)
    ?(n_requests = 4000) () =
  (* The staleness x recompute-cost x bytes-moved sweep: the A12 flash
     crowd (80 % of CGI traffic onto an 8-key head for the middle of the
     run, no churn) replayed under three fixed TTLs bracketing the
     regime, the adaptive controller, and adaptive plus the proactive
     refresh daemon — on both metadata planes. Fixed TTLs trace the
     whole-cache tradeoff curve (short = fresh but recompute-heavy and
     chatty, long = cheap but stale); the controller picks a point per
     key from its observed rate and cost, and the [default_ttl = 8]
     anchor on the adaptive rows defines the stale_served counter
     ("hits a fixed-8 cache would have refused"). *)
  let trace =
    Workload.Synthetic.coop ~seed ~n:n_requests
      ~n_unique:(Stdlib.max 1 (n_requests / 4))
      ~n_hot:24 ~zipf_s:1.1 ~demand:0.02 ()
  in
  let scenario =
    Workload.Scenario.make ~duration:12.
      ~flash:
        (Workload.Scenario.flash_crowd ~at:3. ~duration:3. ~decay:3.
           ~fraction:0.8 ~keys:8 ~zipf_s:1.0 ~demand:0.02 ())
      ()
  in
  let variants =
    [ "fixed-2"; "fixed-8"; "fixed-32"; "adaptive"; "adaptive+refresh" ]
  in
  let points =
    List.concat_map
      (fun dir_mode ->
        List.map (fun variant -> (dir_mode, variant)) variants)
      [ Config.Replicated; Config.Sharded ]
  in
  Sim.Sweep.map_list ?jobs
    (fun (dir_mode, variant) ->
          let make ?default_ttl ?freshness ?refresh_budget () =
            Config.make ~n_nodes ~cache_mode:Config.Cooperative
              ~cache_threshold:0.001 ~dir_mode ?default_ttl ?freshness
              ?refresh_budget ~scenario:(Some scenario)
              ~fetch_timeout:(Some 0.25) ~fetch_retries:1 ~seed ()
          in
          let cfg =
            match variant with
            | "fixed-2" -> make ~default_ttl:(Some 2.) ()
            | "fixed-8" -> make ~default_ttl:(Some 8.) ()
            | "fixed-32" -> make ~default_ttl:(Some 32.) ()
            | "adaptive" ->
                make ~default_ttl:(Some 8.)
                  ~freshness:Cache.Freshness.Adaptive ()
            | "adaptive+refresh" ->
                make ~default_ttl:(Some 8.)
                  ~freshness:Cache.Freshness.Adaptive ~refresh_budget:4. ()
            | _ -> assert false
          in
          let r =
            Cluster_runner.run cfg ~trace ~n_streams:(4 * n_nodes) ()
          in
          let get = Metrics.Counter.get r.Cluster_runner.counters in
          let st = r.Cluster_runner.staleness in
          {
            dirmode_fr = Config.dir_mode_to_string dir_mode;
            variant_fr = variant;
            stale_mean_fr = Metrics.Histogram.mean st;
            stale_p99_fr =
              (match Metrics.Histogram.quantile_opt st 0.99 with
              | Some v -> v
              | None -> 0.);
            hit_ratio_fr = r.Cluster_runner.hit_ratio;
            cgi_execs_fr = get Server.K.cgi_execs;
            refreshes_fr = get Server.K.refreshes;
            refresh_saved_ms_fr = get Server.K.refresh_saved_ms;
            stale_served_fr = get Server.K.stale_served;
            dir_bytes_fr =
              get Server.K.info_bytes + get Server.K.dir_lookup_bytes;
            mean_response_fr = Cluster_runner.mean_response r;
          })
    points
