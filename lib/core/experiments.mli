(** Drivers for every table and figure in the paper's evaluation (§3, §5),
    plus the ablations called out in DESIGN.md. Each driver returns typed
    rows; the bench harness renders them in the paper's layout and
    EXPERIMENTS.md records paper-vs-measured.

    All drivers are deterministic in [seed]. *)

(** {1 E1 — Table 1: potential saving from CGI caching (§3)} *)

val table1 :
  ?seed:int ->
  ?params:Workload.Synthetic.adl_params ->
  ?thresholds:float list ->
  unit ->
  Workload.Analyzer.summary * Workload.Analyzer.row list

(** {1 E2 — Table 2: file-fetch response time by server (§5.1)} *)

type table2_row = {
  clients : int;
  httpd : float;
  enterprise : float;
  swala : float;
}

val table2 :
  ?seed:int ->
  ?clients:int list ->
  ?requests_per_client:int ->
  unit ->
  table2_row list

(** {1 E3 — Figure 3: null-CGI response time by configuration (§5.1)} *)

type figure3 = {
  enterprise_f3 : float;
  httpd_f3 : float;
  swala_no_cache : float;
  swala_remote : float;
  swala_local : float;
}

val figure3 :
  ?seed:int -> ?clients:int -> ?requests_per_client:int -> unit -> figure3

(** {1 E4 — Figure 4: multi-node response time, cache on/off (§5.2)} *)

type figure4_row = {
  nodes : int;
  no_cache : float;  (** mean response, caching disabled *)
  coop : float;  (** mean response, cooperative caching *)
  speedup_no_cache : float;  (** single-node no-cache over this row *)
  improvement : float;  (** (no_cache - coop) / no_cache *)
}

val figure4 :
  ?seed:int -> ?node_counts:int list -> ?n_requests:int -> unit ->
  figure4_row list

(** {1 E5 — Table 3: insert + broadcast overhead (§5.2)} *)

type table3_row = {
  nodes_t3 : int;
  no_cache_t3 : float;
  coop_t3 : float;
  increase_t3 : float;
}

val table3 :
  ?seed:int -> ?node_counts:int list -> ?n_requests:int -> unit ->
  table3_row list

(** {1 E6 — Table 4: replicated-directory maintenance overhead (§5.2)} *)

type table4_row = {
  ups : int;  (** directory updates per second received *)
  mean_response_t4 : float;
  increase_t4 : float;  (** over the 0-UPS base case *)
  updates_applied : int;
}

val table4 :
  ?seed:int -> ?ups_list:int list -> ?n_requests:int -> unit -> table4_row list

(** {1 E7/E8 — Tables 5-6: stand-alone vs cooperative hit counts (§5.3)} *)

type hit_row = {
  nodes_h : int;
  standalone_hits : int;
  coop_hits : int;
  upper_bound : int;
  standalone_pct : float;  (** of upper bound *)
  coop_pct : float;
  coop_false_misses : int;  (** concurrent + duplicate-insert false misses *)
}

(** [hit_ratio_table ~cache_size] runs the paper's 1600-request /
    1122-unique workload at each node count. Table 5 is
    [~cache_size:2000]; Table 6 is [~cache_size:20]. *)
val hit_ratio_table :
  ?seed:int ->
  ?node_counts:int list ->
  ?n:int ->
  ?n_unique:int ->
  cache_size:int ->
  unit ->
  hit_row list

(** {1 A1 — ablation: replacement policies under overflow} *)

type policy_row = {
  policy : Cache.Policy.t;
  hits_p : int;
  upper_p : int;
  mean_response_p : float;
}

val ablation_policy :
  ?seed:int -> ?cache_size:int -> ?nodes:int -> unit -> policy_row list

(** {1 A2 — ablation: directory locking granularity (§4.2's argument)} *)

type locking_row = {
  granularity : Cache.Directory.granularity;
  mean_response_l : float;
  rd_locks : int;
  wr_locks : int;
}

val ablation_locking : ?seed:int -> ?nodes:int -> unit -> locking_row list

(** {1 A3 — ablation: consistency anomalies vs network latency (§4.2)} *)

type consistency_row = {
  latency : float;
  false_hits : int;
  false_miss_concurrent_c : int;
  false_miss_duplicate_c : int;
  hits_c : int;
}

val ablation_consistency :
  ?seed:int -> ?latencies:float list -> ?nodes:int -> unit ->
  consistency_row list

val granularity_name : Cache.Directory.granularity -> string

(** {1 A4 — ablation: weak vs strong directory consistency (§4.2)} *)

type protocol_row = {
  latency_pr : float;  (** one-way network latency of the run *)
  weak : float;  (** mean response under the paper's async protocol *)
  strong : float;  (** mean response when every update waits for acks *)
  penalty : float;  (** strong - weak, seconds per request *)
}

(** [ablation_protocol ()] runs the all-miss insertion workload under both
    protocols across network latencies — measuring exactly the
    synchronisation cost §4.2 declines to pay, and how it grows once the
    cluster is no longer a single LAN. *)
val ablation_protocol :
  ?seed:int -> ?nodes:int -> ?latencies:float list -> ?n_requests:int ->
  ?demand:float -> unit -> protocol_row list

(** {1 A5 — ablation: request routing policy} *)

type routing_row = {
  routing : Router.policy;
  mode_r : Config.cache_mode;
  hits_r : int;
  upper_r : int;
  mean_response_r : float;
}

(** [ablation_routing ()] crosses routing policies with stand-alone vs
    cooperative caching on the Table-5 workload: cache-affinity routing
    recovers most of cooperation's hit-ratio benefit without any
    inter-node protocol. *)
val ablation_routing :
  ?seed:int -> ?nodes:int -> ?cache_size:int -> unit -> routing_row list

(** {1 A6 — ablation: caching threshold (§3's trade-off, end to end)} *)

type threshold_row = {
  threshold_t : float;
  capacity_t : int;
  mean_response_thr : float;
  hits_thr : int;
  inserts_thr : int;
  evictions_thr : int;
}

(** [ablation_threshold ()] sweeps the runtime caching threshold at a
    large and a small cache on the ADL-like replay: caching everything
    thrashes a small cache, caching only the longest requests leaves
    savings unrealised. *)
val ablation_threshold :
  ?seed:int -> ?thresholds:float list -> ?capacities:int list ->
  ?n_requests:int -> unit -> threshold_row list

(** {1 A7 — ablation: protocol-message loss (failure injection)} *)

type loss_row = {
  loss : float;  (** per-message drop probability *)
  hits_l : int;
  upper_l : int;
  fetch_timeouts_l : int;
  mean_response_loss : float;
}

(** [ablation_loss ()] injects message loss into the cooperative protocol
    (directory updates and fetch traffic) with a fetch timeout as the
    recovery mechanism: the cache degrades gracefully — requests always
    complete, hits erode as replicas diverge. *)
val ablation_loss :
  ?seed:int -> ?losses:float list -> ?nodes:int -> unit -> loss_row list

(** {1 A8 — ablation: injected faults (drop-rate × crash-frequency)} *)

type fault_row = {
  drop_f : float;  (** per-link message drop probability *)
  mtbf_f : float;  (** mean time between node failures (s); [0.] = none *)
  hits_f : int;
  upper_f : int;  (** offline upper bound on hits for this trace *)
  timeouts_f : int;  (** fetches that exhausted their retries *)
  retries_f : int;  (** fetch retransmissions performed *)
  crashes_f : int;
  rejected_f : int;  (** requests refused with 503 by a down node *)
  purged_f : int;  (** suspect directory-table purges *)
  net_lost_f : int;  (** messages the fault plan discarded *)
  mean_response_f : float;
}

(** [ablation_faults ()] sweeps the drop-rate × crash-frequency grid of
    the fault-injection plan over the cooperative protocol (bounded fetch
    retries, local-execution fallback, suspect-table purge on timeout).
    The degradation is graceful: every request completes, the hit ratio
    erodes towards local-only as faults intensify. *)
val ablation_faults :
  ?seed:int -> ?drops:float list -> ?mtbfs:float list -> ?nodes:int ->
  unit -> fault_row list

(** {1 A9 — ablation: network partitions × anti-entropy repair} *)

type partition_row = {
  duration_pt : float;  (** partition length (s); [0.] = no partition *)
  period_pt : float;  (** anti-entropy period (s); [0.] = daemon disabled *)
  hits_pt : int;
  false_hits_pt : int;
  false_miss_dup_pt : int;
      (** duplicate executions of the same key — at insert time while
          divided, or discovered by the anti-entropy merge after the heal *)
  ae_rounds_pt : int;  (** digest exchanges initiated *)
  ae_pulled_pt : int;  (** directory entries pulled by the merges *)
  healed_pt : int;  (** partitions whose heal instant fired in the run *)
  drops_partition_pt : int;  (** protocol messages cut by the split *)
  mean_response_pt : float;
}

(** [ablation_partition ()] sweeps partition duration × anti-entropy
    period on a 4-node cluster split down the middle ([[0;1]] vs
    [[2;3]]). While divided, the halves duplicate hot executions and
    their directories diverge; after the heal, anti-entropy pulls the
    missing entries back at a rate set by its period, while a period of
    [0.] (daemon off) leaves divergence to be repaired only by lazy
    per-request discovery. *)
val ablation_partition :
  ?seed:int -> ?durations:float list -> ?periods:float list ->
  unit -> partition_row list

(** {1 A10 — ablation: directory-update batching} *)

type batching_row = {
  nodes_bt : int;
  interval_bt : float;
      (** batch flush interval (s); [0.] = batching off ([batch_max 1],
          the exact pre-batching transmit path) *)
  updates_bt : int;  (** directory updates originated (inserts + deletes) *)
  msgs_bt : int;  (** directory-update unicasts actually sent *)
  bytes_bt : int;  (** wire bytes of those unicasts *)
  batches_bt : int;  (** [Msg.Batch] envelopes among the unicasts *)
  batched_updates_bt : int;  (** updates carried inside batch envelopes *)
  coalesced_bt : int;
      (** buffered updates overwritten by a newer same-key update before
          transmission *)
  hits_bt : int;
  mean_response_bt : float;
}

(** [ablation_batching ()] sweeps the Nagle-style flush interval across
    cluster sizes on the write-heavy unique-cacheable mix (every request
    broadcasts one insert — the metadata-traffic worst case batching
    targets). Message and byte counts fall as the interval grows, while
    hit behaviour and request conservation are unchanged: batching delays
    metadata, it never loses or reorders it. *)
val ablation_batching :
  ?seed:int -> ?node_counts:int list -> ?intervals:float list ->
  ?n_requests:int -> unit -> batching_row list

(** {1 A11 — ablation: metadata plane (directory mode)} *)

type dirmode_row = {
  nodes_dm : int;
  variant_dm : string;
      (** ["replicated"], ["batched"] (flush 5 ms, [batch_max 8]),
          ["sharded"], or ["sharded+hotspot"] (threshold 1/s, 3 replicas) *)
  dir_msgs_dm : int;
      (** total metadata messages: directory-update unicasts plus
          forwarded-lookup requests and replies
          ([info_msgs + dir_lookup_msgs]) *)
  dir_bytes_dm : int;  (** wire bytes of those messages *)
  mem_mean_dm : float;
      (** mean per-node metadata footprint at run end, in directory
          entries (full replica, or shard partition + lookup cache) *)
  mem_max_dm : int;  (** the most loaded node's footprint *)
  fwd_dm : int;  (** directory lookups forwarded to a remote shard home *)
  lcache_hits_dm : int;  (** lookup-cache hits (positive + negative) *)
  promotions_dm : int;  (** hotspot promotions decided at shard homes *)
  hits_dm : int;
  hit_latency_dm : float;  (** mean cache-hit service time (s) *)
  mean_response_dm : float;
}

(** [ablation_dirmode ()] compares the two metadata planes (and update
    batching on the replicated one) across cluster sizes on a hot-headed
    read-mostly CGI mix. The replicated plane broadcasts every insert to
    [n - 1] peers and keeps the whole key population in every node;
    the sharded plane unicasts each insert to its consistent-hash home
    and forwards uncached remote lookups there, so messages stop scaling
    with [n] and per-node memory drops to the partition plus a bounded
    lookup cache — at the price of a forwarding round trip on lookup
    misses, which hotspot replication then claws back for the hot head.

    [jobs] spreads the (cluster size, variant) grid over that many
    domains via {!Sim.Sweep}; every point is an independent seeded run,
    so the returned rows are identical for any [jobs]. Likewise for
    {!ablation_scenario} and {!ablation_freshness}. *)
val ablation_dirmode :
  ?jobs:int -> ?seed:int -> ?node_counts:int list -> ?n_requests:int ->
  unit -> dirmode_row list

(** {1 A12 — time-varying scenario: flash crowd + rolling churn} *)

(** One row of {!ablation_scenario}. Each variant contributes an ["all"]
    row carrying the run-wide counters (hits, metadata messages, crashes,
    flash redirects, lost messages) followed by one row per scenario phase
    (["pre"], ["crowd"], ["decay"], ["post"]) whose latency statistics
    cover only the responses completing inside that phase; the run-wide
    fields are zero on phase rows. *)
type scenario_row = {
  variant_sc : string;  (** ["replicated"] or ["sharded+hotspot"] *)
  phase_sc : string;
  n_sc : int;
  mean_sc : float;
  p50_sc : float;
  p99_sc : float;
  hits_sc : int;
  hit_ratio_sc : float;
  dir_msgs_sc : int;  (** info unicasts + forwarded lookup messages *)
  crashes_sc : int;
  redirects_sc : int;  (** CGI items rewritten onto the crowd head *)
  net_lost_sc : int;
}

(** [ablation_scenario ()] replays one hot-headed cooperative mix through
    both metadata planes while a flash crowd (80 % of CGI traffic onto an
    8-key head for the middle of the run, with linear decay) and rolling
    churn (one node leave every ~3 s, 1.5 s downtime) are active — the
    §A12 experiment: does the sharded plane's unicast + hotspot machinery
    keep paying off when the workload and the membership both move?
    Returns rows per variant and phase; see {!scenario_row}. *)
val ablation_scenario :
  ?jobs:int -> ?seed:int -> ?n_nodes:int -> ?n_requests:int ->
  unit -> scenario_row list

(** {1 A13 — freshness: fixed vs adaptive TTL under a flash crowd} *)

(** One row of {!ablation_freshness}: one (metadata plane, TTL policy)
    cell of the staleness x recompute-cost x bytes-moved sweep. *)
type freshness_row = {
  dirmode_fr : string;  (** ["replicated"] or ["sharded"] *)
  variant_fr : string;
      (** ["fixed-2"], ["fixed-8"], ["fixed-32"], ["adaptive"] or
          ["adaptive+refresh"] *)
  stale_mean_fr : float;  (** mean content age at cache hits, s *)
  stale_p99_fr : float;
  hit_ratio_fr : float;
  cgi_execs_fr : int;  (** recompute cost axis *)
  refreshes_fr : int;
  refresh_saved_ms_fr : int;
  stale_served_fr : int;
      (** adaptive hits older than the fixed-8 anchor — what a fixed-8
          cache would have refused to serve *)
  dir_bytes_fr : int;  (** info + forwarded-lookup bytes: the wire axis *)
  mean_response_fr : float;
}

(** [ablation_freshness ()] replays the A12 flash-crowd mix (no churn)
    under three fixed TTLs bracketing the regime (2/8/32 s), the adaptive
    per-key controller, and adaptive plus a 4-per-second proactive
    refresh budget, on both metadata planes — the §A13 experiment: does
    a per-key TTL beat every single whole-cache TTL somewhere on the
    staleness/recompute/bytes frontier? *)
val ablation_freshness :
  ?jobs:int -> ?seed:int -> ?n_nodes:int -> ?n_requests:int ->
  unit -> freshness_row list
