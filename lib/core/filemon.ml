type t = { deps : (string, string list) Hashtbl.t }

let create registry =
  let deps = Hashtbl.create 32 in
  List.iter
    (fun (script : Cgi.Script.t) ->
      List.iter
        (fun source ->
          let existing =
            Option.value (Hashtbl.find_opt deps source) ~default:[]
          in
          if not (List.mem script.Cgi.Script.name existing) then
            Hashtbl.replace deps source (script.Cgi.Script.name :: existing))
        script.Cgi.Script.sources)
    (Cgi.Registry.scripts registry);
  { deps }

let watched t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.deps [] |> List.sort String.compare

let scripts_for t path =
  Option.value (Hashtbl.find_opt t.deps path) ~default:[]
  |> List.sort String.compare

let on_change t cluster path =
  List.fold_left
    (fun acc script -> acc + Server.invalidate_script cluster ~script)
    0 (scripts_for t path)
