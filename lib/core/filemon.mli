(** Source-file monitoring invalidation.

    The paper's related-work section describes Vahdat & Anderson's
    transparent result caching: monitor the files a CGI program reads and
    invalidate its cached results whenever a source changes; §4.2 lists
    adopting it as future work. This module is that mechanism: scripts
    declare their inputs ([Cgi.Script.sources]), {!create} indexes the
    dependency graph, and {!on_change} turns one file-modification event
    into cluster-wide invalidation of every dependent cached result. *)

type t

(** [create registry] indexes every registered script's source files. *)
val create : Cgi.Registry.t -> t

(** [watched t] lists the monitored files, sorted. *)
val watched : t -> string list

(** [scripts_for t path] lists the scripts that read [path], sorted. *)
val scripts_for : t -> string -> string list

(** [on_change t cluster path] invalidates all cached results of every
    script depending on [path]; returns the number of cache entries
    dropped cluster-wide. Must run inside a simulated process. Unknown
    paths invalidate nothing. *)
val on_change : t -> Server.cluster -> string -> int
