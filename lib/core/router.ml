type policy = Per_stream | Round_robin | Least_active | Key_affinity

let policy_name = function
  | Per_stream -> "per-stream"
  | Round_robin -> "round-robin"
  | Least_active -> "least-active"
  | Key_affinity -> "key-affinity"

let all_policies = [ Per_stream; Round_robin; Least_active; Key_affinity ]

type t = { policy : policy; mutable next : int; mutable retries : int }

let create policy = { policy; next = 0; retries = 0 }
let retries t = t.retries

(* FNV-1a (32-bit) over the canonical cache key: stable across runs, which
   Hashtbl.hash is not guaranteed to be. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

(* The front-end notices dead back-ends (a real dispatcher's connect
   fails), so a pick landing on a down node fails over to the next node
   up. When every node is down the original pick stands and the request
   is answered 503. Healthy clusters never enter the scan. *)
let steer cluster node =
  if Server.node_up (Server.node cluster node) then node
  else
    let n = Server.n_nodes cluster in
    let rec scan k =
      if k >= n then node
      else
        let cand = (node + k) mod n in
        if Server.node_up (Server.node cluster cand) then cand
        else scan (k + 1)
    in
    scan 1

let pick t cluster ~stream req =
  let n = Server.n_nodes cluster in
  let node =
    match t.policy with
    | Per_stream -> stream mod n
    | Round_robin ->
        let node = t.next mod n in
        t.next <- t.next + 1;
        node
    | Least_active ->
        let best = ref 0 in
        let best_load = ref max_int in
        for i = 0 to n - 1 do
          let load = Server.node_active (Server.node cluster i) in
          if load < !best_load then begin
            best := i;
            best_load := load
          end
        done;
        !best
    | Key_affinity -> fnv1a (Http.Request.cache_key req) mod n
  in
  steer cluster node

(* [pick] fails over {e before} the request leaves the client, but a node
   can crash between the routing decision and its accept — the client then
   sees the front-end's 503. A dispatcher hides that window by resubmitting
   to a survivor; each resubmission is counted, so experiments can report
   how many client requests needed a second (or third) connection. At most
   [n - 1] resubmissions: after that every node has refused, and the 503
   stands (whole cluster down). *)
let submit t cluster ~client ~node req =
  let n = Server.n_nodes cluster in
  let rec go node attempts =
    let resp = Server.submit cluster ~client ~node req in
    if
      resp.Http.Response.status = Http.Status.Service_unavailable
      && attempts < n - 1
      && not (Server.node_up (Server.node cluster node))
    then begin
      let alt = steer cluster ((node + 1) mod n) in
      if Server.node_up (Server.node cluster alt) then begin
        t.retries <- t.retries + 1;
        (* Resubmissions are rare and diagnostic — mark each on the client
           track so the timeline shows which requests needed a second
           connection. *)
        (match Server.tracer cluster with
        | None -> ()
        | Some tr ->
            Metrics.Trace.instant tr ~track:n ~name:"router.retry"
              ~attrs:[ ("node", string_of_int alt) ]
              ());
        go alt (attempts + 1)
      end
      else resp (* nobody is up; the 503 is the truthful answer *)
    end
    else resp
  in
  go node 0
