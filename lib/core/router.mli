(** Front-end request routing.

    The paper drives each client thread at a fixed server node (its SWEB
    companion work studies scheduling proper). This module adds a
    dispatcher abstraction so routing strategy becomes an experimental
    variable: cache-affinity routing in particular sends every repeat of a
    request to the same node, which recovers most of cooperative caching's
    benefit even for stand-alone caches (ablation A4). *)

type policy =
  | Per_stream  (** stream [i] pinned to node [i mod n] — the paper's setup *)
  | Round_robin  (** rotate per request *)
  | Least_active  (** node with the fewest in-flight requests *)
  | Key_affinity  (** hash of the request's cache key; repeats co-locate *)

val policy_name : policy -> string
val all_policies : policy list

type t

val create : policy -> t

(** [pick t cluster ~stream req] chooses the target node. Deterministic
    for every policy ([Least_active] ties break on the lowest node id).

    When fault injection has crashed the chosen node, the pick fails over
    to the next node that is up (scanning node ids cyclically), modelling
    a front-end that notices dead back-ends; only when the whole cluster
    is down does the original pick stand, and the node answers 503. On a
    healthy cluster the failover scan never runs. *)
val pick : t -> Server.cluster -> stream:int -> Http.Request.t -> int

(** [submit t cluster ~client ~node req] is [Server.submit] behind the
    dispatcher: when the response is a [503] {e and} the target is in fact
    down (it crashed in the window between routing and accept), the request
    is resubmitted to the next node that is up, at most [n - 1] times; each
    resubmission increments {!retries}. A [503] from a node that is up, or
    with the whole cluster down, is returned as is. Must run inside a
    simulated process. *)
val submit :
  t -> Server.cluster -> client:int -> node:int -> Http.Request.t ->
  Http.Response.t

(** [retries t] is the cumulative number of client-visible resubmissions
    this router performed (reported as [Server.K.router_retries]). *)
val retries : t -> int
