type decision = {
  cacheable : bool;
  ttl : float option;
  threshold : float option;
}

type rule = { prefix : string; decision : decision }

type t = {
  rules : rule list; (* sorted by prefix length, longest first *)
  default_cacheable : bool;
  default_ttl : float option;
  default_threshold : float option;
}

let empty =
  {
    rules = [];
    default_cacheable = true;
    default_ttl = None;
    default_threshold = None;
  }

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let decide t path =
  let rec go = function
    | [] ->
        {
          cacheable = t.default_cacheable;
          ttl = t.default_ttl;
          threshold = t.default_threshold;
        }
    | r :: rest -> if is_prefix ~prefix:r.prefix path then r.decision else go rest
  in
  go t.rules

let rule_count t = List.length t.rules

(* --- parsing ------------------------------------------------------- *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let parse_attr attr =
  match String.index_opt attr '=' with
  | None -> Error (Printf.sprintf "malformed attribute %S (want key=value)" attr)
  | Some i -> (
      let key = String.sub attr 0 i in
      let value = String.sub attr (i + 1) (String.length attr - i - 1) in
      match (key, float_of_string_opt value) with
      | "ttl", Some v when v > 0. -> Ok (`Ttl v)
      | "threshold", Some v when v >= 0. -> Ok (`Threshold v)
      | ("ttl" | "threshold"), _ ->
          Error (Printf.sprintf "bad value in %S" attr)
      | _ -> Error (Printf.sprintf "unknown attribute %S" key))

let parse_path p =
  if String.length p > 0 && p.[0] = '/' then Ok p
  else Error (Printf.sprintf "path %S must start with '/'" p)

let parse_line line =
  match split_ws line with
  | [] -> Ok `Blank
  | word :: _ when String.length word > 0 && word.[0] = '#' -> Ok `Blank
  | "cache" :: path :: attrs -> (
      match parse_path path with
      | Error e -> Error e
      | Ok path ->
          let rec fold ttl threshold = function
            | [] ->
                Ok
                  (`Rule
                    { prefix = path; decision = { cacheable = true; ttl; threshold } })
            | attr :: rest -> (
                match parse_attr attr with
                | Ok (`Ttl v) -> fold (Some v) threshold rest
                | Ok (`Threshold v) -> fold ttl (Some v) rest
                | Error e -> Error e)
          in
          fold None None attrs)
  | [ "nocache"; path ] ->
      Result.map
        (fun path ->
          `Rule
            {
              prefix = path;
              decision = { cacheable = false; ttl = None; threshold = None };
            })
        (parse_path path)
  | [ "default"; "cache" ] -> Ok (`Default true)
  | [ "default"; "nocache" ] -> Ok (`Default false)
  | [ "default-ttl"; v ] -> (
      match float_of_string_opt v with
      | Some ttl when ttl > 0. -> Ok (`Default_ttl ttl)
      | Some _ | None -> Error (Printf.sprintf "bad default-ttl %S" v))
  | [ "default-threshold"; v ] -> (
      match float_of_string_opt v with
      | Some th when th >= 0. -> Ok (`Default_threshold th)
      | Some _ | None -> Error (Printf.sprintf "bad default-threshold %S" v))
  | word :: _ -> Error (Printf.sprintf "unknown directive %S" word)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] ->
        let sorted =
          List.stable_sort
            (fun a b ->
              Int.compare (String.length b.prefix) (String.length a.prefix))
            acc.rules
        in
        Ok { acc with rules = sorted }
    | line :: rest -> (
        match parse_line line with
        | Ok `Blank -> go acc (n + 1) rest
        | Ok (`Rule r) -> go { acc with rules = r :: acc.rules } (n + 1) rest
        | Ok (`Default d) -> go { acc with default_cacheable = d } (n + 1) rest
        | Ok (`Default_ttl ttl) ->
            go { acc with default_ttl = Some ttl } (n + 1) rest
        | Ok (`Default_threshold th) ->
            go { acc with default_threshold = Some th } (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go empty 1 lines

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# swala cacheability rules\n";
  Buffer.add_string buf
    (if t.default_cacheable then "default cache\n" else "default nocache\n");
  (match t.default_ttl with
  | Some ttl -> Buffer.add_string buf (Printf.sprintf "default-ttl %g\n" ttl)
  | None -> ());
  (match t.default_threshold with
  | Some th ->
      Buffer.add_string buf (Printf.sprintf "default-threshold %g\n" th)
  | None -> ());
  List.iter
    (fun r ->
      if r.decision.cacheable then begin
        Buffer.add_string buf ("cache " ^ r.prefix);
        (match r.decision.ttl with
        | Some ttl -> Buffer.add_string buf (Printf.sprintf " ttl=%g" ttl)
        | None -> ());
        (match r.decision.threshold with
        | Some th -> Buffer.add_string buf (Printf.sprintf " threshold=%g" th)
        | None -> ());
        Buffer.add_char buf '\n'
      end
      else Buffer.add_string buf ("nocache " ^ r.prefix ^ "\n"))
    t.rules;
  Buffer.contents buf
