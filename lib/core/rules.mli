(** Administrator cacheability rules (paper §4.1).

    "Swala uses a configuration file, loaded at startup, to provide the
    system administrator with a flexible way to control which requests are
    cache-able." This module implements that file. One directive per line:

    {v
    # comments and blank lines are ignored
    cache   /cgi-bin/query  ttl=3600  threshold=0.5
    cache   /cgi-bin/
    nocache /cgi-bin/private
    default cache
    default-ttl 600
    default-threshold 0.1
    v}

    [cache]/[nocache] directives apply to the longest matching path prefix;
    [ttl] (seconds) and [threshold] (minimum execution seconds worth
    caching) may be attached to a [cache] directive and override the
    script- and server-level settings for matching requests. [default]
    ([cache] or [nocache]) decides paths no rule matches (default:
    [cache], i.e. defer to the script's own flag). *)

type decision = {
  cacheable : bool;
  ttl : float option;  (** per-rule TTL override, if any *)
  threshold : float option;  (** per-rule threshold override, if any *)
}

type t

(** [empty] defers everything to script flags and server defaults. *)
val empty : t

(** [parse text] reads a whole configuration file. Errors carry the
    offending line number. *)
val parse : string -> (t, string) result

(** [load path] is {!parse} over a file's contents. *)
val load : string -> (t, string) result

(** [decide t path] applies the longest-prefix rule. *)
val decide : t -> string -> decision

(** [rule_count t] is the number of explicit directives. *)
val rule_count : t -> int

(** [to_string t] serialises back to the file format (normalised). *)
val to_string : t -> string
