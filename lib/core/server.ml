module K = struct
  let requests = "requests"
  let file_fetches = "file_fetches"
  let cgi_execs = "cgi_execs"
  let hit_local = "hit_local"
  let hit_remote = "hit_remote"
  let uncacheable = "uncacheable"
  let false_hit = "false_hit"
  let false_miss_concurrent = "false_miss_concurrent"
  let false_miss_duplicate = "false_miss_duplicate"
  let inserts = "inserts"
  let below_threshold = "below_threshold"
  let broadcast_insert = "broadcast_insert"
  let broadcast_delete = "broadcast_delete"
  let info_applied = "info_applied"
  let purged = "purged"
  let not_found = "not_found"
  let cgi_failures = "cgi_failures"
  let dir_stale_self = "dir_stale_self"
  let invalidations = "invalidations"
  let acks_sent = "acks_sent"
  let fetch_timeouts = "fetch_timeouts"
  let fetch_retries = "fetch_retries"
  let crashes = "crashes"
  let restarts = "restarts"
  let rejected_down = "rejected_down"
  let dir_suspect_purged = "dir_suspect_purged"
  let partitions_healed = "partitions_healed"
  let anti_entropy_rounds = "anti_entropy_rounds"
  let anti_entropy_pulled = "anti_entropy_pulled"
  let router_retries = "router_retries"

  (* Batching layer: batches_sent counts Batch envelopes transmitted (only
     buffers of >= 2 updates are wrapped), batch_updates the updates they
     carried, batch_coalesced buffered updates overwritten by a newer
     update to the same key before transmission. info_msgs/info_bytes
     count actual directory-update unicasts (envelopes, not updates) and
     their wire bytes — the quantity batching is meant to shrink. *)
  let batches_sent = "batches_sent"
  let batch_updates = "batch_updates"
  let batch_coalesced = "batch_coalesced"
  let info_msgs = "info_msgs"
  let info_bytes = "info_bytes"

  (* Hint index: probes skipped thanks to hints, and lookups where every
     hinted probe missed (the false-hint fallback ran). *)
  let hint_probes_saved = "hint_probes_saved"
  let hint_false = "hint_false"

  (* Sharded metadata plane. Lookups split by how they were answered:
     at the key's home without a message, from a hotspot replica copy,
     or forwarded across the network. dir_lookup_msgs/bytes count the
     forwarded round trip's wire traffic (requests at the requester,
     replies at the home) so that info_msgs + dir_lookup_msgs is the
     plane's total metadata message count in either mode. Lookup-cache
     outcomes are folded in after the run (record_shard_stats), like
     hint stats. *)
  let shard_local_lookups = "shard_local_lookups"
  let shard_fwd_lookups = "shard_fwd_lookups"
  let shard_replica_hits = "shard_replica_hits"
  let dir_lookup_msgs = "dir_lookup_msgs"
  let dir_lookup_bytes = "dir_lookup_bytes"
  let dir_lookup_timeouts = "dir_lookup_timeouts"
  let lcache_pos_hits = "lcache_pos_hits"
  let lcache_neg_hits = "lcache_neg_hits"
  let lcache_evictions = "lcache_evictions"

  (* Hotspot replication: promotions/demotions decided at shard homes,
     replica_pushes the Promote unicasts those decisions sent. *)
  let hotspot_promotions = "hotspot_promotions"
  let hotspot_demotions = "hotspot_demotions"
  let hotspot_replica_pushes = "hotspot_replica_pushes"

  (* Shard handoff after a liveness change: entries re-announced to their
     new acting homes, and entries pruned because the ring moved them
     elsewhere. *)
  let shard_handoff_reannounced = "shard_handoff_reannounced"
  let shard_pruned = "shard_pruned"

  (* Freshness plane: refreshes counts proactive re-executions performed
     by the refresh daemon; refresh_saved_ms sums (in milliseconds) the
     execution time of refreshes that went on to serve at least one
     subsequent hit — the client-visible recomputation they displaced.
     stale_served counts hits (under the adaptive controller) whose age
     exceeded the fixed default_ttl anchor — the staleness the adaptive
     TTLs admitted that the fixed baseline would not have. *)
  let refreshes = "refreshes"
  let refresh_saved_ms = "refresh_saved_ms"
  let stale_served = "stale_served"
end

module MP = Cache.Metadata_plane

type env = {
  req : Http.Request.t;
  client : int;
  resume : Http.Response.t Sim.Engine.resumer;
  span : int;  (* submitting request's span id; 0 when tracing is off *)
}

(* Cluster-wide contention histograms, allocated only when tracing. The
   observers installed on the primitives merely record into these — they
   never delay, suspend or schedule, so enabling them cannot change any
   simulated quantity. *)
type waits = {
  dir_rd_wait : Metrics.Histogram.t;
  dir_wr_wait : Metrics.Histogram.t;
  dir_queue : Metrics.Histogram.t;
  listen_wait : Metrics.Histogram.t;
  listen_depth : Metrics.Histogram.t;
  cpu_wait : Metrics.Histogram.t;
  cpu_queue : Metrics.Histogram.t;
  disk_wait : Metrics.Histogram.t;
}

type t = {
  id : int;
  cpu : Sim.Cpu.t;
  disk : Sim.Disk.t;
  rng : Sim.Rng.t;
  ae_rng : Sim.Rng.t;  (* anti-entropy peer choice; own salted stream *)
  refresh_rng : Sim.Rng.t;
      (* proactive-refresh demand/failure draws; own salted stream so the
         daemon never perturbs the request-path draws from [rng] *)
  listen : env Sim.Mailbox.t;
  endpoint : Cluster.Endpoint.t;
  store : Cache.Store.t;
  plane : MP.t;
      (* the node's metadata-plane state: a full directory replica
         (Config.Replicated) or this node's shard partition plus lookup
         cache and hotspot tracker (Config.Sharded) *)
  counters : Metrics.Counter.t;
  fresh : Cache.Freshness.t option;
      (* per-key adaptive TTL controller; [Some] iff Config.freshness is
         Adaptive *)
  refreshed : (string, float) Hashtbl.t;
      (* key -> exec_time of its latest proactive refresh, popped by the
         first subsequent hit to credit refresh_saved_ms *)
  in_flight : (string, int) Hashtbl.t;  (* CGI keys being executed *)
  mutable batch_buf : Cluster.Msg.info list;
      (* outbound directory updates awaiting a batched flush, newest
         first; empty whenever Config.batch_max <= 1 *)
  mutable active : int;  (* requests currently being handled *)
  mutable up : bool;  (* false while crashed (fault injection) *)
  mutable stop : bool;
}

(* The flight recorder, allocated only when [Config.telemetry_interval]
   is set. Its probes are closures over the cluster's live state (node
   counters, engine internals, the host-side histograms), read together
   by one sampler daemon on the telemetry cadence. The response
   accumulator pair is the cumulative (count, sum) the [response] probe
   diffs per window; [t_stop] ends the sampler like a node's daemons. *)
type telemetry = {
  t_registry : Metrics.Registry.t;
  t_health : Metrics.Health.t;
  mutable t_resp_n : float;
  mutable t_resp_sum : float;
  mutable t_stop : bool;
}

type cluster = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  cfg : Config.t;
  registry : Cgi.Registry.t;
  nodes : t array;
  endpoints : Cluster.Endpoint.t array;
  fault : Sim.Fault.t option;
  mutable fault_handles : Sim.Engine.handle list;
      (* pending crash/restart events, cancelled by [stop] *)
  tracer : Metrics.Trace.t option;
  waits : waits option;
  hit_latency : Metrics.Sample.t;
      (* cooperative-hit service times, directory lookup through response
         sent; recorded host-side only, so collecting it perturbs nothing *)
  fwd_wait : Metrics.Histogram.t;
      (* sharded plane: forwarded-lookup round-trip waits, timeouts
         included; host-side only, like hit_latency *)
  staleness : Metrics.Histogram.t;
      (* age of the served result at every cache hit (local and remote),
         seconds; host-side only, like hit_latency *)
  telemetry : telemetry option;
}

let engine c = c.engine
let net c = c.net
let config c = c.cfg
let n_nodes c = Array.length c.nodes

let node c i =
  if i < 0 || i >= Array.length c.nodes then invalid_arg "Server.node: range";
  c.nodes.(i)

let sharded c = c.cfg.Config.dir_mode = Config.Sharded

(* The plane unpacked for mode-specific paths. Each is called only on the
   matching mode's code path, so a [Invalid_argument] here is a server
   bug, not a configuration error. *)
let rdir nd =
  match MP.directory nd.plane with
  | Some d -> d
  | None -> invalid_arg "Server: replicated-plane path on a sharded node"

let shard_state nd =
  match MP.shard nd.plane with
  | Some s -> s
  | None -> invalid_arg "Server: sharded-plane path on a replicated node"

let node_counters nd = nd.counters
let node_store nd = nd.store
let node_directory nd = rdir nd
let node_plane nd = nd.plane
let node_cpu nd = nd.cpu
let node_info_mailbox nd = nd.endpoint.Cluster.Endpoint.info_mb

let merged_counters c =
  Array.fold_left
    (fun acc nd -> Metrics.Counter.merge acc nd.counters)
    (Metrics.Counter.create ()) c.nodes

let total_hits c =
  let m = merged_counters c in
  Metrics.Counter.get m K.hit_local + Metrics.Counter.get m K.hit_remote

(* The fault plan draws from its own generator (derived from the seed, not
   split off [root]) so that attaching a plan leaves every other random
   stream — and therefore every fault-free aspect of the run — unchanged. *)
let fault_seed_salt = 0x5DEECE66

(* Same isolation for anti-entropy peer choice: its generators are split
   off a second salted root (never off [root]), so enabling the daemon
   does not perturb workload, CPU or cache streams. *)
let anti_entropy_seed_salt = 0x0A17E57

(* And for the proactive-refresh daemon's demand/failure draws: a third
   salted root, so turning the daemon on re-executes entries without
   shifting any request-path random stream. *)
let refresh_seed_salt = 0x00F5E54A

let create_cluster ?client_extra_latency engine cfg ~registry
    ~n_client_endpoints =
  Config.validate cfg;
  let module H = Metrics.Histogram in
  let tracer =
    if cfg.Config.trace then
      Some
        (Metrics.Trace.create
           ~clock:(fun () -> Sim.Engine.current_time engine)
           ())
    else None
  in
  let waits =
    if cfg.Config.trace then
      Some
        {
          dir_rd_wait = H.create ();
          dir_wr_wait = H.create ();
          dir_queue = H.create ~bounds:H.depth_bounds ();
          listen_wait = H.create ();
          listen_depth = H.create ~bounds:H.depth_bounds ();
          cpu_wait = H.create ();
          cpu_queue = H.create ~bounds:H.depth_bounds ();
          disk_wait = H.create ();
        }
    else None
  in
  let cpu_observe =
    Option.map
      (fun w ~wait ~depth ->
        H.add w.cpu_wait wait;
        H.add w.cpu_queue (float_of_int depth))
      waits
  in
  let disk_observe =
    Option.map (fun w ~wait ~depth:_ -> H.add w.disk_wait wait) waits
  in
  let lock_observe =
    Option.map
      (fun w ~kind ~wait ~depth ->
        (match kind with
        | `Read -> H.add w.dir_rd_wait wait
        | `Write -> H.add w.dir_wr_wait wait);
        H.add w.dir_queue (float_of_int depth))
      waits
  in
  let listen_on_wait =
    Option.map (fun w dt -> H.add w.listen_wait dt) waits
  in
  let listen_on_depth =
    Option.map (fun w d -> H.add w.listen_depth (float_of_int d)) waits
  in
  let root = Sim.Rng.create cfg.Config.seed in
  let ae_root = Sim.Rng.create (cfg.Config.seed lxor anti_entropy_seed_salt) in
  let refresh_root =
    Sim.Rng.create (cfg.Config.seed lxor refresh_seed_salt)
  in
  let fault =
    Option.map
      (fun profile ->
        Sim.Fault.create profile
          ~rng:(Sim.Rng.create (cfg.Config.seed lxor fault_seed_salt))
          ~nodes:cfg.Config.n_nodes)
      cfg.Config.fault
  in
  let ring =
    (* One shared immutable ring: every node computes the same key→home
       mapping, and liveness is supplied per query, so crashes never
       rebuild it. *)
    if cfg.Config.dir_mode = Config.Sharded then
      Some
        (Cache.Ring.create ~nodes:cfg.Config.n_nodes
           ~vnodes:cfg.Config.shard_vnodes)
    else None
  in
  (* Geo-tiered clients: extra one-way latency on client endpoints only
     (endpoint n_nodes + s is client stream s); the cluster LAN keeps the
     base latency. Absent, the network path is byte-identical to before. *)
  let extra_latency =
    Option.map
      (fun arr ep ->
        let s = ep - cfg.Config.n_nodes in
        if s >= 0 && s < Array.length arr then arr.(s) else 0.)
      client_extra_latency
  in
  let net =
    Sim.Net.create ~latency:cfg.Config.net_latency ?extra_latency
      ~bandwidth:cfg.Config.net_bandwidth ~loss:cfg.Config.net_loss
      ~rng:(Sim.Rng.split root) ?fault engine
      ~n_endpoints:(cfg.Config.n_nodes + n_client_endpoints)
  in
  let nodes =
    Array.init cfg.Config.n_nodes (fun id ->
        let rng = Sim.Rng.split root in
        let clock () = Sim.Engine.current_time engine in
        let cpu =
          Sim.Cpu.create ~speed:cfg.Config.cpu_speed ?observe:cpu_observe
            engine ~cores:cfg.Config.cores_per_node
        in
        {
          id;
          cpu;
          disk = Sim.Disk.create ?observe:disk_observe engine;
          rng;
          ae_rng = Sim.Rng.split ae_root;
          refresh_rng = Sim.Rng.split refresh_root;
          listen =
            Sim.Mailbox.create ?on_wait:listen_on_wait
              ?on_depth:listen_on_depth ();
          endpoint = Cluster.Endpoint.make ~node:id;
          store =
            Cache.Store.create ~capacity:cfg.Config.cache_capacity
              ~policy:cfg.Config.policy ~clock ~rng:(Sim.Rng.split root) ();
          plane =
            (match ring with
            | None ->
                (* Directory lock and scan work burns this node's CPU, so
                   it contends with request processing. *)
                MP.replicated
                  (Cache.Directory.create
                     ~granularity:cfg.Config.dir_granularity
                     ~lock_overhead:cfg.Config.dir_lock_overhead
                     ~scan_cost:cfg.Config.dir_scan_cost
                     ~charge:(fun s -> Sim.Cpu.consume cpu s)
                     ~hints:cfg.Config.dir_hints ?lock_observe
                     ~nodes:cfg.Config.n_nodes ())
            | Some ring ->
                (* Same lock-cost model and CPU charging as the replicated
                   replica, so the dirmode ablation compares the planes,
                   not their cost constants. *)
                let table =
                  Cache.Shard_table.create
                    ~lock_overhead:cfg.Config.dir_lock_overhead
                    ~charge:(fun s -> Sim.Cpu.consume cpu s)
                    ?lock_observe ()
                in
                let lookup_cache =
                  if cfg.Config.shard_lookup_cache > 0 then
                    Some
                      (Cache.Lookup_cache.create
                         ~capacity:cfg.Config.shard_lookup_cache
                         ~pos_ttl:cfg.Config.shard_pos_ttl
                         ~neg_ttl:cfg.Config.shard_neg_ttl)
                  else None
                in
                let hotspot =
                  if cfg.Config.hotspot_threshold > 0. then
                    Some
                      (Cache.Hotspot.create
                         ~threshold:cfg.Config.hotspot_threshold
                         ~window:cfg.Config.hotspot_window)
                  else None
                in
                MP.sharded ~ring ~table ?lookup_cache ?hotspot ());
          counters = Metrics.Counter.create ();
          fresh =
            (match cfg.Config.freshness with
            | Cache.Freshness.Fixed -> None
            | Cache.Freshness.Adaptive ->
                Some
                  (Cache.Freshness.create
                     ~min_ttl:cfg.Config.freshness_min_ttl
                     ~max_ttl:cfg.Config.freshness_max_ttl
                     ~penalty:cfg.Config.freshness_penalty
                     ~window:cfg.Config.freshness_window ()));
          refreshed = Hashtbl.create 64;
          in_flight = Hashtbl.create 64;
          batch_buf = [];
          active = 0;
          up = true;
          stop = false;
        })
  in
  let endpoints = Array.map (fun nd -> nd.endpoint) nodes in
  (match tracer with
  | None -> ()
  | Some tr ->
      Array.iter
        (fun nd ->
          Metrics.Trace.set_track_name tr nd.id
            (Printf.sprintf "node %d" nd.id))
        nodes;
      Metrics.Trace.set_track_name tr cfg.Config.n_nodes "clients");
  let hit_latency = Metrics.Sample.create () in
  let fwd_wait = Metrics.Histogram.create () in
  let staleness =
    Metrics.Histogram.create ~bounds:Metrics.Histogram.age_bounds ()
  in
  (* The flight recorder's probe set. Every probe is a pure read of
     already-maintained state — counters, histogram totals, engine
     internals — so sampling records values without perturbing any
     simulated quantity. (The sampler daemon itself does add engine
     events, which is why the plane is opt-in; see Config.) *)
  let telemetry =
    match cfg.Config.telemetry_interval with
    | None -> None
    | Some interval ->
        let reg = Metrics.Registry.create ~interval () in
        let health =
          Metrics.Health.create
            ~config:
              {
                Metrics.Health.default_config with
                slo_target = cfg.Config.slo_target;
                slo_objective = cfg.Config.slo_objective;
              }
            ~interval ()
        in
        let tel =
          {
            t_registry = reg;
            t_health = health;
            t_resp_n = 0.;
            t_resp_sum = 0.;
            t_stop = false;
          }
        in
        (* [Counter.get] reads without creating entries, so probing a
           counter that never fires leaves the counter set untouched. *)
        let sum key () =
          float_of_int
            (Array.fold_left
               (fun acc nd -> acc + Metrics.Counter.get nd.counters key)
               0 nodes)
        in
        let module R = Metrics.Registry in
        R.histogram reg "hit.ratio" (fun () ->
            (sum K.requests (), sum K.hit_local () +. sum K.hit_remote ()));
        R.histogram reg "response" (fun () -> (tel.t_resp_n, tel.t_resp_sum));
        R.counter reg "info.rate" (sum K.info_msgs);
        R.counter reg "batch.rate" (sum K.batches_sent);
        R.counter reg "refresh.rate" (sum K.refreshes);
        R.counter reg "stale.rate" (sum K.stale_served);
        R.gauge reg "dir.entries" (fun () ->
            float_of_int
              (Array.fold_left
                 (fun acc nd -> acc + MP.entries nd.plane)
                 0 nodes));
        R.gauge reg "listen.depth" (fun () ->
            float_of_int
              (Array.fold_left
                 (fun acc nd -> acc + Sim.Mailbox.length nd.listen)
                 0 nodes));
        R.gauge reg "proto.backlog" (fun () ->
            float_of_int
              (Array.fold_left
                 (fun acc nd -> acc + Cluster.Endpoint.backlog nd.endpoint)
                 0 nodes));
        R.histogram reg "fwd.wait" (fun () ->
            ( float_of_int (Metrics.Histogram.count fwd_wait),
              Metrics.Histogram.total fwd_wait ));
        R.histogram reg "staleness" (fun () ->
            ( float_of_int (Metrics.Histogram.count staleness),
              Metrics.Histogram.total staleness ));
        (* Engine self-telemetry: raw heap occupancy vs capacity, the
           lazy-cancellation census whose growth drives compaction, the
           event execution rate, and the allocation rate of the host
           program itself. *)
        R.gauge reg "engine.heap" (fun () ->
            float_of_int (Sim.Engine.heap_depth engine));
        R.gauge reg "engine.heap_cap" (fun () ->
            float_of_int (Sim.Engine.heap_capacity engine));
        R.gauge reg "engine.cancelled" (fun () ->
            float_of_int (Sim.Engine.cancelled_events engine));
        R.counter reg "engine.events.rate" (fun () ->
            float_of_int (Sim.Engine.events_processed engine));
        R.counter reg "gc.minor_words.rate" (fun () -> Gc.minor_words ());
        Array.iter
          (fun nd ->
            let pfx = Printf.sprintf "n%d." nd.id in
            (* busy CPU-seconds are cumulative, so the per-second rate of
               this counter is the node's utilisation over the window *)
            R.counter reg (pfx ^ "util") (fun () -> Sim.Cpu.busy_time nd.cpu);
            R.gauge reg (pfx ^ "active") (fun () -> float_of_int nd.active);
            R.counter reg
              (pfx ^ "hits.rate")
              (fun () ->
                float_of_int
                  (Metrics.Counter.get nd.counters K.hit_local
                  + Metrics.Counter.get nd.counters K.hit_remote)))
          nodes;
        Some tel
  in
  {
    engine;
    net;
    cfg;
    registry;
    nodes;
    endpoints;
    fault;
    fault_handles = [];
    tracer;
    waits;
    hit_latency;
    fwd_wait;
    staleness;
    telemetry;
  }

(* ------------------------------------------------------------------ *)
(* Tracing helpers.

   The current span id rides in the engine's fiber-local slot, so it
   survives blocking operations and is inherited by spawned children.
   With tracing off every helper is a direct call through to the wrapped
   work — no clock reads, no effects, no allocation — which is what keeps
   untraced runs byte-identical. *)

let tracer c = c.tracer

let wait_histograms c =
  match c.waits with
  | None -> []
  | Some w ->
      [
        ("dir.rd_wait", w.dir_rd_wait);
        ("dir.wr_wait", w.dir_wr_wait);
        ("dir.queue", w.dir_queue);
        ("listen.wait", w.listen_wait);
        ("listen.depth", w.listen_depth);
        ("cpu.wait", w.cpu_wait);
        ("cpu.queue", w.cpu_queue);
        ("disk.wait", w.disk_wait);
      ]

(* The span to stamp into an outgoing message: the caller's current span.
   Guarded so the trace-off path performs no effect at all. *)
let span_of c =
  match c.tracer with None -> 0 | Some _ -> Sim.Engine.get_local ()

(* Run [f] inside a span on [nd]'s track. The parent defaults to the
   caller's fiber-local span; the local is set to the new span for the
   duration so nested spans and outgoing messages pick it up. *)
let with_span ?parent ?attrs ?async c nd name f =
  match c.tracer with
  | None -> f ()
  | Some tr ->
      let saved = Sim.Engine.get_local () in
      let parent = match parent with Some p -> p | None -> saved in
      let id =
        Metrics.Trace.begin_span tr ?attrs ?async ~parent ~track:nd.id ~name
          ()
      in
      Sim.Engine.set_local id;
      let finish () =
        Metrics.Trace.end_span tr id;
        Sim.Engine.set_local saved
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* Point events (crashes, heals); safe in engine-event context — the
   tracer's clock is [Engine.current_time], not the process-only [now]. *)
let emit_instant ?attrs c ~track name =
  match c.tracer with
  | None -> ()
  | Some tr -> Metrics.Trace.instant tr ?attrs ~track ~name ()

(* ------------------------------------------------------------------ *)
(* Response helpers *)

(* Static files are served with an empty in-memory body but a declared
   Content-Length; the transfer charge uses the declared size. *)
let file_response bytes =
  Http.Response.make
    ~headers:
      (Http.Headers.of_list
         [
           ("Content-Type", "text/html");
           ("Content-Length", string_of_int bytes);
         ])
    Http.Status.Ok

let transfer_bytes resp =
  let declared =
    match Http.Headers.content_length resp.Http.Response.headers with
    | Some n -> Stdlib.max n (Http.Response.body_size resp)
    | None -> Http.Response.body_size resp
  in
  Http.Response.wire_size resp - Http.Response.body_size resp + declared

let respond c nd env resp =
  with_span c nd "respond" (fun () ->
      Sim.Net.transfer c.net ~src:nd.id ~dst:env.client
        ~bytes:(transfer_bytes resp));
  Sim.Engine.resume env.resume resp

(* ------------------------------------------------------------------ *)
(* Cache operations *)

let now () = Sim.Engine.now ()
let incr nd k = Metrics.Counter.incr nd.counters k

(* Per-request cache treatment after composing the administrator rules
   (§4.1's configuration file) with script flags and server defaults.
   The TTL is either fully determined here ([Ttl]: a rule override, the
   script's own TTL, or the fixed default) or deferred to the per-key
   adaptive controller at insert time ([Controller_ttl]) — the controller
   needs the measured execution cost, which only exists after the CGI
   ran. Explicit rule/script TTLs always beat either server-wide layer
   (Cache.Freshness.effective_ttl's precedence). *)
type ttl_choice = Ttl of float option | Controller_ttl

type cache_ctl = { attempt : bool; ttl : ttl_choice; threshold : float }

let cache_ctl_for c (script : Cgi.Script.t) meth =
  let rule = Rules.decide c.cfg.Config.rules script.Cgi.Script.name in
  let attempt =
    script.Cgi.Script.cacheable && rule.Rules.cacheable
    && Http.Meth.equal meth Http.Meth.Get
    && c.cfg.Config.cache_mode <> Config.Disabled
  in
  let ttl =
    match c.cfg.Config.freshness with
    | Cache.Freshness.Fixed ->
        Ttl
          (Cache.Freshness.effective_ttl ~rule:rule.Rules.ttl
             ~script:script.Cgi.Script.ttl ~default:c.cfg.Config.default_ttl)
    | Cache.Freshness.Adaptive -> (
        match
          Cache.Freshness.effective_ttl ~rule:rule.Rules.ttl
            ~script:script.Cgi.Script.ttl ~default:None
        with
        | Some _ as t -> Ttl t
        | None -> Controller_ttl)
  in
  let threshold =
    Option.value rule.Rules.threshold ~default:c.cfg.Config.cache_threshold
  in
  { attempt; ttl; threshold }

(* Insert a freshly computed result: local store + local directory replica;
   returns the broadcast messages to send after the client is answered
   (Figure 2 broadcasts after returning the result). *)
let insert_result c nd ~key ~body ~exec_time ttl =
  with_span c nd "insert" @@ fun () ->
  Sim.Cpu.consume nd.cpu c.cfg.Config.insert_cost;
  let created = now () in
  (* Feed the controller before asking it: this very recomputation is an
     observation of the key's cost and update gap. *)
  Option.iter
    (fun f ->
      Cache.Freshness.observe_insert f ~now:created ~cost:exec_time key)
    nd.fresh;
  let ttl =
    match ttl with
    | Ttl t -> t
    | Controller_ttl -> (
        match nd.fresh with
        | Some f -> Some (Cache.Freshness.ttl f ~now:created ~cost:exec_time key)
        | None ->
            (* Unreachable: Controller_ttl is only emitted under Adaptive,
               which allocates the tracker. Fall back to the fixed layer. *)
            c.cfg.Config.default_ttl)
  in
  let meta =
    Cache.Meta.make ~key ~owner:nd.id ~size:(String.length body) ~exec_time
      ~created
      ~expires:(Option.map (fun t -> created +. t) ttl)
  in
  let broadcasts = ref [] in
  (match c.cfg.Config.cache_mode with
  | Config.Cooperative when sharded c ->
      (* The duplicate-execution check needs the key's shard entry, which
         lives at the home; the home performs it when this announcement
         arrives (apply_shard). Here only the store changes — the
         directory update is the announcement itself. *)
      let evicted = Cache.Store.insert nd.store meta body in
      List.iter
        (fun (m : Cache.Meta.t) ->
          broadcasts :=
            Cluster.Msg.Delete { node = nd.id; key = m.Cache.Meta.key }
            :: !broadcasts)
        evicted;
      broadcasts := Cluster.Msg.Insert meta :: !broadcasts
  | Config.Cooperative ->
      (* Weak consistency: a peer may have cached the same request while we
         executed it — the second kind of false miss (§4.2). *)
      (match
         Cache.Directory.lookup_from (rdir nd) ~self:nd.id ~now:created key
       with
      | Some m when m.Cache.Meta.owner <> nd.id ->
          incr nd K.false_miss_duplicate
      | Some _ | None -> ());
      let evicted = Cache.Store.insert nd.store meta body in
      Cache.Directory.insert (rdir nd) ~node:nd.id meta;
      List.iter
        (fun (m : Cache.Meta.t) ->
          ignore
            (Cache.Directory.delete (rdir nd) ~node:nd.id m.Cache.Meta.key
              : bool);
          broadcasts :=
            Cluster.Msg.Delete { node = nd.id; key = m.Cache.Meta.key }
            :: !broadcasts)
        evicted;
      broadcasts := Cluster.Msg.Insert meta :: !broadcasts
  | Config.Standalone -> ignore (Cache.Store.insert nd.store meta body : Cache.Meta.t list)
  | Config.Disabled -> ());
  incr nd K.inserts;
  List.rev !broadcasts

(* Transmit one directory-update message (bare or batched) to every peer
   per the configured consistency protocol, counting the unicasts and
   wire bytes actually sent. *)
let dispatch c nd msg =
  with_span c nd "broadcast" @@ fun () ->
  let span = span_of c in
  let sent =
    match (c.cfg.Config.consistency, c.cfg.Config.broadcast_latency) with
    | Config.Strong, _ ->
        (* Block until every replica has applied the update. *)
        Cluster.Broadcast.info_sync ~span c.net c.endpoints ~src:nd.id msg
    | Config.Weak, None ->
        (* Interruptible: a crash landing mid-fan-out stops the loop,
           leaving the replica update genuinely partial. *)
        Cluster.Broadcast.info
          ~should_abort:(fun () -> not nd.up)
          ~span c.net c.endpoints ~src:nd.id msg
    | Config.Weak, Some delay ->
        (* Ablation knob: deliver directory updates after a fixed delay,
           bypassing the network model, to widen or narrow the weak-
           consistency window in isolation. *)
        let sent = ref 0 in
        Array.iter
          (fun (ep : Cluster.Endpoint.t) ->
            if ep.Cluster.Endpoint.node <> nd.id then begin
              Stdlib.incr sent;
              ignore
                (Sim.Engine.schedule_after c.engine delay (fun () ->
                     Sim.Mailbox.send ep.Cluster.Endpoint.info_mb
                       { Cluster.Msg.info = msg; ack = None; span })
                  : Sim.Engine.handle)
            end)
          c.endpoints;
        !sent
  in
  if sent > 0 then begin
    Metrics.Counter.add nd.counters K.info_msgs sent;
    Metrics.Counter.add nd.counters K.info_bytes
      (sent * Cluster.Msg.info_bytes msg)
  end

(* ------------------------------------------------------------------ *)
(* Sharded plane: point-to-point announcement routing.

   Where the replicated plane broadcasts every update to all peers, the
   sharded plane unicasts it to the key's acting home — the first live
   node in ring-successor order — and the home alone maintains the
   entry. Hotspot control messages (Promote/Demote) flow from homes to
   their replica sets on the same info channel. *)

let key_of_update = function
  | Cluster.Msg.Insert m | Cluster.Msg.Promote m -> m.Cache.Meta.key
  | Cluster.Msg.Delete { key; _ } | Cluster.Msg.Demote { key } -> key
  | Cluster.Msg.Batch _ -> invalid_arg "Server: sharded updates never batch"

(* Unicast one announcement, charging the same counters as the replicated
   broadcast so info_msgs/info_bytes compare directly across planes. *)
let unicast_info c nd ~dst msg =
  Cluster.Broadcast.info_to ~span:(span_of c) c.net c.endpoints ~src:nd.id
    ~dst msg;
  incr nd K.info_msgs;
  Metrics.Counter.add nd.counters K.info_bytes (Cluster.Msg.info_bytes msg)

(* The nodes a hot key is replicated to: the ring successors after the
   primary owner, live nodes only, never self. *)
let replica_set c nd key =
  let st = shard_state nd in
  match
    Cache.Ring.successors st.MP.Sharded.ring key
      ~k:(1 + c.cfg.Config.hotspot_replicas)
  with
  | [] | [ _ ] -> []
  | _ :: tail -> List.filter (fun j -> j <> nd.id && c.nodes.(j).up) tail

let push_promote c nd (meta : Cache.Meta.t) =
  List.iter
    (fun j ->
      incr nd K.hotspot_replica_pushes;
      unicast_info c nd ~dst:j (Cluster.Msg.Promote meta))
    (replica_set c nd meta.Cache.Meta.key)

let push_demote c nd key =
  List.iter
    (fun j -> unicast_info c nd ~dst:j (Cluster.Msg.Demote { key }))
    (replica_set c nd key)

(* Apply one announcement at its destination — the shard home for
   inserts/deletes, a replica for promote/demote. Also runs directly when
   the announcing node is itself the acting home (no message then, like
   the replicated plane's local table update). *)
let apply_shard c nd msg =
  let st = shard_state nd in
  let table = st.MP.Sharded.table in
  match msg with
  | Cluster.Msg.Insert meta ->
      incr nd K.info_applied;
      (match Cache.Shard_table.insert table meta with
      | `Replaced old when old.Cache.Meta.owner <> meta.Cache.Meta.owner ->
          (* Duplicate execution discovered at reconciliation — the
             paper's second kind of false miss, observed at the shard
             home rather than at insert time. *)
          incr nd K.false_miss_duplicate
      | `Inserted | `Replaced _ | `Stale -> ());
      (* A hot key's replicas must see updates too, or their copies would
         serve the superseded owner until demotion. *)
      (match st.MP.Sharded.hotspot with
      | Some h when Cache.Hotspot.is_hot h meta.Cache.Meta.key ->
          push_promote c nd meta
      | Some _ | None -> ())
  | Cluster.Msg.Delete { node; key } ->
      incr nd K.info_applied;
      ignore (Cache.Shard_table.delete table ~owner:node key : bool);
      (match st.MP.Sharded.hotspot with
      | Some h when Cache.Hotspot.forget h key ->
          incr nd K.hotspot_demotions;
          push_demote c nd key
      | Some _ | None -> ())
  | Cluster.Msg.Promote meta ->
      incr nd K.info_applied;
      ignore
        (Cache.Shard_table.insert table meta
          : [ `Inserted | `Replaced of Cache.Meta.t | `Stale ])
  | Cluster.Msg.Demote { key } ->
      incr nd K.info_applied;
      (* Retract the replica copy — unless the ring now makes this node
         the key's acting home (the primary crashed since the promote), in
         which case the copy is the authoritative entry. *)
      let up i = c.nodes.(i).up in
      if Cache.Ring.acting_owner st.MP.Sharded.ring ~up key <> Some nd.id
      then ignore (Cache.Shard_table.delete table key : bool)
  | Cluster.Msg.Batch _ ->
      invalid_arg "Server: batched update on the sharded plane"

(* Route one announcement to the key's acting home. *)
let dispatch_sharded c nd msg =
  with_span c nd "announce" @@ fun () ->
  let st = shard_state nd in
  let up i = c.nodes.(i).up in
  match
    Cache.Ring.acting_owner st.MP.Sharded.ring ~up (key_of_update msg)
  with
  | None -> ()  (* every node down; no directory left to update *)
  | Some home when home = nd.id -> apply_shard c nd msg
  | Some home -> unicast_info c nd ~dst:home msg

(* ------------------------------------------------------------------ *)

(* The (table, key) a buffered update settles; two updates with the same
   target coalesce because the later one fully determines the key's final
   directory state. *)
let update_target = function
  | Cluster.Msg.Insert m -> (m.Cache.Meta.owner, m.Cache.Meta.key)
  | Cluster.Msg.Delete { node; key } -> (node, key)
  | Cluster.Msg.Promote _ | Cluster.Msg.Demote _ ->
      invalid_arg "Server: hotspot control messages are never batched"
  | Cluster.Msg.Batch _ -> invalid_arg "Server: batches cannot nest"

(* Transmit whatever the outbound buffer holds. A single buffered update
   goes out bare — byte-identical to the unbatched path — so the Batch
   wrapper (and its counters) only ever covers >= 2 updates. *)
let flush c nd =
  match nd.batch_buf with
  | [] -> ()
  | [ msg ] ->
      nd.batch_buf <- [];
      dispatch c nd msg
  | buffered ->
      nd.batch_buf <- [];
      let updates = List.rev buffered in
      incr nd K.batches_sent;
      Metrics.Counter.add nd.counters K.batch_updates (List.length updates);
      dispatch c nd (Cluster.Msg.Batch updates)

(* Originate one directory update. With batching off ([batch_max <= 1])
   this is exactly the pre-batching path: transmit immediately, bare.
   Otherwise buffer it, coalescing against any pending update to the same
   key (last write wins, and the winner moves to the end so in-order
   application at the receiver is preserved), and flush when the buffer
   reaches [batch_max]; the per-node flusher daemon handles the timer. *)
let enqueue c nd msg =
  (match msg with
  | Cluster.Msg.Insert _ -> incr nd K.broadcast_insert
  | Cluster.Msg.Delete _ -> incr nd K.broadcast_delete
  | Cluster.Msg.Promote _ | Cluster.Msg.Demote _ ->
      invalid_arg "Server: hotspot control messages do not enqueue"
  | Cluster.Msg.Batch _ -> invalid_arg "Server: batches cannot nest");
  if sharded c then dispatch_sharded c nd msg
  else if c.cfg.Config.batch_max <= 1 then dispatch c nd msg
  else begin
    let target = update_target msg in
    let rest =
      List.filter (fun u -> update_target u <> target) nd.batch_buf
    in
    if List.compare_lengths rest nd.batch_buf <> 0 then
      incr nd K.batch_coalesced;
    nd.batch_buf <- msg :: rest;
    if List.compare_length_with nd.batch_buf c.cfg.Config.batch_max >= 0 then
      flush c nd
  end

let send_broadcasts c nd msgs = List.iter (enqueue c nd) msgs

(* ------------------------------------------------------------------ *)
(* CGI execution (Figure 2's "Exec CGI, tee results to file") *)

let exec_cgi c nd (script : Cgi.Script.t) req key =
  with_span c nd "cgi.exec"
    ~attrs:[ ("script", script.Cgi.Script.name) ]
  @@ fun () ->
  (match Hashtbl.find_opt nd.in_flight key with
  | Some n when n > 0 ->
      (* First kind of false miss: an identical request is already being
         executed on this node and we run it again anyway (§4.2). *)
      incr nd K.false_miss_concurrent;
      Hashtbl.replace nd.in_flight key (n + 1)
  | Some _ | None -> Hashtbl.replace nd.in_flight key 1);
  incr nd K.cgi_execs;
  let query = req.Http.Request.uri.Http.Uri.query in
  let demand = Cgi.Cost.demand_for script.Cgi.Script.cost nd.rng ~query in
  let out_bytes = Cgi.Cost.output_bytes_for script.Cgi.Script.cost ~query in
  Sim.Cpu.consume nd.cpu
    ((script.Cgi.Script.cost.Cgi.Cost.fork_exec
     *. c.cfg.Config.model.Config.cgi_overhead_factor)
    +. demand);
  (match Hashtbl.find_opt nd.in_flight key with
  | Some 1 -> Hashtbl.remove nd.in_flight key
  | Some n -> Hashtbl.replace nd.in_flight key (n - 1)
  | None -> ());
  let failed =
    script.Cgi.Script.failure_rate > 0.
    && Sim.Rng.float nd.rng < script.Cgi.Script.failure_rate
  in
  if failed then begin
    incr nd K.cgi_failures;
    Error (Http.Response.error Http.Status.Internal_server_error "CGI failed")
  end
  else
    let body = Cgi.Script.output_sized script ~key ~bytes:out_bytes in
    Ok (body, demand)

(* Execute, optionally insert in the cache, respond, then broadcast. *)
let exec_and_respond c nd env (script : Cgi.Script.t) key ~(ctl : cache_ctl) =
  match exec_cgi c nd script env.req key with
  | Error resp -> respond c nd env resp
  | Ok (body, exec_time) ->
      let broadcasts =
        if ctl.attempt && exec_time >= ctl.threshold then
          insert_result c nd ~key ~body ~exec_time ctl.ttl
        else begin
          if ctl.attempt then incr nd K.below_threshold;
          []
        end
      in
      Sim.Cpu.consume nd.cpu
        (c.cfg.Config.model.Config.per_byte_send
        *. float_of_int (String.length body));
      (* Figure 2 answers the client before broadcasting; under the strong
         protocol the whole point is that the reply implies every replica
         already knows, so the order flips. *)
      (match c.cfg.Config.consistency with
      | Config.Weak ->
          respond c nd env (Http.Response.ok body);
          send_broadcasts c nd broadcasts
      | Config.Strong ->
          send_broadcasts c nd broadcasts;
          respond c nd env (Http.Response.ok body))

(* ------------------------------------------------------------------ *)
(* Cache hit paths *)

(* Host-side freshness bookkeeping at a cache hit (either kind): sample
   the served result's age, count it stale when the adaptive controller
   admitted more age than the fixed default_ttl anchor would have, and
   credit the owner's latest proactive refresh with the execution it
   displaced (first hit after the refresh pops the pending credit). Pure
   observation — no simulated effects — so recording perturbs nothing. *)
let note_hit_freshness c nd (meta : Cache.Meta.t) =
  let age = Cache.Meta.age meta ~now:(now ()) in
  Metrics.Histogram.add c.staleness age;
  (match (nd.fresh, c.cfg.Config.default_ttl) with
  | Some _, Some anchor when age > anchor -> incr nd K.stale_served
  | _ -> ());
  let owner = meta.Cache.Meta.owner in
  if owner >= 0 && owner < Array.length c.nodes then begin
    let ond = c.nodes.(owner) in
    match Hashtbl.find_opt ond.refreshed meta.Cache.Meta.key with
    | Some saved ->
        Hashtbl.remove ond.refreshed meta.Cache.Meta.key;
        Metrics.Counter.add ond.counters K.refresh_saved_ms
          (int_of_float (Float.round (saved *. 1000.)))
    | None -> ()
  end

let serve_local c nd env ~t0 (entry : Cache.Store.entry) =
  incr nd K.hit_local;
  note_hit_freshness c nd entry.Cache.Store.meta;
  with_span c nd "hit.local" (fun () ->
      Sim.Cpu.consume nd.cpu c.cfg.Config.local_fetch_cost;
      (* The result file is recently used, hence in the OS buffer cache. *)
      Sim.Disk.read nd.disk ~bytes:entry.Cache.Store.meta.Cache.Meta.size
        ~cached:true;
      Sim.Cpu.consume nd.cpu
        (c.cfg.Config.model.Config.per_byte_send
        *. float_of_int (String.length entry.Cache.Store.body)));
  respond c nd env (Http.Response.ok entry.Cache.Store.body);
  Metrics.Sample.add c.hit_latency (now () -. t0)

let fetch_remote c nd env (script : Cgi.Script.t) key ~(ctl : cache_ctl) ~t0
    (meta : Cache.Meta.t) =
  let owner = meta.Cache.Meta.owner in
  let answer =
    with_span c nd "fetch.remote"
      ~attrs:[ ("owner", string_of_int owner) ]
    @@ fun () ->
    Sim.Cpu.consume nd.cpu c.cfg.Config.remote_fetch_cost;
    let span = span_of c in
    match c.cfg.Config.fetch_timeout with
    | None ->
        let reply = Sim.Mailbox.create () in
        Cluster.Broadcast.fetch c.net c.endpoints ~src:nd.id ~owner
          { Cluster.Msg.key; requester = nd.id; reply; span };
        Some (Sim.Mailbox.recv reply)
    | Some timeout ->
        let reply, retries =
          Cluster.Broadcast.fetch_sync ~span c.net c.endpoints ~src:nd.id
            ~owner ~timeout ~retries:c.cfg.Config.fetch_retries
            ~backoff:c.cfg.Config.fetch_backoff key
        in
        if retries > 0 then
          Metrics.Counter.add nd.counters K.fetch_retries retries;
        reply
  in
  match answer with
  | None ->
      (* Request or reply lost (or owner unreachable): give up on the
         remote copy and execute locally, like a false hit. *)
      incr nd K.fetch_timeouts;
      (* Under fault injection a fetch that survives every retry marks the
         owner as suspect — most likely crashed or partitioned. Drop our
         replica of its whole directory table: its entries could only
         produce more timed-out fetches, and if the owner is alive it will
         re-announce whatever it still caches as requests repopulate it. *)
      (match c.fault with
      | Some _ ->
          if sharded c then begin
            let st = shard_state nd in
            let purged =
              Cache.Shard_table.purge_owner st.MP.Sharded.table ~node:owner
            in
            if purged > 0 then
              Metrics.Counter.add nd.counters K.dir_suspect_purged purged;
            Option.iter
              (fun lc -> Cache.Lookup_cache.invalidate lc key)
              st.MP.Sharded.lcache
          end
          else begin
            let purged = Cache.Directory.purge_node (rdir nd) ~node:owner in
            if purged > 0 then
              Metrics.Counter.add nd.counters K.dir_suspect_purged purged
          end
      | None -> ());
      exec_and_respond c nd env script key ~ctl
  | Some (Cluster.Msg.Hit { meta = served; body }) ->
      incr nd K.hit_remote;
      (* Use the owner's reply meta, not the directory's view: the entry
         may have been refreshed since the directory lookup. *)
      note_hit_freshness c nd served;
      Sim.Cpu.consume nd.cpu
        (c.cfg.Config.model.Config.per_byte_send
        *. float_of_int (String.length body));
      respond c nd env (Http.Response.ok body);
      Metrics.Sample.add c.hit_latency (now () -. t0)
  | Some (Cluster.Msg.Miss _) ->
      (* False hit: the entry vanished at the owner after our directory
         lookup. Execute locally, as in Figure 2. *)
      incr nd K.false_hit;
      if sharded c then
        (* The positive information that led here was provably stale. *)
        Option.iter
          (fun lc -> Cache.Lookup_cache.invalidate lc key)
          (shard_state nd).MP.Sharded.lcache;
      exec_and_respond c nd env script key ~ctl

(* ------------------------------------------------------------------ *)
(* Sharded-plane lookup (Figure 2's directory query, re-routed through
   the consistent-hash ring) *)

(* Count one home-served lookup toward hotspot promotion; when this very
   observation promotes the key, push its entry to the replica set. A
   promotion on a miss has nothing to push — the next Insert announcement
   does it (apply_shard checks is_hot). *)
let note_hot_lookup c nd meta_opt key =
  match (shard_state nd).MP.Sharded.hotspot with
  | None -> ()
  | Some h -> (
      match Cache.Hotspot.record h ~now:(now ()) key with
      | `Noted -> ()
      | `Promoted -> (
          incr nd K.hotspot_promotions;
          match meta_opt with
          | Some meta -> push_promote c nd meta
          | None -> ()))

(* A directory hit whose meta points at this very node: serve from the
   store, or repair the shard entry when the store raced it away. *)
let serve_self_or_repair c nd env script key ~ctl ~t0 ~drop_entry =
  match Cache.Store.lookup nd.store key with
  | Some entry -> serve_local c nd env ~t0 entry
  | None ->
      incr nd K.dir_stale_self;
      if drop_entry then
        ignore
          (Cache.Shard_table.delete (shard_state nd).MP.Sharded.table
             ~owner:nd.id key
            : bool);
      exec_and_respond c nd env script key ~ctl

(* Ask the key's acting home who caches it — the sharded plane's only
   remote metadata operation. The request is counted at the requester,
   the reply at the home (lookup_server), so summing nodes counts both
   legs. *)
let forward_lookup c nd env (script : Cgi.Script.t) key ~ctl ~t0 ~home =
  let st = shard_state nd in
  incr nd K.shard_fwd_lookups;
  let t_fwd = now () in
  let answer =
    with_span c nd "dir.forward" ~attrs:[ ("home", string_of_int home) ]
    @@ fun () ->
    let reply_mb = Sim.Mailbox.create () in
    let req =
      {
        Cluster.Msg.lkey = key;
        lrequester = nd.id;
        lreply = reply_mb;
        lspan = span_of c;
      }
    in
    Cluster.Broadcast.lookup c.net c.endpoints ~src:nd.id ~home req;
    incr nd K.dir_lookup_msgs;
    Metrics.Counter.add nd.counters K.dir_lookup_bytes
      (Cluster.Msg.lookup_request_bytes req);
    match c.cfg.Config.fetch_timeout with
    | None -> Some (Sim.Mailbox.recv reply_mb)
    | Some timeout -> Sim.Mailbox.recv_timeout reply_mb ~timeout
  in
  Metrics.Histogram.add c.fwd_wait (now () -. t_fwd);
  match answer with
  | None ->
      (* Home crashed or partitioned away: execute locally. The crash
         handoff (or the fetch-timeout suspect purge) repairs the shard. *)
      incr nd K.dir_lookup_timeouts;
      Option.iter
        (fun lc -> Cache.Lookup_cache.invalidate lc key)
        st.MP.Sharded.lcache;
      exec_and_respond c nd env script key ~ctl
  | Some (Cluster.Msg.Found meta) ->
      Option.iter
        (fun lc -> Cache.Lookup_cache.note_pos lc ~now:(now ()) meta)
        st.MP.Sharded.lcache;
      if meta.Cache.Meta.owner = nd.id then
        (* The home believes we cache it but our store disagrees (purge
           raced the delete announcement): the delete is already on the
           wire, so only execute. *)
        serve_self_or_repair c nd env script key ~ctl ~t0 ~drop_entry:false
      else fetch_remote c nd env script key ~ctl ~t0 meta
  | Some (Cluster.Msg.Absent _) ->
      Option.iter
        (fun lc -> Cache.Lookup_cache.note_neg lc ~now:(now ()) key)
        st.MP.Sharded.lcache;
      exec_and_respond c nd env script key ~ctl

let lookup_sharded c nd env (script : Cgi.Script.t) key ~ctl =
  let st = shard_state nd in
  let ring = st.MP.Sharded.ring in
  let t0 = now () in
  let up i = c.nodes.(i).up in
  match Cache.Ring.acting_owner ring ~up key with
  | None ->
      (* Every node is down but this one is handling a request — cannot
         happen outside shutdown races; degrade to plain execution. *)
      exec_and_respond c nd env script key ~ctl
  | Some home when home = nd.id -> (
      incr nd K.shard_local_lookups;
      match
        with_span c nd "dir.lookup" (fun () ->
            Cache.Shard_table.probe st.MP.Sharded.table ~now:(now ()) key)
      with
      | None ->
          note_hot_lookup c nd None key;
          exec_and_respond c nd env script key ~ctl
      | Some meta ->
          note_hot_lookup c nd (Some meta) key;
          if meta.Cache.Meta.owner = nd.id then
            serve_self_or_repair c nd env script key ~ctl ~t0 ~drop_entry:true
          else fetch_remote c nd env script key ~ctl ~t0 meta)
  | Some home -> (
      (* Hotspot fast path: with promotion on, this node's table may hold
         a pushed copy of a hot key — probe before paying the forward. *)
      let promoted =
        match st.MP.Sharded.hotspot with
        | Some _ ->
            with_span c nd "dir.lookup" (fun () ->
                Cache.Shard_table.probe st.MP.Sharded.table ~now:(now ()) key)
        | None -> None
      in
      match promoted with
      | Some meta ->
          incr nd K.shard_replica_hits;
          if meta.Cache.Meta.owner = nd.id then
            serve_self_or_repair c nd env script key ~ctl ~t0 ~drop_entry:true
          else fetch_remote c nd env script key ~ctl ~t0 meta
      | None -> (
          match
            Option.map
              (fun lc -> Cache.Lookup_cache.find lc ~now:(now ()) key)
              st.MP.Sharded.lcache
          with
          | Some (Cache.Lookup_cache.Hit meta) ->
              fetch_remote c nd env script key ~ctl ~t0 meta
          | Some Cache.Lookup_cache.Absent ->
              exec_and_respond c nd env script key ~ctl
          | Some Cache.Lookup_cache.Unknown | None ->
              forward_lookup c nd env script key ~ctl ~t0 ~home))

(* ------------------------------------------------------------------ *)
(* Figure 2 control flow *)

let handle_cgi c nd env (script : Cgi.Script.t) =
  let key = Http.Request.cache_key env.req in
  let ctl = cache_ctl_for c script env.req.Http.Request.meth in
  if not ctl.attempt then begin
    incr nd K.uncacheable;
    exec_and_respond c nd env script key ~ctl
  end
  else begin
    (* Every cache-directed access feeds the key's rate estimate — hits
       and misses alike, since both are demand for a fresh result. *)
    Option.iter
      (fun f -> Cache.Freshness.observe_access f ~now:(now ()) key)
      nd.fresh;
    match c.cfg.Config.cache_mode with
    | Config.Disabled -> assert false
    | Config.Standalone -> (
        let t0 = now () in
        match Cache.Store.lookup nd.store key with
        | Some entry -> serve_local c nd env ~t0 entry
        | None -> exec_and_respond c nd env script key ~ctl)
    | Config.Cooperative when sharded c ->
        lookup_sharded c nd env script key ~ctl
    | Config.Cooperative -> (
        let t0 = now () in
        match
          with_span c nd "dir.lookup" (fun () ->
              Cache.Directory.lookup_from (rdir nd) ~self:nd.id ~now:(now ())
                key)
        with
        | None -> exec_and_respond c nd env script key ~ctl
        | Some meta when meta.Cache.Meta.owner = nd.id -> (
            match Cache.Store.lookup nd.store key with
            | Some entry -> serve_local c nd env ~t0 entry
            | None ->
                (* Directory said we own it but the store dropped it
                   (expiry race); repair and execute. *)
                incr nd K.dir_stale_self;
                ignore
                  (Cache.Directory.delete (rdir nd) ~node:nd.id key : bool);
                exec_and_respond c nd env script key ~ctl)
        | Some meta -> fetch_remote c nd env script key ~ctl ~t0 meta)
  end

let handle c nd env =
  with_span c nd "handle" ~parent:env.span
    ~attrs:[ ("path", env.req.Http.Request.uri.Http.Uri.path) ]
  @@ fun () ->
  incr nd K.requests;
  if not nd.up then begin
    (* The node is crashed; the connection front-end answers on its behalf
       with 503 rather than letting the client hang. *)
    incr nd K.rejected_down;
    respond c nd env
      (Http.Response.error Http.Status.Service_unavailable "node down")
  end
  else begin
  let active_at_arrival = nd.active in
  nd.active <- nd.active + 1;
  let model = c.cfg.Config.model in
  Sim.Cpu.consume nd.cpu
    (model.Config.accept_cost +. model.Config.per_request_fork
    +. (model.Config.contention_coeff *. float_of_int active_at_arrival));
  (match Cgi.Registry.resolve c.registry env.req.Http.Request.uri.Http.Uri.path with
  | None ->
      incr nd K.not_found;
      respond c nd env
        (Http.Response.error Http.Status.Not_found
           env.req.Http.Request.uri.Http.Uri.path)
  | Some (Cgi.Registry.Static_file { bytes; _ }) ->
      incr nd K.file_fetches;
      let cached = Sim.Rng.float nd.rng < c.cfg.Config.fs_cache_hit in
      Sim.Disk.read nd.disk ~bytes ~cached;
      Sim.Cpu.consume nd.cpu
        (model.Config.per_byte_send *. float_of_int bytes);
      respond c nd env (file_response bytes)
  | Some (Cgi.Registry.Cgi_script script) -> handle_cgi c nd env script);
  nd.active <- nd.active - 1
  end

(* ------------------------------------------------------------------ *)
(* Daemons (the cacher module's three threads, §4.1) *)

let request_thread c nd =
  let rec loop () =
    let env = Sim.Mailbox.recv nd.listen in
    handle c nd env;
    loop ()
  in
  loop ()

(* Apply a received directory update; a batch applies its updates in list
   order, so a later update to the same key wins. [info_applied] counts
   updates, not envelopes, keeping it comparable across batch settings. *)
let rec apply_info nd = function
  | Cluster.Msg.Insert meta ->
      incr nd K.info_applied;
      Cache.Directory.insert (rdir nd) ~node:meta.Cache.Meta.owner meta
  | Cluster.Msg.Delete { node; key } ->
      incr nd K.info_applied;
      ignore (Cache.Directory.delete (rdir nd) ~node key : bool)
  | Cluster.Msg.Batch updates -> List.iter (apply_info nd) updates
  | Cluster.Msg.Promote _ | Cluster.Msg.Demote _ ->
      invalid_arg "Server: hotspot control message on the replicated plane"

let rec info_updates = function
  | Cluster.Msg.Insert _ | Cluster.Msg.Delete _ | Cluster.Msg.Promote _
  | Cluster.Msg.Demote _ ->
      1
  | Cluster.Msg.Batch l -> List.fold_left (fun a u -> a + info_updates u) 0 l

let info_daemon c nd =
  let rec loop () =
    let envelope = Sim.Mailbox.recv nd.endpoint.Cluster.Endpoint.info_mb in
    if not nd.up then loop ()  (* in flight across the crash instant: lost *)
    else begin
    (* Causally a child of the originating request, but applied off its
       critical path — hence async. *)
    with_span c nd "info.apply" ~parent:envelope.Cluster.Msg.span ~async:true
      (fun () ->
        (* The apply cost is per update: batching amortizes the envelope on
           the wire, not the directory work at the receiver. *)
        Sim.Cpu.consume nd.cpu
          (float_of_int (info_updates envelope.Cluster.Msg.info)
          *. c.cfg.Config.info_apply_cost);
        (if sharded c then apply_shard c nd envelope.Cluster.Msg.info
         else apply_info nd envelope.Cluster.Msg.info);
        match envelope.Cluster.Msg.ack with
        | Some (sender, ack) ->
            incr nd K.acks_sent;
            Sim.Net.send c.net ~src:nd.id ~dst:sender ~bytes:32 ack ()
        | None -> ());
    loop ()
    end
  in
  loop ()

let data_server c nd =
  let rec loop () =
    let fetch = Sim.Mailbox.recv nd.endpoint.Cluster.Endpoint.data_mb in
    if not nd.up then loop ()  (* crashed owner: requester's fetch times out *)
    else begin
    (* One thread per fetch, as in §4.1. Async: the serve runs on the
       owner concurrently with the requester's wait, so its time is
       already inside the requester's fetch.remote span. *)
    Sim.Engine.spawn_child (fun () ->
        with_span c nd "fetch.serve" ~parent:fetch.Cluster.Msg.span
          ~async:true
        @@ fun () ->
        Sim.Cpu.consume nd.cpu c.cfg.Config.data_server_cost;
        let reply_msg =
          match Cache.Store.lookup nd.store fetch.Cluster.Msg.key with
          | Some entry ->
              Sim.Disk.read nd.disk
                ~bytes:entry.Cache.Store.meta.Cache.Meta.size ~cached:true;
              Cluster.Msg.Hit
                { meta = entry.Cache.Store.meta; body = entry.Cache.Store.body }
          | None -> Cluster.Msg.Miss { key = fetch.Cluster.Msg.key }
        in
        Sim.Net.send c.net ~src:nd.id ~dst:fetch.Cluster.Msg.requester
          ~bytes:(Cluster.Msg.fetch_reply_bytes reply_msg)
          fetch.Cluster.Msg.reply reply_msg);
    loop ()
    end
  in
  loop ()

(* The sharded plane's extra daemon: answer forwarded directory lookups
   for the keys this node homes. One thread per request, like the data
   server; a crashed home never replies, so the requester times out and
   executes locally. *)
let lookup_server c nd =
  let rec loop () =
    let req = Sim.Mailbox.recv nd.endpoint.Cluster.Endpoint.lookup_mb in
    if not nd.up then loop ()  (* in flight across the crash instant: lost *)
    else begin
      Sim.Engine.spawn_child (fun () ->
          with_span c nd "dir.serve" ~parent:req.Cluster.Msg.lspan ~async:true
          @@ fun () ->
          Sim.Cpu.consume nd.cpu c.cfg.Config.info_apply_cost;
          let st = shard_state nd in
          let found =
            Cache.Shard_table.probe st.MP.Sharded.table ~now:(now ())
              req.Cluster.Msg.lkey
          in
          (* Forwarded lookups are the home's view of the key's demand —
             the signal hotspot promotion feeds on. *)
          note_hot_lookup c nd found req.Cluster.Msg.lkey;
          let reply =
            match found with
            | Some meta -> Cluster.Msg.Found meta
            | None -> Cluster.Msg.Absent { key = req.Cluster.Msg.lkey }
          in
          incr nd K.dir_lookup_msgs;
          Metrics.Counter.add nd.counters K.dir_lookup_bytes
            (Cluster.Msg.lookup_reply_bytes reply);
          Sim.Net.send c.net ~src:nd.id ~dst:req.Cluster.Msg.lrequester
            ~bytes:(Cluster.Msg.lookup_reply_bytes reply)
            req.Cluster.Msg.lreply reply);
      loop ()
    end
  in
  loop ()

(* Demote cooled hotspot keys once per window. Only shard homes promote,
   so only they originate demotions; Hotspot.sweep returns the cooled
   keys sorted, keeping the message order deterministic. *)
let hotspot_sweeper c nd ~period =
  let rec loop () =
    if not nd.stop then begin
      Sim.Engine.delay period;
      (if nd.up && not nd.stop then
         match (shard_state nd).MP.Sharded.hotspot with
         | None -> ()
         | Some h ->
             List.iter
               (fun key ->
                 incr nd K.hotspot_demotions;
                 with_span c nd "hotspot.demote" (fun () ->
                     push_demote c nd key))
               (Cache.Hotspot.sweep h ~now:(now ())));
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Node crash and restart (fault injection).

   A crash is fail-stop with total cache-state loss: the store, the node's
   own directory table and the in-flight bookkeeping are wiped, and while
   down the node neither answers fetches nor applies directory updates
   (the network additionally drops its traffic). Requests already being
   processed run to completion — the simulator models losing the cache,
   not killing OS processes mid-request; this only makes the measured
   degradation an underestimate.

   A restart is cold: the node rejoins with empty tables and re-announces
   entries one by one as it repopulates (each insert broadcasts, exactly
   like a first boot) — the weak-consistency repair story, with no global
   resynchronisation. Peers may still hold stale entries owned by the
   crashed node; those are repaired lazily, either by the suspect purge on
   fetch-timeout exhaustion or by a Miss reply after the restart. *)

let crash nd =
  if nd.up then begin
    nd.up <- false;
    incr nd K.crashes;
    ignore (Cache.Store.clear nd.store : int);
    (* Replicated: wipe only this node's own directory table (peer tables
       are replicas of state that still exists elsewhere). Sharded: the
       whole node-local plane dies — shard partition, lookup cache and
       hotspot tracker. *)
    ignore (MP.reset ~node:nd.id nd.plane : int);
    Hashtbl.reset nd.in_flight;
    (* Buffered-but-unflushed directory updates die with the node; peers
       learn of the lost entries via false hits / anti-entropy, exactly
       like updates lost mid-broadcast. *)
    nd.batch_buf <- [];
    (* The freshness tracker's rate estimates describe a cache that no
       longer exists; restart from a cold controller, like the store. *)
    Option.iter Cache.Freshness.clear nd.fresh;
    Hashtbl.reset nd.refreshed
  end

let restart nd =
  if not nd.up then begin
    nd.up <- true;
    incr nd K.restarts
  end

(* Shard handoff: after any liveness change (crash, restart, partition
   heal) every live node re-derives which keys it answers for and
   re-announces its own cached entries to their — possibly new — acting
   homes. Re-announcements reconcile newest-wins at the receiver, so the
   protocol is idempotent and safe to over-trigger. On a crash the dead
   node's directory entries are additionally dropped eagerly
   ([purge_owner]) instead of waiting for fetch-timeout suspicion; stale
   positive lookup-cache entries pointing at the dead node are left to
   expire (bounded by [shard_pos_ttl]) or be invalidated by the first
   timed-out fetch. Runs as a spawned process per node: the triggering
   event callback cannot block on locks or the network. *)
let shard_handoff c ?died () =
  Array.iter
    (fun nd ->
      if nd.up then
        Sim.Engine.spawn c.engine (fun () ->
            let st = shard_state nd in
            let ring = st.MP.Sharded.ring in
            (match died with
            | Some j ->
                let purged =
                  Cache.Shard_table.purge_owner st.MP.Sharded.table ~node:j
                in
                if purged > 0 then
                  Metrics.Counter.add nd.counters K.dir_suspect_purged purged
            | None -> ());
            let up i = c.nodes.(i).up in
            (* Drop entries this node no longer answers for — unless it
               may legitimately hold them as a hotspot replica. *)
            let keep key =
              match Cache.Ring.acting_owner ring ~up key with
              | Some h when h = nd.id -> true
              | Some _ | None ->
                  c.cfg.Config.hotspot_threshold > 0.
                  && List.exists
                       (fun j -> j = nd.id)
                       (Cache.Ring.successors ring key
                          ~k:(1 + c.cfg.Config.hotspot_replicas))
            in
            let pruned = Cache.Shard_table.prune st.MP.Sharded.table ~keep in
            if pruned > 0 then
              Metrics.Counter.add nd.counters K.shard_pruned pruned;
            List.iter
              (fun key ->
                match Cache.Store.peek nd.store key with
                | None -> ()
                | Some entry ->
                    incr nd K.shard_handoff_reannounced;
                    dispatch_sharded c nd
                      (Cluster.Msg.Insert entry.Cache.Store.meta))
              (Cache.Store.keys nd.store)))
    c.nodes

(* ------------------------------------------------------------------ *)
(* Anti-entropy (directory repair).

   Each node periodically exchanges per-table directory digests with one
   seeded-random peer and pulls the entries it is missing or holds stale,
   so replicas provably reconverge after a partition heals or a crash cut
   a broadcast short — instead of relying only on the lazy suspect purge.

   Reconciliation rules, per table [j] of a reply from peer [p]:
   - [j = self]: skipped. A node's own table tracks its own store; a peer
     cannot know better, and adopting a peer's stale replica would
     resurrect entries the store no longer holds.
   - [j = p]: the responder is the authority for its own table, so the
     requester adopts it wholesale — stale entries are removed, missing
     ones inserted. This is the only path on which anti-entropy deletes,
     and it is exactly the path on which deletion is safe.
   - otherwise (third-party replica): per-key recency merge — pull a key
     iff it is missing or the incoming meta is newer ([created] is the
     owner's insertion clock, so newest-wins is well defined). Never
     deletes: a missing key may mean "never heard the insert", so removal
     waits for the authority or an ordinary Delete broadcast.

   A pulled key that the requester itself also caches (same key in its own
   table) reveals a duplicate execution that happened while the replicas
   were divided — the paper's second kind of false miss, discovered at
   reconciliation time rather than at insert time. *)

let ae_merge c nd (reply : Cluster.Msg.sync_reply) ~peer =
  let pulled = ref 0 in
  List.iter
    (fun (j, metas) ->
      if j <> nd.id && j >= 0 && j < Array.length c.nodes then
        if j = peer then begin
          (* Authoritative copy: drop whatever the responder no longer has. *)
          let keep = Hashtbl.create (List.length metas) in
          List.iter
            (fun (m : Cache.Meta.t) -> Hashtbl.replace keep m.Cache.Meta.key ())
            metas;
          List.iter
            (fun (m : Cache.Meta.t) ->
              if not (Hashtbl.mem keep m.Cache.Meta.key) then
                ignore
                  (Cache.Directory.delete (rdir nd) ~node:j m.Cache.Meta.key
                    : bool))
            (Cache.Directory.entries (rdir nd) ~node:j);
          List.iter
            (fun (m : Cache.Meta.t) ->
              match Cache.Directory.find (rdir nd) ~node:j m.Cache.Meta.key with
              | Some cur when cur.Cache.Meta.created >= m.Cache.Meta.created ->
                  ()
              | (Some _ | None) as cur ->
                  if cur = None
                     && Cache.Directory.find (rdir nd) ~node:nd.id
                          m.Cache.Meta.key
                        <> None
                  then incr nd K.false_miss_duplicate;
                  Cache.Directory.insert (rdir nd) ~node:j m;
                  Stdlib.incr pulled)
            metas
        end
        else
          List.iter
            (fun (m : Cache.Meta.t) ->
              match Cache.Directory.find (rdir nd) ~node:j m.Cache.Meta.key with
              | Some cur when cur.Cache.Meta.created >= m.Cache.Meta.created ->
                  ()
              | (Some _ | None) as cur ->
                  if cur = None
                     && Cache.Directory.find (rdir nd) ~node:nd.id
                          m.Cache.Meta.key
                        <> None
                  then incr nd K.false_miss_duplicate;
                  Cache.Directory.insert (rdir nd) ~node:j m;
                  Stdlib.incr pulled)
            metas)
    reply.Cluster.Msg.tables;
  !pulled

(* One anti-entropy round: digest everything, ask one seeded-random peer,
   merge whatever comes back before the (bounded) wait expires. *)
let ae_round c nd ~period =
  with_span c nd "ae.round" @@ fun () ->
  let n = Array.length c.nodes in
  let peer =
    let k = Sim.Rng.int nd.ae_rng (n - 1) in
    if k >= nd.id then k + 1 else k
  in
  incr nd K.anti_entropy_rounds;
  let digests =
    Array.init n (fun j ->
        let n_entries, hash = Cache.Directory.digest (rdir nd) ~node:j in
        { Cluster.Msg.n_entries; hash })
  in
  let reply_mb = Sim.Mailbox.create () in
  Cluster.Broadcast.sync c.net c.endpoints ~src:nd.id ~peer
    {
      Cluster.Msg.from_node = nd.id;
      digests;
      sync_reply = reply_mb;
      span = span_of c;
    };
  let timeout = Option.value c.cfg.Config.fetch_timeout ~default:period in
  match Sim.Mailbox.recv_timeout reply_mb ~timeout with
  | None -> ()  (* peer down or partitioned away; next round, another peer *)
  | Some reply ->
      let pulled = ae_merge c nd reply ~peer in
      if pulled > 0 then
        Metrics.Counter.add nd.counters K.anti_entropy_pulled pulled

let anti_entropy_daemon c nd ~period =
  let rec loop () =
    if not nd.stop then begin
      Sim.Engine.delay period;
      if nd.up && not nd.stop && Array.length c.nodes > 1 then begin
        Sim.Cpu.consume nd.cpu c.cfg.Config.info_apply_cost;
        ae_round c nd ~period
      end;
      loop ()
    end
  in
  loop ()

(* The responder half: answer digest exchanges with the tables that
   differ. Runs forever on its mailbox, like the info receiver. *)
let sync_responder c nd =
  let rec loop () =
    let req = Sim.Mailbox.recv nd.endpoint.Cluster.Endpoint.sync_mb in
    if not nd.up then loop ()  (* in flight across the crash instant: lost *)
    else begin
      with_span c nd "ae.respond" ~parent:req.Cluster.Msg.span ~async:true
        (fun () ->
      Sim.Cpu.consume nd.cpu c.cfg.Config.info_apply_cost;
      let n = Array.length c.nodes in
      let tables = ref [] in
      for j = n - 1 downto 0 do
        let n_entries, hash = Cache.Directory.digest (rdir nd) ~node:j in
        let differs =
          match
            if j < Array.length req.Cluster.Msg.digests then
              Some req.Cluster.Msg.digests.(j)
            else None
          with
          | Some d ->
              d.Cluster.Msg.n_entries <> n_entries || d.Cluster.Msg.hash <> hash
          | None -> true
        in
        if differs then
          tables := (j, Cache.Directory.entries (rdir nd) ~node:j) :: !tables
      done;
      let reply = { Cluster.Msg.tables = !tables } in
      Sim.Net.send c.net ~src:nd.id ~dst:req.Cluster.Msg.from_node
        ~bytes:(Cluster.Msg.sync_reply_bytes reply)
        req.Cluster.Msg.sync_reply reply);
      loop ()
    end
  in
  loop ()

let purge_daemon c nd =
  let rec loop () =
    if not nd.stop then begin
      Sim.Engine.delay c.cfg.Config.purge_interval;
      (* Trim the freshness tracker's cold keys on the same cadence; pure
         host-side bookkeeping, so it perturbs nothing. *)
      Option.iter
        (fun f -> ignore (Cache.Freshness.sweep f ~now:(now ()) : int))
        nd.fresh;
      let expired = Cache.Store.purge_expired nd.store in
      List.iter
        (fun (m : Cache.Meta.t) ->
          incr nd K.purged;
          (* Sharded: the local directory update IS the announcement —
             dispatch applies it locally when this node is the home. *)
          if not (sharded c) then
            ignore
              (Cache.Directory.delete (rdir nd) ~node:nd.id m.Cache.Meta.key
                : bool);
          if c.cfg.Config.cache_mode = Config.Cooperative then
            send_broadcasts c nd
              [ Cluster.Msg.Delete { node = nd.id; key = m.Cache.Meta.key } ])
        expired;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Proactive refresh (the freshness plane's daemon).

   Once per [refresh_interval] each node scans its own store for entries
   expiring within two intervals and re-executes the hot, expensive ones
   off the critical path, spending at most [refresh_budget] executions
   per second (token bucket with one interval of carry). A refreshed
   entry is re-inserted with a fresh TTL (adaptive or fixed, like any
   insert) and re-announced to the directory, so the next client hit
   serves a young result instead of missing and paying the recomputation
   — refresh_saved_ms credits exactly those displaced executions
   (note_hit_freshness pops the pending credit on the first hit).

   Candidate order is deterministic: most expensive first (the biggest
   saving per token), then soonest-expiring, then key. "Hot" means
   accessed within [freshness_window]; an entry nobody touched recently
   would spend budget on a result nobody may ask for again. Demand and
   failure draws come from [refresh_rng] — its own salted stream — so
   the daemon never perturbs request-path randomness; with the budget at
   zero the daemon is not even spawned and runs are byte-identical to
   builds without it. *)

(* Cache keys are "METHOD /path?query" (Http.Request.cache_key); recover
   the URI so the refresh can redraw the script's demand and output size
   with the original query parameters. *)
let uri_of_cache_key key =
  match String.index_opt key ' ' with
  | None -> None
  | Some i -> (
      let target = String.sub key (i + 1) (String.length key - i - 1) in
      match Http.Uri.parse target with Ok uri -> Some uri | Error _ -> None)

(* Re-execute one near-expiry entry and re-insert its result. Returns
   [true] when a budget token was spent (the CGI actually ran). *)
let refresh_entry c nd key =
  match uri_of_cache_key key with
  | None -> false
  | Some uri -> (
      match Cgi.Registry.resolve c.registry uri.Http.Uri.path with
      | None | Some (Cgi.Registry.Static_file _) -> false
      | Some (Cgi.Registry.Cgi_script script) ->
          let ctl = cache_ctl_for c script Http.Meth.Get in
          if not ctl.attempt then false
          else begin
            with_span c nd "refresh.exec"
              ~attrs:[ ("script", script.Cgi.Script.name) ]
            @@ fun () ->
            let query = uri.Http.Uri.query in
            let demand =
              Cgi.Cost.demand_for script.Cgi.Script.cost nd.refresh_rng ~query
            in
            Sim.Cpu.consume nd.cpu
              ((script.Cgi.Script.cost.Cgi.Cost.fork_exec
               *. c.cfg.Config.model.Config.cgi_overhead_factor)
              +. demand);
            let failed =
              script.Cgi.Script.failure_rate > 0.
              && Sim.Rng.float nd.refresh_rng < script.Cgi.Script.failure_rate
            in
            (if (not failed) && demand >= ctl.threshold then begin
               let out_bytes =
                 Cgi.Cost.output_bytes_for script.Cgi.Script.cost ~query
               in
               let body =
                 Cgi.Script.output_sized script ~key ~bytes:out_bytes
               in
               let msgs = insert_result c nd ~key ~body ~exec_time:demand ctl.ttl in
               incr nd K.refreshes;
               Hashtbl.replace nd.refreshed key demand;
               send_broadcasts c nd msgs
             end);
            true
          end)

let refresh_daemon c nd ~budget ~interval =
  let credit = ref 0. in
  let rec loop () =
    if not nd.stop then begin
      Sim.Engine.delay interval;
      if nd.up && not nd.stop then begin
        (* Token bucket: earn one interval's worth per tick, carry at most
           one more interval's worth, so an idle period cannot bank an
           unbounded burst. *)
        credit :=
          Float.min (2. *. budget *. interval) (!credit +. (budget *. interval));
        let hot_window = c.cfg.Config.freshness_window in
        let candidates =
          Cache.Store.expiring nd.store ~now:(now ()) ~horizon:(2. *. interval)
        in
        let worthwhile =
          List.filter
            (fun (cand : Cache.Store.candidate) ->
              cand.Cache.Store.c_hits > 0
              && now () -. cand.Cache.Store.c_last_access <= hot_window)
            candidates
          |> List.sort (fun (a : Cache.Store.candidate) b ->
                 let c =
                   Float.compare
                     b.Cache.Store.c_entry.Cache.Store.meta.Cache.Meta.exec_time
                     a.Cache.Store.c_entry.Cache.Store.meta.Cache.Meta.exec_time
                 in
                 if c <> 0 then c
                 else
                   let c =
                     Float.compare a.Cache.Store.c_expires
                       b.Cache.Store.c_expires
                   in
                   if c <> 0 then c
                   else
                     String.compare
                       a.Cache.Store.c_entry.Cache.Store.meta.Cache.Meta.key
                       b.Cache.Store.c_entry.Cache.Store.meta.Cache.Meta.key)
        in
        List.iter
          (fun (cand : Cache.Store.candidate) ->
            if !credit >= 1. && nd.up && not nd.stop then
              if
                refresh_entry c nd
                  cand.Cache.Store.c_entry.Cache.Store.meta.Cache.Meta.key
              then credit := !credit -. 1.)
          worthwhile
      end;
      loop ()
    end
  in
  loop ()

(* Nagle timer for the batching layer: transmit whatever the outbound
   buffer holds every [period] seconds, so a buffered update never waits
   longer than one period for the size threshold. A crashed node's buffer
   was already cleared by [crash], so skipping while down loses nothing. *)
let batch_flusher c nd ~period =
  let rec loop () =
    if not nd.stop then begin
      Sim.Engine.delay period;
      if nd.up && not nd.stop && nd.batch_buf <> [] then
        (* Its own root tree: a batch mixes updates from several requests,
           so no single request can claim the flush. *)
        with_span c nd "batch.flush" (fun () -> flush c nd);
      loop ()
    end
  in
  loop ()

(* Cumulative cluster signals for the health monitor, read at each
   telemetry tick. All are O(nodes) counter/length reads. *)
let health_signals c =
  let hits = ref 0 and lookups = ref 0 and depth = ref 0 in
  Array.iter
    (fun nd ->
      hits :=
        !hits
        + Metrics.Counter.get nd.counters K.hit_local
        + Metrics.Counter.get nd.counters K.hit_remote;
      lookups := !lookups + Metrics.Counter.get nd.counters K.requests;
      depth := !depth + Sim.Mailbox.length nd.listen)
    c.nodes;
  {
    Metrics.Health.hits = float_of_int !hits;
    lookups = float_of_int !lookups;
    queue_depth = float_of_int !depth /. float_of_int (Array.length c.nodes);
    stale_count = float_of_int (Metrics.Histogram.count c.staleness);
    stale_total = Metrics.Histogram.total c.staleness;
  }

(* The flight recorder's sampler: one cluster-level daemon reading every
   probe and closing a health window each telemetry interval. Same
   shutdown discipline as the per-node daemons ([stop] raises the flag,
   the loop exits at its next wake-up, the queue drains). *)
let telemetry_daemon c tel ~interval =
  let rec loop () =
    if not tel.t_stop then begin
      Sim.Engine.delay interval;
      if not tel.t_stop then begin
        let now = Sim.Engine.now () in
        Metrics.Registry.sample tel.t_registry ~time:now;
        Metrics.Health.tick tel.t_health ~now (health_signals c)
      end;
      loop ()
    end
  in
  loop ()

let start c =
  (match c.telemetry with
  | None -> ()
  | Some tel ->
      let interval = Metrics.Registry.interval tel.t_registry in
      Sim.Engine.spawn c.engine (fun () -> telemetry_daemon c tel ~interval));
  Array.iter
    (fun nd ->
      for _ = 1 to c.cfg.Config.threads_per_node do
        Sim.Engine.spawn c.engine (fun () -> request_thread c nd)
      done;
      match c.cfg.Config.cache_mode with
      | Config.Disabled -> ()
      | Config.Standalone ->
          Sim.Engine.spawn c.engine (fun () -> purge_daemon c nd);
          if c.cfg.Config.refresh_budget > 0. then
            Sim.Engine.spawn c.engine (fun () ->
                refresh_daemon c nd ~budget:c.cfg.Config.refresh_budget
                  ~interval:c.cfg.Config.refresh_interval)
      | Config.Cooperative ->
          Sim.Engine.spawn c.engine (fun () -> info_daemon c nd);
          Sim.Engine.spawn c.engine (fun () -> data_server c nd);
          Sim.Engine.spawn c.engine (fun () -> purge_daemon c nd);
          if c.cfg.Config.refresh_budget > 0. then
            Sim.Engine.spawn c.engine (fun () ->
                refresh_daemon c nd ~budget:c.cfg.Config.refresh_budget
                  ~interval:c.cfg.Config.refresh_interval);
          if sharded c then begin
            Sim.Engine.spawn c.engine (fun () -> lookup_server c nd);
            if c.cfg.Config.hotspot_threshold > 0. then
              Sim.Engine.spawn c.engine (fun () ->
                  hotspot_sweeper c nd ~period:c.cfg.Config.hotspot_window)
          end;
          (match (c.cfg.Config.batch_max, c.cfg.Config.batch_flush_interval)
           with
          | n, Some period when n > 1 ->
              Sim.Engine.spawn c.engine (fun () ->
                  batch_flusher c nd ~period)
          | _ -> ());
          (match c.cfg.Config.anti_entropy_period with
          | None -> ()
          | Some period ->
              Sim.Engine.spawn c.engine (fun () -> sync_responder c nd);
              Sim.Engine.spawn c.engine (fun () ->
                  anti_entropy_daemon c nd ~period)))
    c.nodes;
  (* Schedule the fault plan's crash/restart instants as plain events; the
     handles are kept so [stop] can cancel whatever has not yet fired. *)
  match c.fault with
  | None -> ()
  | Some f ->
      let now = Sim.Engine.current_time c.engine in
      Array.iter
        (fun nd ->
          List.iter
            (fun (down_at, up_at) ->
              if down_at >= now then
                c.fault_handles <-
                  Sim.Engine.schedule_at c.engine down_at (fun () ->
                      crash nd;
                      emit_instant c ~track:nd.id "crash";
                      if sharded c then shard_handoff c ~died:nd.id ())
                  :: c.fault_handles;
              if up_at >= now then
                c.fault_handles <-
                  Sim.Engine.schedule_at c.engine up_at (fun () ->
                      restart nd;
                      emit_instant c ~track:nd.id "restart";
                      (* the ring hands the node's keys back: peers prune
                         and re-announce, repopulating its empty shard *)
                      if sharded c then shard_handoff c ())
                  :: c.fault_handles)
            (Sim.Fault.schedule f ~node:nd.id))
        c.nodes;
      (* Each partition's heal instant is observable: node 0 counts it, so
         experiments can report how many splits a run actually saw end. *)
      List.iter
        (fun (p : Sim.Fault.partition) ->
          if p.Sim.Fault.heal_at >= now then
            c.fault_handles <-
              Sim.Engine.schedule_at c.engine p.Sim.Fault.heal_at (fun () ->
                  incr c.nodes.(0) K.partitions_healed;
                  emit_instant c ~track:0 "partition.heal";
                  (* announcements dropped at the cut are unrecoverable
                     point-to-point losses; re-announce everything *)
                  if sharded c then shard_handoff c ())
              :: c.fault_handles)
        (Sim.Fault.partitions f)

let stop c =
  Array.iter (fun nd -> nd.stop <- true) c.nodes;
  (match c.telemetry with None -> () | Some tel -> tel.t_stop <- true);
  (* Cancel pending crash/restart events: without this a fault plan whose
     horizon outlives the workload would keep the engine ticking long after
     the last client finished. *)
  List.iter Sim.Engine.cancel c.fault_handles;
  c.fault_handles <- []

let submit c ~client ~node req =
  if node < 0 || node >= Array.length c.nodes then
    invalid_arg "Server.submit: node out of range";
  let nd = c.nodes.(node) in
  let span = span_of c in
  Sim.Net.transfer c.net ~src:client ~dst:node
    ~bytes:(Http.Request.wire_size req);
  Sim.Engine.suspend (fun resume ->
      Sim.Mailbox.send nd.listen { req; client; resume; span })

let submit_wire c ~client ~node bytes =
  match Http.Request.parse bytes with
  | Error e ->
      Http.Response.to_wire (Http.Response.error Http.Status.Bad_request e)
  | Ok req -> Http.Response.to_wire (submit c ~client ~node req)

let preload c ~node req ~exec_time =
  if node < 0 || node >= Array.length c.nodes then
    invalid_arg "Server.preload: node out of range";
  let nd = c.nodes.(node) in
  let key = Http.Request.cache_key req in
  match Cgi.Registry.resolve c.registry req.Http.Request.uri.Http.Uri.path with
  | Some (Cgi.Registry.Cgi_script script) ->
      let out_bytes =
        Cgi.Cost.output_bytes_for script.Cgi.Script.cost
          ~query:req.Http.Request.uri.Http.Uri.query
      in
      let body = Cgi.Script.output_sized script ~key ~bytes:out_bytes in
      let ctl = cache_ctl_for c script Http.Meth.Get in
      let msgs = insert_result c nd ~key ~body ~exec_time ctl.ttl in
      send_broadcasts c nd msgs
  | Some (Cgi.Registry.Static_file _) | None ->
      invalid_arg "Server.preload: request does not resolve to a CGI script"

(* ------------------------------------------------------------------ *)
(* Invalidation (the paper's §4.2 future work: application-driven
   invalidation messages and source-monitoring invalidation) *)

let delete_everywhere c pred =
  let removed = ref 0 in
  Array.iter
    (fun nd ->
      let victims = Cache.Store.remove_matching nd.store pred in
      List.iter
        (fun (m : Cache.Meta.t) ->
          incr nd K.invalidations;
          removed := !removed + 1;
          if not (sharded c) then
            ignore
              (Cache.Directory.delete (rdir nd) ~node:nd.id m.Cache.Meta.key
                : bool);
          if c.cfg.Config.cache_mode = Config.Cooperative then
            send_broadcasts c nd
              [ Cluster.Msg.Delete { node = nd.id; key = m.Cache.Meta.key } ])
        victims)
    c.nodes;
  !removed

let invalidate c ~key = delete_everywhere c (String.equal key)

let invalidate_script c ~script =
  (* Cache keys are "METHOD /script?args"; match on the script path
     component so every argument combination is dropped. *)
  let pred key =
    match String.index_opt key ' ' with
    | None -> false
    | Some i ->
        let rest = String.sub key (i + 1) (String.length key - i - 1) in
        let path =
          match String.index_opt rest '?' with
          | None -> rest
          | Some j -> String.sub rest 0 j
        in
        String.equal path script
  in
  delete_everywhere c pred

let node_active nd = nd.active
let node_up nd = nd.up
let fault c = c.fault
let staleness_histogram c = c.staleness

(* Fold each node's directory hint statistics into its counters. Not
   cumulative-safe: call once, after the run, before reading counters
   (the runner does). No-op counters stay absent when hints are off, so
   hint-less runs keep the pre-hint counter set. *)
let record_hint_stats c =
  if not (sharded c) then
    Array.iter
      (fun nd ->
        let saved, false_hints = Cache.Directory.hint_stats (rdir nd) in
        if saved > 0 then
          Metrics.Counter.add nd.counters K.hint_probes_saved saved;
        if false_hints > 0 then
          Metrics.Counter.add nd.counters K.hint_false false_hints)
      c.nodes

(* Fold the sharded plane's host-side collector statistics (lookup-cache
   outcomes) into counters. Like [record_hint_stats]: once, after the
   run; counters stay absent on the replicated plane or when zero. *)
let record_shard_stats c =
  if sharded c then
    Array.iter
      (fun nd ->
        match (shard_state nd).MP.Sharded.lcache with
        | None -> ()
        | Some lc ->
            let pos, neg, _misses, evictions = Cache.Lookup_cache.stats lc in
            if pos > 0 then
              Metrics.Counter.add nd.counters K.lcache_pos_hits pos;
            if neg > 0 then
              Metrics.Counter.add nd.counters K.lcache_neg_hits neg;
            if evictions > 0 then
              Metrics.Counter.add nd.counters K.lcache_evictions evictions)
      c.nodes

let hit_latency c = c.hit_latency
let forward_wait_histogram c = c.fwd_wait

(* ------------------------------------------------------------------ *)
(* Flight recorder accessors *)

let telemetry_registry c =
  Option.map (fun tel -> tel.t_registry) c.telemetry

let health c = Option.map (fun tel -> tel.t_health) c.telemetry

(* Fed by the cluster runner at each request completion. Pure host-side
   accumulation (plus the health monitor's window counters), so the
   request path is untouched when telemetry is off and unperturbed when
   it is on. *)
let observe_response c dt =
  match c.telemetry with
  | None -> ()
  | Some tel ->
      tel.t_resp_n <- tel.t_resp_n +. 1.;
      tel.t_resp_sum <- tel.t_resp_sum +. dt;
      Metrics.Health.observe_response tel.t_health dt
