(** The Swala distributed web server (paper §4).

    A {!cluster} is a group of simulated server nodes sharing a network and
    a script/file registry. Each node runs, as simulated threads:

    - the {b HTTP module}: a pool of request threads taking turns on the
      node's listen mailbox, each owning a request from parse to completion
      (Figure 2's control flow);
    - the {b cacher module}: an info receiver applying broadcast directory
      updates, a data server answering remote fetches (one thread spawned
      per fetch), and a purge thread deleting expired entries.

    The same machinery runs the baselines: [Config.cache_mode = Disabled]
    is the no-cache server, [Standalone] caches without any inter-node
    cooperation, and the [Config.server_model] cost profiles turn the node
    into the HTTPd-like or Enterprise-like comparison server. *)

type t
(** One server node. *)

type cluster

(** [create_cluster engine cfg ~registry ~n_client_endpoints] builds the
    nodes, network (endpoints [0 .. n_nodes-1] are nodes, the rest client
    endpoints) and per-node state. Call {!start} before submitting.

    [client_extra_latency], when given, maps client stream [s] (endpoint
    [n_nodes + s]) to extra one-way link latency — geo-tiered client
    populations (see {!Workload.Scenario}). Node endpoints always keep the
    base LAN latency; omitted, the network is exactly the pre-scenario
    one. *)
val create_cluster :
  ?client_extra_latency:float array ->
  Sim.Engine.t ->
  Config.t ->
  registry:Cgi.Registry.t ->
  n_client_endpoints:int ->
  cluster

(** [start cluster] spawns every node's request threads and daemons. *)
val start : cluster -> unit

(** [stop cluster] signals purge daemons to exit and cancels any pending
    crash/restart events of the fault plan, so the simulation can drain
    even when the fault horizon outlives the workload; idempotent. *)
val stop : cluster -> unit

(** [submit cluster ~client ~node req] sends [req] from client endpoint
    [client] to [node] and blocks until the response returns, including
    both network transfers. Must run inside a simulated process. *)
val submit :
  cluster -> client:int -> node:int -> Http.Request.t -> Http.Response.t

(** [submit_wire cluster ~client ~node bytes] is {!submit} at the wire
    level: parses [bytes] as an HTTP/1.0 request and returns the serialised
    response. A malformed request yields a [400] without touching the
    node. This is the path a real socket front-end would use. *)
val submit_wire : cluster -> client:int -> node:int -> string -> string

(** [preload cluster ~node req ~exec_time] warms [node]'s cache with the
    result of [req] as if it had been executed and inserted (directory
    update broadcast included). Must run inside a simulated process. *)
val preload : cluster -> node:int -> Http.Request.t -> exec_time:float -> unit

(** {1 Invalidation}

    The paper's TTL scheme suits read-mostly sites; for stronger content
    consistency it proposes (as future work) receiving invalidation
    messages from applications and monitoring CGI input files. These are
    those hooks. Both must run inside a simulated process; deletions are
    broadcast to peers like any other delete. *)

(** [invalidate cluster ~key] drops one cached result (by canonical cache
    key) from every node holding it; returns how many copies existed. *)
val invalidate : cluster -> key:string -> int

(** [invalidate_script cluster ~script] drops every cached result of a
    CGI program (all argument combinations); returns the count. Used by
    {!Filemon} when one of the program's source files changes. *)
val invalidate_script : cluster -> script:string -> int

(** [node_active nd] is the number of requests the node is currently
    handling (used by load-aware request routing). *)
val node_active : t -> int

(** [node_up nd] is [false] while the node is crashed under fault
    injection. A down node answers nothing itself: incoming requests get a
    front-end [503], incoming fetches and directory updates are lost, and
    the network drops its traffic. Always [true] without a fault plan. *)
val node_up : t -> bool

val engine : cluster -> Sim.Engine.t
val net : cluster -> Sim.Net.t
val config : cluster -> Config.t

(** [fault cluster] is the instantiated fault plan, when the configuration
    carries a fault profile — the source of truth for injected drop/delay
    counts and crash schedules. *)
val fault : cluster -> Sim.Fault.t option

val n_nodes : cluster -> int
val node : cluster -> int -> t

(** {1 Introspection} *)

val node_counters : t -> Metrics.Counter.t
val node_store : t -> Cache.Store.t

(** [node_directory nd] is the node's full directory replica. Only
    meaningful under [Config.dir_mode = Replicated]; raises
    [Invalid_argument] on a sharded node (use {!node_plane} there). *)
val node_directory : t -> Cache.Directory.t

(** [node_plane nd] is the node's metadata-plane state in either mode —
    unpack it with [Cache.Metadata_plane.directory]/[shard], or use the
    mode-agnostic [entries]/[lock_acquisitions] accessors. *)
val node_plane : t -> Cache.Metadata_plane.t

val node_cpu : t -> Sim.Cpu.t

(** [node_info_mailbox nd] is the mailbox the node's info receiver consumes;
    exposed so the Table-4 pseudo-server can inject directory updates. *)
val node_info_mailbox : t -> Cluster.Msg.info_envelope Sim.Mailbox.t

(** [tracer cluster] is the causal tracer when [Config.trace] is set.
    Request-thread, daemon and client spans land here; export it with
    {!Metrics.Trace.to_chrome_json} or summarise it with
    {!Metrics.Trace.breakdown}. [None] when tracing is off — the hot path
    then contains no tracing work at all. *)
val tracer : cluster -> Metrics.Trace.t option

(** [wait_histograms cluster] are the cluster-wide contention histograms
    (empty list when tracing is off): acquire waits and queue depths for
    the directory rwlocks ([dir.rd_wait]/[dir.wr_wait]/[dir.queue]), the
    listen mailboxes feeding the request-thread pools
    ([listen.wait]/[listen.depth]), the processor-sharing CPUs
    ([cpu.wait]/[cpu.queue]) and the disk arms ([disk.wait]). *)
val wait_histograms : cluster -> (string * Metrics.Histogram.t) list

(** [merged_counters cluster] sums all nodes' counters. *)
val merged_counters : cluster -> Metrics.Counter.t

(** [total_hits cluster] is local + remote cache hits served to clients. *)
val total_hits : cluster -> int

(** Counter names (see the per-name docs in the implementation). *)
module K : sig
  val requests : string
  val file_fetches : string
  val cgi_execs : string
  val hit_local : string
  val hit_remote : string
  val uncacheable : string
  val false_hit : string
  val false_miss_concurrent : string
  val false_miss_duplicate : string
  val inserts : string
  val below_threshold : string
  val broadcast_insert : string
  val broadcast_delete : string
  val info_applied : string
  val purged : string
  val not_found : string
  val cgi_failures : string
  val dir_stale_self : string
  val invalidations : string
  val acks_sent : string
  val fetch_timeouts : string
  val fetch_retries : string
  val crashes : string
  val restarts : string
  val rejected_down : string
  val dir_suspect_purged : string

  (** [partitions_healed] counts partition heal instants observed (on node
      0); [anti_entropy_rounds]/[anti_entropy_pulled] count digest-exchange
      rounds initiated and entries pulled by the anti-entropy daemon;
      [router_retries] counts client requests that a router re-submitted to
      a survivor after a [503] from a down node. *)
  val partitions_healed : string
  val anti_entropy_rounds : string
  val anti_entropy_pulled : string
  val router_retries : string

  (** Update batching: [batches_sent] counts [Msg.Batch] envelopes
      transmitted (only buffers of two or more updates are wrapped),
      [batch_updates] the updates those envelopes carried, and
      [batch_coalesced] buffered updates overwritten by a newer update to
      the same key before transmission. [info_msgs]/[info_bytes] count
      directory-update unicasts actually sent and their wire bytes. *)
  val batches_sent : string
  val batch_updates : string
  val batch_coalesced : string
  val info_msgs : string
  val info_bytes : string

  (** Hint index: [hint_probes_saved] is table probes skipped thanks to
      the key→owner hints, [hint_false] lookups where every hinted probe
      missed and the full-scan fallback ran. *)
  val hint_probes_saved : string
  val hint_false : string

  (** Sharded metadata plane. Directory lookups split by how they were
      answered: [shard_local_lookups] at the key's own home without a
      message, [shard_replica_hits] from a hotspot-replicated copy, and
      [shard_fwd_lookups] forwarded to the home over the network.
      [dir_lookup_msgs]/[dir_lookup_bytes] count the forwarded round
      trip's wire traffic — requests at the requester, replies at the
      home — so [info_msgs + dir_lookup_msgs] is the plane's total
      metadata message count in either mode; [dir_lookup_timeouts] are
      forwards abandoned because the home was down or partitioned away.
      [lcache_*] are the lookup cache's outcomes, folded in by
      {!record_shard_stats}. *)
  val shard_local_lookups : string
  val shard_fwd_lookups : string
  val shard_replica_hits : string
  val dir_lookup_msgs : string
  val dir_lookup_bytes : string
  val dir_lookup_timeouts : string
  val lcache_pos_hits : string
  val lcache_neg_hits : string
  val lcache_evictions : string

  (** Hotspot replication: [hotspot_promotions]/[hotspot_demotions] are
      decisions taken at shard homes, [hotspot_replica_pushes] the
      [Promote] unicasts those decisions sent to ring successors. *)
  val hotspot_promotions : string
  val hotspot_demotions : string
  val hotspot_replica_pushes : string

  (** Shard handoff after a crash, restart or partition heal:
      [shard_handoff_reannounced] entries re-announced to their acting
      homes, [shard_pruned] entries dropped because the ring moved their
      home elsewhere. *)
  val shard_handoff_reannounced : string
  val shard_pruned : string

  (** Adaptive freshness / proactive refresh: [refreshes] counts entries
      re-executed and re-inserted by the refresh daemon;
      [refresh_saved_ms] accumulates, in integer milliseconds, the
      refresh execution time that displaced a client-visible recompute
      (credited on the first hit after each refresh, at the owner);
      [stale_served] counts adaptive-mode hits whose content age exceeded
      the configured [default_ttl] anchor — results a fixed-TTL cache
      would have refused to serve. *)
  val refreshes : string
  val refresh_saved_ms : string
  val stale_served : string
end

(** [record_hint_stats cluster] folds each node's directory hint
    statistics into its counters ({!K.hint_probes_saved}/{!K.hint_false},
    only when nonzero). Call once, after the run, before reading
    counters; the cluster runner does this. No-op on the sharded plane. *)
val record_hint_stats : cluster -> unit

(** [record_shard_stats cluster] folds each node's lookup-cache outcomes
    into its counters ({!K.lcache_pos_hits} etc., only when nonzero).
    Call once, after the run, like {!record_hint_stats}; no-op on the
    replicated plane. *)
val record_shard_stats : cluster -> unit

(** [hit_latency cluster] is the sample of cooperative cache-hit service
    times (seconds from directory-lookup start to response sent), across
    all nodes and both hit kinds. Collected host-side in every mode; the
    dirmode ablation's latency metric. *)
val hit_latency : cluster -> Metrics.Sample.t

(** [forward_wait_histogram cluster] is the distribution of forwarded
    directory-lookup round-trip waits (sharded plane; timeouts included
    at their full timeout value). Empty on the replicated plane. *)
val forward_wait_histogram : cluster -> Metrics.Histogram.t

(** [staleness_histogram cluster] is the distribution of content ages at
    cache hits (seconds since the entry was created, over
    {!Metrics.Histogram.age_bounds}), across all nodes and both hit
    kinds. Collected host-side in every mode — the freshness ablation's
    staleness metric. *)
val staleness_histogram : cluster -> Metrics.Histogram.t

(** {1 Flight recorder}

    When [Config.telemetry_interval] is set, the cluster carries a
    {!Metrics.Registry} of probes (cluster signals, per-node utilisation,
    engine self-telemetry) plus a {!Metrics.Health} monitor, both driven
    by one sampler daemon on the telemetry cadence. Probes are pure reads
    of state the cluster already maintains, so sampling perturbs no
    simulated quantity — but the daemon does add engine events, which is
    why the plane is opt-in. [None] with telemetry off; the run is then
    byte-identical to one built without this plane. *)

val telemetry_registry : cluster -> Metrics.Registry.t option
val health : cluster -> Metrics.Health.t option

(** [observe_response cluster dt] feeds one completed request's response
    time into the flight recorder (the [response] probe's accumulator and
    the health monitor's SLO window). No-op when telemetry is off; the
    cluster runner calls this at each request completion. *)
val observe_response : cluster -> float -> unit
