(* Plain-text rendering of the flight recorder's output, shared by the
   [swala_sim] CLI (post-run printing and the [report] subcommand) and
   anything else that holds either the live registry/health monitor or a
   metrics-JSON payload containing their exported sections. *)

module J = Metrics.Json

(* One rendered probe, decoupled from where it came from (live registry
   or parsed JSON) so both paths share the table/sparkline code. *)
type series_view = {
  sv_name : string;
  sv_kind : string;
  sv_width : float;
  sv_values : float array;  (* bucket values in time order; nan = empty *)
}

(* ------------------------------------------------------------------ *)
(* Sparklines: pure-ASCII level chars, one per bucket, space for empty
   buckets. A flat series renders at the lowest level rather than
   claiming a fake dynamic range. *)

let spark_levels = " .:-=+*#%@"

let sparkline values =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun v ->
      if Float.is_finite v then begin
        if v < !lo then lo := v;
        if v > !hi then hi := v
      end)
    values;
  let n_levels = String.length spark_levels - 1 in
  let buf = Buffer.create (Array.length values) in
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then Buffer.add_char buf ' '
      else if !hi <= !lo then Buffer.add_char buf spark_levels.[1]
      else begin
        let frac = (v -. !lo) /. (!hi -. !lo) in
        let level = 1 + int_of_float (frac *. float_of_int (n_levels - 1)) in
        let level = Stdlib.min n_levels (Stdlib.max 1 level) in
        Buffer.add_char buf spark_levels.[level]
      end)
    values;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Tables *)

let fmt_v v = if Float.is_finite v then Printf.sprintf "%.4g" v else "-"

let timeline_columns =
  [
    ("series", Metrics.Table.Left);
    ("kind", Metrics.Table.Left);
    ("n", Metrics.Table.Right);
    ("mean", Metrics.Table.Right);
    ("min", Metrics.Table.Right);
    ("max", Metrics.Table.Right);
    ("last", Metrics.Table.Right);
    ("timeline", Metrics.Table.Left);
  ]

let add_series_row tbl sv =
  let n = ref 0
  and sum = ref 0.
  and lo = ref infinity
  and hi = ref neg_infinity
  and last = ref Float.nan in
  Array.iter
    (fun v ->
      if Float.is_finite v then begin
        incr n;
        sum := !sum +. v;
        if v < !lo then lo := v;
        if v > !hi then hi := v;
        last := v
      end)
    sv.sv_values;
  let mean = if !n = 0 then Float.nan else !sum /. float_of_int !n in
  Metrics.Table.add_row tbl
    [
      sv.sv_name;
      sv.sv_kind;
      string_of_int !n;
      fmt_v mean;
      fmt_v (if !n = 0 then Float.nan else !lo);
      fmt_v (if !n = 0 then Float.nan else !hi);
      fmt_v !last;
      sparkline sv.sv_values;
    ]

let timelines_table_of ~title views =
  let tbl = Metrics.Table.create ~title ~columns:timeline_columns in
  List.iter (add_series_row tbl) views;
  tbl

let kind_label = function
  | Metrics.Registry.Gauge -> "gauge"
  | Metrics.Registry.Rate -> "rate"
  | Metrics.Registry.Wmean -> "mean"

let views_of_registry reg =
  List.map
    (fun (s : Metrics.Registry.series) ->
      {
        sv_name = s.Metrics.Registry.name;
        sv_kind = kind_label s.Metrics.Registry.kind;
        sv_width = s.Metrics.Registry.width;
        sv_values = Array.map snd s.Metrics.Registry.points;
      })
    (Metrics.Registry.series reg)

let timelines_table reg =
  let width =
    match views_of_registry reg with [] -> 0. | sv :: _ -> sv.sv_width
  in
  timelines_table_of
    ~title:
      (Printf.sprintf "Timelines (%d samples, bucket %gs)"
         (Metrics.Registry.n_samples reg)
         width)
    (views_of_registry reg)

let incident_columns =
  [
    ("t", Metrics.Table.Right);
    ("detector", Metrics.Table.Left);
    ("value", Metrics.Table.Right);
    ("threshold", Metrics.Table.Right);
    ("message", Metrics.Table.Left);
  ]

let incidents_table incidents =
  let tbl =
    Metrics.Table.create
      ~title:(Printf.sprintf "Incidents (%d)" (List.length incidents))
      ~columns:incident_columns
  in
  List.iter
    (fun (i : Metrics.Health.incident) ->
      Metrics.Table.add_row tbl
        [
          Printf.sprintf "%.3fs" i.Metrics.Health.at;
          i.Metrics.Health.detector;
          fmt_v i.Metrics.Health.value;
          fmt_v i.Metrics.Health.threshold;
          i.Metrics.Health.message;
        ])
    incidents;
  tbl

(* ------------------------------------------------------------------ *)
(* Rendering from a parsed metrics-JSON payload ([swala_sim report]) *)

let float_of_json v = Option.value ~default:Float.nan (J.to_float_opt v)

let views_of_json payload =
  match J.member "timelines" payload with
  | None -> None
  | Some tl ->
      let series = Option.value ~default:J.Null (J.member "series" tl) in
      let view name =
        let s = Option.value ~default:J.Null (J.member name series) in
        let kind =
          match J.member "kind" s with Some (J.Str k) -> k | _ -> "?"
        in
        let width =
          match J.member "width_s" s with
          | Some v -> float_of_json v
          | None -> Float.nan
        in
        let values =
          match J.member "points" s with
          | Some (J.List pts) ->
              Array.of_list
                (List.map
                   (fun p ->
                     match J.member "v" p with
                     | Some v -> float_of_json v
                     | None -> Float.nan)
                   pts)
          | _ -> [||]
        in
        { sv_name = name; sv_kind = kind; sv_width = width; sv_values = values }
      in
      Some (List.map view (J.keys series))

let incidents_of_json payload =
  match J.member "incidents" payload with
  | Some (J.List items) ->
      Some
        (List.map
           (fun i ->
             {
               Metrics.Health.at =
                 (match J.member "at_s" i with
                 | Some v -> float_of_json v
                 | None -> Float.nan);
               detector =
                 (match J.member "detector" i with
                 | Some (J.Str d) -> d
                 | _ -> "?");
               value =
                 (match J.member "value" i with
                 | Some v -> float_of_json v
                 | None -> Float.nan);
               threshold =
                 (match J.member "threshold" i with
                 | Some v -> float_of_json v
                 | None -> Float.nan);
               message =
                 (match J.member "message" i with
                 | Some (J.Str m) -> m
                 | _ -> "");
             })
           items)
  | Some _ | None -> None

let render_json_report payload =
  let buf = Buffer.create 4096 in
  (match views_of_json payload with
  | None -> ()
  | Some views ->
      let samples =
        match
          Option.bind (J.member "timelines" payload) (J.member "samples")
        with
        | Some (J.Int n) -> n
        | _ -> 0
      in
      let width = match views with [] -> 0. | sv :: _ -> sv.sv_width in
      let title =
        Printf.sprintf "Timelines (%d samples, bucket %gs)" samples width
      in
      Buffer.add_string buf
        (Metrics.Table.render (timelines_table_of ~title views));
      Buffer.add_char buf '\n');
  (match incidents_of_json payload with
  | None -> ()
  | Some incidents ->
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (Metrics.Table.render (incidents_table incidents));
      Buffer.add_char buf '\n');
  if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
