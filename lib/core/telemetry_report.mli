(** Plain-text rendering of the flight recorder's output: probe
    timelines as summary rows with ASCII sparklines, and the health
    monitor's incident log. Shared by the [swala_sim] CLI — post-run
    printing from the live structures, and the [report] subcommand from a
    parsed metrics-JSON payload. *)

(** [timelines_table reg] tabulates every registered probe: kind,
    non-empty bucket count, mean/min/max/last of the rendered values, and
    a sparkline over the buckets (space = empty bucket). *)
val timelines_table : Metrics.Registry.t -> Metrics.Table.t

(** [incidents_table incidents] tabulates incident records in time
    order. *)
val incidents_table : Metrics.Health.incident list -> Metrics.Table.t

(** [render_json_report payload] renders the ["timelines"] and
    ["incidents"] sections of a parsed metrics-JSON payload, whichever
    are present; [None] when the payload carries neither (telemetry was
    off). *)
val render_json_report : Metrics.Json.t -> string option
