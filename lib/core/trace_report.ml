(* Plain-text summaries of a traced run, shared by the CLI
   ([--trace-breakdown]) and the bench harness. All statistics degrade to
   "-" on empty data instead of crashing. *)

let fmt_ms v = Metrics.Table.fmt_f ~decimals:3 (v *. 1000.)

let breakdown_table tr ~root =
  let b = Metrics.Trace.breakdown tr ~root in
  let table =
    Metrics.Table.create
      ~title:
        (Printf.sprintf "Latency breakdown (%d %s trees)"
           b.Metrics.Trace.n_roots root)
      ~columns:
        [
          ("phase", Metrics.Table.Left);
          ("reqs", Metrics.Table.Right);
          ("occur", Metrics.Table.Right);
          ("total ms", Metrics.Table.Right);
          ("mean ms", Metrics.Table.Right);
          ("p50 ms", Metrics.Table.Right);
          ("p99 ms", Metrics.Table.Right);
          ("share", Metrics.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          p.Metrics.Trace.phase;
          Metrics.Table.fmt_i p.Metrics.Trace.requests;
          Metrics.Table.fmt_i p.Metrics.Trace.occurrences;
          fmt_ms p.Metrics.Trace.total;
          fmt_ms p.Metrics.Trace.mean;
          fmt_ms p.Metrics.Trace.p50;
          fmt_ms p.Metrics.Trace.p99;
          Metrics.Table.fmt_pct ~decimals:1 p.Metrics.Trace.share;
        ])
    b.Metrics.Trace.phases;
  table

let histogram_table hists =
  let module H = Metrics.Histogram in
  let table =
    Metrics.Table.create ~title:"Contention (acquire waits and queue depths)"
      ~columns:
        [
          ("histogram", Metrics.Table.Left);
          ("n", Metrics.Table.Right);
          ("mean", Metrics.Table.Right);
          ("p50", Metrics.Table.Right);
          ("p99", Metrics.Table.Right);
          ("max", Metrics.Table.Right);
        ]
  in
  (* Waits are times (report in ms); depth/queue histograms are counts. *)
  let fmt name v =
    let is_depth =
      let n = String.length name in
      (n >= 6 && String.sub name (n - 6) 6 = ".queue")
      || (n >= 6 && String.sub name (n - 6) 6 = ".depth")
    in
    if is_depth then Metrics.Table.fmt_f ~decimals:1 v else fmt_ms v
  in
  let fmt_opt name = function None -> "-" | Some v -> fmt name v in
  List.iter
    (fun (name, h) ->
      Metrics.Table.add_row table
        [
          name;
          Metrics.Table.fmt_i (H.count h);
          (if H.count h = 0 then "-" else fmt name (H.mean h));
          fmt_opt name (H.quantile_opt h 0.5);
          fmt_opt name (H.quantile_opt h 0.99);
          fmt_opt name (H.max_opt h);
        ])
    hists;
  table
