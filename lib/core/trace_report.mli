(** Plain-text summaries of a traced run, shared by the [swala_sim]
    CLI ([--trace-breakdown]) and the bench harness. *)

(** [breakdown_table tr ~root] tabulates {!Metrics.Trace.breakdown}: one
    row per span name, with per-request totals and means in milliseconds
    and the share of end-to-end time. Sync phases' totals partition the
    root duration, so the share column sums to 100% (async spans — work
    off the requester's critical path — are excluded). Quantiles over
    empty phases print ["-"]. *)
val breakdown_table : Metrics.Trace.t -> root:string -> Metrics.Table.t

(** [histogram_table hists] tabulates named contention histograms (see
    {!Server.wait_histograms}): waits in milliseconds, [.queue]/[.depth]
    histograms as plain counts; ["-"] for statistics of empty
    histograms. *)
val histogram_table : (string * Metrics.Histogram.t) list -> Metrics.Table.t
