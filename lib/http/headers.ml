type t = (string * string) list (* insertion order *)

let empty = []
let add t name value = t @ [ (name, value) ]
let norm = String.lowercase_ascii
let matches name (k, _) = String.equal (norm k) (norm name)

let get t name =
  match List.find_opt (matches name) t with
  | Some (_, v) -> Some v
  | None -> None

let get_all t name = List.filter (matches name) t |> List.map snd
let remove t name = List.filter (fun kv -> not (matches name kv)) t
let replace t name value = add (remove t name) name value
let mem t name = List.exists (matches name) t
let to_list t = t
let of_list l = l
let length = List.length

let content_length t =
  match get t "Content-Length" with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s: %s@ " k v) t;
  Format.fprintf ppf "@]"
