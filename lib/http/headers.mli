(** HTTP header fields. Field names are case-insensitive (RFC 1945 §4.2);
    insertion order is preserved for serialisation. *)

type t

val empty : t

(** [add t name value] appends a field (duplicates allowed, as in HTTP). *)
val add : t -> string -> string -> t

(** [get t name] is the first value of [name], case-insensitively. *)
val get : t -> string -> string option

(** [get_all t name] is every value of [name], in order. *)
val get_all : t -> string -> string list

(** [replace t name value] removes existing [name] fields and appends one. *)
val replace : t -> string -> string -> t

val remove : t -> string -> t
val mem : t -> string -> bool
val to_list : t -> (string * string) list
val of_list : (string * string) list -> t
val length : t -> int

(** [content_length t] parses the [Content-Length] field if present and
    well-formed. *)
val content_length : t -> int option

val pp : Format.formatter -> t -> unit
