type t = Get | Head | Post

let to_string = function Get -> "GET" | Head -> "HEAD" | Post -> "POST"

let of_string = function
  | "GET" -> Ok Get
  | "HEAD" -> Ok Head
  | "POST" -> Ok Post
  | other -> Error (Printf.sprintf "unsupported method %S" other)

let equal a b =
  match (a, b) with
  | Get, Get | Head, Head | Post, Post -> true
  | (Get | Head | Post), _ -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)
