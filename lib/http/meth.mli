(** HTTP/1.0 request methods (RFC 1945, which the paper targets). *)

type t = Get | Head | Post

val to_string : t -> string

(** [of_string s] is case-sensitive per RFC 1945 (["GET"], not ["get"]). *)
val of_string : string -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
