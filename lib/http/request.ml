type t = {
  meth : Meth.t;
  uri : Uri.t;
  version : string;
  headers : Headers.t;
  body : string;
}

let make ?(headers = Headers.empty) ?(body = "") meth target =
  match Uri.parse target with
  | Ok uri -> { meth; uri; version = "HTTP/1.0"; headers; body }
  | Error e -> invalid_arg ("Request.make: " ^ e)

let get target = make Meth.Get target

let split_head = Wire.split_head
let parse_header_line = Wire.parse_header_line

let parse s =
  match split_head s with
  | [], _ -> Error "empty request"
  | request_line :: header_lines, body_off -> (
      match String.split_on_char ' ' request_line with
      | [ m; target; version ] -> (
          match Meth.of_string m with
          | Error e -> Error e
          | Ok meth -> (
              match Uri.parse target with
              | Error e -> Error e
              | Ok uri ->
                  let rec headers acc = function
                    | [] -> Ok (Headers.of_list (List.rev acc))
                    | line :: rest -> (
                        match parse_header_line line with
                        | Ok kv -> headers (kv :: acc) rest
                        | Error e -> Error e)
                  in
                  (match headers [] header_lines with
                  | Error e -> Error e
                  | Ok hs ->
                      let avail = String.length s - body_off in
                      let want =
                        match Headers.content_length hs with
                        | Some n -> Stdlib.min n avail
                        | None -> avail
                      in
                      let body = String.sub s body_off (Stdlib.max 0 want) in
                      Ok { meth; uri; version; headers = hs; body })))
      | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

let to_wire t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Meth.to_string t.meth);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Uri.to_string t.uri);
  Buffer.add_char buf ' ';
  Buffer.add_string buf t.version;
  Buffer.add_string buf "\r\n";
  let headers =
    if String.length t.body > 0 && not (Headers.mem t.headers "Content-Length")
    then
      Headers.replace t.headers "Content-Length"
        (string_of_int (String.length t.body))
    else t.headers
  in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf ": ";
      Buffer.add_string buf v;
      Buffer.add_string buf "\r\n")
    (Headers.to_list headers);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf t.body;
  Buffer.contents buf

let cache_key t =
  Meth.to_string t.meth ^ " " ^ Uri.to_string (Uri.canonical t.uri)

let wire_size t = String.length (to_wire t)

let pp ppf t =
  Format.fprintf ppf "%a %a %s" Meth.pp t.meth Uri.pp t.uri t.version
