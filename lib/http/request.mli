(** HTTP/1.0 requests: construction, wire parsing and printing. *)

type t = {
  meth : Meth.t;
  uri : Uri.t;
  version : string;  (** e.g. ["HTTP/1.0"] *)
  headers : Headers.t;
  body : string;
}

(** [make ?headers ?body meth target] parses [target] as a request-URI.
    Raises [Invalid_argument] on a malformed target (programmatic use). *)
val make : ?headers:Headers.t -> ?body:string -> Meth.t -> string -> t

(** [get target] is [make Get target]. *)
val get : string -> t

(** [parse s] reads a full request off the wire (request line, headers,
    CRLF or bare-LF line endings, optional body per [Content-Length]). *)
val parse : string -> (t, string) result

(** [to_wire t] serialises with CRLF line endings, adding
    [Content-Length] when a body is present. *)
val to_wire : t -> string

(** [cache_key t] is the canonical identity used by the result cache:
    method + canonicalised URI. Two requests with equal keys would execute
    identically (for cacheable scripts). *)
val cache_key : t -> string

(** [wire_size t] is the serialised byte count (used to charge the network
    model). *)
val wire_size : t -> int

val pp : Format.formatter -> t -> unit
