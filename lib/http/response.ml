type t = {
  status : Status.t;
  version : string;
  headers : Headers.t;
  body : string;
}

let make ?(headers = Headers.empty) ?(body = "") status =
  { status; version = "HTTP/1.0"; headers; body }

let ok body =
  make ~headers:(Headers.add Headers.empty "Content-Type" "text/html") ~body
    Status.Ok

let error status message =
  let body =
    Printf.sprintf "<html><body><h1>%d %s</h1><p>%s</p></body></html>"
      (Status.code status) (Status.reason status) message
  in
  make ~headers:(Headers.add Headers.empty "Content-Type" "text/html") ~body
    status

let split_head = Wire.split_head
let parse_header_line = Wire.parse_header_line

let parse s =
  match split_head s with
  | [], _ -> Error "empty response"
  | status_line :: header_lines, body_off -> (
      match String.split_on_char ' ' status_line with
      | version :: code :: _reason -> (
          match int_of_string_opt code with
          | None -> Error (Printf.sprintf "bad status code %S" code)
          | Some n -> (
              match Status.of_code n with
              | Error e -> Error e
              | Ok status ->
                  let rec headers acc = function
                    | [] -> Ok (Headers.of_list (List.rev acc))
                    | line :: rest -> (
                        match parse_header_line line with
                        | Ok kv -> headers (kv :: acc) rest
                        | Error e -> Error e)
                  in
                  (match headers [] header_lines with
                  | Error e -> Error e
                  | Ok hs ->
                      let avail = String.length s - body_off in
                      let want =
                        match Headers.content_length hs with
                        | Some n -> Stdlib.min n avail
                        | None -> avail
                      in
                      let body = String.sub s body_off (Stdlib.max 0 want) in
                      Ok { status; version; headers = hs; body })))
      | [] | [ _ ] -> Error "malformed status line")

let to_wire t =
  let buf = Buffer.create (String.length t.body + 128) in
  Buffer.add_string buf t.version;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Status.code t.status));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Status.reason t.status);
  Buffer.add_string buf "\r\n";
  let headers =
    if not (Headers.mem t.headers "Content-Length") then
      Headers.replace t.headers "Content-Length"
        (string_of_int (String.length t.body))
    else t.headers
  in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf ": ";
      Buffer.add_string buf v;
      Buffer.add_string buf "\r\n")
    (Headers.to_list headers);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf t.body;
  Buffer.contents buf

let wire_size t = String.length (to_wire t)
let body_size t = String.length t.body

let pp ppf t =
  Format.fprintf ppf "%s %a (%d bytes)" t.version Status.pp t.status
    (body_size t)
