(** HTTP/1.0 responses. *)

type t = {
  status : Status.t;
  version : string;
  headers : Headers.t;
  body : string;
}

val make : ?headers:Headers.t -> ?body:string -> Status.t -> t

(** [ok body] is a [200] with [Content-Type: text/html]. *)
val ok : string -> t

(** [error status message] wraps [message] in a minimal HTML body. *)
val error : Status.t -> string -> t

val parse : string -> (t, string) result
val to_wire : t -> string

(** [wire_size t] is the serialised byte count. *)
val wire_size : t -> int

(** [body_size t] is [String.length t.body]. *)
val body_size : t -> int

val pp : Format.formatter -> t -> unit
