type t =
  | Ok
  | Bad_request
  | Forbidden
  | Not_found
  | Internal_server_error
  | Not_implemented
  | Service_unavailable

let code = function
  | Ok -> 200
  | Bad_request -> 400
  | Forbidden -> 403
  | Not_found -> 404
  | Internal_server_error -> 500
  | Not_implemented -> 501
  | Service_unavailable -> 503

let reason = function
  | Ok -> "OK"
  | Bad_request -> "Bad Request"
  | Forbidden -> "Forbidden"
  | Not_found -> "Not Found"
  | Internal_server_error -> "Internal Server Error"
  | Not_implemented -> "Not Implemented"
  | Service_unavailable -> "Service Unavailable"

let of_code = function
  | 200 -> Stdlib.Ok Ok
  | 400 -> Stdlib.Ok Bad_request
  | 403 -> Stdlib.Ok Forbidden
  | 404 -> Stdlib.Ok Not_found
  | 500 -> Stdlib.Ok Internal_server_error
  | 501 -> Stdlib.Ok Not_implemented
  | 503 -> Stdlib.Ok Service_unavailable
  | n -> Error (Printf.sprintf "unknown status code %d" n)

let is_success = function
  | Ok -> true
  | Bad_request | Forbidden | Not_found | Internal_server_error
  | Not_implemented | Service_unavailable ->
      false

let pp ppf t = Format.fprintf ppf "%d %s" (code t) (reason t)
