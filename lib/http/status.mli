(** HTTP status codes used by the server models. *)

type t =
  | Ok
  | Bad_request
  | Forbidden
  | Not_found
  | Internal_server_error
  | Not_implemented
  | Service_unavailable

val code : t -> int
val reason : t -> string

(** [of_code n] recognises the codes above. *)
val of_code : int -> (t, string) result

val is_success : t -> bool
val pp : Format.formatter -> t -> unit
