type t = { path : string; query : (string * string) list }

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else
      match s.[i] with
      | '%' ->
          if i + 2 >= n then Error "truncated percent escape"
          else (
            match (hex_val s.[i + 1], hex_val s.[i + 2]) with
            | Some h, Some l ->
                Buffer.add_char buf (Char.chr ((h * 16) + l));
                go (i + 3)
            | _ -> Error (Printf.sprintf "bad percent escape at %d" i))
      | '+' ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let safe_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '-' | '_' | '.' | '~' | '/' -> true
  | _ -> false

let hex_digit = "0123456789ABCDEF"

let add_escaped buf c =
  let n = Char.code c in
  Buffer.add_char buf '%';
  Buffer.add_char buf hex_digit.[n lsr 4];
  Buffer.add_char buf hex_digit.[n land 0xf]

(* Encoding runs once per request per hop (cache keys are canonical
   URIs), and almost every path and query component is already safe, so
   scan first and return the string unchanged — no buffer, no copy —
   when nothing needs escaping. *)
let all_safe ?(extra_unsafe = '\x00') s =
  let n = String.length s in
  let rec go i =
    i >= n || (safe_char s.[i] && s.[i] <> extra_unsafe && go (i + 1))
  in
  go 0

let percent_encode s =
  if all_safe s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if safe_char c then Buffer.add_char buf c else add_escaped buf c)
      s;
    Buffer.contents buf
  end

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> (s, None)
  | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let parse_query qs =
  if String.equal qs "" then Ok []
  else
    let parts = String.split_on_char '&' qs in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest -> go acc rest
      | part :: rest -> (
          let k, v = split_on_first '=' part in
          let v = Option.value v ~default:"" in
          match (percent_decode k, percent_decode v) with
          | Ok k, Ok v -> go ((k, v) :: acc) rest
          | Error e, _ | _, Error e -> Error e)
    in
    go [] parts

let parse s =
  if String.equal s "" then Error "empty request-URI"
  else
    let raw_path, raw_query = split_on_first '?' s in
    if String.length raw_path = 0 || raw_path.[0] <> '/' then
      Error "request-URI must be absolute (start with '/')"
    else
      match percent_decode raw_path with
      | Error e -> Error e
      | Ok path -> (
          match parse_query (Option.value raw_query ~default:"") with
          | Error e -> Error e
          | Ok query -> Ok { path; query })

let encode_component s =
  (* For query keys/values: '/' is not safe there. *)
  if all_safe ~extra_unsafe:'/' s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if safe_char c && c <> '/' then Buffer.add_char buf c
        else add_escaped buf c)
      s;
    Buffer.contents buf
  end

let to_string t =
  let path = percent_encode t.path in
  match t.query with
  | [] -> path
  | q ->
      let pairs =
        List.map
          (fun (k, v) -> encode_component k ^ "=" ^ encode_component v)
          q
      in
      path ^ "?" ^ String.concat "&" pairs

let canonical t =
  let cmp (k1, v1) (k2, v2) =
    let c = String.compare k1 k2 in
    if c <> 0 then c else String.compare v1 v2
  in
  { t with query = List.stable_sort cmp t.query }

let query_get t name =
  match List.find_opt (fun (k, _) -> String.equal k name) t.query with
  | Some (_, v) -> Some v
  | None -> None

let equal a b =
  String.equal a.path b.path
  && List.length a.query = List.length b.query
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       a.query b.query

let pp ppf t = Format.pp_print_string ppf (to_string t)
