(** Request-URI handling: path/query split, percent-decoding, query-string
    parsing, and canonicalisation. Canonical form (sorted, decoded query
    parameters) is what the cache uses as part of its key, so two requests
    that differ only in parameter order hit the same entry. *)

type t = {
  path : string;  (** decoded path, always starting with ['/'] *)
  query : (string * string) list;  (** decoded pairs, original order *)
}

(** [parse s] splits ["/path?a=1&b=2"]; [Error] on malformed
    percent-escapes or an empty/relative path. *)
val parse : string -> (t, string) result

(** [to_string t] re-encodes (path segments and query values are
    percent-encoded as needed). *)
val to_string : t -> string

(** [canonical t] sorts query parameters by key (then value), producing the
    cache-key form. *)
val canonical : t -> t

(** [percent_decode s] decodes [%XX] escapes and ['+'] as space. *)
val percent_decode : string -> (string, string) result

(** [percent_encode s] escapes everything outside the RFC 1738 "safe"
    set. *)
val percent_encode : string -> string

val query_get : t -> string -> string option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
