let split_head s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then (List.rev acc, n)
    else
      match String.index_from_opt s i '\n' with
      | None -> (List.rev (String.sub s i (n - i) :: acc), n)
      | Some j ->
          let stop = if j > i && s.[j - 1] = '\r' then j - 1 else j in
          let line = String.sub s i (stop - i) in
          if String.equal line "" then (List.rev acc, j + 1)
          else go (j + 1) (line :: acc)
  in
  go 0 []

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed header line %S" line)
  | Some i ->
      let name = String.sub line 0 i in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      if String.equal (String.trim name) "" then Error "empty header name"
      else Ok (String.trim name, value)
