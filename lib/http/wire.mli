(** Shared wire-format helpers for request and response parsing. *)

(** [split_head s] splits the message head into lines (tolerating CRLF and
    bare LF), stopping at the first empty line; returns the lines and the
    byte offset of the body. *)
val split_head : string -> string list * int

(** [parse_header_line line] splits ["Name: value"]. *)
val parse_header_line : string -> (string * string, string) result
