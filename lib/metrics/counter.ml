type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 16

(* Counter bumps sit on the per-request fast path; [Hashtbl.find] with
   the exception fallback avoids the [Some] allocation of [find_opt] on
   every hit. [cell] lets steady callers hoist the lookup entirely. *)
let cell t name =
  match Hashtbl.find t name with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name k =
  match Hashtbl.find t name with
  | r -> r := !r + k
  | exception Not_found -> Hashtbl.add t name (ref k)

let incr t name = add t name 1
let get t name = match Hashtbl.find t name with r -> !r | exception Not_found -> 0

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let merge a b =
  let out = create () in
  let fold src = Hashtbl.iter (fun k r -> add out k !r) src in
  fold a;
  fold b;
  out

let equal a b =
  names a = names b && List.for_all (fun k -> get a k = get b k) (names a)

let pp ppf t =
  let items = names t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun k -> Format.fprintf ppf "%s=%d@ " k (get t k)) items;
  Format.fprintf ppf "@]"
