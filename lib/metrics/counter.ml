type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name k =
  let r = cell t name in
  r := !r + k

let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let merge a b =
  let out = create () in
  let fold src = Hashtbl.iter (fun k r -> add out k !r) src in
  fold a;
  fold b;
  out

let equal a b =
  names a = names b && List.for_all (fun k -> get a k = get b k) (names a)

let pp ppf t =
  let items = names t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun k -> Format.fprintf ppf "%s=%d@ " k (get t k)) items;
  Format.fprintf ppf "@]"
