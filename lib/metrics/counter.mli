(** Named integer counters, the bookkeeping spine of every experiment
    (hits, misses, false hits, broadcasts, evictions, ...). *)

type t

val create : unit -> t

(** [incr t name] adds 1 to [name] (creating it at 0). *)
val incr : t -> string -> unit

(** [cell t name] is the mutable cell behind [name] (creating it at 0).
    Callers on hot paths can hoist the name lookup out of their loop and
    bump the returned ref directly. *)
val cell : t -> string -> int ref

(** [add t name k] adds [k]. *)
val add : t -> string -> int -> unit

(** [get t name] is the current value, [0] if never touched. *)
val get : t -> string -> int

(** [names t] lists touched counters, sorted. *)
val names : t -> string list

(** [merge a b] sums both counter sets into a fresh one. *)
val merge : t -> t -> t

(** [equal a b] is [true] when both hold exactly the same names with the
    same values — the determinism-replay tests' comparison. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
