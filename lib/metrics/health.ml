(* Online health monitor over the flight-recorder cadence.

   The sampler daemon closes a window every [interval] virtual seconds;
   between ticks the run feeds per-request response times in, and at each
   tick the cluster's cumulative signals are read. Detectors are
   edge-triggered with hysteresis: an incident is recorded when a
   condition first becomes true and the detector stays silent until the
   condition has cleared, so a sustained outage yields one record per
   excursion, not one per window. *)

type incident = {
  at : float;
  detector : string;
  value : float;
  threshold : float;
  message : string;
}

type config = {
  slo_target : float option;  (* response-time target (s); None = burn off *)
  slo_objective : float;  (* fraction of requests that must meet target *)
  burn_threshold : float;  (* fire when burn rate reaches this multiple *)
  hit_drop : float;  (* absolute windowed hit-ratio drop vs trailing mean *)
  queue_depth_min : float;  (* ignore growth below this backlog *)
  queue_windows : int;  (* consecutive growing windows before firing *)
  stale_factor : float;  (* windowed mean staleness vs trailing mean *)
  min_window_obs : int;  (* observations before a window is judged *)
  warmup_windows : int;  (* windows before baselines are trusted *)
}

let default_config =
  {
    slo_target = None;
    slo_objective = 0.95;
    burn_threshold = 2.;
    hit_drop = 0.25;
    queue_depth_min = 8.;
    queue_windows = 3;
    stale_factor = 3.;
    min_window_obs = 10;
    warmup_windows = 3;
  }

type signals = {
  hits : float;  (* cumulative cache hits *)
  lookups : float;  (* cumulative cacheable lookups *)
  queue_depth : float;  (* instantaneous mean listen backlog *)
  stale_count : float;  (* cumulative stale-age observations *)
  stale_total : float;  (* cumulative stale-age seconds *)
}

type t = {
  cfg : config;
  interval : float;
  mutable incidents : incident list;  (* newest first *)
  mutable n_windows : int;
  (* current-window response stats *)
  mutable resp_n : int;
  mutable resp_bad : int;  (* responses over the SLO target *)
  mutable resp_sum : float;
  mutable resp_max : float;
  (* previous tick's cumulative signals *)
  mutable prev : signals;
  mutable prev_depth : float;
  mutable growth_streak : int;
  (* trailing baselines (EWMA over judged windows) *)
  mutable hit_ewma : float;
  mutable hit_ewma_set : bool;
  mutable stale_ewma : float;
  mutable stale_ewma_set : bool;
  (* hysteresis: detectors currently in the fired state *)
  mutable active : string list;
}

let zero_signals =
  { hits = 0.; lookups = 0.; queue_depth = 0.; stale_count = 0.; stale_total = 0. }

let create ?(config = default_config) ~interval () =
  if not (interval > 0.) then invalid_arg "Health.create: interval must be > 0";
  if not (config.slo_objective > 0. && config.slo_objective < 1.) then
    invalid_arg "Health.create: slo_objective must be in (0,1)";
  {
    cfg = config;
    interval;
    incidents = [];
    n_windows = 0;
    resp_n = 0;
    resp_bad = 0;
    resp_sum = 0.;
    resp_max = 0.;
    prev = zero_signals;
    prev_depth = 0.;
    growth_streak = 0;
    hit_ewma = 0.;
    hit_ewma_set = false;
    stale_ewma = 0.;
    stale_ewma_set = false;
    active = [];
  }

let observe_response t dt =
  t.resp_n <- t.resp_n + 1;
  t.resp_sum <- t.resp_sum +. dt;
  if dt > t.resp_max then t.resp_max <- dt;
  match t.cfg.slo_target with
  | Some target when dt > target -> t.resp_bad <- t.resp_bad + 1
  | _ -> ()

let is_active t d = List.exists (String.equal d) t.active

(* Edge-triggered: record only on the inactive -> active transition. *)
let update t ~now ~detector ~firing ~value ~threshold ~message =
  if firing then begin
    if not (is_active t detector) then begin
      t.active <- detector :: t.active;
      t.incidents <-
        { at = now; detector; value; threshold; message } :: t.incidents
    end
  end
  else t.active <- List.filter (fun d -> not (String.equal d detector)) t.active

let ewma_alpha = 0.3

let tick t ~now s =
  let cfg = t.cfg in
  let warmed = t.n_windows >= cfg.warmup_windows in
  (* SLO burn rate: window miss fraction over the error budget. *)
  (match cfg.slo_target with
  | Some target when t.resp_n >= cfg.min_window_obs ->
      let miss = float_of_int t.resp_bad /. float_of_int t.resp_n in
      let budget = 1. -. cfg.slo_objective in
      let burn = miss /. budget in
      update t ~now ~detector:"slo_burn" ~firing:(burn >= cfg.burn_threshold)
        ~value:burn ~threshold:cfg.burn_threshold
        ~message:
          (Printf.sprintf
             "%.0f%% of %d responses over %gs target (burn %.1fx, max %.3fs)"
             (100. *. miss) t.resp_n target burn t.resp_max)
  | _ -> ());
  (* Hit-ratio collapse: windowed ratio vs trailing EWMA. *)
  let dlook = s.lookups -. t.prev.lookups in
  if dlook >= float_of_int cfg.min_window_obs then begin
    let h = (s.hits -. t.prev.hits) /. dlook in
    (if warmed && t.hit_ewma_set then
       let firing = t.hit_ewma -. h >= cfg.hit_drop in
       update t ~now ~detector:"hit_ratio_collapse" ~firing ~value:h
         ~threshold:(t.hit_ewma -. cfg.hit_drop)
         ~message:
           (Printf.sprintf "windowed hit ratio %.2f, trailing %.2f" h
              t.hit_ewma));
    (* Baselines only learn from healthy windows, so a long excursion
       does not drag the reference down to meet it. *)
    if not (is_active t "hit_ratio_collapse") then
      if t.hit_ewma_set then
        t.hit_ewma <- ((1. -. ewma_alpha) *. t.hit_ewma) +. (ewma_alpha *. h)
      else begin
        t.hit_ewma <- h;
        t.hit_ewma_set <- true
      end
  end;
  (* Queue growth: backlog rising for [queue_windows] consecutive ticks. *)
  if s.queue_depth > t.prev_depth +. 1e-9 then
    t.growth_streak <- t.growth_streak + 1
  else t.growth_streak <- 0;
  update t ~now ~detector:"queue_growth"
    ~firing:
      (t.growth_streak >= cfg.queue_windows
      && s.queue_depth >= cfg.queue_depth_min)
    ~value:s.queue_depth ~threshold:cfg.queue_depth_min
    ~message:
      (Printf.sprintf "listen backlog %.1f rising for %d windows"
         s.queue_depth t.growth_streak);
  t.prev_depth <- s.queue_depth;
  (* Staleness spike: windowed mean served age vs trailing mean. *)
  let dsc = s.stale_count -. t.prev.stale_count in
  if dsc >= float_of_int cfg.min_window_obs then begin
    let m = (s.stale_total -. t.prev.stale_total) /. dsc in
    (if warmed && t.stale_ewma_set && t.stale_ewma > 0. then
       update t ~now ~detector:"staleness_spike"
         ~firing:(m >= cfg.stale_factor *. t.stale_ewma) ~value:m
         ~threshold:(cfg.stale_factor *. t.stale_ewma)
         ~message:
           (Printf.sprintf "windowed staleness %.3fs, trailing %.3fs" m
              t.stale_ewma));
    if not (is_active t "staleness_spike") then
      if t.stale_ewma_set then
        t.stale_ewma <- ((1. -. ewma_alpha) *. t.stale_ewma) +. (ewma_alpha *. m)
      else begin
        t.stale_ewma <- m;
        t.stale_ewma_set <- true
      end
  end;
  t.prev <- s;
  t.n_windows <- t.n_windows + 1;
  t.resp_n <- 0;
  t.resp_bad <- 0;
  t.resp_sum <- 0.;
  t.resp_max <- 0.

let incidents t = List.rev t.incidents
let n_incidents t = List.length t.incidents

let incident_to_json i =
  Json.Obj
    [
      ("at_s", Json.Float i.at);
      ("detector", Json.Str i.detector);
      ("value", Json.Float i.value);
      ("threshold", Json.Float i.threshold);
      ("message", Json.Str i.message);
    ]

let to_json t = Json.List (List.map incident_to_json (incidents t))

let pp_incident ppf i =
  Format.fprintf ppf "[%8.3fs] %-20s %s" i.at i.detector i.message
