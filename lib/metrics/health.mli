(** Online health monitor: windowed SLO burn rate plus threshold and
    derivative detectors over the flight-recorder cadence.

    The server's sampler daemon closes a window every [interval] virtual
    seconds: between ticks the run feeds per-request response times in
    via {!observe_response}, and {!tick} reads the cluster's cumulative
    {!signals} and runs the detectors. Detectors are edge-triggered with
    hysteresis — one incident per excursion, recorded at the virtual time
    the condition first held, which is what lets tests correlate
    incidents against an injected {!Sim.Fault} plan. *)

type incident = {
  at : float;  (** virtual time of detection (window close) *)
  detector : string;
      (** ["slo_burn"], ["hit_ratio_collapse"], ["queue_growth"] or
          ["staleness_spike"] *)
  value : float;  (** observed value that tripped the detector *)
  threshold : float;  (** the configured limit it crossed *)
  message : string;  (** one-line human rendering *)
}

type config = {
  slo_target : float option;
      (** response-time target (s); [None] disables the burn detector *)
  slo_objective : float;
      (** fraction of requests that must meet the target, in (0,1) *)
  burn_threshold : float;
      (** fire when the window's miss fraction reaches this multiple of
          the error budget [1 - objective] *)
  hit_drop : float;
      (** fire when the windowed hit ratio falls this far (absolute)
          below its trailing mean *)
  queue_depth_min : float;  (** ignore backlog growth below this depth *)
  queue_windows : int;  (** consecutive growing windows before firing *)
  stale_factor : float;
      (** fire when windowed mean staleness reaches this multiple of its
          trailing mean *)
  min_window_obs : int;
      (** observations a window needs before it is judged at all *)
  warmup_windows : int;
      (** windows observed before baselines are trusted — keeps the cold
          start from reading as an incident *)
}

(** SLO burn off; objective 0.95, burn 2x, hit drop 0.25, queue depth 8
    over 3 windows, staleness 3x, 10 observations, 3 warmup windows. *)
val default_config : config

(** Cumulative cluster signals read at each tick; deltas between
    consecutive ticks give the windowed values. [queue_depth] is
    instantaneous. *)
type signals = {
  hits : float;
  lookups : float;
  queue_depth : float;
  stale_count : float;
  stale_total : float;
}

type t

val create : ?config:config -> interval:float -> unit -> t

(** [observe_response t dt] records one completed request's response time
    into the current window. Record-only: safe on the request path. *)
val observe_response : t -> float -> unit

(** [tick t ~now s] closes the current window and runs the detectors. *)
val tick : t -> now:float -> signals -> unit

(** Incidents in time order. *)
val incidents : t -> incident list

val n_incidents : t -> int
val incident_to_json : incident -> Json.t

(** The metrics-JSON [incidents] section: a list of incident objects
    ({i at_s}, {i detector}, {i value}, {i threshold}, {i message}). *)
val to_json : t -> Json.t

val pp_incident : Format.formatter -> incident -> unit
