type t = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length bounds + 1; last is the overflow bucket *)
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

(* 1-2-5 per decade from 1 µs to 100 s: wide enough for lock waits (often
   exactly 0, landing in the first bucket) up to whole-run stalls. *)
let default_bounds =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.;
  |]

(* Powers of two for queue-depth observations (integers, 0 included in
   the first bucket). *)
let depth_bounds = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]

(* 1-2-5 per decade from 10 ms to 1000 s: content ages at cache hits,
   which live where TTLs do (fractions of a second to minutes) rather
   than at the microsecond scale of [default_bounds]. *)
let age_bounds =
  [|
    0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.;
    500.; 1000.;
  |]

let pow2_bounds ?(max_exp = 20) () =
  if max_exp < 0 then invalid_arg "Histogram.pow2_bounds: max_exp must be >= 0";
  Array.init (max_exp + 2) (fun i ->
      if i = 0 then 0. else Float.of_int (1 lsl (i - 1)))

let create ?(bounds = default_bounds) () =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Histogram.create: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done;
  {
    bounds = Array.copy bounds;
    counts = Array.make (n + 1) 0;
    n = 0;
    sum = 0.;
    vmin = Float.infinity;
    vmax = Float.neg_infinity;
  }

let bucket_of t x =
  let nb = Array.length t.bounds in
  let rec go i = if i >= nb then nb else if x <= t.bounds.(i) then i else go (i + 1) in
  go 0

let add t x =
  let i = bucket_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.vmin then t.vmin <- x;
  if x > t.vmax then t.vmax <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let min_opt t = if t.n = 0 then None else Some t.vmin
let max_opt t = if t.n = 0 then None else Some t.vmax

let quantile_opt t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile_opt: q out of [0,1]";
  if t.n = 0 then None
  else begin
    let target = q *. float_of_int t.n in
    let nb = Array.length t.bounds in
    let rec go i cum =
      if i > nb then Some t.vmax
      else
        let c = t.counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lower = if i = 0 then 0. else t.bounds.(i - 1) in
          let upper = if i < nb then t.bounds.(i) else t.vmax in
          let frac = Float.max 0. (Float.min 1. ((target -. cum) /. float_of_int c)) in
          let v = lower +. (frac *. (upper -. lower)) in
          Some (Float.max t.vmin (Float.min t.vmax v))
        end
        else go (i + 1) cum'
    in
    go 0 0.
  end

let buckets t =
  let nb = Array.length t.bounds in
  List.init (nb + 1) (fun i ->
      ((if i < nb then t.bounds.(i) else Float.infinity), t.counts.(i)))

let merge a b =
  if a.bounds <> b.bounds then invalid_arg "Histogram.merge: bounds differ";
  let m = create ~bounds:a.bounds () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.vmin <- Float.min a.vmin b.vmin;
  m.vmax <- Float.max a.vmax b.vmax;
  m
