(** Fixed-bucket histogram for high-volume observations (lock acquire
    waits, run-queue depths) where storing every sample — as {!Sample}
    does — would cost more than the simulation step being measured.

    Buckets are defined by an increasing array of upper bounds; an
    observation lands in the first bucket whose bound it does not exceed,
    or in the implicit overflow bucket past the last bound. Exact count,
    sum, min and max are kept alongside, so [mean]/[min_opt]/[max_opt]
    are exact and only the quantiles are bucket-interpolated. *)

type t

(** Log-spaced (1-2-5 per decade) seconds from 1 µs to 100 s — the
    default, sized for simulated wait times. *)
val default_bounds : float array

(** Powers of two from 0 to 256, for integer queue-depth observations. *)
val depth_bounds : float array

(** Log-spaced (1-2-5 per decade) seconds from 10 ms to 1000 s — sized
    for content ages at cache hits, which live at the TTL scale rather
    than the wait-time scale of {!default_bounds}. *)
val age_bounds : float array

(** [pow2_bounds ?max_exp ()] is [0, 1, 2, 4, …, 2^max_exp] (default
    [max_exp = 20], topping out at ~1M) — for wide integer counts such
    as per-node directory entries in the shard-imbalance histogram.
    Raises [Invalid_argument] when [max_exp < 0]. *)
val pow2_bounds : ?max_exp:int -> unit -> float array

(** [create ?bounds ()] with [bounds] strictly increasing and non-empty
    (default {!default_bounds}); the array is copied. *)
val create : ?bounds:float array -> unit -> t

val add : t -> float -> unit
val count : t -> int
val total : t -> float

(** [mean t] is exact; [0.] when empty. *)
val mean : t -> float

val min_opt : t -> float option
val max_opt : t -> float option

(** [quantile_opt t q] for [0 <= q <= 1]: linear interpolation within the
    bucket containing the rank, clamped to the observed [min, max];
    [None] when empty. Raises [Invalid_argument] for [q] out of range. *)
val quantile_opt : t -> float -> float option

(** [buckets t] is [(upper_bound, count)] per bucket in order; the last
    pair's bound is [infinity] (the overflow bucket). *)
val buckets : t -> (float * int) list

(** [merge a b] is a fresh histogram combining both; the bucket bounds
    must be identical. *)
val merge : t -> t -> t
