type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let float_opt = function None -> Null | Some v -> Float v

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every float but is noisy; try shorter renderings
   first and keep the first one that parses back exactly. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s9 = Printf.sprintf "%.9g" f in
    if float_of_string s9 = f then s9 else Printf.sprintf "%.17g" f

let rec add_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/infinity literal. *)
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | Str s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_into buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          add_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_into buf v;
  Buffer.contents buf

let write oc v =
  output_string oc (to_string v);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parser — recursive descent over a string. Added for the tools that
   read metrics dumps back (bin/metrics_diff, swala_sim report); the
   simulator itself still only emits. Integral numbers without
   exponent/fraction parse as [Int] so that emit/parse round-trips the
   constructors the emitter chose. *)

exception Parse_error of string

let parse_fail pos msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then parse_fail !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> parse_fail !pos "bad \\u escape"
              in
              pos := !pos + 4;
              (* UTF-8 encode the BMP code point; surrogate pairs are not
                 reassembled — metrics content is ASCII in practice. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> parse_fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let integral = ref true in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          integral := false;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let lit = String.sub s start (!pos - start) in
    if !integral then
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> parse_fail start ("bad number " ^ lit))
    else
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> parse_fail start ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> parse_fail !pos "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> parse_fail !pos "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected %C" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos < n then Error (Printf.sprintf "trailing input at byte %d" !pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* Member lookup helpers for the read-back tools. *)
let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
