type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let float_opt = function None -> Null | Some v -> Float v

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every float but is noisy; try shorter renderings
   first and keep the first one that parses back exactly. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s9 = Printf.sprintf "%.9g" f in
    if float_of_string s9 = f then s9 else Printf.sprintf "%.17g" f

let rec add_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/infinity literal. *)
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | Str s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_into buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          add_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_into buf v;
  Buffer.contents buf

let write oc v =
  output_string oc (to_string v);
  output_char oc '\n'
