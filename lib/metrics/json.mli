(** Minimal JSON emitter shared by the metrics dump ([--metrics-out]),
    the bench harness's [BENCH_perf.json] and the Chrome trace export —
    plus a parser for the tools that read those dumps back
    ([bin/metrics_diff], [swala_sim report]). The simulator's run paths
    only emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [float_opt v] is [Float x] for [Some x] and [Null] otherwise — the
    JSON rendering of a statistic over an empty collection. *)
val float_opt : float option -> t

(** [escape_into buf s] appends [s] to [buf] as a quoted JSON string. *)
val escape_into : Buffer.t -> string -> unit

(** [to_string v] renders compactly (no whitespace). Non-finite floats
    become [null]; finite floats round-trip. *)
val to_string : t -> string

(** [write oc v] is [to_string] plus a trailing newline to [oc]. *)
val write : out_channel -> t -> unit

(** [of_string s] parses one JSON value (surrounding whitespace allowed,
    trailing content is an error). Numbers without fraction or exponent
    parse as [Int], everything else numeric as [Float], so emit/parse
    round-trips the emitter's constructor choices. *)
val of_string : string -> (t, string) result

(** [member k v] is the value of field [k] when [v] is an object having
    it. *)
val member : string -> t -> t option

(** [keys v] is an object's field names in order ([[]] for non-objects). *)
val keys : t -> string list

(** [to_float_opt v] widens [Int]/[Float] to [float]. *)
val to_float_opt : t -> float option
