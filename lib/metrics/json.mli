(** Minimal JSON emitter shared by the metrics dump ([--metrics-out]),
    the bench harness's [BENCH_perf.json] and the Chrome trace export.
    Emission only — the simulator never parses JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [float_opt v] is [Float x] for [Some x] and [Null] otherwise — the
    JSON rendering of a statistic over an empty collection. *)
val float_opt : float option -> t

(** [escape_into buf s] appends [s] to [buf] as a quoted JSON string. *)
val escape_into : Buffer.t -> string -> unit

(** [to_string v] renders compactly (no whitespace). Non-finite floats
    become [null]; finite floats round-trip. *)
val to_string : t -> string

(** [write oc v] is [to_string] plus a trailing newline to [oc]. *)
val write : out_channel -> t -> unit
