(* Named probe registry: the flight recorder's sampling plane. Probes are
   registered once at cluster construction and read on a fixed virtual-time
   cadence by the sampler daemon; every probe records into its own
   bounded Timeline, and because every probe is ticked on every sample,
   all timelines keep identical bucket widths — which is what lets the
   CSV exporter emit one aligned row per bucket. *)

type kind = Gauge | Rate | Wmean

type probe = {
  p_name : string;
  p_kind : kind;
  read : unit -> float * float;
  tl : Timeline.t;
  mutable prev_a : float;
  mutable prev_b : float;
}

type t = {
  interval : float;
  capacity : int;
  mutable probes : probe list;  (* reverse registration order *)
  mutable n_samples : int;
}

let create ?(capacity = 256) ~interval () =
  if not (interval > 0.) then
    invalid_arg "Registry.create: interval must be > 0";
  { interval; capacity; probes = []; n_samples = 0 }

let interval t = t.interval
let n_samples t = t.n_samples

let register t name kind read =
  if List.exists (fun p -> String.equal p.p_name name) t.probes then
    invalid_arg ("Registry: duplicate probe " ^ name);
  t.probes <-
    {
      p_name = name;
      p_kind = kind;
      read;
      tl = Timeline.create ~capacity:t.capacity ~interval:t.interval ();
      prev_a = 0.;
      prev_b = 0.;
    }
    :: t.probes

let gauge t name f = register t name Gauge (fun () -> (f (), 0.))
let counter t name f = register t name Rate (fun () -> (f (), 0.))
let histogram t name f = register t name Wmean f

let sample t ~time =
  List.iter
    (fun p ->
      let a, b = p.read () in
      (match p.p_kind with
      | Gauge -> Timeline.record p.tl ~time a
      | Rate ->
          (* Cumulative reading; the timeline stores the per-window delta
             (a counter reset shows up as a fresh start, not a negative
             spike). Bucket sums stay additive under merging, so the
             rendered rate is always sum / width. *)
          let d = a -. p.prev_a in
          p.prev_a <- a;
          Timeline.record p.tl ~time (if d >= 0. then d else a)
      | Wmean ->
          (* (cumulative count, cumulative total): record the mean of the
             observations that arrived this window, or just advance the
             horizon when there were none. *)
          let dc = a -. p.prev_a and dt = b -. p.prev_b in
          p.prev_a <- a;
          p.prev_b <- b;
          if dc > 0. then Timeline.record p.tl ~time (dt /. dc)
          else Timeline.tick p.tl ~time))
    t.probes;
  t.n_samples <- t.n_samples + 1

(* ------------------------------------------------------------------ *)
(* Export *)

type series = {
  name : string;
  kind : kind;
  width : float;
  points : (float * float) array;  (* (bucket start, value); value nan when empty *)
}

let kind_label = function Gauge -> "gauge" | Rate -> "rate" | Wmean -> "mean"

(* The value a bucket renders as: gauges and windowed means show the
   bucket mean; rates show per-second throughput (delta sum / width). *)
let bucket_value kind width (b : Timeline.bucket) =
  match kind with
  | Gauge | Wmean -> b.Timeline.mean
  | Rate -> if b.Timeline.n = 0 then Float.nan else b.Timeline.total /. width

let series_of_probe p =
  let width = Timeline.width p.tl in
  {
    name = p.p_name;
    kind = p.p_kind;
    width;
    points =
      Array.map
        (fun (b : Timeline.bucket) ->
          (b.Timeline.t0, bucket_value p.p_kind width b))
        (Timeline.buckets p.tl);
  }

let series t = List.rev_map series_of_probe t.probes

let to_json t =
  let series_json p =
    let width = Timeline.width p.tl in
    let bs = Timeline.buckets p.tl in
    Json.Obj
      [
        ("kind", Json.Str (kind_label p.p_kind));
        ("width_s", Json.Float width);
        ( "points",
          Json.List
            (Array.to_list
               (Array.map
                  (fun (b : Timeline.bucket) ->
                    Json.Obj
                      [
                        ("t", Json.Float b.Timeline.t0);
                        ("n", Json.Int b.Timeline.n);
                        ("v", Json.Float (bucket_value p.p_kind width b));
                        ("min", Json.Float b.Timeline.min);
                        ("max", Json.Float b.Timeline.max);
                      ])
                  bs)) );
      ]
  in
  Json.Obj
    [
      ("interval_s", Json.Float t.interval);
      ("samples", Json.Int t.n_samples);
      ( "series",
        Json.Obj
          (List.rev_map (fun p -> (p.p_name, series_json p)) t.probes) );
    ]

(* Wide CSV: one aligned row per bucket (all timelines share widths by
   construction), one column per probe whose name passes [keep]. Empty
   buckets render as empty cells. *)
let to_csv ?(keep = fun _ -> true) t =
  let probes = List.rev (List.filter (fun p -> keep p.p_name) t.probes) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "t";
  List.iter
    (fun p ->
      Buffer.add_char buf ',';
      Buffer.add_string buf p.p_name)
    probes;
  Buffer.add_char buf '\n';
  let rows =
    List.fold_left (fun acc p -> max acc (Timeline.n_buckets p.tl)) 0 probes
  in
  let width =
    match probes with [] -> t.interval | p :: _ -> Timeline.width p.tl
  in
  for i = 0 to rows - 1 do
    Buffer.add_string buf (Printf.sprintf "%g" (float_of_int i *. width));
    List.iter
      (fun p ->
        Buffer.add_char buf ',';
        if i < Timeline.n_buckets p.tl then begin
          let b = Timeline.bucket p.tl i in
          let v = bucket_value p.p_kind (Timeline.width p.tl) b in
          if not (Float.is_nan v) then
            Buffer.add_string buf (Printf.sprintf "%g" v)
        end)
      probes;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
