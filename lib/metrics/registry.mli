(** Named probe registry — the flight recorder's sampling plane.

    Probes (gauges, counter rates, histogram deltas) are registered once
    at cluster construction and read together on a fixed virtual-time
    cadence by the server's sampler daemon. Each probe records into its
    own bounded {!Timeline}; because every probe is ticked on every
    sample, all timelines keep identical bucket widths, so exports stay
    aligned row-for-row however long the run gets. *)

type t

(** [create ?capacity ~interval ()] for probes sampled every [interval]
    virtual seconds; each probe's timeline holds at most [capacity]
    buckets (default 256). *)
val create : ?capacity:int -> interval:float -> unit -> t

val interval : t -> float

(** Number of sampling rounds taken so far. *)
val n_samples : t -> int

(** [gauge t name f] registers an instantaneous value ([f] read at each
    sample). Raises [Invalid_argument] on a duplicate name. *)
val gauge : t -> string -> (unit -> float) -> unit

(** [counter t name f] registers a cumulative counter; the timeline
    stores per-window deltas and renders them as per-second rates. A
    reading below the previous one is treated as a counter reset. *)
val counter : t -> string -> (unit -> float) -> unit

(** [histogram t name f] registers a histogram delta: [f] returns the
    cumulative [(count, total)] pair and the timeline records the mean of
    the observations that arrived in each window (windows with none are
    skipped). *)
val histogram : t -> string -> (unit -> float * float) -> unit

(** [sample t ~time] reads every probe once. Called by the sampler
    daemon; safe to call from anywhere that may read the probes. *)
val sample : t -> time:float -> unit

type kind = Gauge | Rate | Wmean

(** A rendered probe: [(bucket start, value)] points where the value is a
    bucket mean (gauges, histogram deltas) or a per-second rate
    (counters), [nan] for empty buckets. *)
type series = {
  name : string;
  kind : kind;
  width : float;
  points : (float * float) array;
}

(** All probes in registration order. *)
val series : t -> series list

(** The metrics-JSON [timelines] section: interval, sample count and one
    series object per probe ({i kind}, {i width_s}, {i points} with
    t/n/v/min/max; empty-bucket statistics serialize as [null]). *)
val to_json : t -> Json.t

(** [to_csv ?keep t] renders probes passing [keep] (default all) as a
    wide CSV: header [t,<name>,...], one row per bucket, empty cells for
    empty buckets. *)
val to_csv : ?keep:(string -> bool) -> t -> string
