type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
  mutable total : float;
}

let create () = { data = [||]; size = 0; sorted = true; total = 0. }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndata = Array.make ncap 0. in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false;
  t.total <- t.total +. x

let count t = t.size
let total t = t.total
let mean t = if t.size = 0 then 0. else t.total /. float_of_int t.size

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.data 0 t.size in
    Array.sort Float.compare view;
    Array.blit view 0 t.data 0 t.size;
    t.sorted <- true
  end

let quantile t q =
  if t.size = 0 then invalid_arg "Sample.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Sample.quantile: q out of [0,1]";
  ensure_sorted t;
  let pos = q *. float_of_int (t.size - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (t.size - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (t.data.(lo) *. (1. -. frac)) +. (t.data.(hi) *. frac)

let median t = quantile t 0.5

let quantile_opt t q =
  if q < 0. || q > 1. then invalid_arg "Sample.quantile_opt: q out of [0,1]";
  if t.size = 0 then None else Some (quantile t q)

let median_opt t = quantile_opt t 0.5

let min t =
  if t.size = 0 then invalid_arg "Sample.min: empty";
  ensure_sorted t;
  t.data.(0)

let max t =
  if t.size = 0 then invalid_arg "Sample.max: empty";
  ensure_sorted t;
  t.data.(t.size - 1)

let min_opt t = if t.size = 0 then None else Some (min t)
let max_opt t = if t.size = 0 then None else Some (max t)

let values t =
  ensure_sorted t;
  Array.sub t.data 0 t.size
