(** Exact sample collector: stores every observation for quantile queries.
    Experiments here observe at most a few hundred thousand response times,
    so exact quantiles are affordable and simpler than sketches. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val total : t -> float

(** [quantile t q] with [0 <= q <= 1]; linear interpolation between order
    statistics. Raises [Invalid_argument] when empty or [q] out of range. *)
val quantile : t -> float -> float

val median : t -> float
val min : t -> float
val max : t -> float

(** Total variants returning [None] on an empty sample instead of
    raising — for report paths that must render something ("-", JSON
    null) when a run produced no observations. [quantile_opt] still
    raises on [q] out of range. *)

val quantile_opt : t -> float -> float option
val median_opt : t -> float option
val min_opt : t -> float option
val max_opt : t -> float option

(** [values t] is a sorted copy of the observations. *)
val values : t -> float array
