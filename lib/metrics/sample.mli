(** Exact sample collector: stores every observation for quantile queries.
    Experiments here observe at most a few hundred thousand response times,
    so exact quantiles are affordable and simpler than sketches. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val total : t -> float

(** [quantile t q] with [0 <= q <= 1]; linear interpolation between order
    statistics. Raises [Invalid_argument] when empty or [q] out of range. *)
val quantile : t -> float -> float

val median : t -> float
val min : t -> float
val max : t -> float

(** [values t] is a sorted copy of the observations. *)
val values : t -> float array
