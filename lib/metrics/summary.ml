type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; total = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Summary.min: empty";
  t.min_v

let max t =
  if t.n = 0 then invalid_arg "Summary.max: empty";
  t.max_v

let copy t =
  { n = t.n; mean = t.mean; m2 = t.m2; total = t.total; min_v = t.min_v; max_v = t.max_v }

(* Chan et al. parallel-update formula. *)
let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    {
      n;
      mean;
      m2;
      total = a.total +. b.total;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }
  end

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
      (stddev t) t.min_v t.max_v
