(** Streaming summary statistics (Welford's algorithm): numerically stable
    mean/variance plus min/max/total, mergeable across nodes. *)

type t

val create : unit -> t

(** [add t x] folds one observation in. *)
val add : t -> float -> unit

val count : t -> int
val total : t -> float

(** [mean t] is [0.] when empty. *)
val mean : t -> float

(** [variance t] is the unbiased sample variance ([0.] for n < 2). *)
val variance : t -> float

val stddev : t -> float

(** [min t] / [max t] raise [Invalid_argument] when empty. *)
val min : t -> float

val max : t -> float

(** [merge a b] returns a fresh summary equivalent to observing both
    streams. *)
val merge : t -> t -> t

val copy : t -> t

(** [pp] prints ["n=… mean=… sd=… min=… max=…"]. *)
val pp : Format.formatter -> t -> unit
