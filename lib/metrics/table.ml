type align = Left | Right

type t = {
  title : string;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ~title ~columns =
  let headers = Array.of_list (List.map fst columns) in
  let aligns = Array.of_list (List.map snd columns) in
  { title; headers; aligns; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let fmt_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let fmt_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (100. *. x)
let fmt_i n = string_of_int n

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let width = Array.make ncols 0 in
  let measure row =
    Array.iteri
      (fun i cell -> if String.length cell > width.(i) then width.(i) <- String.length cell)
      row
  in
  measure t.headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = width.(i) in
    let n = w - String.length cell in
    match t.aligns.(i) with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let emit_row row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 width + (2 * (ncols - 1))
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (Stdlib.max total_width (String.length t.title)) '-');
  Buffer.add_char buf '\n';
  emit_row t.headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  let emit row =
    Buffer.add_string buf
      (String.concat "," (List.map csv_field (Array.to_list row)));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf
