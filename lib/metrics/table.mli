(** Aligned plain-text tables, used by the bench harness to print each paper
    table/figure in the same row/column layout the paper reports. *)

type align = Left | Right

type t

(** [create ~title ~columns] where each column is (header, alignment). *)
val create : title:string -> columns:(string * align) list -> t

(** [add_row t cells] appends a row; must match the column count. *)
val add_row : t -> string list -> unit

(** Cell formatting helpers. *)
val fmt_f : ?decimals:int -> float -> string

val fmt_pct : ?decimals:int -> float -> string
val fmt_i : int -> string

(** [render t] produces the table as a string (title, rule, header, rows). *)
val render : t -> string

(** [to_csv t] renders header + rows as RFC-4180-ish CSV (quotes doubled,
    fields with commas/quotes/newlines quoted). The title is not
    included. *)
val to_csv : t -> string

(** [print t] renders to stdout followed by a blank line. *)
val print : t -> unit
