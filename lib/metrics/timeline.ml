(* Fixed-capacity ring of time buckets with power-of-two merging: when a
   sample lands past the last bucket, adjacent bucket pairs are merged
   (doubling the bucket width) until it fits. Memory is therefore bounded
   by [capacity] whatever the run length, at the cost of resolution that
   halves each time the recorded horizon doubles — the classic
   flight-recorder tradeoff. *)

type t = {
  capacity : int;
  mutable width : float;  (* current bucket width, seconds *)
  mutable used : int;  (* buckets touched or skipped so far *)
  count : int array;  (* samples per bucket *)
  sum : float array;
  vmin : float array;
  vmax : float array;
  vlast : float array;  (* value of the latest sample in the bucket *)
}

let create ?(capacity = 256) ~interval () =
  if capacity < 2 then invalid_arg "Timeline.create: capacity must be >= 2";
  if not (interval > 0.) then
    invalid_arg "Timeline.create: interval must be > 0";
  {
    capacity;
    width = interval;
    used = 0;
    count = Array.make capacity 0;
    sum = Array.make capacity 0.;
    vmin = Array.make capacity 0.;
    vmax = Array.make capacity 0.;
    vlast = Array.make capacity 0.;
  }

let capacity t = t.capacity
let width t = t.width
let n_buckets t = t.used

(* Merge bucket pairs (2i, 2i+1) -> i and double the width. The later
   bucket's last-value wins when it holds samples. *)
let halve t =
  let half = (t.capacity + 1) / 2 in
  for i = 0 to half - 1 do
    let a = 2 * i and b = (2 * i) + 1 in
    let cb = if b < t.capacity then t.count.(b) else 0 in
    let ca = t.count.(a) in
    let c = ca + cb in
    t.sum.(i) <- (t.sum.(a) +. if b < t.capacity then t.sum.(b) else 0.);
    if c > 0 then begin
      if ca > 0 && cb > 0 then begin
        t.vmin.(i) <- Float.min t.vmin.(a) t.vmin.(b);
        t.vmax.(i) <- Float.max t.vmax.(a) t.vmax.(b);
        t.vlast.(i) <- t.vlast.(b)
      end
      else if ca > 0 then begin
        t.vmin.(i) <- t.vmin.(a);
        t.vmax.(i) <- t.vmax.(a);
        t.vlast.(i) <- t.vlast.(a)
      end
      else begin
        t.vmin.(i) <- t.vmin.(b);
        t.vmax.(i) <- t.vmax.(b);
        t.vlast.(i) <- t.vlast.(b)
      end
    end;
    t.count.(i) <- c
  done;
  for i = half to t.capacity - 1 do
    t.count.(i) <- 0;
    t.sum.(i) <- 0.
  done;
  t.width <- t.width *. 2.;
  t.used <- (t.used + 1) / 2

let index_for t time =
  let rec fit () =
    let idx = int_of_float (time /. t.width) in
    if idx >= t.capacity then begin
      halve t;
      fit ()
    end
    else idx
  in
  fit ()

let tick t ~time =
  if time < 0. then invalid_arg "Timeline.tick: negative time";
  let idx = index_for t time in
  if idx >= t.used then t.used <- idx + 1

let record t ~time v =
  if time < 0. then invalid_arg "Timeline.record: negative time";
  let idx = index_for t time in
  if idx >= t.used then t.used <- idx + 1;
  let c = t.count.(idx) in
  t.sum.(idx) <- t.sum.(idx) +. v;
  if c = 0 then begin
    t.vmin.(idx) <- v;
    t.vmax.(idx) <- v
  end
  else begin
    if v < t.vmin.(idx) then t.vmin.(idx) <- v;
    if v > t.vmax.(idx) then t.vmax.(idx) <- v
  end;
  t.vlast.(idx) <- v;
  t.count.(idx) <- c + 1

type bucket = {
  t0 : float;
  n : int;
  total : float;
  mean : float;  (* nan when the bucket is empty *)
  min : float;  (* nan when the bucket is empty *)
  max : float;  (* nan when the bucket is empty *)
  last : float;  (* nan when the bucket is empty *)
}

let bucket t i =
  if i < 0 || i >= t.used then invalid_arg "Timeline.bucket: out of range";
  let n = t.count.(i) in
  if n = 0 then
    {
      t0 = float_of_int i *. t.width;
      n = 0;
      total = 0.;
      mean = Float.nan;
      min = Float.nan;
      max = Float.nan;
      last = Float.nan;
    }
  else
    {
      t0 = float_of_int i *. t.width;
      n;
      total = t.sum.(i);
      mean = t.sum.(i) /. float_of_int n;
      min = t.vmin.(i);
      max = t.vmax.(i);
      last = t.vlast.(i);
    }

let buckets t = Array.init t.used (bucket t)
let total_count t = Array.fold_left ( + ) 0 t.count

let total_sum t =
  let s = ref 0. in
  Array.iter (fun x -> s := !s +. x) t.sum;
  !s
