(** Fixed-capacity flight-recorder timeline: samples bucketed over virtual
    time into a bounded array, with adjacent-bucket merging (doubling the
    bucket width) whenever a sample lands past the end. Memory is bounded
    by [capacity] at any run length; resolution halves each time the
    recorded horizon doubles. Unlike {!Timeseries} (exact windows, grows
    with the run) this is safe to leave on for arbitrarily long runs. *)

type t

(** [create ?capacity ~interval ()] starts with bucket width [interval]
    (seconds, [> 0]) and at most [capacity] buckets (default 256,
    [>= 2]). *)
val create : ?capacity:int -> interval:float -> unit -> t

val capacity : t -> int

(** [width t] is the current bucket width; [interval * 2^k] after [k]
    merges. *)
val width : t -> float

(** [n_buckets t] is the number of buckets spanned so far ([<= capacity]). *)
val n_buckets : t -> int

(** [record t ~time v] folds one sample in, merging first if [time] falls
    past the last bucket. Raises [Invalid_argument] on negative time. *)
val record : t -> time:float -> float -> unit

(** [tick t ~time] advances the recorded horizon to cover [time] (merging
    as needed) without recording a value — so parallel timelines sampled
    on the same cadence keep identical widths even when one has nothing
    to record in a window. *)
val tick : t -> time:float -> unit

(** One merged bucket. Statistics are [nan] when the bucket holds no
    samples (serialized as [null] by {!Json}). *)
type bucket = {
  t0 : float;  (** bucket start time (seconds) *)
  n : int;  (** samples in the bucket *)
  total : float;  (** sum of sample values ([0.] when empty) *)
  mean : float;
  min : float;
  max : float;
  last : float;  (** value of the latest sample in the bucket *)
}

(** [bucket t i] for [0 <= i < n_buckets t]. *)
val bucket : t -> int -> bucket

val buckets : t -> bucket array

(** Totals across all buckets: sample count and value sum. Merging never
    changes either — the conservation law the property tests pin down. *)
val total_count : t -> int

val total_sum : t -> float
