type t = {
  window : float;
  mutable cells : Summary.t array;
  mutable used : int;
  all : Summary.t;
}

let create ~window =
  if window <= 0. then invalid_arg "Timeseries.create: window must be > 0";
  { window; cells = [||]; used = 0; all = Summary.create () }

let window t = t.window

let ensure t idx =
  if idx >= Array.length t.cells then begin
    let ncap = Stdlib.max 16 (Stdlib.max (idx + 1) (2 * Array.length t.cells)) in
    let ncells = Array.init ncap (fun _ -> Summary.create ()) in
    Array.blit t.cells 0 ncells 0 (Array.length t.cells);
    t.cells <- ncells
  end;
  if idx >= t.used then t.used <- idx + 1

let add t ~time value =
  if time < 0. then invalid_arg "Timeseries.add: negative time";
  let idx = int_of_float (time /. t.window) in
  ensure t idx;
  Summary.add t.cells.(idx) value;
  Summary.add t.all value

let buckets t = Array.sub t.cells 0 t.used
let n_buckets t = t.used

let bucket_means t =
  Array.map
    (fun s -> if Summary.count s = 0 then Float.nan else Summary.mean s)
    (buckets t)

let total t = Summary.copy t.all
