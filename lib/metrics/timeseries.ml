type t = {
  window : float;
  mutable cells : Summary.t array;
  mutable used : int;
  all : Summary.t;
}

let create ~window =
  if window <= 0. then invalid_arg "Timeseries.create: window must be > 0";
  { window; cells = [||]; used = 0; all = Summary.create () }

let window t = t.window

let ensure t idx =
  if idx >= Array.length t.cells then begin
    let ncap = Stdlib.max 16 (Stdlib.max (idx + 1) (2 * Array.length t.cells)) in
    let ncells = Array.init ncap (fun _ -> Summary.create ()) in
    Array.blit t.cells 0 ncells 0 (Array.length t.cells);
    t.cells <- ncells
  end;
  if idx >= t.used then t.used <- idx + 1

let add t ~time value =
  if time < 0. then invalid_arg "Timeseries.add: negative time";
  let idx = int_of_float (time /. t.window) in
  ensure t idx;
  Summary.add t.cells.(idx) value;
  Summary.add t.all value

let buckets t = Array.sub t.cells 0 t.used
let n_buckets t = t.used

let bucket_means t =
  Array.map
    (fun s -> if Summary.count s = 0 then Float.nan else Summary.mean s)
    (buckets t)

let total t = Summary.copy t.all

(* Empty windows carry [nan] in-process (bucket_means) and must land as
   [null] in exports — the Json emitter maps non-finite floats to null,
   which test_metrics pins down for timeline exports. *)
let to_json t =
  let bs = buckets t in
  Json.Obj
    [
      ("window_s", Json.Float t.window);
      ("n", Json.Int t.used);
      ( "means",
        Json.List
          (Array.to_list (Array.map (fun m -> Json.Float m) (bucket_means t)))
      );
      ( "counts",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Int (Summary.count s)) bs))
      );
    ]

let rate_of_counter ~window samples =
  if not (window > 0.) then
    invalid_arg "Timeseries.rate_of_counter: window must be > 0";
  let n = Array.length samples in
  let out = Array.make n Float.nan in
  let prev = ref Float.nan and prev_idx = ref 0 in
  for i = 0 to n - 1 do
    let v = samples.(i) in
    if not (Float.is_nan v) then begin
      if not (Float.is_nan !prev) then begin
        let d = v -. !prev in
        let span = float_of_int (i - !prev_idx) *. window in
        (* A reading below its predecessor is a counter reset: the delta
           since the reset is all we can attribute to the gap. *)
        out.(i) <- (if d >= 0. then d else v) /. span
      end;
      prev := v;
      prev_idx := i
    end
  done;
  out
