(** Windowed time series: observations bucketed by timestamp, for studying
    transients (e.g. the response-time drop as a cold cache warms up). *)

type t

(** [create ~window] buckets observations into consecutive windows of
    [window > 0] seconds starting at time 0. *)
val create : window:float -> t

(** [add t ~time value] records [value] at [time >= 0]. *)
val add : t -> time:float -> float -> unit

val window : t -> float

(** [buckets t] returns one summary per window from 0 to the latest
    observation (empty windows yield empty summaries). *)
val buckets : t -> Summary.t array

(** [bucket_means t] is the per-window mean ([nan] for empty windows). *)
val bucket_means : t -> float array

(** [n_buckets t] is the number of windows spanned so far. *)
val n_buckets : t -> int

(** [total t] is a summary over all observations. *)
val total : t -> Summary.t

(** [to_json t] renders the series as an object with {i window_s},
    {i n}, per-window {i means} and {i counts}. Empty windows are [nan]
    in {!bucket_means} and serialize as [null] (the {!Json} emitter maps
    non-finite floats to null). *)
val to_json : t -> Json.t

(** [rate_of_counter ~window samples] converts per-window {e cumulative}
    counter readings (e.g. [bucket_means] over a series fed one counter
    reading per window, [nan] for windows with no reading) into
    per-second rates: each defined reading yields the delta from the
    previous defined reading divided by the elapsed windows. The first
    defined reading and every empty window map to [nan]; a reading below
    its predecessor is treated as a counter reset. *)
val rate_of_counter : window:float -> float array -> float array
