(** Windowed time series: observations bucketed by timestamp, for studying
    transients (e.g. the response-time drop as a cold cache warms up). *)

type t

(** [create ~window] buckets observations into consecutive windows of
    [window > 0] seconds starting at time 0. *)
val create : window:float -> t

(** [add t ~time value] records [value] at [time >= 0]. *)
val add : t -> time:float -> float -> unit

val window : t -> float

(** [buckets t] returns one summary per window from 0 to the latest
    observation (empty windows yield empty summaries). *)
val buckets : t -> Summary.t array

(** [bucket_means t] is the per-window mean ([nan] for empty windows). *)
val bucket_means : t -> float array

(** [n_buckets t] is the number of windows spanned so far. *)
val n_buckets : t -> int

(** [total t] is a summary over all observations. *)
val total : t -> Summary.t
