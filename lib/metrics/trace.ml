type span = {
  id : int;
  parent : int;
  root : int;
  track : int;
  name : string;
  attrs : (string * string) list;
  t0 : float;
  mutable t1 : float;  (* < t0 while the span is open *)
  mutable child_time : float;  (* summed durations of sync children *)
  async : bool;
}

type event =
  | Begin of span
  | End of span
  | Instant of { itrack : int; iname : string; iattrs : (string * string) list; it : float }

type t = {
  clock : unit -> float;
  mutable next_id : int;
  spans : (int, span) Hashtbl.t;
  mutable events : event list;  (* newest first; clock order when reversed *)
  mutable open_spans : int;
  track_names : (int, string) Hashtbl.t;
}

let none = 0

let create ~clock () =
  {
    clock;
    next_id = 1;
    spans = Hashtbl.create 1024;
    events = [];
    open_spans = 0;
    track_names = Hashtbl.create 8;
  }

let set_track_name t track name = Hashtbl.replace t.track_names track name

let begin_span t ?(parent = none) ?(attrs = []) ?(async = false) ~track ~name () =
  let id = t.next_id in
  t.next_id <- id + 1;
  let parent, root =
    if parent = none then (none, id)
    else
      match Hashtbl.find_opt t.spans parent with
      | Some p -> (parent, p.root)
      | None -> (none, id)  (* dangling parent: start a fresh tree *)
  in
  let t0 = t.clock () in
  let s = { id; parent; root; track; name; attrs; t0; t1 = t0 -. 1.; child_time = 0.; async } in
  Hashtbl.replace t.spans id s;
  t.events <- Begin s :: t.events;
  t.open_spans <- t.open_spans + 1;
  id

let end_span t id =
  match Hashtbl.find_opt t.spans id with
  | None -> invalid_arg "Trace.end_span: unknown span"
  | Some s ->
      if s.t1 >= s.t0 then invalid_arg "Trace.end_span: span already ended";
      s.t1 <- t.clock ();
      t.open_spans <- t.open_spans - 1;
      (* Asynchronous continuations (work on another node, caused by this
         request but overlapping its critical path) do not consume their
         parent's time, so they stay out of the self-time accounting. *)
      if (not s.async) && s.parent <> none then begin
        match Hashtbl.find_opt t.spans s.parent with
        | Some p -> p.child_time <- p.child_time +. (s.t1 -. s.t0)
        | None -> ()
      end;
      t.events <- End s :: t.events

let span t ?parent ?attrs ?async ~track ~name f =
  let id = begin_span t ?parent ?attrs ?async ~track ~name () in
  match f () with
  | v ->
      end_span t id;
      v
  | exception e ->
      end_span t id;
      raise e

let instant t ?(attrs = []) ~track ~name () =
  t.events <-
    Instant { itrack = track; iname = name; iattrs = attrs; it = t.clock () }
    :: t.events

let n_spans t = Hashtbl.length t.spans
let open_spans t = t.open_spans
let find t id = Hashtbl.find_opt t.spans id

let spans t =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.spans [] in
  List.sort (fun a b -> Int.compare a.id b.id) all

let instants t =
  List.rev
    (List.filter_map
       (function Instant { itrack; iname; _ } -> Some (itrack, iname) | _ -> None)
       t.events)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (Perfetto / chrome://tracing).

   Requests interleave freely on a node's worker threads, so duration
   events (ph B/E), which require strict per-thread nesting, cannot
   represent them. Async nestable events (ph b/e) nest per (pid, cat, id)
   instead; keying id by the tree's root span puts each request's whole
   tree on one timeline row per node it touches. Events were appended in
   call order under a monotone clock, so the reversed list is already
   time-sorted. *)

let ts_us buf time =
  Buffer.add_string buf (Printf.sprintf "%.3f" (time *. 1e6))

let add_args buf (s : span) =
  Buffer.add_string buf ",\"args\":{\"span\":";
  Buffer.add_string buf (string_of_int s.id);
  Buffer.add_string buf ",\"parent\":";
  Buffer.add_string buf (string_of_int s.parent);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      Json.escape_into buf k;
      Buffer.add_char buf ':';
      Json.escape_into buf v)
    s.attrs;
  Buffer.add_char buf '}'

let add_event buf first ev =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  (match ev with
  | Begin s ->
      Buffer.add_string buf "{\"cat\":\"request\",\"ph\":\"b\",\"id\":";
      Json.escape_into buf (Printf.sprintf "0x%x" s.root);
      Buffer.add_string buf ",\"name\":";
      Json.escape_into buf s.name;
      Buffer.add_string buf ",\"pid\":";
      Buffer.add_string buf (string_of_int s.track);
      Buffer.add_string buf ",\"tid\":";
      Buffer.add_string buf (string_of_int s.track);
      Buffer.add_string buf ",\"ts\":";
      ts_us buf s.t0;
      add_args buf s;
      Buffer.add_char buf '}'
  | End s ->
      Buffer.add_string buf "{\"cat\":\"request\",\"ph\":\"e\",\"id\":";
      Json.escape_into buf (Printf.sprintf "0x%x" s.root);
      Buffer.add_string buf ",\"name\":";
      Json.escape_into buf s.name;
      Buffer.add_string buf ",\"pid\":";
      Buffer.add_string buf (string_of_int s.track);
      Buffer.add_string buf ",\"tid\":";
      Buffer.add_string buf (string_of_int s.track);
      Buffer.add_string buf ",\"ts\":";
      ts_us buf (if s.t1 >= s.t0 then s.t1 else s.t0);
      Buffer.add_char buf '}'
  | Instant { itrack; iname; iattrs; it } ->
      Buffer.add_string buf "{\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"name\":";
      Json.escape_into buf iname;
      Buffer.add_string buf ",\"pid\":";
      Buffer.add_string buf (string_of_int itrack);
      Buffer.add_string buf ",\"tid\":";
      Buffer.add_string buf (string_of_int itrack);
      Buffer.add_string buf ",\"ts\":";
      ts_us buf it;
      if iattrs <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Json.escape_into buf k;
            Buffer.add_char buf ':';
            Json.escape_into buf v)
          iattrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')

(* Telemetry timelines ride along as Perfetto counter tracks (ph "C"),
   one per (pid, name): the flight recorder's sampled signals land on the
   same timeline view as the request spans. Empty buckets (nan) are
   skipped — a counter track just holds its last value across gaps. *)
let add_counter buf first (pid, cname, points) =
  Array.iter
    (fun (time, v) ->
      if Float.is_finite v then begin
        if not !first then Buffer.add_string buf ",\n";
        first := false;
        Buffer.add_string buf "{\"cat\":\"telemetry\",\"ph\":\"C\",\"name\":";
        Json.escape_into buf cname;
        Buffer.add_string buf ",\"pid\":";
        Buffer.add_string buf (string_of_int pid);
        Buffer.add_string buf ",\"tid\":";
        Buffer.add_string buf (string_of_int pid);
        Buffer.add_string buf ",\"ts\":";
        ts_us buf time;
        Buffer.add_string buf ",\"args\":{\"value\":";
        Buffer.add_string buf (Json.to_string (Json.Float v));
        Buffer.add_string buf "}}"
      end)
    points

let to_chrome_json ?(counters = []) t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  (* One named track (pid) per node, plus the client track. *)
  let tracks =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.track_names [])
  in
  List.iter
    (fun (track, name) ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
      Buffer.add_string buf (string_of_int track);
      Buffer.add_string buf ",\"args\":{\"name\":";
      Json.escape_into buf name;
      Buffer.add_string buf "}}")
    tracks;
  List.iter (add_counter buf first) counters;
  List.iter (add_event buf first) (List.rev t.events);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Latency breakdown.

   Each closed span's self time is its duration minus the summed
   durations of its synchronous children, so over one request tree the
   self times partition the root's duration exactly: summed phase totals
   equal summed root durations, and mean contributions per request sum to
   the mean response time. Async spans (work on other nodes) are excluded
   from both sides of that identity. *)

type phase = {
  phase : string;
  requests : int;  (* trees in which the phase occurs *)
  occurrences : int;  (* spans with this name across all trees *)
  total : float;  (* summed self time, seconds *)
  mean : float;  (* total / number of roots: mean contribution per request *)
  p50 : float;  (* quantiles of per-tree self time, over containing trees *)
  p99 : float;
  share : float;  (* total / summed root durations *)
}

type breakdown = { phases : phase list; n_roots : int; total_time : float }

let breakdown t ~root =
  let roots = Hashtbl.create 256 in
  let total_time = ref 0. in
  Hashtbl.iter
    (fun id (s : span) ->
      if s.parent = none && String.equal s.name root && s.t1 >= s.t0 then begin
        Hashtbl.replace roots id ();
        total_time := !total_time +. (s.t1 -. s.t0)
      end)
    t.spans;
  let n_roots = Hashtbl.length roots in
  (* (phase, tree) -> self-time sum, and phase -> occurrence count. *)
  let per_tree : (string * int, float) Hashtbl.t = Hashtbl.create 256 in
  let occur : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (s : span) ->
      if (not s.async) && s.t1 >= s.t0 && Hashtbl.mem roots s.root then begin
        let self = Float.max 0. (s.t1 -. s.t0 -. s.child_time) in
        let key = (s.name, s.root) in
        Hashtbl.replace per_tree key
          (Option.value (Hashtbl.find_opt per_tree key) ~default:0. +. self);
        Hashtbl.replace occur s.name
          (Option.value (Hashtbl.find_opt occur s.name) ~default:0 + 1)
      end)
    t.spans;
  let by_phase : (string, Sample.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (name, _) self ->
      let sample =
        match Hashtbl.find_opt by_phase name with
        | Some s -> s
        | None ->
            let s = Sample.create () in
            Hashtbl.replace by_phase name s;
            s
      in
      Sample.add sample self)
    per_tree;
  let phases =
    Hashtbl.fold
      (fun name sample acc ->
        let total = Sample.total sample in
        {
          phase = name;
          requests = Sample.count sample;
          occurrences = Option.value (Hashtbl.find_opt occur name) ~default:0;
          total;
          mean = (if n_roots = 0 then 0. else total /. float_of_int n_roots);
          p50 = Option.value (Sample.quantile_opt sample 0.5) ~default:0.;
          p99 = Option.value (Sample.quantile_opt sample 0.99) ~default:0.;
          share = (if !total_time > 0. then total /. !total_time else 0.);
        }
        :: acc)
      by_phase []
  in
  let phases =
    List.sort (fun a b -> Float.compare b.total a.total) phases
  in
  { phases; n_roots; total_time = !total_time }
