(** Causal request tracing over the simulated cluster's virtual clock.

    A trace is a set of spans — named intervals with a parent link —
    grouped into trees. Causality crosses process boundaries by carrying
    the parent span id in messages (mailbox envelopes, fetch requests,
    anti-entropy digests), so a single client request yields one tree
    spanning router, node, directory lookup, remote fetch, CGI execution
    and response.

    Spans on the issuing request's critical path are {e synchronous}:
    their durations are charged to the parent's child time, so self time
    (duration minus child time) partitions each tree's root duration
    exactly. Work caused by a request but running concurrently on another
    process — serving a remote fetch, applying a broadcast, answering an
    anti-entropy digest — is opened with [~async:true]: it keeps its
    causal link for the timeline view but stays out of the latency
    accounting, which keeps the breakdown's per-phase totals summing to
    the end-to-end response time.

    All timestamps come from the injected [clock], which must be safe to
    call from any context (in the simulator: [Engine.current_time], not
    [Engine.now]). *)

type span = private {
  id : int;
  parent : int;  (** 0 when the span is a tree root *)
  root : int;  (** id of the tree's root span (own id for roots) *)
  track : int;  (** timeline row: node id, or the client track *)
  name : string;
  attrs : (string * string) list;
  t0 : float;
  mutable t1 : float;  (** end time; [t1 < t0] while the span is open *)
  mutable child_time : float;  (** summed durations of closed sync children *)
  async : bool;
}

type t

(** Span id meaning "no span" — the zero of parent links. *)
val none : int

val create : clock:(unit -> float) -> unit -> t

(** [set_track_name t track name] labels a timeline row in the Chrome
    export (one per node plus one for clients). *)
val set_track_name : t -> int -> string -> unit

(** [begin_span t ?parent ?attrs ?async ~track ~name ()] opens a span and
    returns its id (never {!none}). A missing, {!none} or dangling
    [parent] starts a new tree. *)
val begin_span :
  t ->
  ?parent:int ->
  ?attrs:(string * string) list ->
  ?async:bool ->
  track:int ->
  name:string ->
  unit ->
  int

(** Closes the span; charges its duration to the parent's child time
    unless async. Raises [Invalid_argument] if unknown or already
    closed. *)
val end_span : t -> int -> unit

(** [span t ... f] brackets [f ()] with begin/end, closing the span on
    exception too. *)
val span :
  t ->
  ?parent:int ->
  ?attrs:(string * string) list ->
  ?async:bool ->
  track:int ->
  name:string ->
  (unit -> 'a) ->
  'a

(** A point event (fault injection, crash, heal, router retry) on a
    track, rendered as a process-scoped instant in the Chrome export. *)
val instant :
  t -> ?attrs:(string * string) list -> track:int -> name:string -> unit -> unit

val n_spans : t -> int

(** Number of spans begun but not yet ended. *)
val open_spans : t -> int

val find : t -> int -> span option

(** All spans in id (creation) order. *)
val spans : t -> span list

(** All instants in time order as [(track, name)]. *)
val instants : t -> (int * string) list

(** Chrome trace-event JSON (loads in Perfetto and chrome://tracing).
    Spans become async nestable events (ph ["b"]/["e"], id keyed by the
    tree root) — duration events would require strict per-thread nesting,
    which concurrent request threads violate. Instants become ph ["i"],
    and track names process-name metadata. Timestamps are microseconds of
    virtual time.

    [counters], when given, are telemetry timelines rendered as Perfetto
    counter tracks (ph ["C"]) — [(track, name, points)] with points as
    [(time, value)]; non-finite values (empty buckets) are skipped. This
    puts the flight recorder's sampled signals on the same timeline view
    as the spans. Omitting it leaves the export byte-identical to the
    span-only form. *)
val to_chrome_json :
  ?counters:(int * string * (float * float) array) list -> t -> string

type phase = {
  phase : string;  (** span name *)
  requests : int;  (** trees in which the phase occurs *)
  occurrences : int;  (** spans with this name across those trees *)
  total : float;  (** summed self time, seconds *)
  mean : float;  (** [total /. n_roots] — mean contribution per request *)
  p50 : float;  (** quantiles of per-tree self time, over containing trees *)
  p99 : float;
  share : float;  (** [total /. total_time] *)
}

type breakdown = { phases : phase list; n_roots : int; total_time : float }

(** [breakdown t ~root] aggregates self times by span name over all
    closed trees whose root span is named [root]. Phases are sorted by
    descending total. The phase totals sum to [total_time] (the summed
    root durations) up to float rounding, and the phase means sum to the
    mean response time — async spans are excluded from both sides. *)
val breakdown : t -> root:string -> breakdown
