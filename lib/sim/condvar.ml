type t = { queue : unit Engine.resumer Queue.t }

let create () = { queue = Queue.create () }

let wait t m =
  if not (Mutex.locked m) then invalid_arg "Condvar.wait: mutex not held";
  Engine.suspend (fun resume ->
      Queue.push resume t.queue;
      Mutex.unlock m);
  Mutex.lock m

let signal t =
  match Queue.take_opt t.queue with
  | Some r -> Engine.resume r ()
  | None -> ()

let broadcast t =
  (* Drain into a list first: a woken process could conceivably re-wait, and
     it must not be woken again by this same broadcast. *)
  let woken = ref [] in
  Queue.iter (fun r -> woken := r :: !woken) t.queue;
  Queue.clear t.queue;
  List.iter (fun r -> Engine.resume r ()) (List.rev !woken)

let waiters t = Queue.length t.queue
