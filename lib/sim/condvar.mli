(** Condition variable for simulated processes, paired with {!Mutex}. *)

type t

(** [create ()] is a fresh condition with no waiters. *)
val create : unit -> t

(** [wait c m] atomically releases [m] and blocks until signalled, then
    reacquires [m] before returning. [m] must be held. *)
val wait : t -> Mutex.t -> unit

(** [signal c] wakes one waiter (FIFO), if any. *)
val signal : t -> unit

(** [broadcast c] wakes every current waiter. *)
val broadcast : t -> unit

(** [waiters c] is the number of processes currently blocked in {!wait}. *)
val waiters : t -> int
