(* [remaining] is a flat [float ref] cell, not a [mutable float] field:
   [advance] rewrites it for every resident job on every consume/complete,
   and a float store into this mixed record would box each time. *)
type job = { remaining : float ref; resume : unit Engine.resumer }

type t = {
  engine : Engine.t;
  cores : int;
  speed : float;
  mutable jobs : job list;
  last_update : float ref;
  work_delivered : float ref;
  mutable next_completion : Engine.handle option;
  mutable n_completed : int;
  observe : (wait:float -> depth:int -> unit) option;
}

let eps = 1e-12

let create ?(speed = 1.0) ?observe engine ~cores =
  if cores < 1 then invalid_arg "Cpu.create: cores must be >= 1";
  if speed <= 0. then invalid_arg "Cpu.create: speed must be positive";
  {
    engine;
    cores;
    speed;
    jobs = [];
    last_update = ref (Engine.current_time engine);
    work_delivered = ref 0.;
    next_completion = None;
    n_completed = 0;
    observe;
  }

(* Per-job service rate with the current multiprogramming level. *)
let rate t =
  let n = List.length t.jobs in
  if n = 0 then 0.
  else t.speed *. Float.min 1.0 (float_of_int t.cores /. float_of_int n)

(* Charge elapsed wall time against every resident job. *)
let advance t =
  let now = Engine.current_time t.engine in
  let dt = now -. !(t.last_update) in
  if dt > 0. && t.jobs <> [] then begin
    let r = rate t in
    let served = dt *. r in
    List.iter
      (fun j -> j.remaining := Float.max 0. (!(j.remaining) -. served))
      t.jobs;
    t.work_delivered :=
      !(t.work_delivered) +. (served *. float_of_int (List.length t.jobs))
  end;
  t.last_update := now

let rec reschedule t =
  (match t.next_completion with
  | Some h ->
      Engine.cancel h;
      t.next_completion <- None
  | None -> ());
  match t.jobs with
  | [] -> ()
  | jobs ->
      let min_rem =
        List.fold_left (fun acc j -> Float.min acc !(j.remaining)) infinity jobs
      in
      let r = rate t in
      let dt = Float.max 0. (min_rem /. r) in
      t.next_completion <-
        Some (Engine.schedule_after t.engine dt (fun () -> complete t))

and complete t =
  t.next_completion <- None;
  advance t;
  let done_, rest = List.partition (fun j -> !(j.remaining) <= eps) t.jobs in
  t.jobs <- rest;
  t.n_completed <- t.n_completed + List.length done_;
  (* Resumers schedule their continuations at the current time. *)
  List.iter (fun j -> Engine.resume j.resume ()) done_;
  reschedule t

let consume t demand =
  if demand < 0. then invalid_arg "Cpu.consume: negative demand";
  if demand <= eps then begin
    (match t.observe with
    | None -> ()
    | Some f -> f ~wait:0. ~depth:(List.length t.jobs));
    Engine.yield ()
  end
  else begin
    let depth = List.length t.jobs in
    match t.observe with
    | None ->
        Engine.suspend (fun resume ->
            advance t;
            t.jobs <- { remaining = ref demand; resume } :: t.jobs;
            reschedule t)
    | Some f ->
        (* Contention delay: elapsed service time beyond the solo (one
           job, dedicated core) time for this demand. *)
        let t0 = Engine.now () in
        Engine.suspend (fun resume ->
            advance t;
            t.jobs <- { remaining = ref demand; resume } :: t.jobs;
            reschedule t);
        let solo = demand /. t.speed in
        f ~wait:(Float.max 0. (Engine.now () -. t0 -. solo)) ~depth
  end

let active_jobs t = List.length t.jobs
let completed t = t.n_completed

let busy_time t =
  (* Include work delivered since the last bookkeeping update. *)
  let now = Engine.current_time t.engine in
  let dt = now -. !(t.last_update) in
  let extra =
    if dt > 0. && t.jobs <> [] then
      dt *. rate t *. float_of_int (List.length t.jobs)
    else 0.
  in
  !(t.work_delivered) +. extra

let utilisation t ~elapsed =
  if elapsed <= 0. then 0.
  else busy_time t /. (elapsed *. t.speed *. float_of_int t.cores)
