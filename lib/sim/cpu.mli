(** Processor-sharing CPU model.

    A node's CPU serves all resident jobs simultaneously: with [n] active
    jobs on [cores] cores, each job progresses at rate
    [speed * min(1, cores/n)]. Job demands are expressed in seconds of
    dedicated CPU at [speed = 1.0], so a 1-second CGI alone on a 1-core node
    finishes in 1 simulated second, while 24 concurrent null-CGIs each take
    about 24 times their solo time — the contention effect the paper points
    out under its Figure 3.

    Completions are recomputed on every arrival and departure, which makes
    the model exact (not time-stepped). *)

type t

(** [create engine ~cores] with optional [speed] (default [1.0], relative to
    the reference node). [observe], if given, is called once per completed
    {!consume} with the contention delay — elapsed service time beyond the
    solo (dedicated-core) time for the demand — and the run-queue length
    when the job arrived. It must only record — it runs inside the consuming
    process and must not block or schedule. *)
val create :
  ?speed:float ->
  ?observe:(wait:float -> depth:int -> unit) ->
  Engine.t ->
  cores:int ->
  t

(** [consume cpu demand] blocks the calling process until [demand >= 0]
    seconds of dedicated-CPU work have been served to it. *)
val consume : t -> float -> unit

(** [active_jobs cpu] is the number of jobs currently being served. *)
val active_jobs : t -> int

(** [completed cpu] counts jobs fully served so far. *)
val completed : t -> int

(** [busy_time cpu] is the integral of (serving-capacity in use) over time:
    total CPU-seconds delivered so far. *)
val busy_time : t -> float

(** [utilisation cpu ~elapsed] is delivered work divided by capacity over
    [elapsed] seconds. *)
val utilisation : t -> elapsed:float -> float
