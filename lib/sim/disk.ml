type t = {
  seek : float;
  bandwidth : float;
  mem_bandwidth : float;
  arm : Mutex.t;
  mutable n_reads : int;
  mutable n_writes : int;
}

let create ?(seek = 0.008) ?(bandwidth = 8e6) ?(mem_bandwidth = 80e6) ?observe
    _engine =
  if bandwidth <= 0. || mem_bandwidth <= 0. then
    invalid_arg "Disk.create: bandwidth must be positive";
  {
    seek;
    bandwidth;
    mem_bandwidth;
    arm = Mutex.create ?observe ();
    n_reads = 0;
    n_writes = 0;
  }

let read t ~bytes ~cached =
  if bytes < 0 then invalid_arg "Disk.read: negative size";
  t.n_reads <- t.n_reads + 1;
  if cached then Engine.delay (float_of_int bytes /. t.mem_bandwidth)
  else
    Mutex.with_lock t.arm (fun () ->
        Engine.delay (t.seek +. (float_of_int bytes /. t.bandwidth)))

let write t ~bytes =
  if bytes < 0 then invalid_arg "Disk.write: negative size";
  t.n_writes <- t.n_writes + 1;
  Mutex.with_lock t.arm (fun () ->
      Engine.delay (t.seek +. (float_of_int bytes /. t.bandwidth)))

let reads t = t.n_reads
let writes t = t.n_writes
