(** Simple FIFO disk model: one request at a time, service time =
    [seek + bytes / bandwidth]. The cache stores each CGI result in its own
    file (paper §4.1), but on a UNIX box a recently used file is served from
    the OS buffer cache; callers model that by passing [~cached:true], which
    skips the seek and uses memory bandwidth instead. *)

type t

val create :
  ?seek:float ->
  ?bandwidth:float ->
  ?mem_bandwidth:float ->
  ?observe:(wait:float -> depth:int -> unit) ->
  Engine.t ->
  t
(** Defaults approximate a late-90s workstation disk: [seek = 8ms],
    [bandwidth = 8 MB/s], [mem_bandwidth = 80 MB/s]. [observe] is passed
    to the disk-arm mutex (see {!Mutex.create}): one observation per
    uncached access, with the time spent queued for the arm. *)

(** [read d ~bytes ~cached] blocks the calling process for the transfer.
    Uncached reads serialise through the disk; buffer-cache reads do not. *)
val read : t -> bytes:int -> cached:bool -> unit

(** [write d ~bytes] blocks for a (serialised) write of [bytes]. *)
val write : t -> bytes:int -> unit

(** [reads d] counts completed read requests (cached and uncached). *)
val reads : t -> int

(** [writes d] counts completed write requests. *)
val writes : t -> int
