let uniform rng lo hi = Rng.range rng lo hi

let exponential rng ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  let u = 1. -. Rng.float rng in
  -.mean *. log u

let normal rng ~mu ~sigma =
  let u1 = 1. -. Rng.float rng in
  let u2 = Rng.float rng in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let lognormal_mean_cv rng ~mean ~cv =
  if mean <= 0. then invalid_arg "Dist.lognormal_mean_cv: mean must be positive";
  if cv < 0. then invalid_arg "Dist.lognormal_mean_cv: cv must be non-negative";
  if cv = 0. then mean
  else
    let sigma2 = log (1. +. (cv *. cv)) in
    let mu = log mean -. (sigma2 /. 2.) in
    lognormal rng ~mu ~sigma:(sqrt sigma2)

let pareto rng ~xm ~alpha =
  if xm <= 0. || alpha <= 0. then invalid_arg "Dist.pareto: xm, alpha > 0";
  let u = 1. -. Rng.float rng in
  xm /. (u ** (1. /. alpha))

let bounded_pareto rng ~xm ~alpha ~cap = Float.min cap (pareto rng ~xm ~alpha)

module Zipf = struct
  type t = { cdf : float array }

  let make ~n ~s =
    if n < 1 then invalid_arg "Zipf.make: n must be >= 1";
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    for k = 0 to n - 1 do
      acc := !acc +. (1. /. (float_of_int (k + 1) ** s));
      cdf.(k) <- !acc
    done;
    let total = !acc in
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. total
    done;
    { cdf }

  let size t = Array.length t.cdf

  (* Binary search for the first index whose cumulative mass covers [u]. *)
  let draw t rng =
    let u = Rng.float rng in
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end

module Discrete = struct
  type t = { cdf : float array }

  let make weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Discrete.make: empty weights";
    Array.iter
      (fun w -> if w < 0. then invalid_arg "Discrete.make: negative weight")
      weights;
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. weights.(i);
      cdf.(i) <- !acc
    done;
    if !acc <= 0. then invalid_arg "Discrete.make: weights sum to zero";
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. !acc
    done;
    { cdf }

  let draw t rng =
    let u = Rng.float rng in
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end
