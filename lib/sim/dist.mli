(** Probability distributions over a {!Rng.t}.

    These are the building blocks for workload generators: request
    inter-arrival times, CGI execution demands, file sizes and document
    popularity (Zipf). *)

(** [uniform rng lo hi] draws uniformly from [\[lo, hi)]. *)
val uniform : Rng.t -> float -> float -> float

(** [exponential rng ~mean] draws from Exp(1/mean). Requires [mean > 0]. *)
val exponential : Rng.t -> mean:float -> float

(** [normal rng ~mu ~sigma] draws from N(mu, sigma^2) via Box-Muller. *)
val normal : Rng.t -> mu:float -> sigma:float -> float

(** [lognormal rng ~mu ~sigma] draws [exp x] with [x ~ N(mu, sigma^2)].
    [mu]/[sigma] are the parameters of the underlying normal. *)
val lognormal : Rng.t -> mu:float -> sigma:float -> float

(** [lognormal_mean_cv rng ~mean ~cv] draws from a lognormal parameterised by
    its own mean and coefficient of variation (stddev/mean); convenient for
    matching published workload aggregates. Requires [mean > 0], [cv >= 0]. *)
val lognormal_mean_cv : Rng.t -> mean:float -> cv:float -> float

(** [pareto rng ~xm ~alpha] draws from a Pareto with scale [xm] > 0 and shape
    [alpha] > 0 (heavy-tailed; used for large-transfer sizes). *)
val pareto : Rng.t -> xm:float -> alpha:float -> float

(** [bounded_pareto rng ~xm ~alpha ~cap] is {!pareto} truncated at [cap]. *)
val bounded_pareto : Rng.t -> xm:float -> alpha:float -> cap:float -> float

(** Zipf-like discrete distribution over ranks [0 .. n-1], with
    P(rank = k) proportional to 1/(k+1)^s. Popularity of web documents is
    classically modelled this way. *)
module Zipf : sig
  type t

  (** [make ~n ~s] precomputes the cumulative table. Requires [n >= 1]. *)
  val make : n:int -> s:float -> t

  (** [draw z rng] samples a rank in [\[0, n)]. *)
  val draw : t -> Rng.t -> int

  val size : t -> int
end

(** Weighted discrete choice over an explicit weight vector. *)
module Discrete : sig
  type t

  (** [make weights] normalises [weights]; all must be [>= 0] with a positive
      sum. *)
  val make : float array -> t

  (** [draw d rng] samples an index, proportionally to its weight. *)
  val draw : t -> Rng.t -> int
end
