(* What an event does when it fires. The common timer paths carry the
   captured continuation directly instead of a [fun () -> continue k v]
   thunk, which removes one closure allocation per delay/resume — the
   two dominant event kinds. [Noop] doubles as the dummy payload of the
   heap and as the "already fired" marker: executed events have their
   action overwritten so [cancel] can distinguish fired from pending and
   so the closure/continuation is released immediately. *)
type action =
  | Noop
  | Call of (unit -> unit)
  | Resume_unit of (unit, unit) Effect.Deep.continuation
  | Resume : ('a, unit) Effect.Deep.continuation * 'a -> action

type event = {
  mutable cancelled : bool;
  (* Shared with the owning engine: the count of cancelled events still
     sitting in the heap. A ref rather than a back-pointer to the engine
     so the heap's dummy event can exist before any engine does. *)
  cancels : int ref;
  mutable action : action;
}

type handle = event

type t = {
  (* A [float ref] rather than a [mutable float] field: the ref cell is a
     flat float record, so the per-event clock advance stores in place
     instead of boxing a fresh float into this mixed record. *)
  clock : float ref;
  mutable next_seq : int;
  (* cancelled-but-not-yet-popped events in [queue]; drives lazy
     compaction and the [pending] count *)
  cancels : int ref;
  mutable n_suspended : int;
  mutable n_events : int;  (* events executed by [run], for perf reporting *)
  queue : event Pqueue.Timed.t;
}

exception Not_in_process
exception Deadlock of string

let create () =
  {
    clock = ref 0.;
    next_seq = 0;
    cancels = ref 0;
    n_suspended = 0;
    n_events = 0;
    queue =
      Pqueue.Timed.create
        ~dummy:{ cancelled = true; cancels = ref 0; action = Noop }
        ();
  }

let current_time t = !(t.clock)

(* Unvalidated push shared by every scheduling path; sequence numbers are
   allocated here in call order, which fixes the deterministic tie-break. *)
let push_event t time ev =
  Pqueue.Timed.push t.queue ~time ~seq:t.next_seq ev;
  t.next_seq <- t.next_seq + 1

let schedule_at t time f =
  if time < !(t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time !(t.clock));
  let ev = { cancelled = false; cancels = t.cancels; action = Call f } in
  push_event t time ev;
  ev

let schedule_after t dt f =
  if dt < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (!(t.clock) +. dt) f

let cancel ev =
  (* Idempotent, and a no-op once the event has fired ([run] clears the
     action), so the shared counter stays an exact census of cancelled
     events still in the heap. *)
  if (not ev.cancelled) && ev.action != Noop then begin
    ev.cancelled <- true;
    incr ev.cancels
  end

let pending t = Pqueue.Timed.length t.queue - !(t.cancels)
let suspended t = t.n_suspended
let events_processed t = t.n_events

(* Flight-recorder inspection: raw heap occupancy (live + cancelled) and
   the lazy-cancellation census, separately — [pending] nets them out,
   but telemetry wants to watch the garbage fraction that drives
   compaction. Both are O(1) reads. *)
let heap_depth t = Pqueue.Timed.length t.queue
let heap_capacity t = Pqueue.Timed.capacity t.queue
let cancelled_events t = !(t.cancels)

(* ------------------------------------------------------------------ *)
(* Current engine

   [now]/[self_engine] are called on every traced operation and many hot
   paths; performing an effect for them costs a handler round-trip per
   call. Instead the running engine is published in a domain-local slot
   for the duration of [run] — reading it is a flat load, and keeping the
   slot per-domain is what lets [Sweep] run one engine per domain. *)

let current : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let now () =
  match !(Domain.DLS.get current) with
  | Some t -> !(t.clock)
  | None -> raise Not_in_process

let self_engine () =
  match !(Domain.DLS.get current) with
  | Some t -> t
  | None -> raise Not_in_process

(* ------------------------------------------------------------------ *)
(* Effects *)

type 'a resumer = {
  mutable fired : bool;
  r_eng : t;
  r_k : ('a, unit) Effect.Deep.continuation;
}

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Fork : (unit -> unit) -> unit Effect.t
  | Get_local : int Effect.t
  | Set_local : int -> unit Effect.t

let resume r v =
  if r.fired then invalid_arg "Engine: resumer called twice";
  r.fired <- true;
  let t = r.r_eng in
  t.n_suspended <- t.n_suspended - 1;
  push_event t !(t.clock)
    { cancelled = false; cancels = t.cancels; action = Resume (r.r_k, v) }

let delay dt =
  if dt < 0. then invalid_arg "Engine.delay: negative delay";
  try Effect.perform (Delay dt) with Effect.Unhandled _ -> raise Not_in_process

let yield () = delay 0.

let spawn_child f =
  try Effect.perform (Fork f) with Effect.Unhandled _ -> raise Not_in_process

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> raise Not_in_process

(* Outside any process there is no fiber-local slot; reading yields the
   zero value so observers (tracing) can treat "no context" uniformly,
   while writing is a programming error. *)
let get_local () = try Effect.perform Get_local with Effect.Unhandled _ -> 0

let set_local v =
  try Effect.perform (Set_local v) with Effect.Unhandled _ -> raise Not_in_process

(* ------------------------------------------------------------------ *)
(* Process runner *)

open Effect.Deep

let rec run_process t ?(local = 0) (f : unit -> unit) =
  let local = ref local in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* dt >= 0 was validated by [delay] *)
                  push_event t (!(t.clock) +. dt)
                    {
                      cancelled = false;
                      cancels = t.cancels;
                      action = Resume_unit k;
                    })
          | Get_local ->
              Some (fun (k : (a, unit) continuation) -> continue k !local)
          | Set_local v ->
              Some
                (fun (k : (a, unit) continuation) ->
                  local := v;
                  continue k ())
          | Fork g ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* The child inherits the local slot's value at fork time
                     (its own copy — later writes don't propagate). *)
                  let inherited = !local in
                  push_event t !(t.clock)
                    {
                      cancelled = false;
                      cancels = t.cancels;
                      action = Call (fun () -> run_process t ~local:inherited g);
                    };
                  continue k ())
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.n_suspended <- t.n_suspended + 1;
                  register { fired = false; r_eng = t; r_k = k })
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t f =
  ignore (schedule_at t !(t.clock) (fun () -> run_process t f) : handle)

(* Compact the heap once cancelled events outnumber live ones (and are
   numerous enough for the O(n) sweep to be worth it). Survivors keep
   their (time, seq) keys, so execution order is unaffected. *)
let compact_threshold = 64

let maybe_compact t =
  let c = !(t.cancels) in
  if c > compact_threshold && 2 * c > Pqueue.Timed.length t.queue then begin
    Pqueue.Timed.compact t.queue ~keep:(fun ev -> not ev.cancelled);
    t.cancels := 0
  end

let exec_action = function
  | Noop -> ()
  | Call f -> f ()
  | Resume_unit k -> continue k ()
  | Resume (k, v) -> continue k v

let run ?until ?(detect_deadlock = false) t =
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some t;
  Fun.protect
    ~finally:(fun () -> slot := saved)
    (fun () ->
      let q = t.queue in
      let rec loop () =
        maybe_compact t;
        if not (Pqueue.Timed.is_empty q) then begin
          let ev = Pqueue.Timed.peek_min q in
          if ev.cancelled then begin
            ignore (Pqueue.Timed.pop_min q : event);
            decr t.cancels;
            loop ()
          end
          else
            let time = Pqueue.Timed.min_time q in
            match until with
            | Some h when time > h -> t.clock := Float.max !(t.clock) h
            | _ ->
                ignore (Pqueue.Timed.pop_min q : event);
                t.clock := time;
                t.n_events <- t.n_events + 1;
                let act = ev.action in
                ev.action <- Noop;
                exec_action act;
                loop ()
        end
      in
      loop ();
      (match until with
      | Some h when Pqueue.Timed.is_empty q -> t.clock := Float.max !(t.clock) h
      | _ -> ());
      if detect_deadlock && Pqueue.Timed.is_empty q && t.n_suspended > 0 then
        raise
          (Deadlock
             (Printf.sprintf "%d process(es) still suspended at t=%g"
                t.n_suspended !(t.clock))))
