type event = {
  time : float;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable cancelled_count : int;
  mutable n_suspended : int;
  mutable n_events : int;  (* events executed by [run], for perf reporting *)
  queue : event Pqueue.t;
}

exception Not_in_process
exception Deadlock of string

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = 0.;
    next_seq = 0;
    cancelled_count = 0;
    n_suspended = 0;
    n_events = 0;
    queue = Pqueue.create ~cmp:cmp_event;
  }

let current_time t = t.clock

let schedule_at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.clock);
  let ev = { time; seq = t.next_seq; cancelled = false; action = f } in
  t.next_seq <- t.next_seq + 1;
  Pqueue.push t.queue ev;
  ev

let schedule_after t dt f =
  if dt < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock +. dt) f

let cancel ev = ev.cancelled <- true

let pending t =
  (* Cancelled events stay in the heap until popped; they are not counted
     by clients, so we track them separately only for run's deadlock check.
     Pqueue length is an upper bound; good enough for diagnostics. *)
  Pqueue.length t.queue

let suspended t = t.n_suspended
let events_processed t = t.n_events

(* ------------------------------------------------------------------ *)
(* Effects *)

type 'a resumer = 'a -> unit

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Now_eff : float Effect.t
  | Engine_eff : t Effect.t
  | Fork : (unit -> unit) -> unit Effect.t
  | Get_local : int Effect.t
  | Set_local : int -> unit Effect.t

let now () = try Effect.perform Now_eff with Effect.Unhandled _ -> raise Not_in_process

let self_engine () =
  try Effect.perform Engine_eff with Effect.Unhandled _ -> raise Not_in_process

let delay dt =
  if dt < 0. then invalid_arg "Engine.delay: negative delay";
  try Effect.perform (Delay dt) with Effect.Unhandled _ -> raise Not_in_process

let yield () = delay 0.

let spawn_child f =
  try Effect.perform (Fork f) with Effect.Unhandled _ -> raise Not_in_process

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> raise Not_in_process

(* Outside any process there is no fiber-local slot; reading yields the
   zero value so observers (tracing) can treat "no context" uniformly,
   while writing is a programming error. *)
let get_local () = try Effect.perform Get_local with Effect.Unhandled _ -> 0

let set_local v =
  try Effect.perform (Set_local v) with Effect.Unhandled _ -> raise Not_in_process

(* ------------------------------------------------------------------ *)
(* Process runner *)

open Effect.Deep

let rec run_process t ?(local = 0) (f : unit -> unit) =
  let local = ref local in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore
                    (schedule_after t dt (fun () -> continue k ()) : handle))
          | Now_eff -> Some (fun (k : (a, unit) continuation) -> continue k t.clock)
          | Engine_eff -> Some (fun (k : (a, unit) continuation) -> continue k t)
          | Get_local ->
              Some (fun (k : (a, unit) continuation) -> continue k !local)
          | Set_local v ->
              Some
                (fun (k : (a, unit) continuation) ->
                  local := v;
                  continue k ())
          | Fork g ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* The child inherits the local slot's value at fork time
                     (its own copy — later writes don't propagate). *)
                  let inherited = !local in
                  ignore
                    (schedule_at t t.clock (fun () ->
                         run_process t ~local:inherited g)
                      : handle);
                  continue k ())
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.n_suspended <- t.n_suspended + 1;
                  let fired = ref false in
                  let resume v =
                    if !fired then
                      invalid_arg "Engine: resumer called twice";
                    fired := true;
                    t.n_suspended <- t.n_suspended - 1;
                    ignore
                      (schedule_at t t.clock (fun () -> continue k v) : handle)
                  in
                  register resume)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t f = ignore (schedule_at t t.clock (fun () -> run_process t f) : handle)

let run ?until ?(detect_deadlock = false) t =
  let horizon = until in
  let rec loop () =
    match Pqueue.peek t.queue with
    | None -> ()
    | Some ev when ev.cancelled ->
        ignore (Pqueue.pop t.queue);
        loop ()
    | Some ev -> (
        match horizon with
        | Some h when ev.time > h ->
            t.clock <- Float.max t.clock h
        | _ ->
            ignore (Pqueue.pop t.queue);
            t.clock <- ev.time;
            t.n_events <- t.n_events + 1;
            ev.action ();
            loop ())
  in
  loop ();
  (match horizon with
  | Some h when Pqueue.is_empty t.queue -> t.clock <- Float.max t.clock h
  | _ -> ());
  if detect_deadlock && Pqueue.is_empty t.queue && t.n_suspended > 0 then
    raise
      (Deadlock
         (Printf.sprintf "%d process(es) still suspended at t=%g" t.n_suspended
            t.clock))
