(** Deterministic discrete-event simulation engine.

    Simulated threads ("processes") are ordinary OCaml functions executed
    under an effect handler. A process suspends by performing one of the
    engine's effects ({!delay}, {!suspend}, or a synchronisation primitive
    built on them) and the engine resumes it later by scheduling its captured
    continuation as an event. Events fire in (time, sequence) order, so runs
    are fully deterministic.

    All per-process operations ({!delay}, {!now}, {!spawn_child}, {!suspend},
    {!self_engine}) must be called from inside a process started with
    {!spawn}; calling them elsewhere raises [Not_in_process]. *)

type t
(** An engine instance: virtual clock plus event queue. *)

type handle
(** A scheduled event, usable with {!cancel}. *)

exception Not_in_process
(** Raised when a process-only operation is performed outside any process. *)

exception Deadlock of string
(** Raised by {!run} when [detect_deadlock] is set and the queue drains while
    suspended processes remain. *)

val create : unit -> t

(** [current_time t] is the engine clock (also see {!now} from inside a
    process). Starts at [0.]. *)
val current_time : t -> float

(** [schedule_at t time f] queues [f] to run at absolute [time]. Events
    scheduled for the past raise [Invalid_argument]. *)
val schedule_at : t -> float -> (unit -> unit) -> handle

(** [schedule_after t dt f] queues [f] at [current_time t +. dt], [dt >= 0]. *)
val schedule_after : t -> float -> (unit -> unit) -> handle

(** [cancel h] prevents a pending event from firing; idempotent, and a no-op
    if the event already fired. *)
val cancel : handle -> unit

(** [spawn t f] registers [f] as a new process starting at the current time.
    May be called from inside or outside a process. *)
val spawn : t -> (unit -> unit) -> unit

(** [run ?until ?detect_deadlock t] executes events until the queue is empty
    or the clock would pass [until] (the clock is then set to [until]).
    With [detect_deadlock] (default [false]), raises {!Deadlock} if the run
    ends while some process is still suspended. *)
val run : ?until:float -> ?detect_deadlock:bool -> t -> unit

(** [pending t] is the number of queued (uncancelled) events. *)
val pending : t -> int

(** [suspended t] is the number of processes currently blocked in
    {!suspend}. *)
val suspended : t -> int

(** [events_processed t] is the cumulative number of events {!run} has
    executed — the denominator of the wall-clock events/sec benchmark. *)
val events_processed : t -> int

(** {1 Process-side operations} *)

(** [now ()] is the current simulated time. *)
val now : unit -> float

(** [self_engine ()] is the engine running the calling process. *)
val self_engine : unit -> t

(** [delay dt] suspends the calling process for [dt >= 0] simulated seconds. *)
val delay : float -> unit

(** [yield ()] reschedules the calling process at the current time, letting
    already-queued same-time events run first. *)
val yield : unit -> unit

(** [spawn_child f] starts [f] as a sibling process at the current time. *)
val spawn_child : (unit -> unit) -> unit

(** {1 Fiber-local storage}

    Each process carries one [int] slot, used by the tracer to propagate
    the current span id across blocking operations and into children. A
    process starts with [0]; a child forked with {!spawn_child} inherits
    the parent's value at fork time (as its own copy). *)

(** [get_local ()] is the calling process's slot value, or [0] when called
    outside any process (it never raises — observers run in both
    contexts). *)
val get_local : unit -> int

(** [set_local v] overwrites the calling process's slot. *)
val set_local : int -> unit

type 'a resumer = 'a -> unit
(** A one-shot wake-up function for a suspended process. Calling it schedules
    the process to resume (with the given value) at the engine's current
    time. Calling it twice raises [Invalid_argument]. *)

(** [suspend register] blocks the calling process. [register] receives the
    process's {!resumer} and typically stores it in a wait queue; the process
    resumes when some other event calls the resumer. This is the primitive
    from which mailboxes, locks and condition variables are built. *)
val suspend : ('a resumer -> unit) -> 'a
