(** Deterministic discrete-event simulation engine.

    Simulated threads ("processes") are ordinary OCaml functions executed
    under an effect handler. A process suspends by performing one of the
    engine's effects ({!delay}, {!suspend}, or a synchronisation primitive
    built on them) and the engine resumes it later by scheduling its captured
    continuation as an event. Events fire in (time, sequence) order, so runs
    are fully deterministic.

    All per-process operations ({!delay}, {!now}, {!spawn_child}, {!suspend},
    {!self_engine}) must be called from inside a process started with
    {!spawn}; calling them elsewhere raises [Not_in_process]. ({!now} and
    {!self_engine} additionally work from bare event actions, since the
    engine they belong to is unambiguous while {!run} is active.)

    Engines are single-domain values: one engine must only ever be touched
    from the domain that runs it. Distinct engines in distinct domains are
    fully independent — that is what {!Sweep} exploits. *)

type t
(** An engine instance: virtual clock plus event queue. *)

type handle
(** A scheduled event, usable with {!cancel}. *)

exception Not_in_process
(** Raised when a process-only operation is performed outside any process. *)

exception Deadlock of string
(** Raised by {!run} when [detect_deadlock] is set and the queue drains while
    suspended processes remain. *)

val create : unit -> t

(** [current_time t] is the engine clock (also see {!now} from inside a
    process). Starts at [0.]. *)
val current_time : t -> float

(** [schedule_at t time f] queues [f] to run at absolute [time]. Events
    scheduled for the past raise [Invalid_argument]. *)
val schedule_at : t -> float -> (unit -> unit) -> handle

(** [schedule_after t dt f] queues [f] at [current_time t +. dt], [dt >= 0]. *)
val schedule_after : t -> float -> (unit -> unit) -> handle

(** [cancel h] prevents a pending event from firing; idempotent, and a no-op
    if the event already fired. Cancelled events are dropped lazily; once
    they outnumber live ones the queue is compacted in one O(n) sweep, so
    cancel-heavy workloads (CPU reschedules, timeouts) cannot bloat the
    heap. *)
val cancel : handle -> unit

(** [spawn t f] registers [f] as a new process starting at the current time.
    May be called from inside or outside a process. *)
val spawn : t -> (unit -> unit) -> unit

(** [run ?until ?detect_deadlock t] executes events until the queue is empty
    or the clock would pass [until] (the clock is then set to [until]).
    With [detect_deadlock] (default [false]), raises {!Deadlock} if the run
    ends while some process is still suspended. *)
val run : ?until:float -> ?detect_deadlock:bool -> t -> unit

(** [pending t] is the number of queued (uncancelled) events. *)
val pending : t -> int

(** [suspended t] is the number of processes currently blocked in
    {!suspend}. *)
val suspended : t -> int

(** [events_processed t] is the cumulative number of events {!run} has
    executed — the denominator of the wall-clock events/sec benchmark.
    Cancelled events are skipped, not executed, so they never count. *)
val events_processed : t -> int

(** {1 Flight-recorder inspection}

    O(1) reads for the telemetry sampler: raw heap occupancy (live plus
    cancelled — {!pending} nets the census out), the backing-array size,
    and the lazy-cancellation census whose growth drives compaction. *)

val heap_depth : t -> int
val heap_capacity : t -> int
val cancelled_events : t -> int

(** {1 Process-side operations} *)

(** [now ()] is the current simulated time. *)
val now : unit -> float

(** [self_engine ()] is the engine running the calling process. *)
val self_engine : unit -> t

(** [delay dt] suspends the calling process for [dt >= 0] simulated seconds. *)
val delay : float -> unit

(** [yield ()] reschedules the calling process at the current time, letting
    already-queued same-time events run first. *)
val yield : unit -> unit

(** [spawn_child f] starts [f] as a sibling process at the current time. *)
val spawn_child : (unit -> unit) -> unit

(** {1 Fiber-local storage}

    Each process carries one [int] slot, used by the tracer to propagate
    the current span id across blocking operations and into children. A
    process starts with [0]; a child forked with {!spawn_child} inherits
    the parent's value at fork time (as its own copy). *)

(** [get_local ()] is the calling process's slot value, or [0] when called
    outside any process (it never raises — observers run in both
    contexts). *)
val get_local : unit -> int

(** [set_local v] overwrites the calling process's slot. *)
val set_local : int -> unit

type 'a resumer
(** A one-shot wake-up token for a suspended process: the captured
    continuation plus its engine, preallocated at suspension so waking a
    process costs no closure. Fire it with {!resume}. *)

(** [resume r v] schedules the suspended process holding [r] to continue
    (with value [v]) at the engine's current time. Calling it twice on the
    same token raises [Invalid_argument]. *)
val resume : 'a resumer -> 'a -> unit

(** [suspend register] blocks the calling process. [register] receives the
    process's {!resumer} and typically stores it in a wait queue; the process
    resumes when some other event fires it with {!resume}. This is the
    primitive from which mailboxes, locks and condition variables are
    built. *)
val suspend : ('a resumer -> unit) -> 'a
