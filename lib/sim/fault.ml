type link_profile = { drop : float; delay : float; delay_mean : float }

let reliable = { drop = 0.; delay = 0.; delay_mean = 0. }

type node_profile = { mtbf : float; mttr : float }
type schedule = (float * float) list

type partition = {
  pname : string;
  groups : int list list;
  cut_at : float;
  heal_at : float;
}

type churn = {
  churn_rate : float;
  churn_downtime : float;
  churn_poisson : bool;
  churn_start : float;
}

let churn ?(rate = 0.1) ?(downtime = 2.0) ?(poisson = true) ?(start = 0.) () =
  {
    churn_rate = rate;
    churn_downtime = downtime;
    churn_poisson = poisson;
    churn_start = start;
  }

type profile = {
  link : link_profile;
  link_overrides : ((int * int) * link_profile) list;
  node : node_profile option;
  node_schedules : (int * schedule) list;
  partitions : partition list;
  churn : churn option;
  horizon : float;
}

let none =
  {
    link = reliable;
    link_overrides = [];
    node = None;
    node_schedules = [];
    partitions = [];
    churn = None;
    horizon = 3600.;
  }

let make ?(drop = 0.) ?(delay = 0.) ?(delay_mean = 0.) ?(link_overrides = [])
    ?node ?(node_schedules = []) ?(partitions = []) ?churn ?(horizon = 3600.)
    () =
  { link = { drop; delay; delay_mean }; link_overrides; node; node_schedules;
    partitions; churn; horizon }

let is_lossy p =
  let lossy_link (l : link_profile) = l.drop > 0. in
  lossy_link p.link
  || List.exists (fun (_, l) -> lossy_link l) p.link_overrides
  || p.node <> None
  || List.exists (fun (_, s) -> s <> []) p.node_schedules
  || p.partitions <> []
  || p.churn <> None

let validate p =
  let check cond msg = if not cond then invalid_arg ("Fault: " ^ msg) in
  let check_link (l : link_profile) =
    check (l.drop >= 0. && l.drop <= 1.) "link drop must be in [0,1]";
    check (l.delay >= 0. && l.delay <= 1.) "link delay must be in [0,1]";
    check (l.delay_mean >= 0.) "link delay_mean must be >= 0";
    check
      (l.delay = 0. || l.delay_mean > 0.)
      "positive delay probability needs a positive delay_mean"
  in
  check_link p.link;
  List.iter (fun (_, l) -> check_link l) p.link_overrides;
  (match p.node with
  | Some n ->
      check (n.mtbf > 0.) "node mtbf must be positive";
      check (n.mttr > 0.) "node mttr must be positive"
  | None -> ());
  List.iter
    (fun (node, sched) ->
      check (node >= 0) "scheduled node id must be >= 0";
      let rec go prev_up = function
        | [] -> ()
        | (down_at, up_at) :: rest ->
            check (down_at > 0.) "schedule times must be positive";
            check (up_at > down_at) "schedule intervals need up_at > down_at";
            check (down_at >= prev_up) "schedule intervals must not overlap";
            go up_at rest
      in
      go 0. sched)
    p.node_schedules;
  List.iter
    (fun part ->
      check (part.cut_at >= 0.) "partition cut_at must be >= 0";
      check (part.heal_at > part.cut_at) "partition needs heal_at > cut_at";
      check (part.groups <> []) "partition needs at least one group";
      let seen = Hashtbl.create 16 in
      List.iter
        (fun group ->
          check (group <> []) "partition groups must be non-empty";
          List.iter
            (fun node ->
              check (node >= 0) "partition node ids must be >= 0";
              check
                (not (Hashtbl.mem seen node))
                "partition groups must be disjoint";
              Hashtbl.add seen node ())
            group)
        part.groups)
    p.partitions;
  (match p.churn with
  | Some c ->
      check (c.churn_rate > 0.) "churn rate must be positive";
      check (c.churn_downtime > 0.) "churn downtime must be positive";
      check (c.churn_start >= 0.) "churn start must be >= 0"
  | None -> ());
  check (p.horizon > 0.) "horizon must be positive"

type action = Deliver | Drop | Delay of float

type t = {
  link : link_profile;
  overrides : (int * int, link_profile) Hashtbl.t;
  schedules : schedule array;  (* index = node id, [||] entries = never down *)
  parts : partition array;  (* in profile order *)
  (* group_of.(p) maps a node id to its group index in partition p;
     endpoints beyond the array (or unlisted) share the implicit group -1. *)
  group_of : int array array;
  rng : Rng.t;  (* per-message draws; untouched by an all-zero profile *)
  mutable n_drops : int;
  mutable n_drops_down : int;
  mutable n_drops_partition : int;
  mutable n_delays : int;
  mutable total_delay : float;
}

(* Alternate exponential up-times (mean mtbf) and downtimes (mean mttr)
   until the horizon; crash instants beyond it are not generated. *)
let gen_schedule rng (np : node_profile) ~horizon =
  let rec go t acc =
    let down_at = t +. Dist.exponential rng ~mean:np.mtbf in
    if down_at >= horizon then List.rev acc
    else
      let up_at = down_at +. Dist.exponential rng ~mean:np.mttr in
      go up_at ((down_at, up_at) :: acc)
  in
  go 0. []

(* Union of two well-formed interval lists, coalescing overlapping or
   touching intervals (a crash instant coinciding with a restart instant
   would race in the event queue). *)
let merge_schedule a b =
  let all = List.sort compare (a @ b) in
  let rec go acc = function
    | [] -> List.rev acc
    | (d, u) :: rest -> (
        match acc with
        | (pd, pu) :: acc' when d <= pu ->
            go ((pd, Stdlib.max pu u) :: acc') rest
        | _ -> go ((d, u) :: acc) rest)
  in
  go [] all

(* Rolling churn: one cluster-wide leave stream at [churn_rate] events/s
   (exponential gaps when [churn_poisson], a fixed period otherwise),
   dealt round-robin over the nodes so membership keeps turning over
   instead of crashing in bursts. Downtimes follow the same law with mean
   [churn_downtime]. A node whose previous downtime is still running when
   its next leave arrives goes down again the instant it comes back. *)
let gen_churn rng (c : churn) ~nodes ~horizon =
  let rev = Array.make nodes [] in
  if nodes > 0 then begin
    let last_up = Array.make nodes 0. in
    let draw mean =
      if c.churn_poisson then Dist.exponential rng ~mean else mean
    in
    let rec go k t =
      let t = t +. draw (1. /. c.churn_rate) in
      if t < horizon then begin
        let node = k mod nodes in
        let down_at = Stdlib.max t last_up.(node) in
        let up_at = down_at +. draw c.churn_downtime in
        rev.(node) <- (down_at, up_at) :: rev.(node);
        last_up.(node) <- up_at;
        go (k + 1) t
      end
    in
    go 0 c.churn_start
  end;
  Array.map List.rev rev

let create p ~rng ~nodes =
  validate p;
  if nodes < 0 then invalid_arg "Fault.create: nodes must be >= 0";
  (* Split a dedicated generator per node first (in node order) so crash
     schedules depend only on the seed, not on message traffic. *)
  let schedules =
    Array.init nodes (fun node ->
        let node_rng = Rng.split rng in
        match List.assoc_opt node p.node_schedules with
        | Some sched -> sched
        | None -> (
            match p.node with
            | Some np -> gen_schedule node_rng np ~horizon:p.horizon
            | None -> []))
  in
  (* The churn generator splits only when churn is configured, after the
     per-node splits: a churn-free profile draws exactly as before. *)
  (match p.churn with
  | None -> ()
  | Some c ->
      let churn_rng = Rng.split rng in
      let churn_scheds = gen_churn churn_rng c ~nodes ~horizon:p.horizon in
      Array.iteri
        (fun node extra ->
          if extra <> [] then
            schedules.(node) <- merge_schedule schedules.(node) extra)
        churn_scheds);
  let overrides = Hashtbl.create 16 in
  List.iter
    (fun (linkpair, lp) -> Hashtbl.replace overrides linkpair lp)
    p.link_overrides;
  let parts = Array.of_list p.partitions in
  let group_of =
    Array.map
      (fun part ->
        let top =
          List.fold_left
            (fun acc g -> List.fold_left Stdlib.max acc g)
            (-1) part.groups
        in
        let map = Array.make (top + 1) (-1) in
        List.iteri
          (fun gi group -> List.iter (fun node -> map.(node) <- gi) group)
          part.groups;
        map)
      parts
  in
  {
    link = p.link;
    overrides;
    schedules;
    parts;
    group_of;
    rng;
    n_drops = 0;
    n_drops_down = 0;
    n_drops_partition = 0;
    n_delays = 0;
    total_delay = 0.;
  }

let node_down t ~node ~now =
  node >= 0
  && node < Array.length t.schedules
  && List.exists
       (fun (down_at, up_at) -> now >= down_at && now < up_at)
       t.schedules.(node)

let schedule t ~node =
  if node < 0 || node >= Array.length t.schedules then []
  else t.schedules.(node)

let group t ~part ~node =
  let map = t.group_of.(part) in
  if node < 0 || node >= Array.length map then -1 else map.(node)

let partitioned t ~src ~dst ~now =
  let n = Array.length t.parts in
  let rec go i =
    i < n
    && ((let p = t.parts.(i) in
         now >= p.cut_at && now < p.heal_at
         && group t ~part:i ~node:src <> group t ~part:i ~node:dst)
       || go (i + 1))
  in
  go 0

let partitions t = Array.to_list t.parts

let link_for t ~src ~dst =
  match Hashtbl.find_opt t.overrides (src, dst) with
  | Some lp -> lp
  | None -> t.link

let action t ~src ~dst ~now =
  if node_down t ~node:src ~now || node_down t ~node:dst ~now then begin
    t.n_drops <- t.n_drops + 1;
    t.n_drops_down <- t.n_drops_down + 1;
    Drop
  end
  else if Array.length t.parts > 0 && partitioned t ~src ~dst ~now then begin
    t.n_drops <- t.n_drops + 1;
    t.n_drops_partition <- t.n_drops_partition + 1;
    Drop
  end
  else
    let lp = link_for t ~src ~dst in
    if lp.drop = 0. && lp.delay = 0. then Deliver
    else if lp.drop > 0. && Rng.float t.rng < lp.drop then begin
      t.n_drops <- t.n_drops + 1;
      Drop
    end
    else if lp.delay > 0. && Rng.float t.rng < lp.delay then begin
      let extra = Dist.exponential t.rng ~mean:lp.delay_mean in
      t.n_delays <- t.n_delays + 1;
      t.total_delay <- t.total_delay +. extra;
      Delay extra
    end
    else Deliver

let drops t = t.n_drops
let drops_down t = t.n_drops_down
let drops_partition t = t.n_drops_partition
let drops_link t = t.n_drops - t.n_drops_down - t.n_drops_partition
let delays t = t.n_delays
let delay_injected t = t.total_delay
