(** Deterministic fault injection for the simulated cluster.

    A {!profile} describes the faults an experiment wants — per-link message
    drop/delay behaviour and per-node crash/restart behaviour — and
    {!create} instantiates it into a {!t} (a {e fault plan}) from a seeded
    {!Rng.t}. Everything stochastic is drawn from that generator, so the
    same seed and profile always produce the same fault trace: the same
    messages dropped, the same extra delays, the same crash and restart
    instants.

    The plan is consulted by {!Net.send}/{!Net.post} (via [?fault] at
    {!Net.create}) for every inter-host message, and by the server layer to
    schedule node crashes and restarts. A profile in which every rate is
    zero and no schedule is given is {e free}: no random numbers are drawn
    and every message is delivered exactly as without a plan, so a
    zero-fault run is byte-identical to a run with no plan at all. *)

(** {1 Profiles} *)

(** Per-link message behaviour. [drop] is the probability that a message on
    the link is silently discarded; with probability [delay] a surviving
    message is held back for an extra exponential time of mean
    [delay_mean] seconds before delivery. *)
type link_profile = {
  drop : float;  (** drop probability, in [\[0,1\]] *)
  delay : float;  (** extra-delay probability, in [\[0,1\]] *)
  delay_mean : float;  (** mean extra delay (s), [>= 0] *)
}

(** [reliable] is the zero link: never drops, never delays. *)
val reliable : link_profile

(** Stochastic crash behaviour of one node: up-times are exponential with
    mean [mtbf], downtimes exponential with mean [mttr] (both [> 0]). *)
type node_profile = {
  mtbf : float;  (** mean time between failures (s) *)
  mttr : float;  (** mean time to repair (s) *)
}

(** A crash/restart schedule: [(down_at, up_at)] intervals during which the
    node is dead, in increasing time order, non-overlapping,
    with [0 < down_at < up_at]. *)
type schedule = (float * float) list

(** A named time-varying network partition: over [\[cut_at, heal_at)] the
    endpoint set is split into [groups], and every message between
    endpoints of different groups is dropped. Endpoints not listed in any
    group (including client endpoints) form one implicit extra group, so a
    two-group split of a 4-node cluster is written [\[\[0;1\];\[2;3\]\]] and
    never cuts clients off the front end (client traffic uses the
    un-faulted [transfer] path anyway). Groups must be disjoint; several
    partitions may overlap in time and compose — a message is dropped if
    {e any} active partition separates its endpoints. *)
type partition = {
  pname : string;  (** label for traces and sweep tables *)
  groups : int list list;  (** disjoint, non-empty endpoint groups *)
  cut_at : float;  (** the split starts (s), [>= 0] *)
  heal_at : float;  (** the split heals (s), [> cut_at] *)
}

(** Rolling membership churn: a sustained cluster-wide stream of
    leave/rejoin events at [churn_rate] events per second, dealt
    round-robin over the nodes so membership keeps turning over instead
    of failing in one burst — the regime that exercises shard handoff and
    anti-entropy continuously. Each leave lasts [churn_downtime] seconds.
    With [churn_poisson] (the default) both the inter-event gaps and the
    downtimes are exponential with those means; without it they are fixed,
    giving a strictly periodic rolling restart. No event is generated
    before [churn_start]. Churn composes with [node]/[node_schedules]: the
    downtime intervals are unioned per node. *)
type churn = {
  churn_rate : float;  (** leave events per second, cluster-wide, [> 0] *)
  churn_downtime : float;  (** (mean) downtime per leave (s), [> 0] *)
  churn_poisson : bool;  (** exponential gaps/downtimes vs. fixed period *)
  churn_start : float;  (** first event no earlier than this (s), [>= 0] *)
}

(** [churn ()] builds a churn spec; defaults: [rate = 0.1] (one leave
    every 10 s somewhere in the cluster), [downtime = 2 s],
    [poisson = true], [start = 0.]. *)
val churn :
  ?rate:float ->
  ?downtime:float ->
  ?poisson:bool ->
  ?start:float ->
  unit ->
  churn

(** What an experiment asks for. [link] applies to every ordered pair of
    distinct endpoints unless overridden in [link_overrides] (keyed by
    [(src, dst)]). [node], when set, gives every node a stochastic crash
    schedule generated over [\[0, horizon)]; [node_schedules] pins explicit
    schedules for individual nodes instead (useful for deterministic
    tests), taking precedence over [node]. [partitions] lists the
    time-varying splits; they compose with the link profiles (a message
    surviving every active partition still runs the link's drop/delay
    gauntlet). [churn], when set, adds the rolling leave/rejoin stream on
    top of whatever the other crash sources produce. *)
type profile = {
  link : link_profile;
  link_overrides : ((int * int) * link_profile) list;
  node : node_profile option;
  node_schedules : (int * schedule) list;
  partitions : partition list;
  churn : churn option;
  horizon : float;  (** crash schedules are generated within [\[0, horizon)] *)
}

(** [none] is the empty profile: reliable links, no crashes. *)
val none : profile

(** [make ?drop ?delay ?delay_mean ?link_overrides ?node ?node_schedules
    ?horizon ()] builds a profile; defaults are the fields of {!none}
    ([horizon] defaults to [3600.]). *)
val make :
  ?drop:float ->
  ?delay:float ->
  ?delay_mean:float ->
  ?link_overrides:((int * int) * link_profile) list ->
  ?node:node_profile ->
  ?node_schedules:(int * schedule) list ->
  ?partitions:partition list ->
  ?churn:churn ->
  ?horizon:float ->
  unit ->
  profile

(** [is_lossy p] is [true] when [p] can make a message or a node disappear
    (some drop probability is positive, or some crash behaviour/schedule is
    present). Lossy profiles require a fetch timeout at the server layer,
    or a lost reply would wedge a request thread forever. *)
val is_lossy : profile -> bool

(** [validate p] raises [Invalid_argument] unless every probability is in
    [\[0,1\]], every mean and the horizon are positive where required, and
    every explicit schedule is well-formed (ordered, non-overlapping,
    strictly positive times). *)
val validate : profile -> unit

(** {1 Plans} *)

(** The fate of one message, decided at send time. *)
type action =
  | Deliver  (** deliver normally *)
  | Drop  (** silently discard *)
  | Delay of float  (** deliver after this many extra seconds *)

type t
(** An instantiated fault plan with its own fault-trace counters. *)

(** [create p ~rng ~nodes] validates [p] and instantiates it. [nodes] is
    the number of crashable endpoints (endpoint ids [0 .. nodes-1]; higher
    ids — client endpoints — never crash). Crash schedules are derived from
    per-node splits of [rng] in node order (then one further split drives
    the churn stream, taken only when churn is configured), and the
    remainder of [rng] drives per-message draws, so schedules depend only
    on the seed while message fates additionally depend on the
    (deterministic) traffic. *)
val create : profile -> rng:Rng.t -> nodes:int -> t

(** [action t ~src ~dst ~now] decides the fate of a message sent from
    endpoint [src] to endpoint [dst] at time [now]: [Drop] if either
    endpoint is down or an active partition separates them, otherwise the
    link's stochastic fate. Draws no random numbers on an all-zero link
    (down-node and partition checks are deterministic); counts every drop
    and delay. *)
val action : t -> src:int -> dst:int -> now:float -> action

(** [node_down t ~node ~now] is [true] while [node] is inside one of its
    crash intervals. Always [false] for endpoints [>= nodes]. *)
val node_down : t -> node:int -> now:float -> bool

(** [schedule t ~node] is [node]'s crash/restart schedule (empty when the
    node never crashes). *)
val schedule : t -> node:int -> schedule

(** [partitioned t ~src ~dst ~now] is [true] while some partition active at
    [now] places [src] and [dst] in different groups. Draws nothing. *)
val partitioned : t -> src:int -> dst:int -> now:float -> bool

(** [partitions t] is the plan's partition list, in profile order — the
    server layer schedules heal events from the [heal_at] instants. *)
val partitions : t -> partition list

(** {1 Fault-trace counters} *)

(** [drops t] counts messages discarded by the plan, whether by link loss
    or because an endpoint was down. *)
val drops : t -> int

(** [drops_down t] counts only the discards due to a down endpoint. *)
val drops_down : t -> int

(** [drops_partition t] counts only the discards due to an active
    partition separating the endpoints. *)
val drops_partition : t -> int

(** [drops_link t] counts only the stochastic per-link discards;
    [drops t = drops_down t + drops_partition t + drops_link t] always. *)
val drops_link : t -> int

(** [delays t] counts messages given extra delay. *)
val delays : t -> int

(** [delay_injected t] is the total extra delay added so far, in seconds. *)
val delay_injected : t -> float
