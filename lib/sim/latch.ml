type t = { mutable count : int; mutable waiters : unit Engine.resumer list }

let create n =
  if n < 0 then invalid_arg "Latch.create: negative count";
  { count = n; waiters = [] }

let arrive t =
  if t.count <= 0 then invalid_arg "Latch.arrive: already at zero";
  t.count <- t.count - 1;
  if t.count = 0 then begin
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter (fun w -> Engine.resume w ()) ws
  end

let wait t =
  if t.count > 0 then
    Engine.suspend (fun resume -> t.waiters <- resume :: t.waiters)

let remaining t = t.count
