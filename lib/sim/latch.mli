(** Countdown latch: experiment controllers use it to wait for a fleet of
    client processes to finish before tearing daemons down. *)

type t

(** [create n] expects [n >= 0] arrivals. *)
val create : int -> t

(** [arrive t] records one arrival; wakes waiters when the count hits 0.
    Raises [Invalid_argument] on extra arrivals. *)
val arrive : t -> unit

(** [wait t] blocks until the count reaches 0 (immediate if already 0). *)
val wait : t -> unit

(** [remaining t] is the number of arrivals still expected. *)
val remaining : t -> int
