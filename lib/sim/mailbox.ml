type 'a waiter = { mutable active : bool; resume : 'a option Engine.resumer }

type 'a t = {
  items : 'a Queue.t;
  waiting : 'a waiter Queue.t;
  on_wait : (float -> unit) option;
  on_depth : (int -> unit) option;
}

let create ?on_wait ?on_depth () =
  { items = Queue.create (); waiting = Queue.create (); on_wait; on_depth }

let waited t dt = match t.on_wait with None -> () | Some f -> f dt

(* Pop the first waiter that has not timed out. *)
let rec take_waiter t =
  match Queue.take_opt t.waiting with
  | None -> None
  | Some w -> if w.active then Some w else take_waiter t

(* [send] runs in engine-event context too (timer actions, resumers), so
   it must never read the process clock; depth observation only inspects
   the queue. *)
let send t v =
  (match take_waiter t with
  | Some w ->
      w.active <- false;
      Engine.resume w.resume (Some v)
  | None -> Queue.push v t.items);
  match t.on_depth with None -> () | Some f -> f (Queue.length t.items)

let recv t =
  match Queue.take_opt t.items with
  | Some v ->
      waited t 0.;
      v
  | None -> (
      let t0 = match t.on_wait with None -> 0. | Some _ -> Engine.now () in
      let got =
        Engine.suspend (fun resume ->
            Queue.push { active = true; resume } t.waiting)
      in
      match got with
      | Some v ->
          (match t.on_wait with
          | None -> ()
          | Some f -> f (Engine.now () -. t0));
          v
      | None -> assert false (* plain waiters are only resumed by send *))

let recv_timeout t ~timeout =
  if timeout < 0. then invalid_arg "Mailbox.recv_timeout: negative timeout";
  match Queue.take_opt t.items with
  | Some v ->
      waited t 0.;
      Some v
  | None ->
      let engine = Engine.self_engine () in
      let t0 = match t.on_wait with None -> 0. | Some _ -> Engine.now () in
      let got =
        Engine.suspend (fun resume ->
            let w = { active = true; resume } in
            Queue.push w t.waiting;
            ignore
              (Engine.schedule_after engine timeout (fun () ->
                   if w.active then begin
                     w.active <- false;
                     Engine.resume w.resume None
                   end)
                : Engine.handle))
      in
      (match t.on_wait with
      | None -> ()
      | Some f -> f (Engine.now () -. t0));
      got

let try_recv t = Queue.take_opt t.items
let length t = Queue.length t.items

let receivers t =
  Queue.fold (fun acc w -> if w.active then acc + 1 else acc) 0 t.waiting
