type 'a waiter = { mutable active : bool; resume : 'a option Engine.resumer }

type 'a t = { items : 'a Queue.t; waiting : 'a waiter Queue.t }

let create () = { items = Queue.create (); waiting = Queue.create () }

(* Pop the first waiter that has not timed out. *)
let rec take_waiter t =
  match Queue.take_opt t.waiting with
  | None -> None
  | Some w -> if w.active then Some w else take_waiter t

let send t v =
  match take_waiter t with
  | Some w ->
      w.active <- false;
      w.resume (Some v)
  | None -> Queue.push v t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> (
      let got =
        Engine.suspend (fun resume ->
            Queue.push { active = true; resume } t.waiting)
      in
      match got with
      | Some v -> v
      | None -> assert false (* plain waiters are only resumed by send *))

let recv_timeout t ~timeout =
  if timeout < 0. then invalid_arg "Mailbox.recv_timeout: negative timeout";
  match Queue.take_opt t.items with
  | Some v -> Some v
  | None ->
      let engine = Engine.self_engine () in
      Engine.suspend (fun resume ->
          let w = { active = true; resume } in
          Queue.push w t.waiting;
          ignore
            (Engine.schedule_after engine timeout (fun () ->
                 if w.active then begin
                   w.active <- false;
                   w.resume None
                 end)
              : Engine.handle))

let try_recv t = Queue.take_opt t.items
let length t = Queue.length t.items

let receivers t =
  Queue.fold (fun acc w -> if w.active then acc + 1 else acc) 0 t.waiting
