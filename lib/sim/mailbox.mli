(** Unbounded typed FIFO channel between simulated processes.

    [send] never blocks; [recv] blocks until a message is available.
    Receivers are served in FIFO order, so a pool of request threads
    blocking on one mailbox behaves like worker threads taking turns on a
    listen socket (paper §4.1). *)

type 'a t

(** [create ()] is a fresh, empty mailbox. *)
val create : unit -> 'a t

(** [send mb v] enqueues [v], waking the longest-waiting receiver if any. *)
val send : 'a t -> 'a -> unit

(** [recv mb] dequeues the next message, blocking while empty. *)
val recv : 'a t -> 'a

(** [recv_timeout mb ~timeout] is {!recv} bounded by [timeout >= 0]
    simulated seconds: [None] if nothing arrived in time. A message and
    the timeout expiring at the same instant resolve in event order. *)
val recv_timeout : 'a t -> timeout:float -> 'a option

(** [try_recv mb] dequeues without blocking. *)
val try_recv : 'a t -> 'a option

(** [length mb] is the number of queued (unconsumed) messages. *)
val length : 'a t -> int

(** [receivers mb] is the number of processes blocked in {!recv}. *)
val receivers : 'a t -> int
