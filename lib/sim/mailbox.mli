(** Unbounded typed FIFO channel between simulated processes.

    [send] never blocks; [recv] blocks until a message is available.
    Receivers are served in FIFO order, so a pool of request threads
    blocking on one mailbox behaves like worker threads taking turns on a
    listen socket (paper §4.1). *)

type 'a t

(** [create ?on_wait ?on_depth ()] is a fresh, empty mailbox. [on_wait],
    if given, is called once per completed receive with the simulated
    time the receiver spent blocked ([0.] when a message was already
    queued) — including timed-out receives, where it records the full
    timeout. [on_depth] is called after every {!send} with the resulting
    backlog of unconsumed messages ([0] when the message was handed
    straight to a waiting receiver). Both must only record: they run on
    the hot path ([on_depth] possibly in engine-event context) and must
    not block or schedule. *)
val create :
  ?on_wait:(float -> unit) -> ?on_depth:(int -> unit) -> unit -> 'a t

(** [send mb v] enqueues [v], waking the longest-waiting receiver if any. *)
val send : 'a t -> 'a -> unit

(** [recv mb] dequeues the next message, blocking while empty. *)
val recv : 'a t -> 'a

(** [recv_timeout mb ~timeout] is {!recv} bounded by [timeout >= 0]
    simulated seconds: [None] if nothing arrived in time. A message and
    the timeout expiring at the same instant resolve in event order. *)
val recv_timeout : 'a t -> timeout:float -> 'a option

(** [try_recv mb] dequeues without blocking. *)
val try_recv : 'a t -> 'a option

(** [length mb] is the number of queued (unconsumed) messages. *)
val length : 'a t -> int

(** [receivers mb] is the number of processes blocked in {!recv}. *)
val receivers : 'a t -> int
