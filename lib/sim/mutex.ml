type t = {
  mutable held : bool;
  queue : unit Engine.resumer Queue.t;
  observe : (wait:float -> depth:int -> unit) option;
}

let create ?observe () = { held = false; queue = Queue.create (); observe }

let observed t ~wait ~depth =
  match t.observe with None -> () | Some f -> f ~wait ~depth

let lock t =
  if not t.held then begin
    t.held <- true;
    observed t ~wait:0. ~depth:0
  end
  else begin
    let depth = Queue.length t.queue in
    match t.observe with
    | None -> Engine.suspend (fun resume -> Queue.push resume t.queue)
    | Some _ ->
        (* Contended path: the caller is a process, so reading the clock
           before and after the suspension is safe. *)
        let t0 = Engine.now () in
        Engine.suspend (fun resume -> Queue.push resume t.queue);
        observed t ~wait:(Engine.now () -. t0) ~depth
  end

let try_lock t =
  if t.held then false
  else begin
    t.held <- true;
    true
  end

let unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  match Queue.take_opt t.queue with
  | Some r -> Engine.resume r () (* lock stays held, ownership transfers *)
  | None -> t.held <- false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e

let locked t = t.held
let waiters t = Queue.length t.queue
