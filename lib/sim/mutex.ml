type t = { mutable held : bool; queue : unit Engine.resumer Queue.t }

let create () = { held = false; queue = Queue.create () }

let lock t =
  if not t.held then t.held <- true
  else Engine.suspend (fun resume -> Queue.push resume t.queue)

let try_lock t =
  if t.held then false
  else begin
    t.held <- true;
    true
  end

let unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  match Queue.take_opt t.queue with
  | Some resume -> resume () (* lock stays held, ownership transfers *)
  | None -> t.held <- false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e

let locked t = t.held
let waiters t = Queue.length t.queue
