(** Mutual-exclusion lock for simulated processes (FIFO hand-off). *)

type t

(** [create ()] is a fresh, unlocked mutex. *)
val create : unit -> t

(** [lock m] blocks the calling process until the lock is held. *)
val lock : t -> unit

(** [try_lock m] acquires without blocking; [true] on success. *)
val try_lock : t -> bool

(** [unlock m] releases and hands the lock to the longest waiter, if any.
    Raises [Invalid_argument] if the lock is not held. *)
val unlock : t -> unit

(** [with_lock m f] runs [f ()] holding the lock, releasing on exception. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** [locked m] is [true] while some process holds the lock. *)
val locked : t -> bool

(** [waiters m] is the number of processes queued in {!lock}. *)
val waiters : t -> int
