(** Mutual-exclusion lock for simulated processes (FIFO hand-off). *)

type t

val create : unit -> t

(** [lock m] blocks the calling process until the lock is held. *)
val lock : t -> unit

(** [try_lock m] acquires without blocking; [true] on success. *)
val try_lock : t -> bool

(** [unlock m] releases and hands the lock to the longest waiter, if any.
    Raises [Invalid_argument] if the lock is not held. *)
val unlock : t -> unit

(** [with_lock m f] runs [f ()] holding the lock, releasing on exception. *)
val with_lock : t -> (unit -> 'a) -> 'a

val locked : t -> bool
val waiters : t -> int
