(** Mutual-exclusion lock for simulated processes (FIFO hand-off). *)

type t

(** [create ?observe ()] is a fresh, unlocked mutex. [observe], if given,
    is called once per {!lock} acquisition with the simulated time spent
    waiting ([0.] on the uncontended fast path) and the number of waiters
    already queued when the attempt began. It must only record — it runs
    inside the acquiring process and must not block or schedule. *)
val create : ?observe:(wait:float -> depth:int -> unit) -> unit -> t

(** [lock m] blocks the calling process until the lock is held. *)
val lock : t -> unit

(** [try_lock m] acquires without blocking; [true] on success. *)
val try_lock : t -> bool

(** [unlock m] releases and hands the lock to the longest waiter, if any.
    Raises [Invalid_argument] if the lock is not held. *)
val unlock : t -> unit

(** [with_lock m f] runs [f ()] holding the lock, releasing on exception. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** [locked m] is [true] while some process holds the lock. *)
val locked : t -> bool

(** [waiters m] is the number of processes queued in {!lock}. *)
val waiters : t -> int
