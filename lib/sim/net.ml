type t = {
  engine : Engine.t;
  lat : float;
  extra : (int -> float) option;  (* per-endpoint extra one-way latency *)
  bandwidth : float;
  loss : float;
  rng : Rng.t option;
  fault : Fault.t option;
  nics : Mutex.t array;
  mutable n_messages : int;
  mutable n_bytes : int;
  mutable n_lost : int;
}

let create ?(latency = 0.0002) ?extra_latency ?(bandwidth = 12.5e6)
    ?(loss = 0.) ?rng ?fault engine ~n_endpoints =
  if n_endpoints < 1 then invalid_arg "Net.create: need at least one endpoint";
  if bandwidth <= 0. then invalid_arg "Net.create: bandwidth must be positive";
  if loss < 0. || loss > 1. then invalid_arg "Net.create: loss out of [0,1]";
  if loss > 0. && rng = None then
    invalid_arg "Net.create: positive loss needs an rng";
  {
    engine;
    lat = latency;
    extra = extra_latency;
    bandwidth;
    loss;
    rng;
    fault;
    nics = Array.init n_endpoints (fun _ -> Mutex.create ());
    n_messages = 0;
    n_bytes = 0;
    n_lost = 0;
  }

(* One-way flight time between two endpoints; without per-endpoint extras
   this is exactly [lat], leaving the default path untouched. *)
let one_way t ~src ~dst =
  match t.extra with None -> t.lat | Some f -> t.lat +. f src +. f dst

let dropped t =
  t.loss > 0.
  &&
  match t.rng with
  | Some rng ->
      if Rng.float rng < t.loss then begin
        t.n_lost <- t.n_lost + 1;
        true
      end
      else false
  | None -> false

(* Consult the fault plan for one inter-host message. Counts plan-induced
   drops in [n_lost] alongside the legacy uniform-loss drops. *)
let fault_action t ~src ~dst =
  match t.fault with
  | None -> Fault.Deliver
  | Some f -> (
      match Fault.action f ~src ~dst ~now:(Engine.current_time t.engine) with
      | Fault.Drop ->
          t.n_lost <- t.n_lost + 1;
          Fault.Drop
      | (Fault.Deliver | Fault.Delay _) as a -> a)

let check_endpoint t who = if who < 0 || who >= Array.length t.nics then
    invalid_arg "Net: endpoint out of range"

let tx_time t bytes = float_of_int bytes /. t.bandwidth

let account t bytes =
  t.n_messages <- t.n_messages + 1;
  t.n_bytes <- t.n_bytes + bytes

let send t ~src ~dst ~bytes mailbox msg =
  check_endpoint t src;
  check_endpoint t dst;
  if bytes < 0 then invalid_arg "Net.send: negative size";
  account t bytes;
  if src = dst then Mailbox.send mailbox msg
  else begin
    (* Serialise through the sender's NIC, then fly for [lat]. *)
    Mutex.with_lock t.nics.(src) (fun () -> Engine.delay (tx_time t bytes));
    if not (dropped t) then
      match fault_action t ~src ~dst with
      | Fault.Drop -> ()
      | Fault.Deliver | Fault.Delay _ as a ->
          let extra = match a with Fault.Delay d -> d | _ -> 0. in
          ignore
            (Engine.schedule_after t.engine
               (one_way t ~src ~dst +. extra)
               (fun () -> Mailbox.send mailbox msg)
              : Engine.handle)
  end

let post t ~src ~dst ~bytes mailbox msg =
  check_endpoint t src;
  check_endpoint t dst;
  if bytes < 0 then invalid_arg "Net.post: negative size";
  account t bytes;
  if src = dst then Mailbox.send mailbox msg
  else if not (dropped t) then
    match fault_action t ~src ~dst with
    | Fault.Drop -> ()
    | Fault.Deliver | Fault.Delay _ as a ->
        let extra = match a with Fault.Delay d -> d | _ -> 0. in
        ignore
          (Engine.schedule_after t.engine
             (tx_time t bytes +. one_way t ~src ~dst +. extra)
             (fun () -> Mailbox.send mailbox msg)
            : Engine.handle)

let transfer t ~src ~dst ~bytes =
  check_endpoint t src;
  check_endpoint t dst;
  if bytes < 0 then invalid_arg "Net.transfer: negative size";
  account t bytes;
  if src <> dst then begin
    Mutex.with_lock t.nics.(src) (fun () -> Engine.delay (tx_time t bytes));
    Engine.delay (one_way t ~src ~dst)
  end

let latency t = t.lat
let messages_sent t = t.n_messages
let bytes_sent t = t.n_bytes
let messages_lost t = t.n_lost
