(** Switched-LAN network model.

    Messages between nodes experience a fixed one-way latency plus a
    transmission time [bytes / bandwidth] serialised through the sender's
    NIC (a switched 100 Mbit Ethernet, as in the paper's testbed, has no
    shared-medium contention, but each host's link is a serial resource).

    Deliveries are asynchronous: {!send} returns immediately on the sender's
    timeline and the message arrives in the destination mailbox later.
    {!transfer} is the blocking variant used to model a request/reply byte
    stream from the caller's point of view. *)

type t

val create :
  ?latency:float ->
  ?extra_latency:(int -> float) ->
  ?bandwidth:float ->
  ?loss:float ->
  ?rng:Rng.t ->
  ?fault:Fault.t ->
  Engine.t ->
  n_endpoints:int ->
  t
(** Defaults: [latency = 0.2 ms] one-way, [bandwidth = 12.5 MB/s]
    (100 Mbit/s). [n_endpoints] sizes the per-host NIC resources; endpoint
    ids are [0 .. n_endpoints-1].

    [extra_latency], when given, maps an endpoint id to extra one-way
    latency: a message (or {!transfer}) between [src] and [dst] flies for
    [latency + extra_latency src + extra_latency dst] — how geo-tiered
    client populations put WAN distance on their links while the cluster
    LAN keeps the base latency. Omitted (the default), the delivery path
    is exactly the fixed-latency behaviour.

    [loss] (default [0.]) is the probability that a {!send}/{!post}
    message is silently dropped after transmission — for failure-injection
    experiments ([rng] required when positive; loopback and blocking
    {!transfer}s never drop, mirroring TCP's reliability for established
    streams vs. datagram-style notifications).

    [fault] attaches a {!Fault} plan: every inter-host {!send}/{!post} asks
    the plan for its fate — delivered, silently dropped (link loss or a
    down endpoint), or delivered after extra delay. Loopback messages and
    {!transfer}s are never faulted, for the same TCP-vs-datagram reason as
    [loss]. Without a plan (or with a zero plan) the delivery path is
    identical to the pre-fault behaviour. *)

(** [send net ~src ~dst ~bytes mailbox msg] transmits asynchronously:
    occupies [src]'s NIC for the transmission time, then delivers [msg] to
    [mailbox] after the latency. Must be called from a process. *)
val send : t -> src:int -> dst:int -> bytes:int -> 'a Mailbox.t -> 'a -> unit

(** [post net ~src ~dst ~bytes mailbox msg] is {!send} usable from outside a
    process (e.g. experiment setup): the NIC occupancy is approximated by
    scheduling delivery after transmission + latency without blocking. *)
val post : t -> src:int -> dst:int -> bytes:int -> 'a Mailbox.t -> 'a -> unit

(** [transfer net ~src ~dst ~bytes] blocks the calling process for the full
    transfer of [bytes] from [src] to [dst] (transmission + latency). *)
val transfer : t -> src:int -> dst:int -> bytes:int -> unit

(** [latency t] is the configured one-way latency in seconds. *)
val latency : t -> float

(** [messages_sent t] counts every {!send}/{!post}/{!transfer}, including
    loopback and dropped messages. *)
val messages_sent : t -> int

(** [bytes_sent t] is the total payload bytes across all messages. *)
val bytes_sent : t -> int

(** [messages_lost t] counts drops, whether due to [loss] or to the
    [fault] plan. *)
val messages_lost : t -> int
