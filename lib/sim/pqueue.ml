(* Generic binary min-heap plus a specialised timestamped variant.

   Both heaps sift with a "hole" rather than by swapping: the moving
   element is held aside while ancestors (or descendants) shift into the
   hole, and is written exactly once at its final position. The
   comparison sequence — and therefore the resulting array layout and
   pop order — is identical to the classic swap formulation, so
   switching costs nothing in reproducibility and saves two writes per
   level. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.data

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

(* Popping far below capacity halves the array (never under 16 slots).
   The shrink threshold is a quarter of capacity while growth doubles at
   full capacity, so a push/pop sequence oscillating around a boundary
   cannot thrash. Unused slots are filled with a live element, never the
   popped ones. *)
let maybe_shrink t =
  let cap = Array.length t.data in
  if cap > 16 && t.size * 4 < cap then begin
    let ncap = Stdlib.max 16 (cap / 2) in
    let ndata = Array.make ncap t.data.(0) in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t x =
  grow t x;
  let data = t.data in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.cmp x data.(parent) < 0 then begin
      data.(!i) <- data.(parent);
      i := parent
    end
    else continue_ := false
  done;
  data.(!i) <- x

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let data = t.data in
    let top = data.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let moved = data.(n) in
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 in
        if l >= n then continue_ := false
        else begin
          let r = l + 1 in
          let c = if r < n && t.cmp data.(r) data.(l) < 0 then r else l in
          if t.cmp data.(c) moved < 0 then begin
            data.(!i) <- data.(c);
            i := c
          end
          else continue_ := false
        end
      done;
      data.(!i) <- moved;
      (* Clear the freed slot by aliasing a live element, so the popped
         value itself is no longer reachable from the heap. *)
      data.(n) <- data.(0);
      maybe_shrink t
    end
    else
      (* Heap drained: release the whole array. *)
      t.data <- [||];
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let drain t f =
  let rec loop () =
    match pop t with
    | None -> ()
    | Some x ->
        f x;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Timestamped heap: the engine's event queue.

   Keys are (time, seq) pairs kept in parallel unboxed arrays — a
   [float array] and an [int array] — beside the payload array, so
   ordering an event costs two flat array reads and an inlined compare:
   no closure call, no boxed float per element, no [option] allocation
   on the pop path. Payload slots freed by [pop_min]/[compact] are
   overwritten with the dummy element so dead payloads are never
   retained. *)

module Timed = struct
  type 'a t = {
    dummy : 'a;
    mutable times : float array;
    mutable seqs : int array;
    mutable data : 'a array;
    mutable size : int;
  }

  let create ~dummy () =
    { dummy; times = [||]; seqs = [||]; data = [||]; size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0
  let capacity t = Array.length t.times

  let grow t =
    let cap = Array.length t.times in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let ntimes = Array.make ncap 0. in
      let nseqs = Array.make ncap 0 in
      let ndata = Array.make ncap t.dummy in
      Array.blit t.times 0 ntimes 0 t.size;
      Array.blit t.seqs 0 nseqs 0 t.size;
      Array.blit t.data 0 ndata 0 t.size;
      t.times <- ntimes;
      t.seqs <- nseqs;
      t.data <- ndata
    end

  (* (time, seq) lexicographic order; seq is expected to be unique, so
     the order is total and pop order is fully deterministic. *)

  let push t ~time ~seq x =
    grow t;
    let times = t.times and seqs = t.seqs and data = t.data in
    let i = ref t.size in
    t.size <- t.size + 1;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let p = (!i - 1) / 2 in
      let tp = times.(p) in
      if tp > time || (tp = time && seqs.(p) > seq) then begin
        times.(!i) <- tp;
        seqs.(!i) <- seqs.(p);
        data.(!i) <- data.(p);
        i := p
      end
      else continue_ := false
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    data.(!i) <- x

  let min_time t =
    if t.size = 0 then invalid_arg "Pqueue.Timed.min_time: empty heap";
    t.times.(0)

  let peek_min t =
    if t.size = 0 then invalid_arg "Pqueue.Timed.peek_min: empty heap";
    t.data.(0)

  (* Sift the (time, seq, payload) triple down from the hole at [i],
     assuming children below [i] already satisfy the heap property. *)
  let sift_down t i ~mtime ~mseq ~mx =
    let times = t.times and seqs = t.seqs and data = t.data in
    let n = t.size in
    let i = ref i in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= n then continue_ := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (times.(r) < times.(l)
               || (times.(r) = times.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if times.(c) < mtime || (times.(c) = mtime && seqs.(c) < mseq) then begin
          times.(!i) <- times.(c);
          seqs.(!i) <- seqs.(c);
          data.(!i) <- data.(c);
          i := c
        end
        else continue_ := false
      end
    done;
    times.(!i) <- mtime;
    seqs.(!i) <- mseq;
    data.(!i) <- mx

  let pop_min t =
    if t.size = 0 then invalid_arg "Pqueue.Timed.pop_min: empty heap";
    let data = t.data in
    let top = data.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let mtime = t.times.(n) and mseq = t.seqs.(n) and mx = data.(n) in
      data.(n) <- t.dummy;
      sift_down t 0 ~mtime ~mseq ~mx
    end
    else data.(0) <- t.dummy;
    top

  (* Drop every element [keep] rejects, then re-establish the heap
     property bottom-up in O(n). Survivors keep their (time, seq) keys,
     so the pop order of the survivors is unchanged. *)
  let compact t ~keep =
    let n = t.size in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keep t.data.(i) then begin
        if !j < i then begin
          t.times.(!j) <- t.times.(i);
          t.seqs.(!j) <- t.seqs.(i);
          t.data.(!j) <- t.data.(i)
        end;
        incr j
      end
    done;
    for i = !j to n - 1 do
      t.data.(i) <- t.dummy
    done;
    t.size <- !j;
    for i = ((!j - 2) / 2) downto 0 do
      let mtime = t.times.(i) and mseq = t.seqs.(i) and mx = t.data.(i) in
      sift_down t i ~mtime ~mseq ~mx
    done

  let clear t =
    t.times <- [||];
    t.seqs <- [||];
    t.data <- [||];
    t.size <- 0
end
