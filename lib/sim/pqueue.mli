(** Array-based binary min-heap, the event queue of the simulation engine.

    Elements are ordered by a comparison supplied at creation; ties are
    broken by insertion order only if the comparison says so (the engine
    encodes a sequence number in its keys for this purpose). *)

type 'a t

(** [create ~cmp] returns an empty heap ordered by [cmp] (min first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** [length h] is the number of elements held. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [push h x] inserts [x]. Amortised O(log n). *)
val push : 'a t -> 'a -> unit

(** [peek h] returns the minimum without removing it. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum. *)
val pop : 'a t -> 'a option

(** [clear h] removes every element. *)
val clear : 'a t -> unit

(** [drain h f] pops every element in order, applying [f]. *)
val drain : 'a t -> ('a -> unit) -> unit
