(** Array-based binary min-heaps for the simulation engine.

    The generic heap orders elements by a comparison supplied at
    creation; ties are broken by insertion order only if the comparison
    says so. The {!Timed} variant is specialised for the engine's event
    queue: keys are (time, sequence) pairs held in parallel unboxed
    arrays, so the inner loop performs no closure calls and allocates
    nothing.

    Both heaps overwrite freed slots, so popped elements are not
    retained, and the generic heap releases capacity as it drains. *)

type 'a t

(** [create ~cmp] returns an empty heap ordered by [cmp] (min first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** [length h] is the number of elements held. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [capacity h] is the current backing-array size (for leak tests). *)
val capacity : 'a t -> int

(** [push h x] inserts [x]. Amortised O(log n). *)
val push : 'a t -> 'a -> unit

(** [peek h] returns the minimum without removing it. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum. The freed slot is
    overwritten and the backing array shrinks once occupancy falls below
    a quarter of capacity, so drained heaps do not pin dead elements or
    peak-size arrays. *)
val pop : 'a t -> 'a option

(** [clear h] removes every element and releases the backing array. *)
val clear : 'a t -> unit

(** [drain h f] pops every element in order, applying [f]. *)
val drain : 'a t -> ('a -> unit) -> unit

(** Min-heap keyed by (time, sequence), specialised for the engine's
    event loop. Times and sequence numbers live in parallel [float
    array] / [int array] columns, so comparisons in the sift loops are
    branch-predictable flat-array reads — no polymorphic compare, no
    closure dispatch, no boxed floats, and no [option] allocation on the
    pop path. *)
module Timed : sig
  type 'a t

  (** [create ~dummy ()] returns an empty heap. [dummy] fills freed and
      never-used payload slots so the heap retains no popped element. *)
  val create : dummy:'a -> unit -> 'a t

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  (** [capacity h] is the backing-array size (leak tests, telemetry). *)
  val capacity : 'a t -> int

  (** [push h ~time ~seq x] inserts [x] keyed by [(time, seq)].
      Sequence numbers must be unique for deterministic pop order. *)
  val push : 'a t -> time:float -> seq:int -> 'a -> unit

  (** [min_time h] is the key time of the minimum element.
      @raise Invalid_argument on an empty heap. *)
  val min_time : 'a t -> float

  (** [peek_min h] is the minimum element, not removed.
      @raise Invalid_argument on an empty heap. *)
  val peek_min : 'a t -> 'a

  (** [pop_min h] removes and returns the minimum element, overwriting
      its slot with [dummy]. @raise Invalid_argument on an empty heap. *)
  val pop_min : 'a t -> 'a

  (** [compact h ~keep] drops every element [keep] rejects (O(n));
      surviving elements keep their keys and relative pop order. Freed
      slots are overwritten with [dummy]. *)
  val compact : 'a t -> keep:('a -> bool) -> unit

  (** [clear h] removes every element and releases the backing arrays. *)
  val clear : 'a t -> unit
end
