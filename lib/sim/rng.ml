type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* 53 high-quality bits scaled into [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value always fits in a non-negative OCaml int.
     Rejection-free: modulo bias is < 2^-38 for bounds below 2^24, far
     under simulation noise. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo +. ((hi -. lo) *. float t)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
