(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from its own [Rng.t],
    obtained by {!split}-ting a root generator seeded per experiment. This
    keeps runs bit-reproducible regardless of component evaluation order. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [split t] derives an independent generator and advances [t]. *)
val split : t -> t

(** [copy t] duplicates the current state without advancing [t]. *)
val copy : t -> t

(** [bits64 t] returns the next raw 64-bit output. *)
val bits64 : t -> int64

(** [float t] draws uniformly from [\[0, 1)]. *)
val float : t -> float

(** [int t bound] draws uniformly from [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t] draws a fair boolean. *)
val bool : t -> bool

(** [range t lo hi] draws uniformly from [\[lo, hi)] as a float.
    Requires [lo <= hi]. *)
val range : t -> float -> float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
