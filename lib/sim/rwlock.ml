type waiter = { kind : [ `Read | `Write ]; resume : unit Engine.resumer }

type t = {
  mutable active_readers : int;
  mutable writer : bool;
  queue : waiter Queue.t;
  mutable rd_count : int;
  mutable wr_count : int;
  observe : (kind:[ `Read | `Write ] -> wait:float -> depth:int -> unit) option;
}

let create ?observe () =
  {
    active_readers = 0;
    writer = false;
    queue = Queue.create ();
    rd_count = 0;
    wr_count = 0;
    observe;
  }

let observed t ~kind ~wait ~depth =
  match t.observe with None -> () | Some f -> f ~kind ~wait ~depth

(* Contended acquisitions read the clock around the suspension; lock calls
   always come from a process (suspend requires one), so this is safe. *)
let blocking_lock t kind =
  let depth = Queue.length t.queue in
  match t.observe with
  | None -> Engine.suspend (fun resume -> Queue.push { kind; resume } t.queue)
  | Some _ ->
      let t0 = Engine.now () in
      Engine.suspend (fun resume -> Queue.push { kind; resume } t.queue);
      observed t ~kind ~wait:(Engine.now () -. t0) ~depth

let rd_lock t =
  if (not t.writer) && Queue.is_empty t.queue then begin
    t.active_readers <- t.active_readers + 1;
    t.rd_count <- t.rd_count + 1;
    observed t ~kind:`Read ~wait:0. ~depth:0
  end
  else blocking_lock t `Read

let wr_lock t =
  if (not t.writer) && t.active_readers = 0 && Queue.is_empty t.queue then begin
    t.writer <- true;
    t.wr_count <- t.wr_count + 1;
    observed t ~kind:`Write ~wait:0. ~depth:0
  end
  else blocking_lock t `Write

(* Admit from the head of the queue: either one writer, or every consecutive
   reader up to the next writer. *)
let release t =
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some { kind = `Write; _ } ->
      if t.active_readers = 0 && not t.writer then begin
        let w = Queue.pop t.queue in
        t.writer <- true;
        t.wr_count <- t.wr_count + 1;
        Engine.resume w.resume ()
      end
  | Some { kind = `Read; _ } ->
      if not t.writer then begin
        let rec admit () =
          match Queue.peek_opt t.queue with
          | Some { kind = `Read; _ } ->
              let w = Queue.pop t.queue in
              t.active_readers <- t.active_readers + 1;
              t.rd_count <- t.rd_count + 1;
              Engine.resume w.resume ();
              admit ()
          | Some { kind = `Write; _ } | None -> ()
        in
        admit ()
      end

let rd_unlock t =
  if t.active_readers <= 0 then invalid_arg "Rwlock.rd_unlock: no reader";
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then release t

let wr_unlock t =
  if not t.writer then invalid_arg "Rwlock.wr_unlock: no writer";
  t.writer <- false;
  release t

let with_rd t f =
  rd_lock t;
  match f () with
  | v ->
      rd_unlock t;
      v
  | exception e ->
      rd_unlock t;
      raise e

let with_wr t f =
  wr_lock t;
  match f () with
  | v ->
      wr_unlock t;
      v
  | exception e ->
      wr_unlock t;
      raise e

let readers t = t.active_readers
let writer_held t = t.writer
let waiters t = Queue.length t.queue
let rd_acquisitions t = t.rd_count
let wr_acquisitions t = t.wr_count
