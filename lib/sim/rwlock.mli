(** Readers-writer lock with FIFO fairness, used to model the table-level
    locks of the replicated cache directory (paper §4.2: table-granularity
    read/write locks minimise contention while bounding lock traffic).

    Fairness: waiters are served in arrival order; a batch of consecutive
    readers at the head of the queue is admitted together. This prevents both
    reader and writer starvation. *)

type t

(** [create ?observe ()] is a fresh, unheld lock. [observe], if given, is
    called once per acquisition with the access kind, the simulated time
    spent waiting ([0.] on the uncontended fast path) and the number of
    waiters already queued when the attempt began. It must only record —
    it runs inside the acquiring process and must not block or
    schedule. *)
val create :
  ?observe:(kind:[ `Read | `Write ] -> wait:float -> depth:int -> unit) ->
  unit ->
  t

(** [rd_lock l] acquires shared access, blocking while a writer holds or
    earlier waiters queue. *)
val rd_lock : t -> unit

(** [rd_unlock l] releases one shared hold, admitting the next waiters
    when the last reader leaves. *)
val rd_unlock : t -> unit

(** [wr_lock l] acquires exclusive access. *)
val wr_lock : t -> unit

(** [wr_unlock l] releases exclusive access and admits the next waiter
    batch (a writer, or a run of consecutive readers). *)
val wr_unlock : t -> unit

(** [with_rd l f] runs [f ()] under a read lock, exception-safe. *)
val with_rd : t -> (unit -> 'a) -> 'a

(** [with_wr l f] runs [f ()] under the write lock, exception-safe. *)
val with_wr : t -> (unit -> 'a) -> 'a

(** [readers l] is the number of processes currently holding read access. *)
val readers : t -> int

(** [writer_held l] is [true] while a writer holds the lock. *)
val writer_held : t -> bool

(** [waiters l] is the number of processes queued for either access. *)
val waiters : t -> int

(** Cumulative read-acquisition count, for the locking-granularity
    ablation. *)
val rd_acquisitions : t -> int

(** Cumulative write-acquisition count. *)
val wr_acquisitions : t -> int
