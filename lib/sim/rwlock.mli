(** Readers-writer lock with FIFO fairness, used to model the table-level
    locks of the replicated cache directory (paper §4.2: table-granularity
    read/write locks minimise contention while bounding lock traffic).

    Fairness: waiters are served in arrival order; a batch of consecutive
    readers at the head of the queue is admitted together. This prevents both
    reader and writer starvation. *)

type t

val create : unit -> t

(** [rd_lock l] acquires shared access, blocking while a writer holds or
    earlier waiters queue. *)
val rd_lock : t -> unit

val rd_unlock : t -> unit

(** [wr_lock l] acquires exclusive access. *)
val wr_lock : t -> unit

val wr_unlock : t -> unit

(** [with_rd l f] / [with_wr l f] run [f] under the lock, exception-safe. *)
val with_rd : t -> (unit -> 'a) -> 'a

val with_wr : t -> (unit -> 'a) -> 'a

val readers : t -> int
val writer_held : t -> bool
val waiters : t -> int

(** Cumulative acquisition counters, for the locking-granularity ablation. *)
val rd_acquisitions : t -> int

val wr_acquisitions : t -> int
