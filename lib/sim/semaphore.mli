(** Counting semaphore for simulated processes (FIFO). *)

type t

(** [create n] starts with [n >= 0] permits. *)
val create : int -> t

(** [acquire s] takes a permit, blocking if none are available. *)
val acquire : t -> unit

(** [try_acquire s] takes a permit without blocking; [true] on success. *)
val try_acquire : t -> bool

(** [release s] returns a permit, waking the longest waiter if any. *)
val release : t -> unit

(** [with_permit s f] runs [f] holding one permit, exception-safe. *)
val with_permit : t -> (unit -> 'a) -> 'a

(** [available s] is the number of free permits. *)
val available : t -> int

(** [waiters s] is the number of processes queued in {!acquire}. *)
val waiters : t -> int
