(* Domain-pool map over independent simulation points.

   The engine is deterministic and entirely self-contained per run (its
   event queue, clock, RNGs and metrics are all per-instance, and the
   "current engine" slot is domain-local), so sweeps — one seed or one
   ablation point per run — are embarrassingly parallel. Workers claim
   indices from a shared atomic counter and write results into their
   claimed slot, so results are merged by point order and the output is
   identical to the sequential map regardless of jobs or scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

exception Worker of exn * Printexc.raw_backtrace

let map ?(jobs = 1) f items =
  let n = Array.length items in
  let jobs = Stdlib.min (Stdlib.max 1 jobs) (Stdlib.max 1 n) in
  if jobs = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failed = None then begin
          (match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              (* Keep the first failure; losers of the race just stop. *)
              ignore
                (Atomic.compare_and_set failed None
                   (Some (e, Printexc.get_raw_backtrace ()))
                  : bool));
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join others;
    (match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace (Worker (e, bt)) bt
    | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* all slots filled *))
      results
  end

let map_list ?jobs f items =
  Array.to_list (map ?jobs f (Array.of_list items))
