(** Multicore sweep runner: a [Domain]-pool map over independent
    simulation points.

    Each engine run is deterministic and self-contained (per-instance
    queue, clock, RNGs, counters; the "current engine" slot is
    domain-local), so running one seed or ablation point per domain is
    safe, and results are merged by point order: the output is
    element-for-element identical to the sequential map, whatever the
    parallelism or scheduling. The workload function must not touch
    shared mutable state of its own. *)

(** [default_jobs ()] is the runtime's recommended domain count for this
    machine — the natural default for [--jobs 0]-style CLI flags. *)
val default_jobs : unit -> int

exception Worker of exn * Printexc.raw_backtrace
(** Wraps the first exception raised by a sweep point; remaining points
    are abandoned. *)

(** [map ~jobs f items] is [Array.map f items], computed by [jobs]
    domains ([jobs <= 1] runs sequentially in the calling domain, no
    domains spawned). Points are claimed dynamically, so uneven point
    costs still load-balance. @raise Worker if any [f] raises. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list] is {!map} over lists. *)
val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
