type row = {
  threshold : float;
  n_long : int;
  total_repeats : int;
  unique_repeats : int;
  time_saved : float;
  saved_fraction : float;
}

let table1 trace ~thresholds =
  let total_service = Trace.total_service trace in
  List.map
    (fun threshold ->
      let counts : (string, int * float) Hashtbl.t = Hashtbl.create 1024 in
      let n_long = ref 0 in
      List.iter
        (fun item ->
          if Trace.is_cgi item then begin
            let t = Trace.service_time item in
            if t >= threshold then begin
              incr n_long;
              let key = Trace.key item in
              let n, _ =
                Option.value (Hashtbl.find_opt counts key) ~default:(0, t)
              in
              Hashtbl.replace counts key (n + 1, t)
            end
          end)
        trace;
      let total_repeats = ref 0 in
      let unique_repeats = ref 0 in
      let time_saved = ref 0. in
      Hashtbl.iter
        (fun _ (n, t) ->
          if n >= 2 then begin
            incr unique_repeats;
            total_repeats := !total_repeats + (n - 1);
            time_saved := !time_saved +. (float_of_int (n - 1) *. t)
          end)
        counts;
      {
        threshold;
        n_long = !n_long;
        total_repeats = !total_repeats;
        unique_repeats = !unique_repeats;
        time_saved = !time_saved;
        saved_fraction =
          (if total_service > 0. then !time_saved /. total_service else 0.);
      })
    thresholds

type summary = {
  n_total : int;
  n_cgi : int;
  cgi_fraction : float;
  total_service : float;
  mean_response : float;
  mean_file_time : float;
  mean_cgi_time : float;
  cgi_time_fraction : float;
  longest : float;
}

let summarize trace =
  let n_total = ref 0 in
  let n_cgi = ref 0 in
  let total = ref 0. in
  let cgi_time = ref 0. in
  let file_time = ref 0. in
  let longest = ref 0. in
  List.iter
    (fun item ->
      incr n_total;
      let t = Trace.service_time item in
      total := !total +. t;
      if t > !longest then longest := t;
      if Trace.is_cgi item then begin
        incr n_cgi;
        cgi_time := !cgi_time +. t
      end
      else file_time := !file_time +. t)
    trace;
  let n_files = !n_total - !n_cgi in
  let safe_div a b = if b = 0 then 0. else a /. float_of_int b in
  {
    n_total = !n_total;
    n_cgi = !n_cgi;
    cgi_fraction =
      (if !n_total = 0 then 0.
       else float_of_int !n_cgi /. float_of_int !n_total);
    total_service = !total;
    mean_response = safe_div !total !n_total;
    mean_file_time = safe_div !file_time n_files;
    mean_cgi_time = safe_div !cgi_time !n_cgi;
    cgi_time_fraction = (if !total > 0. then !cgi_time /. !total else 0.);
    longest = !longest;
  }

let upper_bound_hits trace =
  let seen = Hashtbl.create 1024 in
  let hits = ref 0 in
  List.iter
    (fun item ->
      if Trace.is_cgi item then begin
        let key = Trace.key item in
        if Hashtbl.mem seen key then incr hits else Hashtbl.add seen key ()
      end)
    trace;
  !hits

let pp_row ppf r =
  Format.fprintf ppf
    "threshold=%.1fs long=%d repeats=%d unique=%d saved=%.0fs (%.1f%%)"
    r.threshold r.n_long r.total_repeats r.unique_repeats r.time_saved
    (100. *. r.saved_fraction)
