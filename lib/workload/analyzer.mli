(** Offline access-log analysis (paper §3, Table 1).

    Given a trace with per-request service times, compute — for each
    execution-time threshold — how much total service time a CGI result
    cache of unbounded size would have saved by serving every repeated
    request from cache instead of re-executing it. *)

type row = {
  threshold : float;  (** include CGI requests with service time >= this *)
  n_long : int;  (** number of qualifying requests *)
  total_repeats : int;  (** requests that repeat an earlier qualifying one *)
  unique_repeats : int;  (** cache entries needed to capture all repeats *)
  time_saved : float;  (** execution seconds avoided, assuming free hits *)
  saved_fraction : float;  (** [time_saved] over whole-trace service time *)
}

(** [table1 trace ~thresholds] computes one row per threshold. Only CGI
    requests are candidates (files are never cached, §4.1). *)
val table1 : Trace.t -> thresholds:float list -> row list

(** Aggregate statistics of a trace, mirroring the figures quoted in §3. *)
type summary = {
  n_total : int;
  n_cgi : int;
  cgi_fraction : float;
  total_service : float;
  mean_response : float;
  mean_file_time : float;
  mean_cgi_time : float;
  cgi_time_fraction : float;  (** share of service time spent in CGI *)
  longest : float;
}

val summarize : Trace.t -> summary

(** [upper_bound_hits trace] is the best possible number of cache hits for
    an infinite cache: total CGI requests minus distinct CGI keys (paper
    §5.3's "upper bound"). *)
val upper_bound_hits : Trace.t -> int

val pp_row : Format.formatter -> row -> unit
