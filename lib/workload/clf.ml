type stats = {
  kept : int;
  skipped_method : int;
  skipped_status : int;
  malformed : int;
}

(* Tokenise a CLF line: whitespace-separated, except [bracketed] and
   "quoted" fields which keep their spaces. *)
let tokenize line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match line.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '[' -> (
          match String.index_from_opt line i ']' with
          | None -> Error "unterminated '['"
          | Some j -> go (j + 1) (String.sub line (i + 1) (j - i - 1) :: acc))
      | '"' -> (
          match String.index_from_opt line (i + 1) '"' with
          | None -> Error "unterminated '\"'"
          | Some j -> go (j + 1) (String.sub line (i + 1) (j - i - 1) :: acc))
      | _ ->
          let j = ref i in
          while !j < n && line.[!j] <> ' ' && line.[!j] <> '\t' do
            incr j
          done;
          go !j (String.sub line i (!j - i) :: acc)
  in
  go 0 []

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let parse_line ?(cgi_prefix = "/cgi-bin/") ?(default_cgi_demand = 1.0) ~id line
    =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then Ok None
  else
    match tokenize line with
    | Error e -> Error e
    | Ok tokens -> (
        (* host ident user date request status bytes [service_time] *)
        match tokens with
        | _host :: _ident :: _user :: _date :: request :: status :: bytes
          :: rest -> (
            let service_time =
              match rest with t :: _ -> float_of_string_opt t | [] -> None
            in
            match
              (String.split_on_char ' ' request, int_of_string_opt status)
            with
            | _, None -> Error (Printf.sprintf "bad status %S" status)
            | meth :: target :: _, Some code ->
                if not (String.equal meth "GET") then Ok None
                else if code < 200 || code > 299 then Ok None
                else (
                  match Http.Uri.parse target with
                  | Error e -> Error e
                  | Ok uri ->
                      let out_bytes =
                        match int_of_string_opt bytes with
                        | Some b when b >= 0 -> b
                        | Some _ | None -> 0
                      in
                      if is_prefix ~prefix:cgi_prefix uri.Http.Uri.path then
                        let demand =
                          match service_time with
                          | Some t when t >= 0. -> t
                          | Some _ | None -> default_cgi_demand
                        in
                        Ok
                          (Some
                             {
                               Trace.id;
                               kind =
                                 Trace.Cgi
                                   {
                                     script = uri.Http.Uri.path;
                                     args = uri.Http.Uri.query;
                                     demand;
                                     out_bytes;
                                   };
                             })
                      else
                        Ok
                          (Some
                             {
                               Trace.id;
                               kind =
                                 Trace.File
                                   { path = uri.Http.Uri.path; bytes = out_bytes };
                             }))
            | _, Some _ -> Error (Printf.sprintf "bad request field %S" request))
        | _ -> Error "too few fields")

let to_trace ?cgi_prefix ?default_cgi_demand text =
  let lines = String.split_on_char '\n' text in
  let items = ref [] in
  let kept = ref 0 in
  let skipped_method = ref 0 in
  let skipped_status = ref 0 in
  let malformed = ref 0 in
  let id = ref 0 in
  List.iter
    (fun line ->
      let trimmed = String.trim line in
      if not (String.equal trimmed "" || (String.length trimmed > 0 && trimmed.[0] = '#'))
      then
        match parse_line ?cgi_prefix ?default_cgi_demand ~id:!id line with
        | Ok (Some item) ->
            items := item :: !items;
            incr kept;
            incr id
        | Ok None ->
            (* Distinguish filtered methods from filtered statuses, best
               effort: check the quoted request field. *)
            if
              String.length trimmed > 0
              &&
              match tokenize trimmed with
              | Ok (_ :: _ :: _ :: _ :: request :: _) ->
                  not (is_prefix ~prefix:"GET " request)
              | Ok _ | Error _ -> false
            then incr skipped_method
            else incr skipped_status
        | Error _ -> incr malformed)
    lines;
  ( List.rev !items,
    {
      kept = !kept;
      skipped_method = !skipped_method;
      skipped_status = !skipped_status;
      malformed = !malformed;
    } )

let item_to_line (item : Trace.item) =
  let req = Trace.to_request item in
  let target = Http.Uri.to_string req.Http.Request.uri in
  let bytes =
    match item.Trace.kind with
    | Trace.File { bytes; _ } -> bytes
    | Trace.Cgi { out_bytes; _ } -> out_bytes
  in
  Printf.sprintf
    "client%03d - - [01/Sep/1997:12:%02d:%02d -0700] \"GET %s HTTP/1.0\" 200 %d %.6f"
    (item.Trace.id mod 100)
    (item.Trace.id / 60 mod 60)
    (item.Trace.id mod 60)
    target bytes (Trace.service_time item)
