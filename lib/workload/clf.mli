(** Common Log Format import.

    Real web-server access logs (the kind the paper's §3 study started
    from) arrive in CLF:

    {v
    host ident authuser [date] "GET /path HTTP/1.0" status bytes
    v}

    with an optional trailing service-time field in seconds (several
    servers of the era, and the paper's own re-measurement methodology,
    append one). [to_trace] converts a log into a replayable {!Trace.t}:

    - only successful [GET]s are kept (the paper filters HEAD/POST and
      illegal requests);
    - a request whose path starts with [cgi_prefix] (default
      ["/cgi-bin/"]) becomes a CGI item whose demand is the trailing
      service-time field when present, else [default_cgi_demand];
    - anything else becomes a static file of the logged size. *)

type stats = {
  kept : int;
  skipped_method : int;  (** HEAD/POST/other methods *)
  skipped_status : int;  (** non-2xx responses *)
  malformed : int;  (** unparseable lines *)
}

(** [parse_line ~id line] classifies one log line.
    [Ok None] means a validly skipped line (filtered method/status). *)
val parse_line :
  ?cgi_prefix:string ->
  ?default_cgi_demand:float ->
  id:int ->
  string ->
  (Trace.item option, string) result

(** [to_trace text] converts a whole log, tolerating malformed lines
    (counted, not fatal). *)
val to_trace :
  ?cgi_prefix:string -> ?default_cgi_demand:float -> string -> Trace.t * stats

(** [item_to_line item] renders a trace item back to CLF (with the
    trailing service-time extension) — handy for generating realistic
    -looking logs from the synthetic generators. *)
val item_to_line : Trace.item -> string
