let encode_query args =
  let uri = { Http.Uri.path = "/x"; query = args } in
  match String.index_opt (Http.Uri.to_string uri) '?' with
  | Some i ->
      let s = Http.Uri.to_string uri in
      String.sub s (i + 1) (String.length s - i - 1)
  | None -> ""

let decode_query qs =
  match Http.Uri.parse ("/x?" ^ qs) with
  | Ok uri -> Ok uri.Http.Uri.query
  | Error e -> Error e

let item_to_line (item : Trace.item) =
  match item.Trace.kind with
  | Trace.File { path; bytes } ->
      Printf.sprintf "%d\tFILE\t%s\t%d" item.Trace.id path bytes
  | Trace.Cgi { script; args; demand; out_bytes } ->
      Printf.sprintf "%d\tCGI\t%s\t%s\t%.17g\t%d" item.Trace.id script
        (encode_query args) demand out_bytes

let item_of_line line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char '\t' line with
    | [ id; "FILE"; path; bytes ] -> (
        match (int_of_string_opt id, int_of_string_opt bytes) with
        | Some id, Some bytes ->
            Ok (Some { Trace.id; kind = Trace.File { path; bytes } })
        | _ -> Error (Printf.sprintf "bad FILE line %S" line))
    | [ id; "CGI"; script; qs; demand; out_bytes ] -> (
        match
          ( int_of_string_opt id,
            float_of_string_opt demand,
            int_of_string_opt out_bytes,
            decode_query qs )
        with
        | Some id, Some demand, Some out_bytes, Ok args ->
            Ok
              (Some
                 {
                   Trace.id;
                   kind = Trace.Cgi { script; args; demand; out_bytes };
                 })
        | _, _, _, Error e -> Error (Printf.sprintf "bad query in %S: %s" line e)
        | _ -> Error (Printf.sprintf "bad CGI line %S" line))
    | _ -> Error (Printf.sprintf "unrecognised line %S" line)

let write oc trace =
  output_string oc "# swala trace v1\n";
  List.iter
    (fun item ->
      output_string oc (item_to_line item);
      output_char oc '\n')
    trace

let to_string trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# swala trace v1\n";
  List.iter
    (fun item ->
      Buffer.add_string buf (item_to_line item);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let of_lines lines =
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match item_of_line line with
        | Ok (Some item) -> go (item :: acc) (n + 1) rest
        | Ok None -> go acc (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go [] 1 lines

let of_string s = of_lines (String.split_on_char '\n' s)

let read ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  of_lines (List.rev !lines)
