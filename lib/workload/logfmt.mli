(** Plain-text trace serialisation.

    One line per request, tab-separated:
    {v
    id  FILE  <path>  <bytes>
    id  CGI   <script>  <querystring>  <demand>  <out_bytes>
    v}
    The query string uses URL encoding ([a=1&b=2]). Lines starting with
    ['#'] and blank lines are skipped on input. This is the on-disk format
    consumed by [bin/loganalyze]. *)

val item_to_line : Trace.item -> string
val item_of_line : string -> (Trace.item option, string) result
(** [Ok None] for comments/blank lines. *)

val write : out_channel -> Trace.t -> unit
val read : in_channel -> (Trace.t, string) result

val to_string : Trace.t -> string
val of_string : string -> (Trace.t, string) result
