type flash_crowd = {
  fc_at : float;
  fc_duration : float;
  fc_decay : float;
  fc_fraction : float;
  fc_keys : int;
  fc_zipf_s : float;
  fc_demand : float;
  fc_out_bytes : int;
}

let flash_crowd ~at ~duration ?decay ?(fraction = 0.8) ?(keys = 8)
    ?(zipf_s = 1.0) ?(demand = 1.0) ?(out_bytes = 4096) () =
  {
    fc_at = at;
    fc_duration = duration;
    fc_decay = (match decay with Some d -> d | None -> duration);
    fc_fraction = fraction;
    fc_keys = keys;
    fc_zipf_s = zipf_s;
    fc_demand = demand;
    fc_out_bytes = out_bytes;
  }

type diurnal =
  | Sinusoid of { period : float; trough : float }
  | Piecewise of (float * float) list

type tier = { tier_name : string; rtt : float; weight : float }

let tier ~name ~rtt ~weight = { tier_name = name; rtt; weight }

type t = {
  duration : float;
  flash : flash_crowd option;
  diurnal : diurnal option;
  tiers : tier array;
  (* Precomputed at [make] so [rewrite] is draw-only on the replay path. *)
  flash_zipf : Sim.Dist.Zipf.t option;
}

let duration t = t.duration
let flash t = t.flash
let diurnal t = t.diurnal
let tiers t = t.tiers

let validate t =
  let check cond msg = if not cond then invalid_arg ("Scenario: " ^ msg) in
  check (t.duration > 0.) "duration must be positive";
  (match t.flash with
  | None -> ()
  | Some f ->
      check (f.fc_at >= 0.) "flash fc_at must be >= 0";
      check (f.fc_duration > 0.) "flash fc_duration must be positive";
      check (f.fc_decay >= 0.) "flash fc_decay must be >= 0";
      check
        (f.fc_fraction >= 0. && f.fc_fraction <= 1.)
        "flash fc_fraction must be in [0,1]";
      check (f.fc_keys >= 1) "flash fc_keys must be >= 1";
      check (f.fc_zipf_s >= 0.) "flash fc_zipf_s must be >= 0";
      check (f.fc_demand > 0.) "flash fc_demand must be positive";
      check (f.fc_out_bytes >= 0) "flash fc_out_bytes must be >= 0";
      check (f.fc_at < t.duration) "flash crowd must start inside the run");
  (match t.diurnal with
  | None -> ()
  | Some (Sinusoid { period; trough }) ->
      check (period > 0.) "diurnal period must be positive";
      check (trough >= 0. && trough <= 1.) "diurnal trough must be in [0,1]"
  | Some (Piecewise pts) ->
      check (List.length pts >= 2) "piecewise envelope needs >= 2 breakpoints";
      let times = List.map fst pts and rates = List.map snd pts in
      check (List.hd times = 0.) "piecewise envelope must start at t = 0";
      check
        (List.nth times (List.length times - 1) = t.duration)
        "piecewise envelope must end at the scenario duration";
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      check (increasing times) "piecewise times must be strictly increasing";
      check (List.for_all (fun r -> r >= 0.) rates)
        "piecewise rates must be >= 0";
      check (List.exists (fun r -> r > 0.) rates)
        "piecewise envelope needs a positive rate somewhere");
  check
    (Array.for_all (fun tr -> tr.weight > 0.) t.tiers)
    "tier weights must be positive";
  check (Array.for_all (fun tr -> tr.rtt >= 0.) t.tiers)
    "tier rtt must be >= 0";
  check
    (Array.for_all (fun tr -> tr.tier_name <> "") t.tiers)
    "tier names must be non-empty";
  let names = Array.to_list (Array.map (fun tr -> tr.tier_name) t.tiers) in
  check
    (List.length (List.sort_uniq compare names) = List.length names)
    "tier names must be distinct"

let make ~duration ?flash ?diurnal ?(tiers = []) () =
  let t =
    {
      duration;
      flash;
      diurnal;
      tiers = Array.of_list tiers;
      flash_zipf =
        Option.map
          (fun f -> Sim.Dist.Zipf.make ~n:f.fc_keys ~s:f.fc_zipf_s)
          flash;
    }
  in
  validate t;
  t

(* ------------------------------------------------------------------ *)
(* Phase schedule *)

let phases t =
  match t.flash with
  | None -> [ ("steady", 0., t.duration) ]
  | Some f ->
      let clamp x = Stdlib.min x t.duration in
      let crowd_end = clamp (f.fc_at +. f.fc_duration) in
      let decay_end = clamp (f.fc_at +. f.fc_duration +. f.fc_decay) in
      let segs =
        [
          ("pre", 0., clamp f.fc_at);
          ("crowd", clamp f.fc_at, crowd_end);
          ("decay", crowd_end, decay_end);
          ("post", decay_end, t.duration);
        ]
      in
      List.filter (fun (_, a, b) -> b > a) segs

let phase_of t ~now =
  let ps = phases t in
  let rec go = function
    | [ (name, _, _) ] -> name
    | (name, _, stop) :: rest -> if now < stop then name else go rest
    | [] -> assert false
  in
  go ps

(* ------------------------------------------------------------------ *)
(* Flash crowd *)

let flash_intensity t ~now =
  match t.flash with
  | None -> 0.
  | Some f ->
      if now < f.fc_at then 0.
      else if now < f.fc_at +. f.fc_duration then f.fc_fraction
      else
        let into_decay = now -. f.fc_at -. f.fc_duration in
        if f.fc_decay > 0. && into_decay < f.fc_decay then
          f.fc_fraction *. (1. -. (into_decay /. f.fc_decay))
        else 0.

let crowd_key_prefix = "crowd"

let is_crowd_key key =
  (* Cache keys are "<script>?<args>"; a crowd query is recognised by its
     q= argument. *)
  let marker = "q=" ^ crowd_key_prefix in
  let n = String.length key and m = String.length marker in
  let rec scan i = i + m <= n && (String.sub key i m = marker || scan (i + 1)) in
  scan 0

let rewrite t ~rng ~now item =
  let p = flash_intensity t ~now in
  if p <= 0. then None
  else
    match (item.Trace.kind, t.flash, t.flash_zipf) with
    | Trace.Cgi { out_bytes = _; _ }, Some f, Some zipf ->
        if Sim.Rng.float rng < p then begin
          let rank = Sim.Dist.Zipf.draw zipf rng in
          let demand = f.fc_demand in
          Some
            {
              Trace.id = item.Trace.id;
              kind =
                Trace.Cgi
                  {
                    script = "/cgi-bin/query";
                    args =
                      [
                        ("q", Printf.sprintf "%s%d" crowd_key_prefix rank);
                        ("xd", Printf.sprintf "%.9g" demand);
                        ("xb", string_of_int f.fc_out_bytes);
                      ];
                    demand;
                    out_bytes = f.fc_out_bytes;
                  };
            }
        end
        else None
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Diurnal envelope *)

let envelope_rate t ~now =
  match t.diurnal with
  | None -> 1.
  | Some (Sinusoid { period; trough }) ->
      ((1. +. trough) /. 2.)
      -. ((1. -. trough) /. 2. *. cos (2. *. Float.pi *. now /. period))
  | Some (Piecewise pts) ->
      let rec interp = function
        | (t0, r0) :: ((t1, r1) :: _ as rest) ->
            if now <= t0 then r0
            else if now <= t1 then
              r0 +. ((r1 -. r0) *. (now -. t0) /. (t1 -. t0))
            else interp rest
        | [ (_, r) ] -> r
        | [] -> 1.
      in
      interp pts

(* Cumulative envelope integral over [0, x], closed-form per shape. *)
let cumulative t x =
  match t.diurnal with
  | None -> x
  | Some (Sinusoid { period; trough }) ->
      ((1. +. trough) /. 2. *. x)
      -. (1. -. trough) /. 2.
         *. (period /. (2. *. Float.pi))
         *. sin (2. *. Float.pi *. x /. period)
  | Some (Piecewise pts) ->
      (* Trapezoid sums over the segments below [x]. *)
      let rec go acc = function
        | (t0, r0) :: ((t1, r1) :: _ as rest) ->
            if x <= t0 then acc
            else if x <= t1 then
              let r = r0 +. ((r1 -. r0) *. (x -. t0) /. (t1 -. t0)) in
              acc +. ((r0 +. r) /. 2. *. (x -. t0))
            else go (acc +. ((r0 +. r1) /. 2. *. (t1 -. t0))) rest
        | _ -> acc
      in
      go 0. pts

let arrival_times t ~n =
  match t.diurnal with
  | None -> [||]
  | Some _ ->
      if n <= 0 then [||]
      else begin
        let total = cumulative t t.duration in
        if total <= 0. then invalid_arg "Scenario: envelope integrates to 0";
        Array.init n (fun i ->
            let target = (float_of_int i +. 0.5) /. float_of_int n *. total in
            (* The cumulative is nondecreasing: bisect it. *)
            let lo = ref 0. and hi = ref t.duration in
            for _ = 1 to 50 do
              let mid = (!lo +. !hi) /. 2. in
              if cumulative t mid < target then lo := mid else hi := mid
            done;
            !lo)
      end

(* ------------------------------------------------------------------ *)
(* Geo tiers *)

let n_tiers t = Stdlib.max 1 (Array.length t.tiers)

let tier_of_stream t ~n_streams ~stream =
  let k = Array.length t.tiers in
  if k = 0 then 0
  else begin
    if n_streams < 1 then invalid_arg "Scenario: n_streams must be >= 1";
    if stream < 0 || stream >= n_streams then
      invalid_arg "Scenario: stream out of range";
    let total = Array.fold_left (fun acc tr -> acc +. tr.weight) 0. t.tiers in
    (* Contiguous stream runs, cut at the rounded cumulative weights; the
       last tier absorbs the rounding remainder. *)
    let rec go i cum =
      if i = k - 1 then i
      else
        let cum = cum +. t.tiers.(i).weight in
        let boundary =
          int_of_float (Float.round (cum /. total *. float_of_int n_streams))
        in
        if stream < boundary then i else go (i + 1) cum
    in
    go 0 0.
  end

let tier_extra_latency t i =
  if Array.length t.tiers = 0 then 0. else t.tiers.(i).rtt /. 2.

let tier_name t i =
  if Array.length t.tiers = 0 then Printf.sprintf "tier%d" i
  else t.tiers.(i).tier_name
