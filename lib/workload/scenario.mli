(** Time-varying workload scenarios.

    The seed generators ({!Synthetic}, {!Webstone}) produce {e stationary}
    traces: the key popularity, request mix and client population are the
    same at the end of a replay as at the start. Real traffic is not — demand
    lurches onto a few hot keys (flash crowds), follows daily load curves
    (diurnal cycles), and arrives from client populations at very different
    network distances (geo tiers). A {!t} makes those regimes functions of
    {e virtual time}: it overlays a base trace with

    - a {b flash crowd} — from [fc_at] for [fc_duration] seconds a fraction
      [fc_fraction] of CGI traffic is re-pointed onto a small Zipf-skewed
      head of [fc_keys] crowd queries, then the fraction decays linearly to
      zero over [fc_decay] seconds;
    - a {b diurnal envelope} — a sinusoidal or piecewise-linear arrival-rate
      curve over the run, turned into per-request release times by
      quantile inversion of the cumulative rate (so the envelope integrates
      to exactly the trace's request count);
    - {b geo tiers} — client classes with distinct round-trip times, mapped
      deterministically onto client streams by weight; the runner wires each
      tier's extra one-way latency into the {!Sim.Net} client links and
      reports per-tier response samples and request counters.

    Scenarios are {e opt-in overlays}: a run with no scenario configured
    draws no scenario random numbers, adds no delays and rewrites no items,
    and is byte-identical to a build without this module. All scenario
    randomness comes from generators the caller seeds, so a fixed seed
    reproduces the same crowd redirections and release times exactly. *)

(** {1 Overlays} *)

type flash_crowd = {
  fc_at : float;  (** crowd onset (virtual s), [>= 0] *)
  fc_duration : float;  (** full-intensity window (s), [> 0] *)
  fc_decay : float;  (** linear decay back to baseline (s), [>= 0] *)
  fc_fraction : float;  (** peak fraction of CGI traffic redirected, [\[0,1\]] *)
  fc_keys : int;  (** size of the hot crowd-key head, [>= 1] *)
  fc_zipf_s : float;  (** popularity skew inside the head, [>= 0] *)
  fc_demand : float;  (** exec demand of a crowd query (s), [> 0] *)
  fc_out_bytes : int;  (** output size of a crowd query, [>= 0] *)
}

(** [flash_crowd ~at ~duration ()] builds a crowd spec; defaults:
    [decay = duration], [fraction = 0.8], [keys = 8], [zipf_s = 1.0],
    [demand = 1.0], [out_bytes = 4096]. *)
val flash_crowd :
  at:float ->
  duration:float ->
  ?decay:float ->
  ?fraction:float ->
  ?keys:int ->
  ?zipf_s:float ->
  ?demand:float ->
  ?out_bytes:int ->
  unit ->
  flash_crowd

(** Arrival-rate envelope, as a {e relative} rate curve over the run (only
    its shape matters — release times come from quantile inversion, so the
    total request count is the trace's, not the curve's integral). *)
type diurnal =
  | Sinusoid of { period : float; trough : float }
      (** rate(t) = (1+trough)/2 - (1-trough)/2 · cos(2πt/period): starts
          at the [trough] fraction of peak at t = 0, peaks mid-period.
          [period > 0], [trough] in [\[0,1\]]. *)
  | Piecewise of (float * float) list
      (** [(time, rate)] breakpoints, linearly interpolated. Times must be
          strictly increasing, start at [0.] and end at the scenario
          duration; rates [>= 0] with at least one positive. *)

(** A client class: [weight] of the streams sit [rtt] seconds (round trip)
    from the cluster — each one-way client hop gains [rtt/2] on top of the
    base LAN latency. *)
type tier = { tier_name : string; rtt : float; weight : float }

val tier : name:string -> rtt:float -> weight:float -> tier

type t

(** [make ~duration ()] builds a scenario over the virtual-time horizon
    [\[0, duration)] with the given overlays (all optional; an overlay left
    out is simply absent — [make ~duration ()] alone is a valid, inert
    scenario). Raises [Invalid_argument] on a malformed overlay. *)
val make :
  duration:float ->
  ?flash:flash_crowd ->
  ?diurnal:diurnal ->
  ?tiers:tier list ->
  unit ->
  t

(** [validate t] re-checks every overlay (raises [Invalid_argument]);
    {!make} already calls it. *)
val validate : t -> unit

val duration : t -> float
val flash : t -> flash_crowd option
val diurnal : t -> diurnal option
val tiers : t -> tier array

(** {1 Phase schedule} *)

(** [phases t] tiles [\[0, duration\]] with named, non-overlapping,
    gap-free intervals [(name, start, stop)]: ["pre"], ["crowd"],
    ["decay"], ["post"] around a flash crowd (empty intervals dropped,
    ends clamped to the duration), or a single ["steady"] phase without
    one. Bench sweeps bucket per-phase latencies with this. *)
val phases : t -> (string * float * float) list

(** [phase_of t ~now] names the phase containing [now] (times past the end
    fall into the last phase). *)
val phase_of : t -> now:float -> string

(** {1 Flash crowd} *)

(** [flash_intensity t ~now] is the fraction of CGI traffic the crowd
    captures at [now]: [fc_fraction] inside the window, linearly decaying
    to [0.] across the decay tail, [0.] elsewhere (and always [0.] without
    a crowd overlay). *)
val flash_intensity : t -> now:float -> float

(** [rewrite t ~rng ~now item] applies the flash crowd to one trace item:
    with probability [flash_intensity t ~now], a CGI item is re-pointed to
    a Zipf-drawn crowd query (same id, [/cgi-bin/query] with the standard
    ["q"]/["xd"]/["xb"] replay args, demand [fc_demand]). Returns [None]
    when the item passes through unchanged. Static files are never
    redirected, and no random numbers are drawn while the intensity is
    zero — so outside the crowd the reference stream is exactly the base
    trace's. *)
val rewrite : t -> rng:Sim.Rng.t -> now:float -> Trace.item -> Trace.item option

(** [is_crowd_key key] recognises a cache key produced by {!rewrite} —
    lets tests separate crowd traffic from baseline traffic. *)
val is_crowd_key : string -> bool

(** {1 Diurnal envelope} *)

(** [envelope_rate t ~now] is the relative arrival rate at [now] ([1.]
    when no diurnal overlay is configured). *)
val envelope_rate : t -> now:float -> float

(** [arrival_times t ~n] inverts the cumulative envelope into [n]
    nondecreasing release times in [\[0, duration)], one per trace item in
    global trace order ([\[||\]] when no diurnal overlay — the replay then
    stays purely closed-loop). The [i]-th time is the envelope quantile at
    [(i + 1/2)/n], so every prefix [\[0,t\]] contains the integral of the
    (normalised) envelope up to [t], within one request. *)
val arrival_times : t -> n:int -> float array

(** {1 Geo tiers} *)

val n_tiers : t -> int

(** [tier_of_stream t ~n_streams ~stream] assigns a client stream to a
    tier deterministically (no randomness): streams are cut into
    contiguous runs proportional to the tier weights, in tier order.
    Returns [0] when no tiers are configured. *)
val tier_of_stream : t -> n_streams:int -> stream:int -> int

(** [tier_extra_latency t i] is tier [i]'s extra one-way client-link
    latency, [rtt/2] ([0.] without tiers). *)
val tier_extra_latency : t -> int -> float

(** [tier_name t i] ([ "tier0" ]-style fallback without tiers). *)
val tier_name : t -> int -> string
