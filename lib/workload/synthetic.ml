type adl_params = {
  n_requests : int;
  cgi_fraction : float;
  n_hot : int;
  p_hot : float;
  hot_zipf_s : float;
  hot_mean : float;
  hot_cv : float;
  cold_mean : float;
  cold_cv : float;
  n_files : int;
  file_zipf_s : float;
  cgi_out_bytes : int;
}

(* Calibration: 0.105 * 4.6 + 0.895 * 1.25 = 1.60 s mean CGI demand, matching
   the paper's measured average; ~220 hot queries concentrate the repeats the
   way the paper's Table 1 reports (~190 distinct requests above the 1 s
   threshold account for the bulk of the saving). *)
let default_adl =
  {
    n_requests = 69_337;
    cgi_fraction = 0.413;
    n_hot = 220;
    p_hot = 0.105;
    hot_zipf_s = 0.6;
    hot_mean = 4.6;
    hot_cv = 1.2;
    cold_mean = 1.25;
    cold_cv = 2.0;
    n_files = 3_000;
    file_zipf_s = 0.9;
    cgi_out_bytes = 8_192;
  }

let query_script = "/cgi-bin/query"
let unique_script = "/cgi-bin/unique"
let private_script = "/cgi-bin/private"

(* The "xd" arg carries the per-key demand so that replay against the server
   model reproduces the trace's service times (see Cgi.Cost.From_query). *)
let cgi_item ~id ~script ~qkey ~demand ~out_bytes =
  {
    Trace.id;
    kind =
      Trace.Cgi
        {
          script;
          args =
            [
              ("q", qkey);
              ("xd", Printf.sprintf "%.9g" demand);
              ("xb", string_of_int out_bytes);
            ];
          demand;
          out_bytes;
        };
  }

let adl ~seed ?(params = default_adl) () =
  let p = params in
  if p.n_requests < 1 then invalid_arg "Synthetic.adl: n_requests must be >= 1";
  let rng = Sim.Rng.create seed in
  let rng_kind = Sim.Rng.split rng in
  let rng_hot = Sim.Rng.split rng in
  let rng_cold = Sim.Rng.split rng in
  let rng_file = Sim.Rng.split rng in
  let rng_size = Sim.Rng.split rng in
  (* Hot queries: per-key demand fixed at creation. *)
  let hot_demand =
    Array.init p.n_hot (fun _ ->
        Sim.Dist.lognormal_mean_cv rng_hot ~mean:p.hot_mean ~cv:p.hot_cv)
  in
  let hot_pop = Sim.Dist.Zipf.make ~n:p.n_hot ~s:p.hot_zipf_s in
  let file_pop = Sim.Dist.Zipf.make ~n:p.n_files ~s:p.file_zipf_s in
  let file_bytes =
    Array.init p.n_files (fun _ ->
        int_of_float
          (Sim.Dist.lognormal_mean_cv rng_size ~mean:12_000. ~cv:2.0))
  in
  let next_cold = ref 0 in
  let items =
    List.init p.n_requests (fun id ->
        if Sim.Rng.float rng_kind < p.cgi_fraction then
          if Sim.Rng.float rng_kind < p.p_hot then begin
            let k = Sim.Dist.Zipf.draw hot_pop rng_hot in
            cgi_item ~id ~script:query_script
              ~qkey:(Printf.sprintf "hot%04d" k)
              ~demand:hot_demand.(k) ~out_bytes:p.cgi_out_bytes
          end
          else begin
            incr next_cold;
            let demand =
              Sim.Dist.lognormal_mean_cv rng_cold ~mean:p.cold_mean
                ~cv:p.cold_cv
            in
            cgi_item ~id ~script:query_script
              ~qkey:(Printf.sprintf "cold%06d" !next_cold)
              ~demand ~out_bytes:p.cgi_out_bytes
          end
        else begin
          let k = Sim.Dist.Zipf.draw file_pop rng_file in
          {
            Trace.id;
            kind =
              Trace.File
                {
                  path = Printf.sprintf "/adl/doc%05d.html" k;
                  bytes = file_bytes.(k);
                };
          }
        end)
  in
  items

let adl_scaled ~seed ~n =
  let scale = float_of_int n /. float_of_int default_adl.n_requests in
  let params =
    {
      default_adl with
      n_requests = n;
      n_hot = Stdlib.max 8 (int_of_float (float_of_int default_adl.n_hot *. scale));
      n_files =
        Stdlib.max 16 (int_of_float (float_of_int default_adl.n_files *. scale));
    }
  in
  adl ~seed ~params ()

let coop ~seed ~n ~n_unique ?(n_hot = 120) ?(zipf_s = 0.8) ?(demand = 1.0)
    ?(out_bytes = 4096) ?(locality = 1.0) () =
  if n_unique > n then invalid_arg "Synthetic.coop: n_unique > n";
  if n_hot > n_unique then invalid_arg "Synthetic.coop: n_hot > n_unique";
  if n_hot < 1 then invalid_arg "Synthetic.coop: n_hot must be >= 1";
  if locality <= 0. then invalid_arg "Synthetic.coop: locality must be > 0";
  let rng = Sim.Rng.create seed in
  let rng_rep = Sim.Rng.split rng in
  let rng_pos = Sim.Rng.split rng in
  let n_repeats = n - n_unique in
  (* Occurrence counts: every unique key once, plus n_repeats extras spread
     over the hot keys by Zipf weight. *)
  let occurrences = Array.make n_unique 1 in
  let hot_pop = Sim.Dist.Zipf.make ~n:n_hot ~s:zipf_s in
  for _ = 1 to n_repeats do
    let k = Sim.Dist.Zipf.draw hot_pop rng_rep in
    occurrences.(k) <- occurrences.(k) + 1
  done;
  (* Position each occurrence on a virtual timeline; repeats of a key follow
     its first occurrence at exponentially-distributed gaps of mean
     [locality] (fraction of the trace), clustering references. *)
  let placed = ref [] in
  for k = 0 to n_unique - 1 do
    let base = Sim.Rng.float rng_pos in
    let pos = ref base in
    for _ = 1 to occurrences.(k) do
      placed := (!pos, k) :: !placed;
      pos := !pos +. Sim.Dist.exponential rng_pos ~mean:locality
    done
  done;
  let arr = Array.of_list !placed in
  Array.sort
    (fun (p1, k1) (p2, k2) ->
      let c = Float.compare p1 p2 in
      if c <> 0 then c else Int.compare k1 k2)
    arr;
  Array.to_list
    (Array.mapi
       (fun id (_, k) ->
         cgi_item ~id ~script:query_script
           ~qkey:(Printf.sprintf "key%05d" k)
           ~demand ~out_bytes)
       arr)

let unique_cacheable ~n ~demand =
  List.init n (fun id ->
      cgi_item ~id ~script:unique_script
        ~qkey:(Printf.sprintf "u%06d" id)
        ~demand ~out_bytes:4096)

let uncacheable ~n ~demand =
  List.init n (fun id ->
      cgi_item ~id ~script:private_script
        ~qkey:(Printf.sprintf "p%06d" id)
        ~demand ~out_bytes:4096)

let register_scripts registry =
  let from_query = Cgi.Cost.From_query { default = 1.0 } in
  Cgi.Registry.register registry
    (Cgi.Script.make ~name:query_script
       (Cgi.Cost.make ~output_bytes:8_192 from_query));
  Cgi.Registry.register registry
    (Cgi.Script.make ~name:unique_script
       (Cgi.Cost.make ~output_bytes:4_096 from_query));
  Cgi.Registry.register registry
    (Cgi.Script.make ~cacheable:false ~name:private_script
       (Cgi.Cost.make ~output_bytes:4_096 from_query));
  Cgi.Registry.register registry Cgi.Script.null

let register_trace_files registry trace =
  List.iter
    (fun (item : Trace.item) ->
      match item.Trace.kind with
      | Trace.File { path; bytes } ->
          Cgi.Registry.register_file registry ~path ~bytes
      | Trace.Cgi _ -> ())
    trace
