(** Synthetic workload generators.

    {2 ADL-like traces}

    The Alexandria Digital Library access log the paper analyses is not
    available, but the paper publishes its aggregates: 69,337 requests of
    which 41.3 % are CGI; mean service time 0.03 s for files and 1.6 s for
    CGI; CGI is 97 % of total service time; and repetition is concentrated —
    at the 1 s threshold, roughly 190 distinct requests account for ~2,900
    repeat executions worth ~29 % of total service time (their Table 1).

    {!adl} reproduces that structure with a two-population CGI model:
    a small {e hot} set of queries drawn repeatedly (Zipf-skewed, longer
    mean execution), and a {e cold} stream of one-off queries. Files are
    drawn Zipf-fashion from a modest document population.

    {2 Exact-cardinality cooperative-caching traces}

    The hit-ratio experiments (paper Tables 5 and 6) issue exactly 1,600
    requests of which exactly 1,122 are unique. {!coop} builds traces with
    exact request/unique counts, an adjustable hot-set size, Zipf repeat
    skew, and a temporal-locality knob that clusters repeats of a key near
    each other in trace order (an LRU-stack-like reference stream). *)

type adl_params = {
  n_requests : int;
  cgi_fraction : float;  (** share of requests that are CGI *)
  n_hot : int;  (** hot CGI query population *)
  p_hot : float;  (** probability a CGI request is a hot draw *)
  hot_zipf_s : float;  (** popularity skew inside the hot set *)
  hot_mean : float;  (** mean exec demand of hot queries, seconds *)
  hot_cv : float;
  cold_mean : float;  (** mean exec demand of one-off queries *)
  cold_cv : float;
  n_files : int;  (** static document population *)
  file_zipf_s : float;
  cgi_out_bytes : int;  (** mean CGI output size *)
}

(** Parameters calibrated against the paper's published aggregates. *)
val default_adl : adl_params

(** [adl ~seed ?params ()] generates the trace. *)
val adl : seed:int -> ?params:adl_params -> unit -> Trace.t

(** [adl_scaled ~seed ~n] is {!adl} with [n_requests = n] and populations
    scaled proportionally — used for the multi-node replay (Figure 4),
    where replaying all 69k requests would be unnecessarily slow. *)
val adl_scaled : seed:int -> n:int -> Trace.t

(** [coop ~seed ~n ~n_unique ()] builds a CGI-only trace with exactly [n]
    requests over exactly [n_unique] distinct queries.

    - [n_hot] distinct queries (default 120) receive all the repeats,
      distributed by a Zipf law with skew [zipf_s] (default 0.8);
    - every request costs [demand] dedicated-CPU seconds (default 1.0) and
      produces [out_bytes] of output (default 4096);
    - [locality] in [(0, 1]] clusters repeats: it is the mean spacing
      between successive references to the same key, as a fraction of the
      trace (default 1.0 = no clustering beyond uniform shuffling).

    Raises [Invalid_argument] if [n_unique > n] or [n_hot > n_unique]. *)
val coop :
  seed:int ->
  n:int ->
  n_unique:int ->
  ?n_hot:int ->
  ?zipf_s:float ->
  ?demand:float ->
  ?out_bytes:int ->
  ?locality:float ->
  unit ->
  Trace.t

(** [unique_cacheable ~n ~demand] is [n] distinct 1-per-key CGI requests —
    the all-miss insertion workload of the paper's Table 3. *)
val unique_cacheable : n:int -> demand:float -> Trace.t

(** [uncacheable ~n ~demand] is [n] requests to a script marked
    non-cacheable — the paper's Table 4 workload ("180 uncacheable
    requests, each about one second"). *)
val uncacheable : n:int -> demand:float -> Trace.t

(** [register_scripts registry] registers the CGI programs the generated
    traces reference (["/cgi-bin/query"], ["/cgi-bin/unique"], the null
    CGI). Traces carry their demands in the ["xd"] replay parameter, so the
    scripts use [Cost.From_query]. *)
val register_scripts : Cgi.Registry.t -> unit

(** [register_trace_files registry trace] declares every static file a
    trace references, with its size. Call before replaying. *)
val register_trace_files : Cgi.Registry.t -> Trace.t -> unit
