type kind =
  | File of { path : string; bytes : int }
  | Cgi of {
      script : string;
      args : (string * string) list;
      demand : float;
      out_bytes : int;
    }

type item = { id : int; kind : kind }
type t = item list

(* Nominal unloaded file-fetch time for offline analysis: open cost plus
   buffer-cache read at 80 MB/s — the same constants the server model
   charges. *)
let file_time bytes = 0.002 +. (float_of_int bytes /. 80e6)

let to_request item =
  match item.kind with
  | File { path; _ } -> Http.Request.get path
  | Cgi { script; args; _ } ->
      let uri = { Http.Uri.path = script; query = args } in
      Http.Request.make Http.Meth.Get (Http.Uri.to_string uri)

let key item = Http.Request.cache_key (to_request item)

let service_time item =
  match item.kind with
  | File { bytes; _ } -> file_time bytes
  | Cgi { demand; _ } -> demand

let is_cgi item = match item.kind with Cgi _ -> true | File _ -> false

let unique_keys t =
  let seen = Hashtbl.create 1024 in
  List.iter (fun item -> Hashtbl.replace seen (key item) ()) t;
  Hashtbl.length seen

let total_service t = List.fold_left (fun acc i -> acc +. service_time i) 0. t
let length = List.length
