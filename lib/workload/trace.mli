(** Workload traces: the sequence of requests an experiment replays.

    A trace item is deliberately self-contained — it carries the CPU demand
    its CGI would take — so the same trace can be analysed offline (Table 1)
    and replayed against the simulated cluster (Figure 4) with identical
    service times. All repeats of the same key carry the same demand, like
    re-running the same query against a read-only digital library. *)

type kind =
  | File of { path : string; bytes : int }
  | Cgi of {
      script : string;  (** script path, e.g. ["/cgi-bin/query"] *)
      args : (string * string) list;
      demand : float;  (** dedicated-CPU seconds per execution *)
      out_bytes : int;
    }

type item = { id : int; kind : kind }

type t = item list

(** [key item] is the canonical cache key (matches
    [Http.Request.cache_key] of {!to_request}). *)
val key : item -> string

(** [to_request item] builds the HTTP request a client would send. *)
val to_request : item -> Http.Request.t

(** [service_time item] is the unloaded service time: CGI demand, or a
    nominal per-byte file time (used by the offline analyzer). *)
val service_time : item -> float

val is_cgi : item -> bool

(** [unique_keys t] counts distinct keys. *)
val unique_keys : t -> int

(** [total_service t] sums {!service_time}. *)
val total_service : t -> float

val length : t -> int
