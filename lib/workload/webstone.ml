let file_mix =
  [
    ("/files/doc-500b.html", 500, 0.35);
    ("/files/doc-5k.html", 5_000, 0.50);
    ("/files/doc-50k.html", 50_000, 0.14);
    ("/files/doc-500k.html", 500_000, 0.009);
    ("/files/doc-1m.html", 1_000_000, 0.001);
  ]

let register_files registry =
  List.iter
    (fun (path, bytes, _) -> Cgi.Registry.register_file registry ~path ~bytes)
    file_mix

let mix_dist =
  lazy (Sim.Dist.Discrete.make (Array.of_list (List.map (fun (_, _, w) -> w) file_mix)))

let sample_file rng ~id =
  let idx = Sim.Dist.Discrete.draw (Lazy.force mix_dist) rng in
  let path, bytes, _ = List.nth file_mix idx in
  { Trace.id; kind = Trace.File { path; bytes } }

let file_trace ~seed ~n =
  let rng = Sim.Rng.create seed in
  List.init n (fun id -> sample_file rng ~id)

let null_cgi_trace ~n =
  List.init n (fun id ->
      {
        Trace.id;
        kind =
          Trace.Cgi
            {
              script = Cgi.Script.null.Cgi.Script.name;
              args = [];
              demand = 0.;
              out_bytes = 64;
            };
      })

let mean_file_bytes =
  let total_w = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. file_mix in
  List.fold_left
    (fun acc (_, bytes, w) -> acc +. (float_of_int bytes *. w /. total_w))
    0. file_mix
