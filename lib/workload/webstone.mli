(** WebStone-like workload generation (paper §5.1).

    The paper's file-fetch experiment requests five fixed documents with the
    standard WebStone mix: 500 B at 35 %, 5 KB at 50 %, 50 KB at 14 %,
    500 KB at 0.9 % and 1 MB at 0.1 %. The null-CGI experiment drives a CGI
    that does no work and emits under a hundred bytes. *)

(** The (path, bytes, weight) mix. *)
val file_mix : (string * int * float) list

(** [register_files registry] declares the five documents. *)
val register_files : Cgi.Registry.t -> unit

(** [sample_file rng] picks one document per the mix, as a trace item with
    the given id. *)
val sample_file : Sim.Rng.t -> id:int -> Trace.item

(** [file_trace ~seed ~n] generates [n] file fetches. *)
val file_trace : seed:int -> n:int -> Trace.t

(** [null_cgi_trace ~n] is [n] identical null-CGI requests. *)
val null_cgi_trace : n:int -> Trace.t

(** [mean_file_bytes] is the expected document size of the mix. *)
val mean_file_bytes : float
