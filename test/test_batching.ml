(* Tests for directory-update batching (the Nagle-style coalescing buffer,
   Msg.Batch envelopes, the flush daemon), the key→owner hint index, and
   the O(1) incremental anti-entropy digest: wire-byte amortisation,
   configuration validation, byte-identity of the [batch_max = 1] path
   with the pre-batching transmit path, receiver-side last-write-wins,
   conservation of originated updates, crash-interruptible batch fan-out,
   false-hint fallback, and deterministic replay with batching on. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_digest_pair = Alcotest.(check (pair int int))

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let in_engine f =
  let eng = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn eng (fun () -> result := Some (f ()));
  Sim.Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "process did not run"

let meta ?(owner = 0) ?(size = 100) ?(created = 0.) ?expires key =
  Cache.Meta.make ~key ~owner ~size ~exec_time:0.5 ~created ~expires

(* ------------------------------------------------------------------ *)
(* Wire accounting: a batch shares one envelope *)

let test_batch_bytes () =
  let u1 = Cluster.Msg.Insert (meta "GET /cgi-bin/a")
  and u2 = Cluster.Msg.Delete { node = 1; key = "GET /cgi-bin/b" }
  and u3 = Cluster.Msg.Insert (meta ~owner:2 "GET /cgi-bin/c") in
  let separately =
    List.fold_left
      (fun acc u -> acc + Cluster.Msg.info_bytes u)
      0 [ u1; u2; u3 ]
  in
  let batched = Cluster.Msg.info_bytes (Cluster.Msg.Batch [ u1; u2; u3 ]) in
  check_bool "one shared envelope beats three" true (batched < separately);
  (* Exactly: the batch replaces two of the three envelopes with a
     12-byte sub-header per carried update. *)
  let envelope = Cluster.Msg.info_bytes (Cluster.Msg.Batch []) in
  check_int "batch = envelope + per-update sub-headers + bodies"
    (separately - (2 * envelope) + (3 * 12))
    batched

(* ------------------------------------------------------------------ *)
(* Configuration validation *)

let test_batch_config_validation () =
  let valid cfg = Swala.Config.validate cfg in
  expect_invalid "batch_max 0" (fun () ->
      valid (Swala.Config.make ~batch_max:0 ()));
  expect_invalid "batch_max > 1 without a flush interval" (fun () ->
      valid (Swala.Config.make ~batch_max:8 ()));
  expect_invalid "zero flush interval" (fun () ->
      valid
        (Swala.Config.make ~batch_max:8 ~batch_flush_interval:(Some 0.) ()));
  expect_invalid "negative flush interval" (fun () ->
      valid
        (Swala.Config.make ~batch_max:8 ~batch_flush_interval:(Some (-0.1)) ()));
  expect_invalid "batching under the strong protocol" (fun () ->
      valid
        (Swala.Config.make ~batch_max:8 ~batch_flush_interval:(Some 0.01)
           ~consistency:Swala.Config.Strong ()));
  valid
    (Swala.Config.make ~batch_max:64 ~batch_flush_interval:(Some 0.02)
       ~dir_hints:true ());
  (* batch_max = 1 with an interval set is the degenerate no-op. *)
  valid (Swala.Config.make ~batch_max:1 ~batch_flush_interval:(Some 0.02) ())

(* ------------------------------------------------------------------ *)
(* Incremental digest: fast path always agrees with the recompute *)

let check_digest d ~node msg =
  check_digest_pair msg
    (Cache.Directory.digest_slow d ~node)
    (Cache.Directory.digest d ~node)

let test_digest_incremental () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:3 ~hints:true () in
      check_digest d ~node:0 "empty table";
      Cache.Directory.insert d ~node:0 (meta "a");
      Cache.Directory.insert d ~node:0 (meta "b");
      Cache.Directory.insert d ~node:1 (meta ~owner:1 "a");
      check_digest d ~node:0 "after inserts";
      check_digest d ~node:1 "other table untouched by them";
      (* Replacing a key must XOR the old meta out before the new one in. *)
      Cache.Directory.insert d ~node:0 (meta ~size:999 ~created:1. "a");
      check_digest d ~node:0 "after same-key replace";
      ignore (Cache.Directory.delete d ~node:0 "b" : bool);
      ignore (Cache.Directory.delete d ~node:0 "never-inserted" : bool);
      check_digest d ~node:0 "after delete";
      ignore (Cache.Directory.purge_node d ~node:0 : int);
      check_digest d ~node:0 "after purge";
      check_int "purged table is empty" 0
        (Cache.Directory.table_size d ~node:0);
      ignore (Cache.Directory.reset_node d ~node:1 : int);
      check_digest d ~node:1 "after reset";
      (* Element-wise identical tables give identical digests, whatever
         the insertion order was. *)
      Cache.Directory.insert d ~node:0 (meta "x");
      Cache.Directory.insert d ~node:0 (meta "y");
      Cache.Directory.insert d ~node:2 (meta "y");
      Cache.Directory.insert d ~node:2 (meta "x");
      check_digest_pair "identical content, identical digest"
        (Cache.Directory.digest d ~node:0)
        (Cache.Directory.digest d ~node:2))

(* ------------------------------------------------------------------ *)
(* Hint index *)

let test_hint_saves_probes () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:4 ~hints:true () in
      check_bool "hints enabled" true (Cache.Directory.hints_enabled d);
      Cache.Directory.insert d ~node:2 (meta ~owner:2 "k");
      (match Cache.Directory.lookup_from d ~self:0 ~now:0. "k" with
      | Some m -> check_int "found at the hinted owner" 2 m.Cache.Meta.owner
      | None -> Alcotest.fail "hinted lookup missed a live entry");
      (* Node 0's probe chain is [0;1;2;3]; the hint jumped straight to
         table 2, skipping the two tables before it. *)
      let saved, false_hints = Cache.Directory.hint_stats d in
      check_int "two probes saved" 2 saved;
      check_int "no false hints" 0 false_hints)

let test_hint_false_fallback () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:4 ~hints:true () in
      (* An expired entry leaves its hint behind — hints are advisory,
         never authoritative. *)
      Cache.Directory.insert d ~node:1 (meta ~owner:1 ~expires:1. "k");
      check_bool "expired entry is absent" true
        (Cache.Directory.lookup_from d ~self:0 ~now:5. "k" = None);
      let _, false_hints = Cache.Directory.hint_stats d in
      check_int "the false hint ran the full-scan fallback" 1 false_hints;
      (* A lookup of a never-hinted key is a plain full scan, not a false
         hint. *)
      check_bool "unknown key misses" true
        (Cache.Directory.lookup_from d ~self:0 ~now:5. "nope" = None);
      let _, false_hints = Cache.Directory.hint_stats d in
      check_int "no-hint scans are not false hints" 1 false_hints;
      (* A live copy elsewhere is still found when the hint set also
         carries a stale member. *)
      Cache.Directory.insert d ~node:3 (meta ~owner:3 "k");
      (match Cache.Directory.lookup_from d ~self:0 ~now:5. "k" with
      | Some m ->
          check_int "live copy found despite the stale hint" 3
            m.Cache.Meta.owner
      | None -> Alcotest.fail "stale hint member hid the live copy"))

let test_hint_cleared_on_wipe () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:3 ~hints:true () in
      Cache.Directory.insert d ~node:1 (meta ~owner:1 "k");
      ignore (Cache.Directory.reset_node d ~node:1 : int);
      check_bool "wiped entry is gone" true
        (Cache.Directory.lookup_from d ~self:0 ~now:0. "k" = None);
      let _, false_hints = Cache.Directory.hint_stats d in
      check_int "the wipe cleared the hint with the entries" 0 false_hints)

let test_hint_bitmask_capacity () =
  expect_invalid "hint bitmask cannot cover that many nodes" (fun () ->
      Cache.Directory.create ~nodes:(Sys.int_size - 1) ~hints:true ());
  (* Without hints the same size is fine. *)
  ignore (Cache.Directory.create ~nodes:(Sys.int_size - 1) () : Cache.Directory.t)

(* ------------------------------------------------------------------ *)
(* Protocol level: a batch envelope fans out like any other info message,
   including the crash-interruptible partial broadcast. *)

let test_batch_fanout_interruptible () =
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine ~n_endpoints:5 in
  let endpoints = Array.init 5 (fun node -> Cluster.Endpoint.make ~node) in
  let batch =
    Cluster.Msg.Batch
      [ Cluster.Msg.Insert (meta "GET /cgi-bin/a");
        Cluster.Msg.Insert (meta "GET /cgi-bin/b") ]
  in
  let calls = ref 0 in
  let sent_partial = ref (-1) in
  let sent_full = ref (-1) in
  Sim.Engine.spawn engine (fun () ->
      (* Crash after two peers heard the flush: those two replicas carry
         both updates, the other two carry neither — an honest partial
         state for anti-entropy to repair, never a half-applied batch. *)
      sent_partial :=
        Cluster.Broadcast.info
          ~should_abort:(fun () ->
            Stdlib.incr calls;
            !calls > 3)
          net endpoints ~src:0 batch;
      sent_full := Cluster.Broadcast.info net endpoints ~src:0 batch);
  Sim.Engine.run engine;
  check_int "aborted flush reached two peers" 2 !sent_partial;
  check_int "unaborted flush reaches all four" 4 !sent_full;
  let queued i = Sim.Mailbox.length endpoints.(i).Cluster.Endpoint.info_mb in
  check_int "peer 1 heard both envelopes" 2 (queued 1);
  check_int "peer 2 heard both envelopes" 2 (queued 2);
  check_int "peer 3 heard only the full one" 1 (queued 3);
  check_int "peer 4 heard only the full one" 1 (queued 4)

(* ------------------------------------------------------------------ *)
(* Cluster level *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(n * 7 / 10) ~n_hot:(n / 10) ()

let counters_equal msg a b =
  check_bool (msg ^ ": Counter.equal") true (Metrics.Counter.equal a b);
  (* and the long way round, for a readable diff on failure *)
  let names = Metrics.Counter.names a in
  Alcotest.(check (list string)) (msg ^ ": same counter set") names
    (Metrics.Counter.names b);
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "%s: counter %s" msg n)
        (Metrics.Counter.get a n) (Metrics.Counter.get b n))
    names

let query q = Http.Request.get (Printf.sprintf "/cgi-bin/query?q=%s&xd=0.2" q)

let run_cluster_script ~cfg ~registry ?(n_client_endpoints = 2) script =
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      script cluster;
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  cluster

(* [batch_max = 1] must reproduce the pre-batching transmit path
   byte-for-byte: same counters, same makespan, no batch envelopes. *)
let test_batch_max_one_identity () =
  let trace = coop_trace ~seed:7 ~n:400 in
  let run cfg = Swala.Cluster_runner.run cfg ~trace ~n_streams:8 () in
  let base =
    run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~seed:7 ())
  and degenerate =
    run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~batch_max:1 ~batch_flush_interval:(Some 0.02) ~seed:7 ())
  in
  check_float "same makespan" base.Swala.Cluster_runner.duration
    degenerate.Swala.Cluster_runner.duration;
  Alcotest.(check (float 0.))
    "same mean response"
    (Swala.Cluster_runner.mean_response base)
    (Swala.Cluster_runner.mean_response degenerate);
  counters_equal "batch_max = 1 is byte-identical"
    base.Swala.Cluster_runner.counters degenerate.Swala.Cluster_runner.counters;
  check_int "no batch envelopes on the degenerate path" 0
    (Metrics.Counter.get degenerate.Swala.Cluster_runner.counters
       Swala.Server.K.batches_sent)

(* Same seed, same config, batching and hints on: two runs agree on
   every counter — batching does not perturb determinism. *)
let test_batched_replay_deterministic () =
  let trace = coop_trace ~seed:13 ~n:400 in
  let run () =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~batch_max:64 ~batch_flush_interval:(Some 0.01) ~dir_hints:true
         ~seed:13 ())
      ~trace ~n_streams:8 ()
  in
  let a = run () and b = run () in
  check_float "same makespan" a.Swala.Cluster_runner.duration
    b.Swala.Cluster_runner.duration;
  Alcotest.(check (float 0.))
    "same mean response"
    (Swala.Cluster_runner.mean_response a)
    (Swala.Cluster_runner.mean_response b);
  counters_equal "batched replay" a.Swala.Cluster_runner.counters
    b.Swala.Cluster_runner.counters

(* Conservation: every originated update is either transmitted (inside a
   batch or bare), coalesced away by a newer same-key update, or still
   sitting in a buffer when the run ends — and every transmitted update
   is applied by every peer. *)
let test_batch_conservation () =
  let trace = coop_trace ~seed:3 ~n:600 in
  let nodes = 4 and batch_max = 16 in
  let r =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:nodes ~cache_mode:Swala.Config.Cooperative
         ~batch_max ~batch_flush_interval:(Some 0.005) ~seed:3 ())
      ~trace ~n_streams:16 ()
  in
  let get = Metrics.Counter.get r.Swala.Cluster_runner.counters in
  let originated =
    get Swala.Server.K.broadcast_insert + get Swala.Server.K.broadcast_delete
  in
  let msgs = get Swala.Server.K.info_msgs
  and batches = get Swala.Server.K.batches_sent in
  check_bool "batching engaged" true (batches > 0);
  check_int "every unicast fanned out to all peers" 0 (msgs mod (nodes - 1));
  let envelopes = msgs / (nodes - 1) in
  let bare = envelopes - batches in
  check_bool "bare singleton flushes are non-negative" true (bare >= 0);
  check_bool "a batch envelope carries at least two updates" true
    (get Swala.Server.K.batch_updates >= 2 * batches);
  let transmitted = get Swala.Server.K.batch_updates + bare in
  check_int "receivers applied every transmitted update"
    (transmitted * (nodes - 1))
    (get Swala.Server.K.info_applied);
  let leftover =
    originated - transmitted - get Swala.Server.K.batch_coalesced
  in
  check_bool "unflushed leftovers are bounded by the buffers" true
    (leftover >= 0 && leftover <= nodes * (batch_max - 1))

(* Receivers apply a batch in list order, so a later update to the same
   key wins — exactly the coalescing rule the sender enforces. *)
let test_batch_apply_last_write_wins () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative ~seed:1 ()
  in
  let (_ : Swala.Server.cluster) =
    run_cluster_script ~cfg ~registry (fun cluster ->
        let nd1 = Swala.Server.node cluster 1 in
        let stale = meta ~owner:0 ~size:10 ~created:1. "k"
        and fresh = meta ~owner:0 ~size:20 ~created:2. "k" in
        Sim.Mailbox.send
          (Swala.Server.node_info_mailbox nd1)
          {
            Cluster.Msg.info =
              Cluster.Msg.Batch
                [ Cluster.Msg.Insert stale; Cluster.Msg.Insert fresh ];
            ack = None;
            span = 0;
          };
        Sim.Engine.delay 1.0;
        let dir1 = Swala.Server.node_directory nd1 in
        match Cache.Directory.find dir1 ~node:0 "k" with
        | Some m ->
            check_int "the later update won" 20 m.Cache.Meta.size;
            check_float "winner's created stamp" 2. m.Cache.Meta.created
        | None -> Alcotest.fail "batch was not applied")
  in
  ()

(* The sender-side buffer coalesces same-key updates (newest wins) and
   the flush daemon delivers what the size threshold never would. *)
let test_flush_daemon_and_coalescing () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:3 ~cache_mode:Swala.Config.Cooperative
      ~batch_max:64 ~batch_flush_interval:(Some 0.05) ~seed:2 ()
  in
  let before = ref (-1) in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        Swala.Server.preload cluster ~node:0 (query "a") ~exec_time:0.3;
        Swala.Server.preload cluster ~node:0 (query "b") ~exec_time:0.3;
        Swala.Server.preload cluster ~node:0 (query "c") ~exec_time:0.3;
        (* A newer insert of "a" overtakes the buffered one. *)
        Swala.Server.preload cluster ~node:0 (query "a") ~exec_time:0.4;
        let dir1 = Swala.Server.node_directory (Swala.Server.node cluster 1) in
        before := Cache.Directory.table_size dir1 ~node:0;
        Sim.Engine.delay 1.0;
        check_int "the flush delivered the three distinct keys" 3
          (Cache.Directory.table_size dir1 ~node:0);
        (match Cache.Directory.find dir1 ~node:0
                 (Http.Request.cache_key (query "a"))
         with
        | Some m ->
            check_float "the newer same-key update won" 0.4
              m.Cache.Meta.exec_time
        | None -> Alcotest.fail "coalesced key never arrived");
        (* Replicas agree element-wise once the flusher has run. *)
        let dir0 = Swala.Server.node_directory (Swala.Server.node cluster 0) in
        check_digest_pair "replica digests agree after the flush"
          (Cache.Directory.digest dir0 ~node:0)
          (Cache.Directory.digest dir1 ~node:0))
  in
  check_int "updates were buffered, not sent inline" 0 !before;
  let get = Metrics.Counter.get (Swala.Server.merged_counters cluster) in
  check_int "four updates originated" 4 (get Swala.Server.K.broadcast_insert);
  check_int "one was coalesced away" 1 (get Swala.Server.K.batch_coalesced);
  check_int "one batch envelope per peer" 2 (get Swala.Server.K.info_msgs);
  check_int "it carried the three survivors" 3
    (get Swala.Server.K.batch_updates);
  check_int "each peer applied all three" 6 (get Swala.Server.K.info_applied)

let () =
  Alcotest.run "batching"
    [
      ( "wire",
        [ Alcotest.test_case "batch shares one envelope" `Quick
            test_batch_bytes ] );
      ( "config",
        [ Alcotest.test_case "batching knobs are validated" `Quick
            test_batch_config_validation ] );
      ( "digest",
        [ Alcotest.test_case "incremental digest equals recompute" `Quick
            test_digest_incremental ] );
      ( "hints",
        [
          Alcotest.test_case "hint skips preceding tables" `Quick
            test_hint_saves_probes;
          Alcotest.test_case "false hint falls back to the full scan" `Quick
            test_hint_false_fallback;
          Alcotest.test_case "wipe clears the hints" `Quick
            test_hint_cleared_on_wipe;
          Alcotest.test_case "bitmask capacity is enforced" `Quick
            test_hint_bitmask_capacity;
        ] );
      ( "protocol",
        [ Alcotest.test_case "batch fan-out is crash-interruptible" `Quick
            test_batch_fanout_interruptible ] );
      ( "cluster",
        [
          Alcotest.test_case "batch_max = 1 is the unbatched path" `Quick
            test_batch_max_one_identity;
          Alcotest.test_case "batched replay deterministic" `Quick
            test_batched_replay_deterministic;
          Alcotest.test_case "update conservation under batching" `Quick
            test_batch_conservation;
          Alcotest.test_case "receiver applies batches in order" `Quick
            test_batch_apply_last_write_wins;
          Alcotest.test_case "flush daemon + sender coalescing" `Quick
            test_flush_daemon_and_coalescing;
        ] );
    ]
