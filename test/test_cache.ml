(* Tests for the cache library: metas, policies, bounded store, directory. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let meta ?(owner = 0) ?(size = 100) ?(exec = 1.0) ?(created = 0.) ?expires key =
  Cache.Meta.make ~key ~owner ~size ~exec_time:exec ~created ~expires

(* A store driven by a hand-cranked clock. *)
let make_store ?(capacity = 3) ?(policy = Cache.Policy.Lru) () =
  let clock = ref 0. in
  let store =
    Cache.Store.create ~capacity ~policy
      ~clock:(fun () -> !clock)
      ~rng:(Sim.Rng.create 99) ()
  in
  (store, clock)

(* ------------------------------------------------------------------ *)
(* Meta *)

let test_meta_expiry () =
  let m = meta ~expires:10. "k" in
  check_bool "before" false (Cache.Meta.expired m ~now:9.9);
  check_bool "at" true (Cache.Meta.expired m ~now:10.);
  check_bool "after" true (Cache.Meta.expired m ~now:11.)

let test_meta_no_expiry () =
  let m = meta "k" in
  check_bool "never" false (Cache.Meta.expired m ~now:1e12)

let test_meta_validation () =
  Alcotest.check_raises "neg size" (Invalid_argument "Meta.make: negative size")
    (fun () -> ignore (meta ~size:(-1) "k"));
  Alcotest.check_raises "neg exec"
    (Invalid_argument "Meta.make: negative exec_time") (fun () ->
      ignore (meta ~exec:(-1.) "k"))

(* ------------------------------------------------------------------ *)
(* Policy *)

let access ~last ~hits ~ins =
  { Cache.Policy.last_access = last; hits; inserted = ins }

let test_policy_priorities () =
  let m = meta ~size:200 ~exec:3.0 "k" in
  let a = access ~last:5. ~hits:7 ~ins:1. in
  let pri p = Cache.Policy.priority p ~clock:0. ~meta:m ~access:a in
  check_float "lru = last access" 5. (pri Cache.Policy.Lru);
  check_float "fifo = insert time" 1. (pri Cache.Policy.Fifo);
  check_float "lfu = hits" 7. (pri Cache.Policy.Lfu);
  check_float "size = -bytes" (-200.) (pri Cache.Policy.Largest_size);
  check_float "exec-time" 3. (pri Cache.Policy.Cheapest_recompute)

let test_policy_gdsf_clock () =
  let m = meta ~size:100 ~exec:2.0 "k" in
  let a = access ~last:0. ~hits:0 ~ins:0. in
  let p0 = Cache.Policy.priority Cache.Policy.Gdsf ~clock:0. ~meta:m ~access:a in
  let p1 = Cache.Policy.priority Cache.Policy.Gdsf ~clock:5. ~meta:m ~access:a in
  check_float "clock shifts priority" 5. (p1 -. p0);
  check_bool "uses clock" true (Cache.Policy.uses_clock Cache.Policy.Gdsf);
  check_bool "lru does not" false (Cache.Policy.uses_clock Cache.Policy.Lru)

let test_policy_gdsf_prefers_valuable () =
  (* Higher exec time / smaller size => higher priority (evicted later). *)
  let a = access ~last:0. ~hits:0 ~ins:0. in
  let cheap = meta ~size:1000 ~exec:0.1 "c" in
  let dear = meta ~size:100 ~exec:5.0 "d" in
  let p m = Cache.Policy.priority Cache.Policy.Gdsf ~clock:0. ~meta:m ~access:a in
  check_bool "valuable survives" true (p dear > p cheap)

let test_policy_string_roundtrip () =
  List.iter
    (fun p ->
      match Cache.Policy.of_string (Cache.Policy.to_string p) with
      | Ok p' -> check_bool (Cache.Policy.to_string p) true (p = p')
      | Error e -> Alcotest.fail e)
    Cache.Policy.all;
  check_bool "unknown" true (Result.is_error (Cache.Policy.of_string "magic"))

(* ------------------------------------------------------------------ *)
(* Store: basics *)

let test_store_insert_lookup () =
  let store, _clock = make_store () in
  ignore (Cache.Store.insert store (meta "a") "body-a");
  (match Cache.Store.lookup store "a" with
  | Some e ->
      Alcotest.(check string) "body" "body-a" e.Cache.Store.body;
      Alcotest.(check string) "key" "a" e.Cache.Store.meta.Cache.Meta.key
  | None -> Alcotest.fail "expected hit");
  check_bool "miss" true (Cache.Store.lookup store "b" = None);
  let st = Cache.Store.stats store in
  check_int "hits" 1 st.Cache.Stats.hits;
  check_int "misses" 1 st.Cache.Stats.misses

let test_store_replace_same_key () =
  let store, _ = make_store () in
  ignore (Cache.Store.insert store (meta "a") "v1");
  ignore (Cache.Store.insert store (meta "a") "v2");
  check_int "one entry" 1 (Cache.Store.length store);
  match Cache.Store.lookup store "a" with
  | Some e -> Alcotest.(check string) "latest" "v2" e.Cache.Store.body
  | None -> Alcotest.fail "hit expected"

let test_store_capacity_enforced () =
  let store, _ = make_store ~capacity:2 () in
  ignore (Cache.Store.insert store (meta "a") "");
  ignore (Cache.Store.insert store (meta "b") "");
  let evicted = Cache.Store.insert store (meta "c") "" in
  check_int "capacity" 2 (Cache.Store.length store);
  check_int "one eviction" 1 (List.length evicted)

let test_store_lru_victim () =
  let store, clock = make_store ~capacity:2 ~policy:Cache.Policy.Lru () in
  ignore (Cache.Store.insert store (meta "a") "");
  clock := 1.;
  ignore (Cache.Store.insert store (meta "b") "");
  clock := 2.;
  ignore (Cache.Store.lookup store "a") |> ignore;
  clock := 3.;
  let evicted = Cache.Store.insert store (meta "c") "" in
  Alcotest.(check (list string)) "b evicted (a was touched)" [ "b" ]
    (List.map (fun m -> m.Cache.Meta.key) evicted);
  check_bool "a survives" true (Cache.Store.mem store "a")

let test_store_fifo_victim () =
  let store, clock = make_store ~capacity:2 ~policy:Cache.Policy.Fifo () in
  ignore (Cache.Store.insert store (meta "a") "");
  clock := 1.;
  ignore (Cache.Store.insert store (meta "b") "");
  clock := 2.;
  ignore (Cache.Store.lookup store "a") |> ignore;
  (* touching does not save "a" under FIFO *)
  let evicted = Cache.Store.insert store (meta "c") "" in
  Alcotest.(check (list string)) "a evicted" [ "a" ]
    (List.map (fun m -> m.Cache.Meta.key) evicted)

let test_store_lfu_victim () =
  let store, _ = make_store ~capacity:2 ~policy:Cache.Policy.Lfu () in
  ignore (Cache.Store.insert store (meta "a") "");
  ignore (Cache.Store.insert store (meta "b") "");
  ignore (Cache.Store.lookup store "a");
  ignore (Cache.Store.lookup store "a");
  ignore (Cache.Store.lookup store "b");
  let evicted = Cache.Store.insert store (meta "c") "" in
  Alcotest.(check (list string)) "b evicted (fewer hits)" [ "b" ]
    (List.map (fun m -> m.Cache.Meta.key) evicted)

let test_store_size_victim () =
  let store, _ = make_store ~capacity:2 ~policy:Cache.Policy.Largest_size () in
  ignore (Cache.Store.insert store (meta ~size:10 "small") "");
  ignore (Cache.Store.insert store (meta ~size:9999 "big") "");
  let evicted = Cache.Store.insert store (meta ~size:50 "mid") "" in
  Alcotest.(check (list string)) "largest evicted" [ "big" ]
    (List.map (fun m -> m.Cache.Meta.key) evicted)

let test_store_exec_victim () =
  let store, _ =
    make_store ~capacity:2 ~policy:Cache.Policy.Cheapest_recompute ()
  in
  ignore (Cache.Store.insert store (meta ~exec:0.2 "cheap") "");
  ignore (Cache.Store.insert store (meta ~exec:9.0 "dear") "");
  let evicted = Cache.Store.insert store (meta ~exec:1.0 "mid") "" in
  Alcotest.(check (list string)) "cheapest-to-recompute evicted" [ "cheap" ]
    (List.map (fun m -> m.Cache.Meta.key) evicted)

let test_store_random_policy_works () =
  let store, _ = make_store ~capacity:5 ~policy:Cache.Policy.Random () in
  for i = 1 to 50 do
    ignore (Cache.Store.insert store (meta (Printf.sprintf "k%d" i)) "")
  done;
  check_int "bounded" 5 (Cache.Store.length store);
  check_int "evictions" 45 (Cache.Store.stats store).Cache.Stats.evictions

let test_store_random_requires_rng () =
  Alcotest.check_raises "rng required"
    (Invalid_argument "Store.create: Random policy needs an rng") (fun () ->
      ignore
        (Cache.Store.create ~capacity:1 ~policy:Cache.Policy.Random
           ~clock:(fun () -> 0.)
           ()))

let test_store_gdsf_aging () =
  (* GDSF with aging must eventually evict a once-hot entry that stops
     being referenced, rather than starving newcomers forever. *)
  let store, clock = make_store ~capacity:2 ~policy:Cache.Policy.Gdsf () in
  ignore (Cache.Store.insert store (meta ~exec:5.0 ~size:10 "hot") "");
  for _ = 1 to 20 do
    ignore (Cache.Store.lookup store "hot")
  done;
  ignore (Cache.Store.insert store (meta ~exec:1.0 ~size:10 "b") "");
  (* Keep inserting fresh entries; the aging clock rises with each eviction
     until it passes the stale hot entry's priority. *)
  clock := 1.;
  let hot_evicted = ref false in
  for i = 0 to 200 do
    let evicted =
      Cache.Store.insert store (meta ~exec:1.0 ~size:10 (Printf.sprintf "n%d" i)) ""
    in
    if List.exists (fun m -> m.Cache.Meta.key = "hot") evicted then
      hot_evicted := true
  done;
  check_bool "stale hot entry eventually ages out" true !hot_evicted

let test_store_remove () =
  let store, _ = make_store () in
  ignore (Cache.Store.insert store (meta "a") "");
  check_bool "removed" true (Cache.Store.remove store "a");
  check_bool "absent" false (Cache.Store.remove store "a");
  check_int "empty" 0 (Cache.Store.length store)

let test_store_ttl_expiry_on_lookup () =
  let store, clock = make_store () in
  ignore (Cache.Store.insert store (meta ~expires:10. "a") "");
  clock := 5.;
  check_bool "live" true (Cache.Store.lookup store "a" <> None);
  clock := 10.;
  check_bool "expired" true (Cache.Store.lookup store "a" = None);
  check_int "expiration counted" 1 (Cache.Store.stats store).Cache.Stats.expirations;
  check_int "expired entry dropped" 0 (Cache.Store.length store)

let test_store_purge_expired () =
  let store, clock = make_store ~capacity:10 () in
  ignore (Cache.Store.insert store (meta ~expires:1. "x1") "");
  ignore (Cache.Store.insert store (meta ~expires:2. "x2") "");
  ignore (Cache.Store.insert store (meta "keep") "");
  clock := 1.5;
  let purged = Cache.Store.purge_expired store in
  Alcotest.(check (list string)) "only x1" [ "x1" ]
    (List.map (fun m -> m.Cache.Meta.key) purged);
  check_int "two left" 2 (Cache.Store.length store);
  clock := 5.;
  check_int "second purge" 1 (List.length (Cache.Store.purge_expired store));
  check_bool "keep survives" true (Cache.Store.mem store "keep")

let test_store_peek_no_stats () =
  let store, _ = make_store () in
  ignore (Cache.Store.insert store (meta "a") "");
  ignore (Cache.Store.peek store "a");
  ignore (Cache.Store.peek store "missing");
  let st = Cache.Store.stats store in
  check_int "no hits" 0 st.Cache.Stats.hits;
  check_int "no misses" 0 st.Cache.Stats.misses

let test_store_peek_does_not_refresh_lru () =
  let store, clock = make_store ~capacity:2 ~policy:Cache.Policy.Lru () in
  ignore (Cache.Store.insert store (meta "a") "");
  clock := 1.;
  ignore (Cache.Store.insert store (meta "b") "");
  clock := 2.;
  ignore (Cache.Store.peek store "a");
  let evicted = Cache.Store.insert store (meta "c") "" in
  Alcotest.(check (list string)) "peek does not protect a" [ "a" ]
    (List.map (fun m -> m.Cache.Meta.key) evicted)

let test_store_bytes_accounting () =
  let store, _ = make_store ~capacity:2 () in
  ignore (Cache.Store.insert store (meta ~size:100 "a") "");
  ignore (Cache.Store.insert store (meta ~size:50 "b") "");
  check_int "sum" 150 (Cache.Store.bytes store);
  ignore (Cache.Store.remove store "a");
  check_int "after remove" 50 (Cache.Store.bytes store)

let test_store_keys_sorted () =
  let store, _ = make_store () in
  ignore (Cache.Store.insert store (meta "b") "");
  ignore (Cache.Store.insert store (meta "a") "");
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Cache.Store.keys store)

(* Model-based check: drive the real store and a naive reference
   implementation with the same operation sequence and compare behaviour.
   The reference keeps an association list ordered by the policy's notion
   of victim priority, recomputed from first principles on every op. *)
module Model = struct
  type entry = { key : string; mutable last : float; mutable hits : int; ins : float }

  type t = { cap : int; mutable entries : entry list }

  let create cap = { cap; entries = [] }
  let find t key = List.find_opt (fun e -> e.key = key) t.entries

  let lookup t ~now key =
    match find t key with
    | Some e ->
        e.last <- now;
        e.hits <- e.hits + 1;
        true
    | None -> false

  let victim t ~policy =
    (* Ties break towards the least recently touched entry, like the
       store's version-ordered heap. *)
    let score e =
      match policy with
      | Cache.Policy.Lru -> (e.last, e.last)
      | Cache.Policy.Fifo -> (e.ins, e.last)
      | Cache.Policy.Lfu -> (float_of_int e.hits, e.last)
      | _ -> assert false
    in
    match t.entries with
    | [] -> None
    | e0 :: rest ->
        Some
          (List.fold_left
             (fun best e -> if score e < score best then e else best)
             e0 rest)

  let insert t ~policy ~now key =
    t.entries <- List.filter (fun e -> e.key <> key) t.entries;
    while List.length t.entries >= t.cap do
      match victim t ~policy with
      | Some v -> t.entries <- List.filter (fun e -> e.key <> v.key) t.entries
      | None -> assert false
    done;
    t.entries <- { key; last = now; hits = 0; ins = now } :: t.entries

  let keys t = List.map (fun e -> e.key) t.entries |> List.sort String.compare
end

let prop_store_matches_model policy =
  let name =
    Printf.sprintf "store agrees with reference model (%s)"
      (Cache.Policy.to_string policy)
  in
  QCheck.Test.make ~name ~count:120
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(1 -- 80) (pair bool (int_range 0 12))))
    (fun (cap, ops) ->
      let store, clock = make_store ~capacity:cap ~policy () in
      let model = Model.create cap in
      let t = ref 0. in
      List.for_all
        (fun (is_insert, k) ->
          t := !t +. 1.;
          clock := !t;
          let key = Printf.sprintf "k%d" k in
          if is_insert then begin
            ignore (Cache.Store.insert store (meta key) "v");
            Model.insert model ~policy ~now:!t key
          end
          else begin
            let real = Cache.Store.lookup store key <> None in
            let expected = Model.lookup model ~now:!t key in
            if real <> expected then raise Exit
          end;
          Cache.Store.keys store = Model.keys model)
        ops)

let prop_store_never_exceeds_capacity =
  QCheck.Test.make ~name:"store never exceeds capacity under random ops"
    ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 100) (int_range 0 20)))
    (fun (cap, ops) ->
      let store, clock = make_store ~capacity:cap () in
      let t = ref 0. in
      List.for_all
        (fun k ->
          t := !t +. 1.;
          clock := !t;
          let key = Printf.sprintf "k%d" k in
          (if k mod 3 = 0 then ignore (Cache.Store.lookup store key)
           else if k mod 7 = 0 then ignore (Cache.Store.remove store key)
           else ignore (Cache.Store.insert store (meta key) "v"));
          Cache.Store.length store <= cap)
        ops)

let prop_store_insert_then_lookup_hits =
  QCheck.Test.make ~name:"freshly inserted key always hits" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 0 100))
    (fun ks ->
      let store, _ = make_store ~capacity:64 () in
      List.for_all
        (fun k ->
          let key = Printf.sprintf "k%d" k in
          ignore (Cache.Store.insert store (meta key) "v");
          Cache.Store.lookup store key <> None)
        ks)

(* ------------------------------------------------------------------ *)
(* Directory *)

let in_engine f =
  let eng = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn eng (fun () -> result := Some (f ()));
  Sim.Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "process did not run"

let test_directory_insert_lookup () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:3 () in
      Cache.Directory.insert d ~node:1 (meta ~owner:1 "k");
      (match Cache.Directory.lookup d ~now:0. "k" with
      | Some m -> check_int "owner" 1 m.Cache.Meta.owner
      | None -> Alcotest.fail "expected entry");
      check_bool "missing" true (Cache.Directory.lookup d ~now:0. "zz" = None))

let test_directory_lookup_prefers_self () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:3 () in
      Cache.Directory.insert d ~node:0 (meta ~owner:0 "k");
      Cache.Directory.insert d ~node:2 (meta ~owner:2 "k");
      match Cache.Directory.lookup_from d ~self:2 ~now:0. "k" with
      | Some m -> check_int "self first" 2 m.Cache.Meta.owner
      | None -> Alcotest.fail "expected entry")

let test_directory_delete () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:2 () in
      Cache.Directory.insert d ~node:0 (meta "k");
      check_bool "deleted" true (Cache.Directory.delete d ~node:0 "k");
      check_bool "gone" true (Cache.Directory.lookup d ~now:0. "k" = None);
      check_bool "idempotent" false (Cache.Directory.delete d ~node:0 "k"))

let test_directory_expired_skipped () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:1 () in
      Cache.Directory.insert d ~node:0 (meta ~expires:5. "k");
      check_bool "live" true (Cache.Directory.lookup d ~now:4. "k" <> None);
      check_bool "expired hidden" true (Cache.Directory.lookup d ~now:6. "k" = None);
      (* not removed: the owner's purge broadcast does that *)
      check_int "still stored" 1 (Cache.Directory.table_size d ~node:0))

let test_directory_sizes () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:3 () in
      Cache.Directory.insert d ~node:0 (meta "a");
      Cache.Directory.insert d ~node:1 (meta "b");
      Cache.Directory.insert d ~node:1 (meta "c");
      check_int "node0" 1 (Cache.Directory.table_size d ~node:0);
      check_int "node1" 2 (Cache.Directory.table_size d ~node:1);
      check_int "total" 3 (Cache.Directory.total_size d);
      check_int "entries list" 2 (List.length (Cache.Directory.entries d ~node:1));
      check_int "nodes" 3 (Cache.Directory.nodes d))

let test_directory_touch () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:1 () in
      Cache.Directory.insert d ~node:0 (meta "k");
      check_bool "touch hit" true (Cache.Directory.touch d ~node:0 "k" ~now:1.);
      check_bool "touch miss" false (Cache.Directory.touch d ~node:0 "zz" ~now:1.))

let test_directory_lock_counts_by_granularity () =
  let count gran =
    in_engine (fun () ->
        let d =
          Cache.Directory.create ~granularity:gran ~lock_overhead:0. ~nodes:4 ()
        in
        for i = 0 to 3 do
          Cache.Directory.insert d ~node:i (meta (Printf.sprintf "k%d" i))
        done;
        (* A miss probes all four tables. *)
        ignore (Cache.Directory.lookup_from d ~self:0 ~now:0. "absent");
        Cache.Directory.lock_acquisitions d)
  in
  let rd_g, wr_g = count Cache.Directory.Global in
  let rd_t, wr_t = count Cache.Directory.Per_table in
  let rd_e, _wr_e = count Cache.Directory.Per_entry in
  check_int "global writes" 4 wr_g;
  check_int "per-table writes" 4 wr_t;
  check_int "global reads: one per probe" 4 rd_g;
  check_int "per-table reads: one per probe" 4 rd_t;
  (* Per-entry charges one acquisition per entry scanned. *)
  check_bool "per-entry reads >= per-table" true (rd_e >= rd_t)

let test_directory_out_of_range () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:2 () in
      Alcotest.check_raises "bad node"
        (Invalid_argument "Directory: node out of range") (fun () ->
          Cache.Directory.insert d ~node:5 (meta "k")))

let test_directory_lock_overhead_advances_clock () =
  let eng = Sim.Engine.create () in
  let took = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      let d = Cache.Directory.create ~lock_overhead:0.001 ~nodes:4 () in
      ignore (Cache.Directory.lookup_from d ~self:0 ~now:0. "absent");
      took := Sim.Engine.now ());
  Sim.Engine.run eng;
  Alcotest.(check (float 1e-9)) "4 probes x 1ms" 0.004 !took

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_hit_ratio () =
  let s = Cache.Stats.create () in
  check_float "empty" 0. (Cache.Stats.hit_ratio s);
  s.Cache.Stats.hits <- 3;
  s.Cache.Stats.misses <- 1;
  check_float "3/4" 0.75 (Cache.Stats.hit_ratio s)

let test_stats_merge () =
  let a = Cache.Stats.create () and b = Cache.Stats.create () in
  a.Cache.Stats.hits <- 2;
  b.Cache.Stats.hits <- 3;
  b.Cache.Stats.evictions <- 1;
  let m = Cache.Stats.merge a b in
  check_int "hits" 5 m.Cache.Stats.hits;
  check_int "evictions" 1 m.Cache.Stats.evictions

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cache"
    [
      ( "meta",
        [
          Alcotest.test_case "expiry" `Quick test_meta_expiry;
          Alcotest.test_case "no expiry" `Quick test_meta_no_expiry;
          Alcotest.test_case "validation" `Quick test_meta_validation;
        ] );
      ( "policy",
        [
          Alcotest.test_case "priorities" `Quick test_policy_priorities;
          Alcotest.test_case "gdsf clock" `Quick test_policy_gdsf_clock;
          Alcotest.test_case "gdsf values exec/size" `Quick test_policy_gdsf_prefers_valuable;
          Alcotest.test_case "string roundtrip" `Quick test_policy_string_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "insert and lookup" `Quick test_store_insert_lookup;
          Alcotest.test_case "replace same key" `Quick test_store_replace_same_key;
          Alcotest.test_case "capacity enforced" `Quick test_store_capacity_enforced;
          Alcotest.test_case "LRU victim" `Quick test_store_lru_victim;
          Alcotest.test_case "FIFO victim" `Quick test_store_fifo_victim;
          Alcotest.test_case "LFU victim" `Quick test_store_lfu_victim;
          Alcotest.test_case "largest-size victim" `Quick test_store_size_victim;
          Alcotest.test_case "cheapest-recompute victim" `Quick test_store_exec_victim;
          Alcotest.test_case "random policy bounded" `Quick test_store_random_policy_works;
          Alcotest.test_case "random needs rng" `Quick test_store_random_requires_rng;
          Alcotest.test_case "gdsf ages out stale entries" `Quick test_store_gdsf_aging;
          Alcotest.test_case "remove" `Quick test_store_remove;
          Alcotest.test_case "TTL expiry on lookup" `Quick test_store_ttl_expiry_on_lookup;
          Alcotest.test_case "purge expired" `Quick test_store_purge_expired;
          Alcotest.test_case "peek is stat-neutral" `Quick test_store_peek_no_stats;
          Alcotest.test_case "peek does not refresh LRU" `Quick
            test_store_peek_does_not_refresh_lru;
          Alcotest.test_case "bytes accounting" `Quick test_store_bytes_accounting;
          Alcotest.test_case "keys sorted" `Quick test_store_keys_sorted;
        ] );
      qsuite "store-props"
        [
          prop_store_never_exceeds_capacity;
          prop_store_insert_then_lookup_hits;
          prop_store_matches_model Cache.Policy.Lru;
          prop_store_matches_model Cache.Policy.Fifo;
          prop_store_matches_model Cache.Policy.Lfu;
        ];
      ( "directory",
        [
          Alcotest.test_case "insert and lookup" `Quick test_directory_insert_lookup;
          Alcotest.test_case "lookup prefers self" `Quick test_directory_lookup_prefers_self;
          Alcotest.test_case "delete" `Quick test_directory_delete;
          Alcotest.test_case "expired entries skipped" `Quick test_directory_expired_skipped;
          Alcotest.test_case "table sizes" `Quick test_directory_sizes;
          Alcotest.test_case "touch" `Quick test_directory_touch;
          Alcotest.test_case "lock counts per granularity" `Quick
            test_directory_lock_counts_by_granularity;
          Alcotest.test_case "node range checked" `Quick test_directory_out_of_range;
          Alcotest.test_case "lock overhead advances clock" `Quick
            test_directory_lock_overhead_advances_clock;
        ] );
      ( "stats",
        [
          Alcotest.test_case "hit ratio" `Quick test_stats_hit_ratio;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
    ]
