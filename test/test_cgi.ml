(* Tests for the CGI substrate: cost model, scripts, registry. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Cost *)

let test_cost_defaults () =
  let c = Cgi.Cost.make (Cgi.Cost.Fixed 1.0) in
  check_float "fork default" 0.03 c.Cgi.Cost.fork_exec;
  check_int "output default" 4096 c.Cgi.Cost.output_bytes

let test_cost_validation () =
  let inv f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "neg fork" true
    (inv (fun () -> Cgi.Cost.make ~fork_exec:(-1.) (Cgi.Cost.Fixed 1.)));
  check_bool "neg out" true
    (inv (fun () -> Cgi.Cost.make ~output_bytes:(-1) (Cgi.Cost.Fixed 1.)));
  check_bool "neg fixed" true (inv (fun () -> Cgi.Cost.make (Cgi.Cost.Fixed (-1.))));
  check_bool "bad lognormal" true
    (inv (fun () -> Cgi.Cost.make (Cgi.Cost.Lognormal { mean = 0.; cv = 1. })));
  check_bool "bad uniform" true
    (inv (fun () -> Cgi.Cost.make (Cgi.Cost.Uniform { lo = 2.; hi = 1. })));
  check_bool "bad from_query" true
    (inv (fun () -> Cgi.Cost.make (Cgi.Cost.From_query { default = -1. })))

let test_cost_fixed_demand () =
  let c = Cgi.Cost.make (Cgi.Cost.Fixed 2.5) in
  let rng = Sim.Rng.create 1 in
  check_float "fixed" 2.5 (Cgi.Cost.sample_demand c rng);
  check_float "mean" 2.5 (Cgi.Cost.mean_demand c)

let test_cost_uniform_demand () =
  let c = Cgi.Cost.make (Cgi.Cost.Uniform { lo = 1.; hi = 3. }) in
  let rng = Sim.Rng.create 2 in
  for _ = 1 to 100 do
    let d = Cgi.Cost.sample_demand c rng in
    check_bool "in range" true (d >= 1. && d < 3.)
  done;
  check_float "mean" 2.0 (Cgi.Cost.mean_demand c)

let test_cost_lognormal_mean () =
  let c = Cgi.Cost.make (Cgi.Cost.Lognormal { mean = 1.6; cv = 1.0 }) in
  let rng = Sim.Rng.create 3 in
  let acc = ref 0. in
  let n = 30_000 in
  for _ = 1 to n do
    acc := !acc +. Cgi.Cost.sample_demand c rng
  done;
  Alcotest.(check (float 0.08)) "empirical mean" 1.6 (!acc /. float_of_int n)

let test_cost_from_query () =
  let c = Cgi.Cost.make (Cgi.Cost.From_query { default = 0.7 }) in
  let rng = Sim.Rng.create 4 in
  check_float "xd honoured" 1.25
    (Cgi.Cost.demand_for c rng ~query:[ ("q", "a"); ("xd", "1.25") ]);
  check_float "default without xd" 0.7 (Cgi.Cost.demand_for c rng ~query:[]);
  check_float "bad xd falls back" 0.7
    (Cgi.Cost.demand_for c rng ~query:[ ("xd", "junk") ]);
  check_float "negative xd falls back" 0.7
    (Cgi.Cost.demand_for c rng ~query:[ ("xd", "-3") ])

let test_cost_from_query_ignored_for_fixed () =
  let c = Cgi.Cost.make (Cgi.Cost.Fixed 2.0) in
  let rng = Sim.Rng.create 5 in
  check_float "fixed ignores xd" 2.0
    (Cgi.Cost.demand_for c rng ~query:[ ("xd", "9") ])

let test_cost_output_bytes_for () =
  let c = Cgi.Cost.make ~output_bytes:100 (Cgi.Cost.Fixed 1.) in
  check_int "xb override" 5000 (Cgi.Cost.output_bytes_for c ~query:[ ("xb", "5000") ]);
  check_int "default" 100 (Cgi.Cost.output_bytes_for c ~query:[]);
  check_int "negative rejected" 100 (Cgi.Cost.output_bytes_for c ~query:[ ("xb", "-5") ])

(* ------------------------------------------------------------------ *)
(* Script *)

let test_script_make_validation () =
  let cost = Cgi.Cost.make (Cgi.Cost.Fixed 1.) in
  Alcotest.check_raises "relative name"
    (Invalid_argument "Script.make: name must be an absolute path") (fun () ->
      ignore (Cgi.Script.make ~name:"oops" cost));
  Alcotest.check_raises "bad failure rate"
    (Invalid_argument "Script.make: failure_rate out of [0,1]") (fun () ->
      ignore (Cgi.Script.make ~failure_rate:1.5 ~name:"/x" cost))

let test_script_null () =
  let s = Cgi.Script.null in
  check_string "name" "/cgi-bin/nullcgi" s.Cgi.Script.name;
  check_float "no work" 0. (Cgi.Cost.mean_demand s.Cgi.Script.cost);
  check_bool "tiny output" true (s.Cgi.Script.cost.Cgi.Cost.output_bytes < 100)

let test_script_output_deterministic () =
  let s =
    Cgi.Script.make ~name:"/cgi-bin/q" (Cgi.Cost.make (Cgi.Cost.Fixed 1.))
  in
  let a = Cgi.Script.output s ~key:"GET /cgi-bin/q?x=1" in
  let b = Cgi.Script.output s ~key:"GET /cgi-bin/q?x=1" in
  check_string "same key same body" a b;
  let c = Cgi.Script.output s ~key:"GET /cgi-bin/q?x=2" in
  check_bool "different key different body" true (a <> c)

let test_script_output_sized () =
  let s =
    Cgi.Script.make ~name:"/cgi-bin/q" (Cgi.Cost.make (Cgi.Cost.Fixed 1.))
  in
  let body = Cgi.Script.output_sized s ~key:"k" ~bytes:10_000 in
  (* Approximately the requested size: payload + fixed wrapper. *)
  check_bool "sized" true
    (String.length body > 9_000 && String.length body < 11_000)

let test_script_output_tiny () =
  let s =
    Cgi.Script.make ~name:"/cgi-bin/q" (Cgi.Cost.make (Cgi.Cost.Fixed 1.))
  in
  let body = Cgi.Script.output_sized s ~key:"k" ~bytes:0 in
  check_bool "non-empty wrapper" true (String.length body > 0)

let test_script_defaults () =
  let s = Cgi.Script.make ~name:"/x" (Cgi.Cost.make (Cgi.Cost.Fixed 1.)) in
  check_bool "cacheable by default" true s.Cgi.Script.cacheable;
  check_bool "no ttl" true (s.Cgi.Script.ttl = None);
  check_float "no failures" 0. s.Cgi.Script.failure_rate

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_resolve_script () =
  let r = Cgi.Registry.create () in
  let s = Cgi.Script.make ~name:"/cgi-bin/a" (Cgi.Cost.make (Cgi.Cost.Fixed 1.)) in
  Cgi.Registry.register r s;
  (match Cgi.Registry.resolve r "/cgi-bin/a" with
  | Some (Cgi.Registry.Cgi_script s') -> check_string "found" "/cgi-bin/a" s'.Cgi.Script.name
  | Some (Cgi.Registry.Static_file _) | None -> Alcotest.fail "expected script");
  check_bool "missing" true (Cgi.Registry.resolve r "/nope" = None)

let test_registry_resolve_file () =
  let r = Cgi.Registry.create () in
  Cgi.Registry.register_file r ~path:"/doc.html" ~bytes:500;
  match Cgi.Registry.resolve r "/doc.html" with
  | Some (Cgi.Registry.Static_file { bytes; path }) ->
      check_int "size" 500 bytes;
      check_string "path" "/doc.html" path
  | Some (Cgi.Registry.Cgi_script _) | None -> Alcotest.fail "expected file"

let test_registry_script_precedence () =
  (* A path registered both ways resolves as a script. *)
  let r = Cgi.Registry.create () in
  Cgi.Registry.register_file r ~path:"/both" ~bytes:1;
  Cgi.Registry.register r (Cgi.Script.make ~name:"/both" (Cgi.Cost.make (Cgi.Cost.Fixed 1.)));
  match Cgi.Registry.resolve r "/both" with
  | Some (Cgi.Registry.Cgi_script _) -> ()
  | Some (Cgi.Registry.Static_file _) | None -> Alcotest.fail "script wins"

let test_registry_reregister_replaces () =
  let r = Cgi.Registry.create () in
  let mk fe = Cgi.Script.make ~name:"/s" (Cgi.Cost.make ~fork_exec:fe (Cgi.Cost.Fixed 1.)) in
  Cgi.Registry.register r (mk 0.01);
  Cgi.Registry.register r (mk 0.05);
  match Cgi.Registry.find_script r "/s" with
  | Some s -> check_float "replaced" 0.05 s.Cgi.Script.cost.Cgi.Cost.fork_exec
  | None -> Alcotest.fail "missing"

let test_registry_listing () =
  let r = Cgi.Registry.create () in
  Cgi.Registry.register r (Cgi.Script.make ~name:"/b" (Cgi.Cost.make (Cgi.Cost.Fixed 1.)));
  Cgi.Registry.register r (Cgi.Script.make ~name:"/a" (Cgi.Cost.make (Cgi.Cost.Fixed 1.)));
  Cgi.Registry.register_file r ~path:"/f1" ~bytes:1;
  Cgi.Registry.register_file r ~path:"/f2" ~bytes:2;
  Alcotest.(check (list string)) "sorted scripts" [ "/a"; "/b" ]
    (List.map (fun s -> s.Cgi.Script.name) (Cgi.Registry.scripts r));
  check_int "files" 2 (Cgi.Registry.file_count r)

let test_registry_negative_file () =
  let r = Cgi.Registry.create () in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Registry.register_file: negative size") (fun () ->
      Cgi.Registry.register_file r ~path:"/f" ~bytes:(-1))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cgi"
    [
      ( "cost",
        [
          Alcotest.test_case "defaults" `Quick test_cost_defaults;
          Alcotest.test_case "validation" `Quick test_cost_validation;
          Alcotest.test_case "fixed demand" `Quick test_cost_fixed_demand;
          Alcotest.test_case "uniform demand" `Quick test_cost_uniform_demand;
          Alcotest.test_case "lognormal mean" `Quick test_cost_lognormal_mean;
          Alcotest.test_case "from-query replay demand" `Quick test_cost_from_query;
          Alcotest.test_case "xd ignored for fixed" `Quick test_cost_from_query_ignored_for_fixed;
          Alcotest.test_case "output bytes override" `Quick test_cost_output_bytes_for;
        ] );
      ( "script",
        [
          Alcotest.test_case "validation" `Quick test_script_make_validation;
          Alcotest.test_case "null CGI" `Quick test_script_null;
          Alcotest.test_case "deterministic output" `Quick test_script_output_deterministic;
          Alcotest.test_case "sized output" `Quick test_script_output_sized;
          Alcotest.test_case "tiny output" `Quick test_script_output_tiny;
          Alcotest.test_case "defaults" `Quick test_script_defaults;
        ] );
      ( "registry",
        [
          Alcotest.test_case "resolve script" `Quick test_registry_resolve_script;
          Alcotest.test_case "resolve file" `Quick test_registry_resolve_file;
          Alcotest.test_case "script precedence" `Quick test_registry_script_precedence;
          Alcotest.test_case "re-register replaces" `Quick test_registry_reregister_replaces;
          Alcotest.test_case "listing" `Quick test_registry_listing;
          Alcotest.test_case "negative file size" `Quick test_registry_negative_file;
        ] );
    ]
