(* Tests for the inter-node protocol: messages, endpoints, broadcast. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let meta key =
  Cache.Meta.make ~key ~owner:0 ~size:128 ~exec_time:1.0 ~created:0.
    ~expires:None

let test_msg_sizes_positive () =
  let m = meta "GET /cgi?x=1" in
  check_bool "insert" true (Cluster.Msg.info_bytes (Cluster.Msg.Insert m) > 0);
  check_bool "delete" true
    (Cluster.Msg.info_bytes (Cluster.Msg.Delete { node = 0; key = "k" }) > 0);
  let req =
    { Cluster.Msg.key = "k"; requester = 1; reply = Sim.Mailbox.create (); span = 0 }
  in
  check_bool "fetch req" true (Cluster.Msg.fetch_request_bytes req > 0)

let test_msg_reply_size_includes_body () =
  let m = meta "k" in
  let hit = Cluster.Msg.Hit { meta = m; body = String.make 1000 'x' } in
  let miss = Cluster.Msg.Miss { key = "k" } in
  check_bool "hit >> miss" true
    (Cluster.Msg.fetch_reply_bytes hit
    > Cluster.Msg.fetch_reply_bytes miss + 900)

let test_msg_size_grows_with_key () =
  let small = Cluster.Msg.Insert (meta "k") in
  let large = Cluster.Msg.Insert (meta (String.make 200 'q')) in
  check_bool "longer key larger" true
    (Cluster.Msg.info_bytes large > Cluster.Msg.info_bytes small)

let test_endpoint_make () =
  let ep = Cluster.Endpoint.make ~node:3 in
  check_int "node id" 3 ep.Cluster.Endpoint.node;
  check_int "empty info" 0 (Sim.Mailbox.length ep.Cluster.Endpoint.info_mb);
  check_int "empty data" 0 (Sim.Mailbox.length ep.Cluster.Endpoint.data_mb)

let with_net n f =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~n_endpoints:n in
  let endpoints = Array.init n (fun node -> Cluster.Endpoint.make ~node) in
  Sim.Engine.spawn eng (fun () -> f net endpoints);
  Sim.Engine.run eng;
  endpoints

let test_broadcast_reaches_all_peers () =
  let endpoints =
    with_net 4 (fun net endpoints ->
        let sent =
          Cluster.Broadcast.info net endpoints ~src:1
            (Cluster.Msg.Delete { node = 1; key = "k" })
        in
        check_int "three peers" 3 sent)
  in
  Array.iteri
    (fun i ep ->
      let expected = if i = 1 then 0 else 1 in
      check_int
        (Printf.sprintf "node %d inbox" i)
        expected
        (Sim.Mailbox.length ep.Cluster.Endpoint.info_mb))
    endpoints

let test_broadcast_single_node_noop () =
  let endpoints =
    with_net 1 (fun net endpoints ->
        let sent =
          Cluster.Broadcast.info net endpoints ~src:0
            (Cluster.Msg.Insert (meta "k"))
        in
        check_int "no peers" 0 sent)
  in
  check_int "own inbox empty" 0
    (Sim.Mailbox.length endpoints.(0).Cluster.Endpoint.info_mb)

let test_fetch_routes_to_owner () =
  let reply = Sim.Mailbox.create () in
  let endpoints =
    with_net 3 (fun net endpoints ->
        Cluster.Broadcast.fetch net endpoints ~src:0 ~owner:2
          { Cluster.Msg.key = "k"; requester = 0; reply; span = 0 })
  in
  check_int "owner got it" 1
    (Sim.Mailbox.length endpoints.(2).Cluster.Endpoint.data_mb);
  check_int "others empty" 0
    (Sim.Mailbox.length endpoints.(1).Cluster.Endpoint.data_mb)

let test_fetch_unknown_owner () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~n_endpoints:2 in
  let endpoints = Array.init 2 (fun node -> Cluster.Endpoint.make ~node) in
  let raised = ref false in
  Sim.Engine.spawn eng (fun () ->
      try
        Cluster.Broadcast.fetch net endpoints ~src:0 ~owner:7
          { Cluster.Msg.key = "k"; requester = 0; reply = Sim.Mailbox.create (); span = 0 }
      with Invalid_argument _ -> raised := true);
  Sim.Engine.run eng;
  check_bool "unknown owner rejected" true !raised

let test_broadcast_delivery_is_delayed () =
  (* Deliveries happen after network latency: inboxes stay empty at send
     time and fill once the simulation drains. *)
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~latency:0.5 ~bandwidth:1e9 eng ~n_endpoints:2 in
  let endpoints = Array.init 2 (fun node -> Cluster.Endpoint.make ~node) in
  let at_send = ref (-1) in
  let arrival = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      ignore
        (Cluster.Broadcast.info net endpoints ~src:0 (Cluster.Msg.Insert (meta "k")));
      at_send := Sim.Mailbox.length endpoints.(1).Cluster.Endpoint.info_mb);
  Sim.Engine.spawn eng (fun () ->
      ignore (Sim.Mailbox.recv endpoints.(1).Cluster.Endpoint.info_mb);
      arrival := Sim.Engine.now ());
  Sim.Engine.run eng;
  check_int "not yet delivered at send" 0 !at_send;
  check_bool "arrives after latency" true (!arrival >= 0.5)

let () =
  Alcotest.run "cluster"
    [
      ( "msg",
        [
          Alcotest.test_case "sizes positive" `Quick test_msg_sizes_positive;
          Alcotest.test_case "reply includes body" `Quick test_msg_reply_size_includes_body;
          Alcotest.test_case "size grows with key" `Quick test_msg_size_grows_with_key;
        ] );
      ( "endpoint",
        [ Alcotest.test_case "construction" `Quick test_endpoint_make ] );
      ( "broadcast",
        [
          Alcotest.test_case "reaches all peers, not self" `Quick
            test_broadcast_reaches_all_peers;
          Alcotest.test_case "single node no-op" `Quick test_broadcast_single_node_noop;
          Alcotest.test_case "fetch routes to owner" `Quick test_fetch_routes_to_owner;
          Alcotest.test_case "fetch to unknown owner rejected" `Quick
            test_fetch_unknown_owner;
          Alcotest.test_case "delivery delayed by latency" `Quick
            test_broadcast_delivery_is_delayed;
        ] );
    ]
