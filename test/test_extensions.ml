(* Tests for the extension features: administrator rules, byte-bounded
   stores, invalidation (push and file-monitoring), strong consistency,
   request routing, CLF import. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* Rules *)

let test_rules_empty_defaults () =
  let d = Swala.Rules.decide Swala.Rules.empty "/anything" in
  check_bool "cacheable" true d.Swala.Rules.cacheable;
  check_bool "no ttl" true (d.Swala.Rules.ttl = None);
  check_bool "no threshold" true (d.Swala.Rules.threshold = None)

let test_rules_parse_basic () =
  let t =
    ok_or_fail "parse"
      (Swala.Rules.parse
         "# config\ncache /cgi-bin/query ttl=3600 threshold=0.5\nnocache \
          /cgi-bin/private\n")
  in
  check_int "two rules" 2 (Swala.Rules.rule_count t);
  let q = Swala.Rules.decide t "/cgi-bin/query" in
  check_bool "query cacheable" true q.Swala.Rules.cacheable;
  Alcotest.(check (option (float 1e-9))) "ttl" (Some 3600.) q.Swala.Rules.ttl;
  Alcotest.(check (option (float 1e-9))) "threshold" (Some 0.5)
    q.Swala.Rules.threshold;
  let p = Swala.Rules.decide t "/cgi-bin/private" in
  check_bool "private blocked" false p.Swala.Rules.cacheable

let test_rules_longest_prefix_wins () =
  let t =
    ok_or_fail "parse"
      (Swala.Rules.parse "cache /cgi-bin/\nnocache /cgi-bin/private\n")
  in
  check_bool "general prefix allows" true
    (Swala.Rules.decide t "/cgi-bin/query").Swala.Rules.cacheable;
  check_bool "specific prefix blocks" false
    (Swala.Rules.decide t "/cgi-bin/private").Swala.Rules.cacheable;
  check_bool "sub-path of specific also blocked" false
    (Swala.Rules.decide t "/cgi-bin/private/x").Swala.Rules.cacheable

let test_rules_default_directive () =
  let t = ok_or_fail "parse" (Swala.Rules.parse "default nocache\ncache /ok\n") in
  check_bool "unmatched blocked" false
    (Swala.Rules.decide t "/other").Swala.Rules.cacheable;
  check_bool "matched allowed" true (Swala.Rules.decide t "/ok").Swala.Rules.cacheable

let test_rules_default_ttl_threshold () =
  let t =
    ok_or_fail "parse"
      (Swala.Rules.parse "default-ttl 600\ndefault-threshold 0.25\n")
  in
  let d = Swala.Rules.decide t "/x" in
  Alcotest.(check (option (float 1e-9))) "ttl" (Some 600.) d.Swala.Rules.ttl;
  Alcotest.(check (option (float 1e-9))) "threshold" (Some 0.25)
    d.Swala.Rules.threshold

let test_rules_parse_errors () =
  let err s = Result.is_error (Swala.Rules.parse s) in
  check_bool "unknown directive" true (err "frobnicate /x\n");
  check_bool "relative path" true (err "cache relative\n");
  check_bool "bad attr" true (err "cache /x ttl=abc\n");
  check_bool "unknown attr" true (err "cache /x color=red\n");
  check_bool "bad default-ttl" true (err "default-ttl -1\n");
  (match Swala.Rules.parse "cache /a\nbogus\n" with
  | Error e -> check_bool "line number" true (String.length e > 5 && e.[5] = '2')
  | Ok _ -> Alcotest.fail "should fail")

let test_rules_to_string_roundtrip () =
  let text =
    "default nocache\ndefault-ttl 600\ncache /cgi-bin/q ttl=10 threshold=0.5\n\
     nocache /cgi-bin/p\n"
  in
  let t = ok_or_fail "parse" (Swala.Rules.parse text) in
  let t2 = ok_or_fail "reparse" (Swala.Rules.parse (Swala.Rules.to_string t)) in
  List.iter
    (fun path ->
      let a = Swala.Rules.decide t path and b = Swala.Rules.decide t2 path in
      check_bool ("same decision for " ^ path) true (a = b))
    [ "/cgi-bin/q"; "/cgi-bin/p"; "/other" ]

let test_rules_server_integration () =
  (* The rule blocks a script that is otherwise cacheable. *)
  let rules =
    ok_or_fail "parse" (Swala.Rules.parse "nocache /cgi-bin/query\n")
  in
  let trace = Workload.Synthetic.coop ~seed:3 ~n:40 ~n_unique:10 ~n_hot:5 () in
  let blocked =
    Swala.Cluster_runner.run (Swala.Config.make ~rules ()) ~trace ~n_streams:4 ()
  in
  check_int "no hits when rule blocks" 0 blocked.Swala.Cluster_runner.hits;
  let allowed =
    Swala.Cluster_runner.run (Swala.Config.make ()) ~trace ~n_streams:4 ()
  in
  check_bool "hits without the rule" true (allowed.Swala.Cluster_runner.hits > 0)

let test_rules_ttl_override () =
  (* Rule TTL (short) beats server default (none): entries expire. *)
  let rules =
    ok_or_fail "parse" (Swala.Rules.parse "cache /cgi-bin/query ttl=0.5\n")
  in
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine
      (Swala.Config.make ~rules ~purge_interval:0.2 ())
      ~registry ~n_client_endpoints:1
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      let req = Http.Request.get "/cgi-bin/query?q=a&xd=0.3" in
      ignore (Swala.Server.submit cluster ~client:1 ~node:0 req);
      Sim.Engine.delay 2.0;
      (* TTL 0.5 expired: re-executes *)
      ignore (Swala.Server.submit cluster ~client:1 ~node:0 req);
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  let c = Swala.Server.merged_counters cluster in
  check_int "expired, so two executions" 2
    (Metrics.Counter.get c Swala.Server.K.cgi_execs)

(* ------------------------------------------------------------------ *)
(* Store: byte capacity + remove_matching *)

let meta ?(size = 100) key =
  Cache.Meta.make ~key ~owner:0 ~size ~exec_time:1.0 ~created:0. ~expires:None

let byte_store cap_bytes =
  Cache.Store.create ~capacity:100 ~capacity_bytes:cap_bytes
    ~policy:Cache.Policy.Lru
    ~clock:(fun () -> 0.)
    ()

let test_store_byte_capacity () =
  let s = byte_store 250 in
  ignore (Cache.Store.insert s (meta ~size:100 "a") "");
  ignore (Cache.Store.insert s (meta ~size:100 "b") "");
  let evicted = Cache.Store.insert s (meta ~size:100 "c") "" in
  check_int "one evicted to fit" 1 (List.length evicted);
  check_bool "bytes bounded" true (Cache.Store.bytes s <= 250);
  Alcotest.(check (option int)) "accessor" (Some 250) (Cache.Store.capacity_bytes s)

let test_store_byte_capacity_oversized_entry () =
  let s = byte_store 100 in
  ignore (Cache.Store.insert s (meta ~size:500 "huge") "");
  check_int "resides alone" 1 (Cache.Store.length s);
  (* The next insert evicts it. *)
  ignore (Cache.Store.insert s (meta ~size:50 "small") "");
  check_bool "huge evicted" false (Cache.Store.mem s "huge")

let test_store_remove_matching () =
  let s =
    Cache.Store.create ~capacity:10 ~policy:Cache.Policy.Lru
      ~clock:(fun () -> 0.)
      ()
  in
  ignore (Cache.Store.insert s (meta "GET /a?x=1") "");
  ignore (Cache.Store.insert s (meta "GET /a?x=2") "");
  ignore (Cache.Store.insert s (meta "GET /b?x=1") "");
  let removed =
    Cache.Store.remove_matching s (fun k ->
        String.length k >= 6 && String.equal (String.sub k 0 6) "GET /a")
  in
  check_int "two removed" 2 (List.length removed);
  check_int "one left" 1 (Cache.Store.length s);
  check_bool "b survives" true (Cache.Store.mem s "GET /b?x=1")

(* ------------------------------------------------------------------ *)
(* Invalidation + Filemon *)

let make_registry_inval () =
  let r = Cgi.Registry.create () in
  Cgi.Registry.register r
    (Cgi.Script.make ~name:"/cgi-bin/report"
       ~sources:[ "/data/sales.db"; "/data/fx.rates" ]
       (Cgi.Cost.make (Cgi.Cost.Fixed 0.5)));
  Cgi.Registry.register r
    (Cgi.Script.make ~name:"/cgi-bin/other" ~sources:[ "/data/fx.rates" ]
       (Cgi.Cost.make (Cgi.Cost.Fixed 0.5)));
  r

let run_cluster_script ~cfg ~registry script =
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints:2
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      script cluster;
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  cluster

let test_filemon_index () =
  let m = Swala.Filemon.create (make_registry_inval ()) in
  Alcotest.(check (list string)) "watched"
    [ "/data/fx.rates"; "/data/sales.db" ]
    (Swala.Filemon.watched m);
  Alcotest.(check (list string)) "fx readers"
    [ "/cgi-bin/other"; "/cgi-bin/report" ]
    (Swala.Filemon.scripts_for m "/data/fx.rates");
  Alcotest.(check (list string)) "unknown file" []
    (Swala.Filemon.scripts_for m "/data/nope")

let test_invalidate_key () =
  let registry = make_registry_inval () in
  let cfg = Swala.Config.make ~n_nodes:1 () in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        ignore
          (Swala.Server.submit cluster ~client:1 ~node:0
             (Http.Request.get "/cgi-bin/report?q=1"));
        let dropped =
          Swala.Server.invalidate cluster ~key:"GET /cgi-bin/report?q=1"
        in
        check_int "one dropped" 1 dropped;
        check_int "idempotent" 0
          (Swala.Server.invalidate cluster ~key:"GET /cgi-bin/report?q=1");
        (* Re-request executes again. *)
        ignore
          (Swala.Server.submit cluster ~client:1 ~node:0
             (Http.Request.get "/cgi-bin/report?q=1")))
  in
  let c = Swala.Server.merged_counters cluster in
  check_int "two executions" 2 (Metrics.Counter.get c Swala.Server.K.cgi_execs);
  check_int "counted" 1 (Metrics.Counter.get c Swala.Server.K.invalidations)

let test_invalidate_script_all_args () =
  let registry = make_registry_inval () in
  let cfg = Swala.Config.make ~n_nodes:2 () in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        ignore
          (Swala.Server.submit cluster ~client:2 ~node:0
             (Http.Request.get "/cgi-bin/report?q=1"));
        ignore
          (Swala.Server.submit cluster ~client:2 ~node:1
             (Http.Request.get "/cgi-bin/report?q=2"));
        ignore
          (Swala.Server.submit cluster ~client:2 ~node:0
             (Http.Request.get "/cgi-bin/other?q=1"));
        Sim.Engine.delay 0.1;
        let dropped = Swala.Server.invalidate_script cluster ~script:"/cgi-bin/report" in
        check_int "both arg combos dropped, other spared" 2 dropped;
        Sim.Engine.delay 0.1;
        (* Peer directories must no longer advertise the dropped entries:
           requesting on the other node re-executes rather than remote-fetching. *)
        ignore
          (Swala.Server.submit cluster ~client:2 ~node:1
             (Http.Request.get "/cgi-bin/report?q=1")))
  in
  let c = Swala.Server.merged_counters cluster in
  check_int "false hits avoided" 0 (Metrics.Counter.get c Swala.Server.K.false_hit);
  check_int "re-executed" 4 (Metrics.Counter.get c Swala.Server.K.cgi_execs)

let test_filemon_on_change () =
  let registry = make_registry_inval () in
  let cfg = Swala.Config.make ~n_nodes:1 () in
  let monitor = Swala.Filemon.create registry in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        ignore
          (Swala.Server.submit cluster ~client:1 ~node:0
             (Http.Request.get "/cgi-bin/report?q=1"));
        ignore
          (Swala.Server.submit cluster ~client:1 ~node:0
             (Http.Request.get "/cgi-bin/other?q=1"));
        (* fx.rates feeds both scripts. *)
        check_int "both dropped" 2
          (Swala.Filemon.on_change monitor cluster "/data/fx.rates");
        check_int "unknown file no-op" 0
          (Swala.Filemon.on_change monitor cluster "/data/unrelated"))
  in
  ignore cluster

(* ------------------------------------------------------------------ *)
(* Strong consistency *)

let test_strong_consistency_visible_on_reply () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:3 ~consistency:Swala.Config.Strong ()
  in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        ignore
          (Swala.Server.submit cluster ~client:3 ~node:0
             (Http.Request.get "/cgi-bin/query?q=a&xd=0.5"));
        (* Immediately after the reply, every replica must already know. *)
        let dir1 = Swala.Server.node_directory (Swala.Server.node cluster 1) in
        let dir2 = Swala.Server.node_directory (Swala.Server.node cluster 2) in
        check_int "replica 1 consistent" 1 (Cache.Directory.table_size dir1 ~node:0);
        check_int "replica 2 consistent" 1 (Cache.Directory.table_size dir2 ~node:0))
  in
  let c = Swala.Server.merged_counters cluster in
  check_int "two acks" 2 (Metrics.Counter.get c Swala.Server.K.acks_sent)

let test_weak_consistency_lags () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg = Swala.Config.make ~n_nodes:2 ~consistency:Swala.Config.Weak () in
  let saw_lag = ref false in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        ignore
          (Swala.Server.submit cluster ~client:2 ~node:0
             (Http.Request.get "/cgi-bin/query?q=a&xd=0.5"));
        let dir1 = Swala.Server.node_directory (Swala.Server.node cluster 1) in
        (* At the instant the client is answered, the async broadcast is
           still in flight. *)
        if Cache.Directory.table_size dir1 ~node:0 = 0 then saw_lag := true;
        Sim.Engine.delay 0.1;
        check_int "eventually applied" 1 (Cache.Directory.table_size dir1 ~node:0))
  in
  ignore cluster;
  check_bool "replica lagged at reply time" true !saw_lag

let test_strong_consistency_runner () =
  (* The strong protocol must not change hit accounting, only timing. *)
  let trace = Workload.Synthetic.coop ~seed:5 ~n:200 ~n_unique:120 ~n_hot:20 () in
  let weak =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~consistency:Swala.Config.Weak ())
      ~trace ~n_streams:8 ()
  in
  let strong =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~consistency:Swala.Config.Strong ())
      ~trace ~n_streams:8 ()
  in
  check_bool "hit counts comparable" true
    (abs (weak.Swala.Cluster_runner.hits - strong.Swala.Cluster_runner.hits) < 10);
  (* At LAN latency the protocols are within scheduling noise of each
     other; the ablation's latency sweep is where strong visibly loses. *)
  check_bool "means within a few percent" true
    (let w = Swala.Cluster_runner.mean_response weak in
     let s = Swala.Cluster_runner.mean_response strong in
     Float.abs (s -. w) < 0.05 *. w)

(* ------------------------------------------------------------------ *)
(* Router *)

let router_cluster () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine (Swala.Config.make ~n_nodes:4 ())
      ~registry ~n_client_endpoints:1
  in
  (engine, cluster)

let test_router_per_stream () =
  let _, cluster = router_cluster () in
  let r = Swala.Router.create Swala.Router.Per_stream in
  let req = Http.Request.get "/cgi-bin/query?q=a" in
  check_int "stream 1" 1 (Swala.Router.pick r cluster ~stream:1 req);
  check_int "wraps" 1 (Swala.Router.pick r cluster ~stream:5 req)

let test_router_round_robin () =
  let _, cluster = router_cluster () in
  let r = Swala.Router.create Swala.Router.Round_robin in
  let req = Http.Request.get "/x" in
  let picks = List.init 8 (fun _ -> Swala.Router.pick r cluster ~stream:0 req) in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 3; 0; 1; 2; 3 ] picks

let test_router_key_affinity () =
  let _, cluster = router_cluster () in
  let r = Swala.Router.create Swala.Router.Key_affinity in
  let a1 = Http.Request.get "/cgi-bin/query?q=a" in
  let a2 = Http.Request.get "/cgi-bin/query?q=a" in
  let b = Http.Request.get "/cgi-bin/query?q=b" in
  check_int "same key same node"
    (Swala.Router.pick r cluster ~stream:0 a1)
    (Swala.Router.pick r cluster ~stream:7 a2);
  (* Parameter order must not change the target (canonical keys). *)
  let c1 = Http.Request.get "/cgi-bin/query?x=1&y=2" in
  let c2 = Http.Request.get "/cgi-bin/query?y=2&x=1" in
  check_int "canonical affinity"
    (Swala.Router.pick r cluster ~stream:0 c1)
    (Swala.Router.pick r cluster ~stream:0 c2);
  let n = Swala.Router.pick r cluster ~stream:0 b in
  check_bool "in range" true (n >= 0 && n < 4)

let test_router_least_active_prefers_idle () =
  let engine, cluster = router_cluster () in
  Swala.Server.start cluster;
  let picked = ref (-1) in
  Sim.Engine.spawn engine (fun () ->
      (* Load node 0 with a slow request, then route a second one. *)
      Sim.Engine.spawn_child (fun () ->
          ignore
            (Swala.Server.submit cluster ~client:4 ~node:0
               (Http.Request.get "/cgi-bin/query?q=slow&xd=2.0")));
      Sim.Engine.delay 0.5;
      let r = Swala.Router.create Swala.Router.Least_active in
      picked := Swala.Router.pick r cluster ~stream:0 (Http.Request.get "/x");
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  check_bool "avoids the busy node" true (!picked <> 0)

let test_router_affinity_lifts_standalone () =
  let trace = Workload.Synthetic.coop ~seed:9 ~n:400 ~n_unique:280 ~n_hot:40 () in
  let run router =
    (Swala.Cluster_runner.run
       (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Standalone ())
       ~trace ~n_streams:8 ~router ())
      .Swala.Cluster_runner.hits
  in
  let scattered = run Swala.Router.Per_stream in
  let affine = run Swala.Router.Key_affinity in
  check_bool "affinity concentrates repeats" true (affine > scattered + 20)

(* ------------------------------------------------------------------ *)
(* CLF *)

let clf_ok = {|host1 - alice [01/Sep/1997:12:00:01 -0700] "GET /docs/map.html HTTP/1.0" 200 5120
host2 - - [01/Sep/1997:12:00:02 -0700] "GET /cgi-bin/query?q=maps HTTP/1.0" 200 8192 1.75
host3 - - [01/Sep/1997:12:00:03 -0700] "POST /cgi-bin/submit HTTP/1.0" 200 64
host4 - - [01/Sep/1997:12:00:04 -0700] "GET /missing.html HTTP/1.0" 404 120
garbage line that is not CLF at all
|}

let test_clf_to_trace () =
  let trace, stats = Workload.Clf.to_trace clf_ok in
  check_int "kept" 2 stats.Workload.Clf.kept;
  check_int "method filtered" 1 stats.Workload.Clf.skipped_method;
  check_int "status filtered" 1 stats.Workload.Clf.skipped_status;
  check_int "malformed" 1 stats.Workload.Clf.malformed;
  match trace with
  | [ file; cgi ] ->
      check_bool "file kind" true (not (Workload.Trace.is_cgi file));
      check_float "file bytes -> service" (0.002 +. (5120. /. 80e6))
        (Workload.Trace.service_time file);
      check_bool "cgi kind" true (Workload.Trace.is_cgi cgi);
      check_float "trailing service time honoured" 1.75
        (Workload.Trace.service_time cgi)
  | _ -> Alcotest.fail "two items expected"

let test_clf_default_demand () =
  let line =
    {|h - - [01/Sep/1997:12:00:00 -0700] "GET /cgi-bin/x HTTP/1.0" 200 100|}
  in
  match Workload.Clf.parse_line ~default_cgi_demand:2.5 ~id:0 line with
  | Ok (Some item) -> check_float "default demand" 2.5 (Workload.Trace.service_time item)
  | Ok None -> Alcotest.fail "should keep"
  | Error e -> Alcotest.fail e

let test_clf_custom_prefix () =
  let line =
    {|h - - [01/Sep/1997:12:00:00 -0700] "GET /dynamic/x HTTP/1.0" 200 100|}
  in
  (match Workload.Clf.parse_line ~cgi_prefix:"/dynamic/" ~id:0 line with
  | Ok (Some item) -> check_bool "cgi under custom prefix" true (Workload.Trace.is_cgi item)
  | Ok None | Error _ -> Alcotest.fail "should be kept as cgi");
  match Workload.Clf.parse_line ~id:0 line with
  | Ok (Some item) ->
      check_bool "file under default prefix" true (not (Workload.Trace.is_cgi item))
  | Ok None | Error _ -> Alcotest.fail "should be kept as file"

let test_clf_errors () =
  let err line = Result.is_error (Workload.Clf.parse_line ~id:0 line) in
  check_bool "unterminated quote" true
    (err {|h - - [d] "GET /x HTTP/1.0 200 1|});
  check_bool "unterminated bracket" true (err {|h - - [d "GET /x HTTP/1.0" 200 1|});
  check_bool "few fields" true (err "h - -");
  check_bool "bad status" true (err {|h - - [d] "GET /x HTTP/1.0" two 1|})

let test_clf_roundtrip_via_item_to_line () =
  let trace = Workload.Synthetic.adl_scaled ~seed:4 ~n:300 in
  let text =
    String.concat "\n" (List.map Workload.Clf.item_to_line trace) ^ "\n"
  in
  let trace', stats = Workload.Clf.to_trace text in
  check_int "all kept" 300 stats.Workload.Clf.kept;
  check_int "none malformed" 0 stats.Workload.Clf.malformed;
  List.iter2
    (fun a b ->
      check_string "key preserved" (Workload.Trace.key a) (Workload.Trace.key b);
      check_bool "service close" true
        (Float.abs (Workload.Trace.service_time a -. Workload.Trace.service_time b)
        < 1e-4))
    trace trace'

(* ------------------------------------------------------------------ *)
(* Failure injection: message loss + fetch timeouts *)

let test_fetch_timeout_fallback () =
  (* Total message loss: the remote fetch can never succeed; the request
     thread must time out and execute locally, still answering 200. *)
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:2 ~net_loss:1.0 ~fetch_timeout:(Some 0.5) ()
  in
  let status = ref 0 in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        Swala.Server.preload cluster ~node:0
          (Http.Request.get "/cgi-bin/query?q=a&xd=0.3")
          ~exec_time:0.3;
        (* The insert broadcast is lost, so seed node 1's directory replica
           by hand to force it down the remote-fetch path. *)
        let dir1 = Swala.Server.node_directory (Swala.Server.node cluster 1) in
        Cache.Directory.insert dir1 ~node:0
          (Cache.Meta.make ~key:"GET /cgi-bin/query?q=a&xd=0.3" ~owner:0
             ~size:100 ~exec_time:0.3 ~created:0. ~expires:None);
        let resp =
          Swala.Server.submit cluster ~client:2 ~node:1
            (Http.Request.get "/cgi-bin/query?q=a&xd=0.3")
        in
        status := Http.Status.code resp.Http.Response.status)
  in
  check_int "still 200" 200 !status;
  let c = Swala.Server.merged_counters cluster in
  check_int "timeout counted" 1
    (Metrics.Counter.get c Swala.Server.K.fetch_timeouts);
  check_int "executed locally" 1 (Metrics.Counter.get c Swala.Server.K.cgi_execs)

let test_loss_requires_timeout () =
  Alcotest.check_raises "config rejected"
    (Invalid_argument
       "Config: message loss or node crashes require a fetch_timeout (lost \
        replies would wedge request threads)") (fun () ->
      Swala.Config.validate (Swala.Config.make ~net_loss:0.5 ()))

let test_lossy_cluster_completes_workload () =
  (* 30% protocol-message loss: every request must still complete (some
     directory updates vanish, some fetches time out, but clients are
     always answered). *)
  let trace = Workload.Synthetic.coop ~seed:11 ~n:300 ~n_unique:150 ~n_hot:30 () in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~net_loss:0.3 ~fetch_timeout:(Some 0.5) ()
  in
  let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:8 () in
  check_int "all answered" 300 (Metrics.Sample.count r.Swala.Cluster_runner.response);
  let lossless =
    Swala.Cluster_runner.run (Swala.Config.make ~n_nodes:4 ()) ~trace
      ~n_streams:8 ()
  in
  check_bool "loss costs hits" true
    (r.Swala.Cluster_runner.hits <= lossless.Swala.Cluster_runner.hits)

(* ------------------------------------------------------------------ *)
(* Wire-level submission *)

let test_submit_wire_roundtrip () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg = Swala.Config.make () in
  let got = ref "" in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        got :=
          Swala.Server.submit_wire cluster ~client:1 ~node:0
            "GET /cgi-bin/query?q=a&xd=0.25 HTTP/1.0\r\nHost: adl\r\n\r\n")
  in
  ignore cluster;
  let resp = ok_or_fail "parse response" (Http.Response.parse !got) in
  check_int "200" 200 (Http.Status.code resp.Http.Response.status);
  check_bool "body present" true (Http.Response.body_size resp > 0)

let test_submit_wire_bad_request () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg = Swala.Config.make () in
  let got = ref "" in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        got := Swala.Server.submit_wire cluster ~client:1 ~node:0 "NONSENSE")
  in
  let resp = ok_or_fail "parse response" (Http.Response.parse !got) in
  check_int "400" 400 (Http.Status.code resp.Http.Response.status);
  (* The node never saw it. *)
  check_int "not counted" 0
    (Metrics.Counter.get
       (Swala.Server.merged_counters cluster)
       Swala.Server.K.requests)

(* ------------------------------------------------------------------ *)
(* New ablations: shapes *)

let test_ablation_protocol_shape () =
  let rows =
    Swala.Experiments.ablation_protocol ~latencies:[ 0.0002; 0.02 ]
      ~n_requests:300 ()
  in
  match rows with
  | [ lan; wan ] ->
      check_bool "LAN penalty negligible" true
        (Float.abs lan.Swala.Experiments.penalty < 0.01);
      check_bool "WAN penalty real" true
        (wan.Swala.Experiments.penalty > 0.01)
  | _ -> Alcotest.fail "two rows"

let test_ablation_routing_shape () =
  let rows = Swala.Experiments.ablation_routing ~nodes:4 () in
  check_int "8 combinations" 8 (List.length rows);
  let find p m =
    List.find
      (fun r ->
        r.Swala.Experiments.routing = p && r.Swala.Experiments.mode_r = m)
      rows
  in
  let scattered = find Swala.Router.Per_stream Swala.Config.Standalone in
  let affine = find Swala.Router.Key_affinity Swala.Config.Standalone in
  let coop = find Swala.Router.Per_stream Swala.Config.Cooperative in
  check_bool "affinity rescues standalone" true
    (affine.Swala.Experiments.hits_r
    > scattered.Swala.Experiments.hits_r + 50);
  check_bool "affine standalone ~ coop" true
    (float_of_int affine.Swala.Experiments.hits_r
    > 0.9 *. float_of_int coop.Swala.Experiments.hits_r)

let test_ablation_threshold_shape () =
  let rows =
    Swala.Experiments.ablation_threshold ~thresholds:[ 0.0; 4.0 ]
      ~capacities:[ 2000 ] ~n_requests:1_500 ()
  in
  match rows with
  | [ all; strict ] ->
      check_bool "caching everything beats caching almost nothing" true
        (all.Swala.Experiments.mean_response_thr
        < strict.Swala.Experiments.mean_response_thr);
      check_bool "higher threshold, fewer inserts" true
        (strict.Swala.Experiments.inserts_thr < all.Swala.Experiments.inserts_thr)
  | _ -> Alcotest.fail "two rows"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extensions"
    [
      ( "rules",
        [
          Alcotest.test_case "empty defaults" `Quick test_rules_empty_defaults;
          Alcotest.test_case "basic parse" `Quick test_rules_parse_basic;
          Alcotest.test_case "longest prefix wins" `Quick test_rules_longest_prefix_wins;
          Alcotest.test_case "default directive" `Quick test_rules_default_directive;
          Alcotest.test_case "default ttl/threshold" `Quick test_rules_default_ttl_threshold;
          Alcotest.test_case "parse errors" `Quick test_rules_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_rules_to_string_roundtrip;
          Alcotest.test_case "server integration" `Quick test_rules_server_integration;
          Alcotest.test_case "ttl override" `Quick test_rules_ttl_override;
        ] );
      ( "store-bytes",
        [
          Alcotest.test_case "byte capacity enforced" `Quick test_store_byte_capacity;
          Alcotest.test_case "oversized entry resides alone" `Quick
            test_store_byte_capacity_oversized_entry;
          Alcotest.test_case "remove_matching" `Quick test_store_remove_matching;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "filemon index" `Quick test_filemon_index;
          Alcotest.test_case "invalidate by key" `Quick test_invalidate_key;
          Alcotest.test_case "invalidate script (all args)" `Quick
            test_invalidate_script_all_args;
          Alcotest.test_case "filemon on_change" `Quick test_filemon_on_change;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "strong: replicas consistent at reply" `Quick
            test_strong_consistency_visible_on_reply;
          Alcotest.test_case "weak: replicas lag at reply" `Quick
            test_weak_consistency_lags;
          Alcotest.test_case "strong vs weak in the runner" `Quick
            test_strong_consistency_runner;
        ] );
      ( "router",
        [
          Alcotest.test_case "per-stream" `Quick test_router_per_stream;
          Alcotest.test_case "round-robin cycles" `Quick test_router_round_robin;
          Alcotest.test_case "key affinity deterministic+canonical" `Quick
            test_router_key_affinity;
          Alcotest.test_case "least-active avoids busy node" `Quick
            test_router_least_active_prefers_idle;
          Alcotest.test_case "affinity lifts standalone hits" `Quick
            test_router_affinity_lifts_standalone;
        ] );
      ( "clf",
        [
          Alcotest.test_case "to_trace with filtering" `Quick test_clf_to_trace;
          Alcotest.test_case "default demand" `Quick test_clf_default_demand;
          Alcotest.test_case "custom cgi prefix" `Quick test_clf_custom_prefix;
          Alcotest.test_case "malformed lines" `Quick test_clf_errors;
          Alcotest.test_case "item_to_line roundtrip" `Quick
            test_clf_roundtrip_via_item_to_line;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "fetch timeout falls back to exec" `Quick
            test_fetch_timeout_fallback;
          Alcotest.test_case "loss without timeout rejected" `Quick
            test_loss_requires_timeout;
          Alcotest.test_case "lossy cluster completes workload" `Quick
            test_lossy_cluster_completes_workload;
        ] );
      ( "wire",
        [
          Alcotest.test_case "wire roundtrip" `Quick test_submit_wire_roundtrip;
          Alcotest.test_case "malformed request -> 400" `Quick
            test_submit_wire_bad_request;
        ] );
      ( "new-ablations",
        [
          Alcotest.test_case "protocol penalty grows with latency" `Quick
            test_ablation_protocol_shape;
          Alcotest.test_case "routing rescues standalone" `Quick
            test_ablation_routing_shape;
          Alcotest.test_case "threshold trade-off" `Quick test_ablation_threshold_shape;
        ] );
    ]
