(* Tests for the fault-injection subsystem: the Sim.Fault plan itself
   (determinism, zero-cost zero profile, schedules), its wiring into the
   network and the server layer (timeout + retry + fallback, suspect-table
   purge, crash/restart), and the graceful-degradation guarantees. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let action_to_string = function
  | Sim.Fault.Deliver -> "deliver"
  | Sim.Fault.Drop -> "drop"
  | Sim.Fault.Delay d -> Printf.sprintf "delay %.9f" d

let check_action msg a b =
  Alcotest.(check string) msg (action_to_string a) (action_to_string b)

(* ------------------------------------------------------------------ *)
(* Profile validation *)

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test_validate_rejects_bad_profiles () =
  expect_invalid "drop > 1" (fun () ->
      Sim.Fault.validate (Sim.Fault.make ~drop:1.5 ()));
  expect_invalid "negative delay_mean" (fun () ->
      Sim.Fault.validate (Sim.Fault.make ~delay:0.1 ~delay_mean:(-1.) ()));
  expect_invalid "delay without delay_mean" (fun () ->
      Sim.Fault.validate (Sim.Fault.make ~delay:0.1 ~delay_mean:0. ()));
  expect_invalid "zero mtbf" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make ~node:{ Sim.Fault.mtbf = 0.; mttr = 1. } ()));
  expect_invalid "overlapping schedule" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make ~node_schedules:[ (0, [ (1., 5.); (4., 6.) ]) ] ()));
  expect_invalid "inverted interval" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make ~node_schedules:[ (0, [ (5., 1.) ]) ] ()));
  expect_invalid "zero horizon" (fun () ->
      Sim.Fault.validate (Sim.Fault.make ~horizon:0. ()));
  Sim.Fault.validate Sim.Fault.none

(* ------------------------------------------------------------------ *)
(* The zero profile draws no random numbers *)

let test_zero_profile_draws_nothing () =
  let r1 = Sim.Rng.create 99 in
  let plan = Sim.Fault.create Sim.Fault.none ~rng:r1 ~nodes:4 in
  for i = 0 to 99 do
    check_action "deliver" Sim.Fault.Deliver
      (Sim.Fault.action plan ~src:(i mod 4) ~dst:((i + 1) mod 4)
         ~now:(float_of_int i))
  done;
  (* create splits one generator per node; nothing else may be drawn, so
     the next draw matches a fresh generator after four bare splits. *)
  let r2 = Sim.Rng.create 99 in
  for _ = 1 to 4 do
    ignore (Sim.Rng.split r2)
  done;
  check_float "rng untouched by delivery decisions" (Sim.Rng.float r2)
    (Sim.Rng.float r1);
  check_int "no drops" 0 (Sim.Fault.drops plan);
  check_int "no delays" 0 (Sim.Fault.delays plan)

(* ------------------------------------------------------------------ *)
(* Same seed + profile -> same fault trace *)

let test_plan_deterministic () =
  let make () =
    Sim.Fault.create
      (Sim.Fault.make ~drop:0.3 ~delay:0.2 ~delay_mean:0.01
         ~node:{ Sim.Fault.mtbf = 40.; mttr = 3. }
         ~horizon:200. ())
      ~rng:(Sim.Rng.create 7) ~nodes:3
  in
  let p1 = make () and p2 = make () in
  for node = 0 to 2 do
    let s1 = Sim.Fault.schedule p1 ~node and s2 = Sim.Fault.schedule p2 ~node in
    check_int "same crash count" (List.length s1) (List.length s2);
    List.iter2
      (fun (d1, u1) (d2, u2) ->
        check_float "same down_at" d1 d2;
        check_float "same up_at" u1 u2)
      s1 s2
  done;
  for i = 0 to 999 do
    let src = i mod 3 and dst = (i + 1) mod 3 and now = float_of_int i /. 7. in
    check_action "same fate"
      (Sim.Fault.action p1 ~src ~dst ~now)
      (Sim.Fault.action p2 ~src ~dst ~now)
  done;
  check_int "same drops" (Sim.Fault.drops p1) (Sim.Fault.drops p2);
  check_int "same delays" (Sim.Fault.delays p1) (Sim.Fault.delays p2);
  check_float "same injected delay"
    (Sim.Fault.delay_injected p1)
    (Sim.Fault.delay_injected p2);
  check_bool "trace is non-trivial" true (Sim.Fault.drops p1 > 0)

let test_stochastic_schedules_well_formed () =
  let plan =
    Sim.Fault.create
      (Sim.Fault.make ~node:{ Sim.Fault.mtbf = 10.; mttr = 1. } ~horizon:100. ())
      ~rng:(Sim.Rng.create 13) ~nodes:4
  in
  for node = 0 to 3 do
    let rec go prev_up = function
      | [] -> ()
      | (down_at, up_at) :: rest ->
          check_bool "ordered, inside horizon" true
            (down_at >= prev_up && down_at < 100. && up_at > down_at);
          go up_at rest
    in
    go 0. (Sim.Fault.schedule plan ~node)
  done;
  check_bool "some crash generated" true
    (List.exists
       (fun node -> Sim.Fault.schedule plan ~node <> [])
       [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Explicit schedules, node_down, drop accounting *)

let test_schedules_and_down_drops () =
  let plan =
    Sim.Fault.create
      (Sim.Fault.make ~node_schedules:[ (1, [ (2., 4.) ]) ] ())
      ~rng:(Sim.Rng.create 1) ~nodes:2
  in
  check_bool "up before" false (Sim.Fault.node_down plan ~node:1 ~now:1.9);
  check_bool "down inside" true (Sim.Fault.node_down plan ~node:1 ~now:3.);
  check_bool "up after" false (Sim.Fault.node_down plan ~node:1 ~now:4.);
  check_bool "clients never down" false
    (Sim.Fault.node_down plan ~node:7 ~now:3.);
  check_action "to down endpoint" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:3.);
  check_action "from down endpoint" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:1 ~dst:0 ~now:3.);
  check_action "delivered once repaired" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:4.5);
  check_int "down drops counted" 2 (Sim.Fault.drops_down plan);
  check_int "all drops were down drops" 2 (Sim.Fault.drops plan)

let test_link_overrides () =
  let plan =
    Sim.Fault.create
      (Sim.Fault.make
         ~link_overrides:
           [ ((0, 1), { Sim.Fault.drop = 1.; delay = 0.; delay_mean = 0. }) ]
         ())
      ~rng:(Sim.Rng.create 2) ~nodes:2
  in
  check_action "override drops 0->1" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:0.);
  check_action "reverse link clean" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:1 ~dst:0 ~now:0.)

(* ------------------------------------------------------------------ *)
(* Cluster level: pay-for-what-you-use and determinism *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(n * 7 / 10) ~n_hot:(n / 10) ()

let counters_equal msg a b =
  let names = Metrics.Counter.names a in
  Alcotest.(check (list string)) (msg ^ ": same counter set") names
    (Metrics.Counter.names b);
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "%s: counter %s" msg n)
        (Metrics.Counter.get a n) (Metrics.Counter.get b n))
    names

let test_zero_plan_equals_no_plan () =
  let trace = coop_trace ~seed:5 ~n:400 in
  let run fault =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative ~fault
         ~seed:5 ())
      ~trace ~n_streams:8 ()
  in
  let bare = run None and zero = run (Some Sim.Fault.none) in
  check_float "same makespan" bare.Swala.Cluster_runner.duration
    zero.Swala.Cluster_runner.duration;
  Alcotest.(check (float 0.))
    "same mean response"
    (Swala.Cluster_runner.mean_response bare)
    (Swala.Cluster_runner.mean_response zero);
  check_int "same hits" bare.Swala.Cluster_runner.hits
    zero.Swala.Cluster_runner.hits;
  check_int "nothing lost" 0 zero.Swala.Cluster_runner.net_lost;
  counters_equal "zero plan" bare.Swala.Cluster_runner.counters
    zero.Swala.Cluster_runner.counters

let test_fault_run_deterministic () =
  let trace = coop_trace ~seed:9 ~n:400 in
  let run () =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~fault:
           (Some
              (Sim.Fault.make ~drop:0.2
                 ~node:{ Sim.Fault.mtbf = 30.; mttr = 2. }
                 ~horizon:300. ()))
         ~fetch_timeout:(Some 0.5) ~fetch_retries:1 ~seed:9 ())
      ~trace ~n_streams:8 ~router:Swala.Router.Per_stream ()
  in
  let a = run () and b = run () in
  check_float "same makespan" a.Swala.Cluster_runner.duration
    b.Swala.Cluster_runner.duration;
  check_int "same losses" a.Swala.Cluster_runner.net_lost
    b.Swala.Cluster_runner.net_lost;
  counters_equal "fault replay" a.Swala.Cluster_runner.counters
    b.Swala.Cluster_runner.counters;
  check_bool "faults actually fired" true (a.Swala.Cluster_runner.net_lost > 0);
  check_int "every request answered" 400
    (Metrics.Sample.count a.Swala.Cluster_runner.response)

(* ------------------------------------------------------------------ *)
(* Server semantics under injected faults *)

let run_cluster_script ~cfg ~registry ?(n_client_endpoints = 2) script =
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      script cluster;
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  cluster

let query q = Http.Request.get (Printf.sprintf "/cgi-bin/query?q=%s&xd=0.2" q)

let test_retries_then_fallback () =
  (* Every protocol message is dropped by the plan: the fetch retries the
     configured number of times, then falls back to local execution. *)
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:2
      ~fault:(Some (Sim.Fault.make ~drop:1.0 ()))
      ~fetch_timeout:(Some 0.5) ~fetch_retries:2 ~fetch_backoff:2. ()
  in
  let status = ref 0 in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        Swala.Server.preload cluster ~node:0 (query "a") ~exec_time:0.2;
        (* The insert broadcast is dropped, so seed node 1's replica by
           hand to force it down the remote-fetch path. *)
        Cache.Directory.insert
          (Swala.Server.node_directory (Swala.Server.node cluster 1))
          ~node:0
          (Cache.Meta.make
             ~key:(Http.Request.cache_key (query "a"))
             ~owner:0 ~size:100 ~exec_time:0.2 ~created:0. ~expires:None);
        let resp = Swala.Server.submit cluster ~client:2 ~node:1 (query "a") in
        status := Http.Status.code resp.Http.Response.status)
  in
  check_int "still 200" 200 !status;
  let c = Swala.Server.merged_counters cluster in
  check_int "one timeout after retries" 1
    (Metrics.Counter.get c Swala.Server.K.fetch_timeouts);
  check_int "both retries performed" 2
    (Metrics.Counter.get c Swala.Server.K.fetch_retries);
  check_int "owner marked suspect" 1
    (Metrics.Counter.get c Swala.Server.K.dir_suspect_purged);
  check_int "fell back to local exec" 1
    (Metrics.Counter.get c Swala.Server.K.cgi_execs)

let test_crash_restart_lifecycle () =
  (* Node 0 is dead over (1s, 5s). While it is down: direct requests are
     refused 503, remote fetches for its keys time out once and purge its
     whole directory table (so later keys fall back without timing out),
     and after restart the node rejoins cold and re-announces. *)
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:2
      ~fault:(Some (Sim.Fault.make ~node_schedules:[ (0, [ (1., 5.) ]) ] ()))
      ~fetch_timeout:(Some 0.5) ()
  in
  let codes = ref [] in
  let submit cluster ~node q =
    let resp = Swala.Server.submit cluster ~client:2 ~node (query q) in
    codes := Http.Status.code resp.Http.Response.status :: !codes
  in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        (* Warm node 0 with two entries; the insert broadcasts give node 1
           directory replicas for both. *)
        Swala.Server.preload cluster ~node:0 (query "a") ~exec_time:0.2;
        Swala.Server.preload cluster ~node:0 (query "b") ~exec_time:0.2;
        Sim.Engine.delay 2.0;
        check_bool "node 0 is down" false
          (Swala.Server.node_up (Swala.Server.node cluster 0));
        submit cluster ~node:0 "a";
        (* 503: refused by the down node *)
        submit cluster ~node:1 "a";
        (* fetch times out, purges node 0's table, executes locally *)
        submit cluster ~node:1 "b";
        (* purged: straight to local execution, no second timeout *)
        Sim.Engine.delay 10.0;
        check_bool "node 0 restarted" true
          (Swala.Server.node_up (Swala.Server.node cluster 0));
        submit cluster ~node:0 "a";
        (* the crash emptied node 0's cache: this re-executes *)
        submit cluster ~node:0 "c";
        Sim.Engine.delay 0.5;
        (* node 0's insert broadcast re-announced "c"; node 1 fetches it *)
        submit cluster ~node:1 "c")
  in
  Alcotest.(check (list int))
    "status codes in order"
    [ 503; 200; 200; 200; 200; 200 ]
    (List.rev !codes);
  let c = Swala.Server.merged_counters cluster in
  let get = Metrics.Counter.get c in
  check_int "one crash" 1 (get Swala.Server.K.crashes);
  check_int "one restart" 1 (get Swala.Server.K.restarts);
  check_int "one 503" 1 (get Swala.Server.K.rejected_down);
  check_int "one fetch timeout" 1 (get Swala.Server.K.fetch_timeouts);
  check_int "both replica entries purged" 2
    (get Swala.Server.K.dir_suspect_purged);
  (* a (fallback at node 1), b (after purge), a again (cache lost in the
     crash) and c: four executions, plus the remote hit on re-announce. *)
  check_int "four executions" 4 (get Swala.Server.K.cgi_execs);
  check_int "re-announce produced a remote hit" 1
    (get Swala.Server.K.hit_remote)

let test_front_end_routes_around_crash () =
  (* With front-end routing, a crashed node costs hit ratio, never
     availability: all requests complete and none answer 503. *)
  let trace = coop_trace ~seed:21 ~n:400 in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~fault:
        (Some (Sim.Fault.make ~node_schedules:[ (1, [ (0.5, 1e9) ]) ] ()))
      ~fetch_timeout:(Some 0.5) ~seed:21 ()
  in
  let r =
    Swala.Cluster_runner.run cfg ~trace ~n_streams:8
      ~router:Swala.Router.Per_stream ()
  in
  check_int "all answered" 400
    (Metrics.Sample.count r.Swala.Cluster_runner.response);
  check_int "no 503s" 0
    (Metrics.Counter.get r.Swala.Cluster_runner.counters
       Swala.Server.K.rejected_down)

let test_strong_consistency_rejects_faults () =
  Alcotest.check_raises "strong + faults rejected"
    (Invalid_argument
       "Config: the strong protocol has no ack retransmission; it tolerates \
        neither net_loss nor a lossy fault profile") (fun () ->
      Swala.Config.validate
        (Swala.Config.make ~consistency:Swala.Config.Strong
           ~fault:(Some (Sim.Fault.make ~drop:0.1 ()))
           ~fetch_timeout:(Some 0.5) ()))

let test_ablation_faults_shape () =
  (* Graceful degradation end to end: hits erode as faults intensify, but
     every cell of the sweep still answers everything. *)
  let rows =
    Swala.Experiments.ablation_faults ~seed:3 ~drops:[ 0.; 0.2 ]
      ~mtbfs:[ 0.; 30. ] ()
  in
  check_int "grid size" 4 (List.length rows);
  let healthy = List.hd rows in
  check_int "healthy cell sees no faults" 0
    healthy.Swala.Experiments.net_lost_f;
  List.iter
    (fun (r : Swala.Experiments.fault_row) ->
      check_bool "hits bounded by healthy" true
        (r.Swala.Experiments.hits_f <= healthy.Swala.Experiments.hits_f);
      if r.Swala.Experiments.drop_f > 0. || r.Swala.Experiments.mtbf_f > 0.
      then
        check_bool "faults fired" true (r.Swala.Experiments.net_lost_f > 0))
    rows

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "validate rejects bad profiles" `Quick
            test_validate_rejects_bad_profiles;
          Alcotest.test_case "zero profile draws nothing" `Quick
            test_zero_profile_draws_nothing;
          Alcotest.test_case "same seed, same fault trace" `Quick
            test_plan_deterministic;
          Alcotest.test_case "stochastic schedules well-formed" `Quick
            test_stochastic_schedules_well_formed;
          Alcotest.test_case "explicit schedules and down drops" `Quick
            test_schedules_and_down_drops;
          Alcotest.test_case "link overrides" `Quick test_link_overrides;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "zero plan = no plan" `Quick
            test_zero_plan_equals_no_plan;
          Alcotest.test_case "fault replay deterministic" `Quick
            test_fault_run_deterministic;
          Alcotest.test_case "retries then local fallback" `Quick
            test_retries_then_fallback;
          Alcotest.test_case "crash/restart lifecycle" `Quick
            test_crash_restart_lifecycle;
          Alcotest.test_case "front-end routes around crash" `Quick
            test_front_end_routes_around_crash;
          Alcotest.test_case "strong consistency rejects faults" `Quick
            test_strong_consistency_rejects_faults;
          Alcotest.test_case "degradation sweep shape" `Quick
            test_ablation_faults_shape;
        ] );
    ]
