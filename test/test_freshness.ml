(* Tests for the adaptive-freshness plane: the Cache.Freshness controller
   (clamping, monotonicity, TTL-layer precedence), the staleness bound a
   TTL'd store actually enforces, the expiry boundary instants in Meta
   and Lookup_cache, config validation, fixed-mode neutrality (a run with
   the plane off must reproduce the pre-freshness output exactly), a
   50-seed determinism sweep with the controller and refresh daemon on,
   and refresh-daemon effectiveness.

   QCheck_alcotest ignores QCHECK_COUNT, so the long-iteration CI job's
   knob is honoured here by hand. *)

let count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let meta ?(owner = 0) ?(size = 100) ?(exec = 0.5) ?(created = 0.) ?expires key
    =
  Cache.Meta.make ~key ~owner ~size ~exec_time:exec ~created ~expires

let fresh ?(min_ttl = 0.25) ?(max_ttl = 120.) ?(penalty = 0.01)
    ?(window = 2.) () =
  Cache.Freshness.create ~min_ttl ~max_ttl ~penalty ~window ()

(* ------------------------------------------------------------------ *)
(* Controller properties *)

(* An arbitrary access/insert history for one key: (at, is_insert) pairs
   with bounded spacing, replayed in time order. *)
let history_gen =
  QCheck.Gen.(
    list_size (0 -- 40)
      (pair (float_bound_exclusive 10.) (frequency [ (3, return false); (1, return true) ])))

let history_arb =
  QCheck.make
    ~print:(fun h ->
      String.concat ";"
        (List.map
           (fun (at, ins) -> Printf.sprintf "%.3f%s" at (if ins then "!" else ""))
           h))
    history_gen

let replay_history f key history =
  List.iter
    (fun (at, is_insert) ->
      if is_insert then Cache.Freshness.observe_insert f ~now:at ~cost:0.05 key
      else Cache.Freshness.observe_access f ~now:at key)
    (List.sort (fun (a, _) (b, _) -> Float.compare a b) history)

let ttl_clamped =
  QCheck.Test.make ~name:"ttl always lands in [min_ttl, max_ttl]" ~count
    QCheck.(
      triple history_arb
        (oneofl [ 1e-6; 0.001; 0.05; 0.5; 5.; 500. ])
        (float_bound_exclusive 10.))
    (fun (history, cost, at) ->
      let f = fresh () in
      replay_history f "k" history;
      let ttl = Cache.Freshness.ttl f ~now:(10. +. at) ~cost "k" in
      ttl >= Cache.Freshness.min_ttl f && ttl <= Cache.Freshness.max_ttl f)

let ttl_monotone_cost =
  QCheck.Test.make ~name:"ttl is nondecreasing in recompute cost" ~count
    QCheck.(
      triple history_arb (float_bound_exclusive 1.) (float_bound_exclusive 1.))
    (fun (history, c1, c2) ->
      let lo = Float.min c1 c2 +. 1e-6 and hi = Float.max c1 c2 +. 1e-6 in
      (* Same history through two controllers so the cost EWMAs match. *)
      let fa = fresh () and fb = fresh () in
      replay_history fa "k" history;
      replay_history fb "k" history;
      Cache.Freshness.ttl fa ~now:11. ~cost:lo "k"
      <= Cache.Freshness.ttl fb ~now:11. ~cost:hi "k")

let ttl_monotone_penalty =
  QCheck.Test.make ~name:"ttl is nonincreasing in the staleness penalty"
    ~count
    QCheck.(
      triple history_arb (float_bound_exclusive 1.) (float_bound_exclusive 1.))
    (fun (history, p1, p2) ->
      let lo = Float.min p1 p2 +. 1e-6 and hi = Float.max p1 p2 +. 1e-6 in
      let fa = fresh ~penalty:lo () and fb = fresh ~penalty:hi () in
      replay_history fa "k" history;
      replay_history fb "k" history;
      Cache.Freshness.ttl fa ~now:11. ~cost:0.05 "k"
      >= Cache.Freshness.ttl fb ~now:11. ~cost:0.05 "k")

let ttl_monotone_rate =
  QCheck.Test.make ~name:"ttl is nonincreasing in the access rate" ~count
    QCheck.(pair history_arb (int_range 1 30))
    (fun (history, extra) ->
      (* B sees the same history plus [extra] more accesses inside the
         current window: its rate estimate can only be higher, so its
         TTL can only be shorter. *)
      let fa = fresh () and fb = fresh () in
      replay_history fa "k" history;
      replay_history fb "k" history;
      for _ = 1 to extra do
        Cache.Freshness.observe_access fb ~now:10.5 "k"
      done;
      Cache.Freshness.ttl fa ~now:11. ~cost:0.05 "k"
      >= Cache.Freshness.ttl fb ~now:11. ~cost:0.05 "k")

let test_update_interval_ewma () =
  let f = fresh () in
  Cache.Freshness.observe_insert f ~now:1. ~cost:0.1 "k";
  check_bool "one insert: no gap yet" true
    (Cache.Freshness.update_interval f "k" = None);
  Cache.Freshness.observe_insert f ~now:3. ~cost:0.1 "k";
  (match Cache.Freshness.update_interval f "k" with
  | Some g -> Alcotest.(check (float 1e-9)) "first gap verbatim" 2. g
  | None -> Alcotest.fail "gap expected");
  Cache.Freshness.observe_insert f ~now:7. ~cost:0.1 "k";
  match Cache.Freshness.update_interval f "k" with
  | Some g -> Alcotest.(check (float 1e-9)) "EWMA(0.3) of 2 then 4" 2.6 g
  | None -> Alcotest.fail "gap expected"

let test_sweep_drops_cold () =
  let f = fresh ~window:2. () in
  Cache.Freshness.observe_access f ~now:1. "cold";
  Cache.Freshness.observe_access f ~now:10. "hot";
  check_int "both tracked" 2 (Cache.Freshness.tracked f);
  let dropped = Cache.Freshness.sweep f ~now:10.5 in
  check_int "cold dropped" 1 dropped;
  check_int "hot kept" 1 (Cache.Freshness.tracked f)

(* ------------------------------------------------------------------ *)
(* TTL-layer precedence *)

let opt_ttl_gen =
  QCheck.Gen.(
    oneof [ return None; map (fun v -> Some (v +. 0.1)) (float_bound_exclusive 60.) ])

let opt_ttl_arb =
  QCheck.make
    ~print:(function None -> "None" | Some v -> Printf.sprintf "Some %.3f" v)
    opt_ttl_gen

let effective_ttl_precedence =
  QCheck.Test.make
    ~name:"effective_ttl: rule beats script beats default, None iff all None"
    ~count
    QCheck.(triple opt_ttl_arb opt_ttl_arb opt_ttl_arb)
    (fun (rule, script, default) ->
      let r = Cache.Freshness.effective_ttl ~rule ~script ~default in
      match (rule, script, default) with
      | Some v, _, _ -> r = Some v
      | None, Some v, _ -> r = Some v
      | None, None, d -> r = d)

(* ------------------------------------------------------------------ *)
(* Staleness bound at the store *)

(* Whatever TTL an entry was inserted with, a hit can only be served at
   an age strictly below it: [Meta.expired] is [now >= expires], so the
   expiry instant itself already misses. Random op sequences over a
   TTL'd store must never produce a hit at or past its TTL. *)
type sop = SInsert of int * float | SAdvance of float | SLookup of int

let sop_gen =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map2
            (fun k ttl -> SInsert (k, ttl))
            (int_range 0 5)
            (oneofl [ 0.5; 1.0; 2.0; 8.0 ]) );
        (2, map (fun dt -> SAdvance dt) (float_bound_exclusive 1.5));
        (3, map (fun k -> SLookup k) (int_range 0 5));
      ])

let sops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | SInsert (k, ttl) -> Printf.sprintf "I(%d,%g)" k ttl
             | SAdvance dt -> Printf.sprintf "A(%g)" dt
             | SLookup k -> Printf.sprintf "L(%d)" k)
           ops))
    QCheck.Gen.(list_size (1 -- 80) sop_gen)

let staleness_bound =
  QCheck.Test.make ~name:"a hit's age is strictly below its entry's TTL"
    ~count sops_arb
    (fun ops ->
      let clock = ref 0. in
      let store =
        Cache.Store.create ~capacity:8 ~policy:Cache.Policy.Lru
          ~clock:(fun () -> !clock)
          ()
      in
      List.iter
        (function
          | SInsert (k, ttl) ->
              let key = Printf.sprintf "k%d" k in
              ignore
                (Cache.Store.insert store
                   (meta ~created:!clock ~expires:(!clock +. ttl) key)
                   "body")
          | SAdvance dt -> clock := !clock +. dt
          | SLookup k -> (
              match Cache.Store.lookup store (Printf.sprintf "k%d" k) with
              | None -> ()
              | Some e -> (
                  let m = e.Cache.Store.meta in
                  let age = Cache.Meta.age m ~now:!clock in
                  match m.Cache.Meta.expires with
                  | None -> ()
                  | Some ex ->
                      let ttl = ex -. m.Cache.Meta.created in
                      if age >= ttl then
                        QCheck.Test.fail_reportf
                          "hit at age %.6f >= ttl %.6f" age ttl)))
        ops;
      true)

(* ------------------------------------------------------------------ *)
(* Boundary instants *)

let test_meta_expiry_instant () =
  let m = meta ~created:0. ~expires:10. "k" in
  check_bool "just before" false (Cache.Meta.expired m ~now:9.999999);
  check_bool "at the instant: already stale" true
    (Cache.Meta.expired m ~now:10.);
  Alcotest.(check (float 1e-9)) "age" 10. (Cache.Meta.age m ~now:10.);
  Alcotest.(check (float 1e-9)) "cost is exec_time" 0.5 (Cache.Meta.cost m)

(* The store serves its last hit strictly inside the TTL and misses at
   the expiry instant exactly. *)
let test_store_expiry_instant () =
  let clock = ref 0. in
  let store =
    Cache.Store.create ~capacity:4 ~policy:Cache.Policy.Lru
      ~clock:(fun () -> !clock)
      ()
  in
  ignore (Cache.Store.insert store (meta ~created:0. ~expires:5. "k") "b");
  clock := 4.999999;
  check_bool "hit inside ttl" true (Cache.Store.lookup store "k" <> None);
  clock := 5.;
  check_bool "miss at the expiry instant" true
    (Cache.Store.lookup store "k" = None)

(* Lookup_cache trusts entries strictly before [until] ([now < until]):
   at the boundary the verdict is already Unknown, and a positive entry
   dies with its meta even inside the TTL window. *)
let test_lookup_cache_until_edge () =
  let lc = Cache.Lookup_cache.create ~capacity:8 ~pos_ttl:5. ~neg_ttl:2. in
  Cache.Lookup_cache.note_pos lc ~now:0. (meta ~owner:3 "k");
  (match Cache.Lookup_cache.find lc ~now:4.999999 "k" with
  | Cache.Lookup_cache.Hit m -> check_int "owner" 3 m.Cache.Meta.owner
  | _ -> Alcotest.fail "expected Hit inside the window");
  (match Cache.Lookup_cache.find lc ~now:5. "k" with
  | Cache.Lookup_cache.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown at the boundary instant");
  Cache.Lookup_cache.note_neg lc ~now:10. "n";
  (match Cache.Lookup_cache.find lc ~now:12. "n" with
  | Cache.Lookup_cache.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown at the negative boundary");
  (* Positive entry whose meta expires before the lookup-cache TTL:
     the meta's own expiry wins. *)
  Cache.Lookup_cache.note_pos lc ~now:20. (meta ~created:20. ~expires:22. "e");
  match Cache.Lookup_cache.find lc ~now:22. "e" with
  | Cache.Lookup_cache.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown once the meta itself expired"

(* ------------------------------------------------------------------ *)
(* Config validation *)

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test_config_validation () =
  let make = Swala.Config.make in
  expect_invalid "min_ttl <= 0" (fun () ->
      Swala.Config.validate (make ~freshness_min_ttl:0. ()));
  expect_invalid "max < min" (fun () ->
      Swala.Config.validate (make ~freshness_min_ttl:2. ~freshness_max_ttl:1. ()));
  expect_invalid "penalty <= 0" (fun () ->
      Swala.Config.validate (make ~freshness_penalty:0. ()));
  expect_invalid "window <= 0" (fun () ->
      Swala.Config.validate (make ~freshness_window:0. ()));
  expect_invalid "budget < 0" (fun () ->
      Swala.Config.validate (make ~refresh_budget:(-1.) ()));
  expect_invalid "interval <= 0" (fun () ->
      Swala.Config.validate (make ~refresh_interval:0. ()));
  expect_invalid "adaptive without a cache" (fun () ->
      Swala.Config.validate
        (make ~cache_mode:Swala.Config.Disabled
           ~freshness:Cache.Freshness.Adaptive ()));
  expect_invalid "refresh budget without a cache" (fun () ->
      Swala.Config.validate
        (make ~cache_mode:Swala.Config.Disabled ~refresh_budget:1. ()));
  (* The defaults and a fully-on freshness plane both validate. *)
  Swala.Config.validate (make ());
  Swala.Config.validate
    (make ~freshness:Cache.Freshness.Adaptive ~refresh_budget:4. ());
  check_bool "mode strings round-trip" true
    (Cache.Freshness.mode_of_string "adaptive" = Ok Cache.Freshness.Adaptive
    && Cache.Freshness.mode_of_string "fixed" = Ok Cache.Freshness.Fixed
    && Result.is_error (Cache.Freshness.mode_of_string "bogus"))

(* ------------------------------------------------------------------ *)
(* Fixed-mode neutrality and replay determinism *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(Stdlib.max 1 (n * 7 / 10))
    ~locality:0.08 ()

(* Spelling out the plane's "off" settings must reproduce the default
   config's run to the last JSON byte — the in-process half of the
   byte-identity acceptance check (CI diffs the full binary output). *)
let test_fixed_mode_neutral () =
  let trace = coop_trace ~seed:11 ~n:300 in
  let run cfg = Swala.Cluster_runner.run cfg ~trace ~n_streams:8 () in
  let base =
    run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~seed:11 ())
  and explicit =
    run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~freshness:Cache.Freshness.Fixed ~refresh_budget:0.
         ~freshness_window:2. ~seed:11 ())
  in
  Alcotest.(check string)
    "identical JSON payloads"
    (Swala.Cluster_runner.result_to_json base)
    (Swala.Cluster_runner.result_to_json explicit);
  check_bool "no freshness key when the plane is off" false
    base.Swala.Cluster_runner.freshness_active;
  (* The staleness histogram is still recorded host-side (hits have
     ages even under fixed TTLs) — it just stays out of the payload. *)
  check_bool "staleness recorded regardless" true
    (Metrics.Histogram.count base.Swala.Cluster_runner.staleness > 0)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_adaptive_json_keys () =
  let trace = coop_trace ~seed:3 ~n:200 in
  let r =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative
         ~freshness:Cache.Freshness.Adaptive ~seed:3 ())
      ~trace ~n_streams:4 ()
  in
  let json = Swala.Cluster_runner.result_to_json r in
  check_bool "freshness key present" true
    (r.Swala.Cluster_runner.freshness_active);
  check_bool "json carries freshness" true
    (contains json "\"freshness\"" && contains json "\"staleness_s\"")

(* 50-seed determinism sweep with the whole plane on: same seed, same
   trace, same everything -> byte-identical metrics JSON across two
   independent runs (fresh engine, fresh cluster, fresh controller). *)
let test_determinism_sweep () =
  for seed = 0 to 49 do
    let trace = coop_trace ~seed ~n:200 in
    let run () =
      Swala.Cluster_runner.result_to_json
        (Swala.Cluster_runner.run
           (Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative
              ~freshness:Cache.Freshness.Adaptive
              ~default_ttl:(Some 1.) ~refresh_budget:2. ~seed ())
           ~trace ~n_streams:4 ())
    in
    let a = run () and b = run () in
    if a <> b then Alcotest.failf "seed %d: replay diverged" seed
  done

(* ------------------------------------------------------------------ *)
(* Refresh daemon effectiveness *)

(* A hot head over expensive CGIs with short adaptive TTLs: the daemon
   must actually re-execute near-expiry entries (refreshes > 0) and some
   of those refreshes must displace client-visible recomputes
   (refresh_saved_ms > 0). With the budget at zero neither counter may
   appear. *)
let test_refresh_effectiveness () =
  let trace =
    Workload.Synthetic.coop ~seed:5 ~n:1500 ~n_unique:60 ~n_hot:8 ~zipf_s:1.2
      ~demand:0.02 ()
  in
  let run budget =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative
         ~cache_threshold:0.001 ~freshness:Cache.Freshness.Adaptive
         ~default_ttl:(Some 0.5) ~refresh_budget:budget ~seed:5 ())
      ~trace ~n_streams:8 ()
  in
  let off = run 0. and on = run 8. in
  let get r n = Metrics.Counter.get r.Swala.Cluster_runner.counters n in
  check_int "no refreshes without a budget" 0 (get off Swala.Server.K.refreshes);
  check_int "no savings without a budget" 0
    (get off Swala.Server.K.refresh_saved_ms);
  check_bool "daemon refreshed entries" true
    (get on Swala.Server.K.refreshes > 0);
  check_bool "refreshes displaced client recomputes" true
    (get on Swala.Server.K.refresh_saved_ms > 0);
  (* The 0.5 s anchor is deliberately tighter than the adaptive TTLs, so
     some adaptive hits are older than a fixed-0.5 cache would allow. *)
  check_bool "stale_served counted against the anchor" true
    (get on Swala.Server.K.stale_served > 0
    || get off Swala.Server.K.stale_served > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "freshness"
    [
      qsuite "controller"
        [
          ttl_clamped; ttl_monotone_cost; ttl_monotone_penalty;
          ttl_monotone_rate;
        ];
      ( "controller-units",
        [
          Alcotest.test_case "update-interval EWMA" `Quick
            test_update_interval_ewma;
          Alcotest.test_case "sweep drops cold keys" `Quick
            test_sweep_drops_cold;
        ] );
      qsuite "precedence" [ effective_ttl_precedence ];
      qsuite "staleness" [ staleness_bound ];
      ( "boundaries",
        [
          Alcotest.test_case "Meta.expired at the instant" `Quick
            test_meta_expiry_instant;
          Alcotest.test_case "store expiry instant" `Quick
            test_store_expiry_instant;
          Alcotest.test_case "Lookup_cache until edge" `Quick
            test_lookup_cache_until_edge;
        ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] );
      ( "neutrality",
        [
          Alcotest.test_case "fixed mode reproduces default" `Quick
            test_fixed_mode_neutral;
          Alcotest.test_case "adaptive JSON keys" `Quick
            test_adaptive_json_keys;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "50-seed replay sweep" `Slow
            test_determinism_sweep;
        ] );
      ( "refresh",
        [
          Alcotest.test_case "effectiveness" `Quick test_refresh_effectiveness;
        ] );
    ]
