(* Tests for the online health monitor: each detector exercised in
   isolation with synthetic signal streams (edge triggering, hysteresis,
   warmup, baselines that refuse to learn from excursions), QCheck
   properties over the incident log, and the end-to-end correlation the
   tentpole promises — an injected Sim.Fault crash window produces
   incident records timestamped inside it, while the fault-free control
   run stays incident-free.

   QCheck_alcotest ignores QCHECK_COUNT, so the long-iteration CI job's
   knob is honoured here by hand. *)

let count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

module H = Metrics.Health

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let signals ?(hits = 0.) ?(lookups = 0.) ?(depth = 0.) ?(stale_n = 0.)
    ?(stale_s = 0.) () =
  {
    H.hits;
    lookups;
    queue_depth = depth;
    stale_count = stale_n;
    stale_total = stale_s;
  }

(* ------------------------------------------------------------------ *)
(* Detector units *)

let test_create_validates () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Health.create: interval must be > 0") (fun () ->
      ignore (H.create ~interval:0. () : H.t));
  Alcotest.check_raises "objective out of range"
    (Invalid_argument "Health.create: slo_objective must be in (0,1)")
    (fun () ->
      ignore
        (H.create
           ~config:{ H.default_config with H.slo_objective = 1. }
           ~interval:1.0 ()
          : H.t))

let test_slo_burn () =
  let h =
    H.create
      ~config:{ H.default_config with H.slo_target = Some 0.1 }
      ~interval:1.0 ()
  in
  let feed n dt =
    for _ = 1 to n do
      H.observe_response h dt
    done
  in
  let tick now = H.tick h ~now (signals ()) in
  (* below min_window_obs the window is never judged, however bad *)
  feed 5 1.0;
  tick 1.0;
  check_int "thin window unjudged" 0 (H.n_incidents h);
  feed 20 0.01;
  tick 2.0;
  check_int "healthy window" 0 (H.n_incidents h);
  feed 20 0.5;
  tick 3.0;
  check_int "burn fires" 1 (H.n_incidents h);
  feed 20 0.5;
  tick 4.0;
  check_int "sustained excursion stays one incident" 1 (H.n_incidents h);
  feed 20 0.01;
  tick 5.0;
  feed 20 0.5;
  tick 6.0;
  check_int "recovery re-arms the detector" 2 (H.n_incidents h);
  match H.incidents h with
  | [ a; b ] ->
      Alcotest.(check string) "detector" "slo_burn" a.H.detector;
      check_float "stamped at the first bad window close" 3.0 a.H.at;
      check_float "second excursion's stamp" 6.0 b.H.at;
      check_bool "burn rate reported over threshold" true
        (a.H.value >= a.H.threshold)
  | _ -> Alcotest.fail "expected exactly two incidents"

let test_hit_ratio_collapse () =
  let h = H.create ~interval:1.0 () in
  let hits = ref 0. and looks = ref 0. in
  let window ~ratio now =
    looks := !looks +. 20.;
    hits := !hits +. (20. *. ratio);
    H.tick h ~now (signals ~hits:!hits ~lookups:!looks ())
  in
  (* warmup: the first windows build the EWMA without judging *)
  for i = 1 to 4 do
    window ~ratio:0.9 (float_of_int i)
  done;
  check_int "steady ratio stays quiet" 0 (H.n_incidents h);
  window ~ratio:0.1 5.;
  check_int "collapse fires" 1 (H.n_incidents h);
  window ~ratio:0.1 6.;
  check_int "one incident per excursion" 1 (H.n_incidents h);
  (* The baseline did not learn from the excursion, so after one healthy
     window the same collapse trips the detector again. *)
  window ~ratio:0.9 7.;
  window ~ratio:0.1 8.;
  check_int "baseline survived the excursion" 2 (H.n_incidents h);
  match H.incidents h with
  | i :: _ ->
      Alcotest.(check string) "detector" "hit_ratio_collapse" i.H.detector;
      check_float "stamped at collapse" 5.0 i.H.at
  | [] -> Alcotest.fail "expected incidents"

let test_queue_growth () =
  let h = H.create ~interval:1.0 () in
  let tick now depth = H.tick h ~now (signals ~depth ()) in
  tick 1. 2.;
  tick 2. 9.;
  check_int "two rising windows are not enough" 0 (H.n_incidents h);
  tick 3. 12.;
  check_int "three rising windows over min depth fire" 1 (H.n_incidents h);
  tick 4. 12.;
  tick 5. 13.;
  check_int "plateau resets the streak" 1 (H.n_incidents h);
  (match H.incidents h with
  | [ i ] ->
      Alcotest.(check string) "detector" "queue_growth" i.H.detector;
      check_float "stamped at the third window" 3.0 i.H.at
  | _ -> Alcotest.fail "expected one incident");
  (* growth below the depth floor is idle-cluster noise, not an incident *)
  let h2 = H.create ~interval:1.0 () in
  for i = 1 to 6 do
    H.tick h2 ~now:(float_of_int i) (signals ~depth:(float_of_int i) ())
  done;
  check_int "shallow backlog never fires" 0 (H.n_incidents h2)

let test_staleness_spike () =
  let h = H.create ~interval:1.0 () in
  let n = ref 0. and s = ref 0. in
  let window ~mean now =
    n := !n +. 20.;
    s := !s +. (20. *. mean);
    H.tick h ~now (signals ~stale_n:!n ~stale_s:!s ())
  in
  for i = 1 to 4 do
    window ~mean:0.1 (float_of_int i)
  done;
  check_int "steady ages stay quiet" 0 (H.n_incidents h);
  window ~mean:0.5 5.;
  check_int "3x age spike fires" 1 (H.n_incidents h);
  match H.incidents h with
  | [ i ] ->
      Alcotest.(check string) "detector" "staleness_spike" i.H.detector;
      check_float "stamped at the spike" 5.0 i.H.at
  | _ -> Alcotest.fail "expected one incident"

(* ------------------------------------------------------------------ *)
(* Incident-log properties *)

(* Edge triggering, stated as a property: however good and bad windows
   interleave, the incident count equals the number of bad runs. *)
let prop_one_incident_per_excursion =
  QCheck.Test.make ~count ~name:"one slo_burn incident per excursion"
    QCheck.(list_of_size Gen.(0 -- 60) bool)
    (fun windows ->
      let h =
        H.create
          ~config:{ H.default_config with H.slo_target = Some 0.1 }
          ~interval:1.0 ()
      in
      let edges = ref 0 and prev = ref false in
      List.iteri
        (fun i bad ->
          for _ = 1 to 12 do
            H.observe_response h (if bad then 0.5 else 0.01)
          done;
          H.tick h ~now:(float_of_int (i + 1)) (signals ());
          if bad && not !prev then incr edges;
          prev := bad)
        windows;
      H.n_incidents h = !edges)

let prop_incidents_time_ordered =
  QCheck.Test.make ~count ~name:"incident log is strictly time-ordered"
    QCheck.(list_of_size Gen.(0 -- 80) (float_range 0. 20.))
    (fun depths ->
      let h = H.create ~interval:1.0 () in
      List.iteri
        (fun i d -> H.tick h ~now:(float_of_int (i + 1)) (signals ~depth:d ()))
        depths;
      let rec ordered = function
        | a :: (b :: _ as rest) -> a.H.at < b.H.at && ordered rest
        | _ -> true
      in
      ordered (H.incidents h)
      && H.n_incidents h = List.length (H.incidents h))

(* ------------------------------------------------------------------ *)
(* End to end: incidents correlate with the injected fault plan *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(n * 7 / 10) ~n_hot:(n / 10) ()

(* Node 1 is dead over (down_at, up_at): remote fetches into it eat the
   0.5s timeout on top of service times that already graze the healthy
   maximum (~2.12s), so only fault-window responses blow past the 2.2s
   SLO target. The control run differs only in having no fault plan. *)
let down_at = 6.0
let up_at = 14.0
let interval = 3.0

let telemetry_run ~fault =
  let trace = coop_trace ~seed:11 ~n:400 in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative ~fault
      ~fetch_timeout:(Some 0.5) ~telemetry_interval:(Some interval)
      ~slo_target:(Some 2.2) ~seed:11 ()
  in
  Swala.Cluster_runner.run cfg ~trace ~n_streams:8
    ~router:Swala.Router.Per_stream ()

let test_fault_incident_correlation () =
  let faulted =
    telemetry_run
      ~fault:
        (Some (Sim.Fault.make ~node_schedules:[ (1, [ (down_at, up_at) ]) ] ()))
  in
  let control = telemetry_run ~fault:None in
  (match control.Swala.Cluster_runner.health with
  | None -> Alcotest.fail "control run lost its monitor"
  | Some h ->
      List.iter
        (fun i -> Printf.printf "control incident: %s at %g\n" i.H.detector i.H.at)
        (H.incidents h);
      check_int "fault-free control is incident-free" 0 (H.n_incidents h));
  match faulted.Swala.Cluster_runner.health with
  | None -> Alcotest.fail "faulted run lost its monitor"
  | Some h ->
      let incs = H.incidents h in
      check_bool "the crash produced incidents" true (incs <> []);
      (* Incidents are stamped at window close, so allow one telemetry
         window past repair: the window closing just after up_at still
         contains the in-flight timeouts. *)
      check_bool "an incident is stamped inside the fault window" true
        (List.exists
           (fun i -> i.H.at >= down_at && i.H.at <= up_at +. interval)
           incs)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "health"
    [
      ( "detectors",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "slo burn" `Quick test_slo_burn;
          Alcotest.test_case "hit-ratio collapse" `Quick
            test_hit_ratio_collapse;
          Alcotest.test_case "queue growth" `Quick test_queue_growth;
          Alcotest.test_case "staleness spike" `Quick test_staleness_spike;
        ] );
      qsuite "log-props"
        [ prop_one_incident_per_excursion; prop_incidents_time_ordered ];
      ( "fault-correlation",
        [
          Alcotest.test_case "incidents fall inside the fault window" `Slow
            test_fault_incident_correlation;
        ] );
    ]
