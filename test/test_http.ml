(* Tests for the HTTP substrate: methods, statuses, headers, URIs,
   request/response wire handling, cache keys. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* Meth / Status *)

let test_meth_roundtrip () =
  List.iter
    (fun m ->
      let s = Http.Meth.to_string m in
      match Http.Meth.of_string s with
      | Ok m' -> check_bool s true (Http.Meth.equal m m')
      | Error e -> Alcotest.fail e)
    [ Http.Meth.Get; Http.Meth.Head; Http.Meth.Post ]

let test_meth_case_sensitive () =
  check_bool "lowercase rejected" true
    (Result.is_error (Http.Meth.of_string "get"))

let test_meth_unknown () =
  check_bool "unknown" true (Result.is_error (Http.Meth.of_string "BREW"))

let test_status_codes () =
  check_int "ok" 200 (Http.Status.code Http.Status.Ok);
  check_int "404" 404 (Http.Status.code Http.Status.Not_found);
  check_string "reason" "Not Found" (Http.Status.reason Http.Status.Not_found);
  check_bool "success" true (Http.Status.is_success Http.Status.Ok);
  check_bool "error" false (Http.Status.is_success Http.Status.Bad_request)

let test_status_of_code () =
  (match Http.Status.of_code 500 with
  | Ok Http.Status.Internal_server_error -> ()
  | Ok _ | Error _ -> Alcotest.fail "500");
  check_bool "unknown code" true (Result.is_error (Http.Status.of_code 418))

(* ------------------------------------------------------------------ *)
(* Headers *)

let test_headers_case_insensitive () =
  let h = Http.Headers.add Http.Headers.empty "Content-Type" "text/html" in
  Alcotest.(check (option string)) "lc" (Some "text/html")
    (Http.Headers.get h "content-type");
  Alcotest.(check (option string)) "uc" (Some "text/html")
    (Http.Headers.get h "CONTENT-TYPE");
  check_bool "mem" true (Http.Headers.mem h "CoNtEnT-tYpE")

let test_headers_order_and_duplicates () =
  let h =
    Http.Headers.empty
    |> fun h -> Http.Headers.add h "X-A" "1"
    |> fun h -> Http.Headers.add h "X-B" "2"
    |> fun h -> Http.Headers.add h "X-A" "3"
  in
  Alcotest.(check (list string)) "all values" [ "1"; "3" ]
    (Http.Headers.get_all h "x-a");
  Alcotest.(check (option string)) "first wins" (Some "1") (Http.Headers.get h "X-A");
  check_int "length" 3 (Http.Headers.length h)

let test_headers_replace_remove () =
  let h = Http.Headers.of_list [ ("A", "1"); ("B", "2"); ("a", "3") ] in
  let h' = Http.Headers.replace h "A" "9" in
  Alcotest.(check (list string)) "replaced" [ "9" ] (Http.Headers.get_all h' "a");
  let h'' = Http.Headers.remove h "a" in
  check_bool "removed" false (Http.Headers.mem h'' "A")

let test_headers_content_length () =
  let h = Http.Headers.of_list [ ("Content-Length", " 42 ") ] in
  Alcotest.(check (option int)) "parsed" (Some 42) (Http.Headers.content_length h);
  let bad = Http.Headers.of_list [ ("Content-Length", "xyz") ] in
  Alcotest.(check (option int)) "malformed" None (Http.Headers.content_length bad)

(* ------------------------------------------------------------------ *)
(* Uri *)

let test_uri_parse_basic () =
  let u = ok_or_fail "parse" (Http.Uri.parse "/a/b?x=1&y=2") in
  check_string "path" "/a/b" u.Http.Uri.path;
  Alcotest.(check (list (pair string string)))
    "query"
    [ ("x", "1"); ("y", "2") ]
    u.Http.Uri.query

let test_uri_parse_no_query () =
  let u = ok_or_fail "parse" (Http.Uri.parse "/index.html") in
  check_string "path" "/index.html" u.Http.Uri.path;
  check_int "no params" 0 (List.length u.Http.Uri.query)

let test_uri_percent_decoding () =
  let u = ok_or_fail "parse" (Http.Uri.parse "/p%20q?k%3D=v%26w") in
  check_string "path decoded" "/p q" u.Http.Uri.path;
  Alcotest.(check (list (pair string string)))
    "query decoded"
    [ ("k=", "v&w") ]
    u.Http.Uri.query

let test_uri_plus_is_space () =
  let u = ok_or_fail "parse" (Http.Uri.parse "/s?q=hello+world") in
  Alcotest.(check (option string)) "plus" (Some "hello world")
    (Http.Uri.query_get u "q")

let test_uri_errors () =
  check_bool "empty" true (Result.is_error (Http.Uri.parse ""));
  check_bool "relative" true (Result.is_error (Http.Uri.parse "foo"));
  check_bool "bad escape" true (Result.is_error (Http.Uri.parse "/a%zz"));
  check_bool "truncated escape" true (Result.is_error (Http.Uri.parse "/a%2"))

let test_uri_roundtrip () =
  let cases = [ "/a/b?x=1&y=2"; "/p"; "/q?k=v"; "/deep/path/x?a=1&b=2&c=3" ] in
  List.iter
    (fun s ->
      let u = ok_or_fail "parse" (Http.Uri.parse s) in
      check_string ("roundtrip " ^ s) s (Http.Uri.to_string u))
    cases

let test_uri_encode_special () =
  let u = { Http.Uri.path = "/a b"; query = [ ("k&", "v=w") ] } in
  let s = Http.Uri.to_string u in
  let u' = ok_or_fail "reparse" (Http.Uri.parse s) in
  check_bool "roundtrip with escapes" true (Http.Uri.equal u u')

let test_uri_canonical_sorts () =
  let u = ok_or_fail "parse" (Http.Uri.parse "/s?b=2&a=1&b=1") in
  let c = Http.Uri.canonical u in
  Alcotest.(check (list (pair string string)))
    "sorted by key then value"
    [ ("a", "1"); ("b", "1"); ("b", "2") ]
    c.Http.Uri.query;
  check_string "path unchanged" "/s" c.Http.Uri.path

let prop_uri_decode_encode =
  QCheck.Test.make ~name:"percent_decode . percent_encode = id" ~count:300
    QCheck.(string_of_size Gen.(0 -- 30))
    (fun s ->
      match Http.Uri.percent_decode (Http.Uri.percent_encode s) with
      | Ok s' -> String.equal s s'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Request *)

let test_request_make_and_wire () =
  let r = Http.Request.get "/cgi-bin/query?q=maps" in
  let wire = Http.Request.to_wire r in
  check_bool "request line" true
    (String.length wire > 0
    && String.sub wire 0 (String.length "GET /cgi-bin/query?q=maps HTTP/1.0")
       = "GET /cgi-bin/query?q=maps HTTP/1.0")

let test_request_parse_roundtrip () =
  let r =
    Http.Request.make
      ~headers:(Http.Headers.of_list [ ("Host", "adl.ucsb.edu") ])
      ~body:"payload" Http.Meth.Post "/submit?x=1"
  in
  let r' = ok_or_fail "parse" (Http.Request.parse (Http.Request.to_wire r)) in
  check_bool "meth" true (Http.Meth.equal r.Http.Request.meth r'.Http.Request.meth);
  check_bool "uri" true (Http.Uri.equal r.Http.Request.uri r'.Http.Request.uri);
  check_string "body" "payload" r'.Http.Request.body;
  Alcotest.(check (option string)) "host header" (Some "adl.ucsb.edu")
    (Http.Headers.get r'.Http.Request.headers "host")

let test_request_parse_bare_lf () =
  let raw = "GET /x HTTP/1.0\nHost: h\n\n" in
  let r = ok_or_fail "parse" (Http.Request.parse raw) in
  check_string "path" "/x" r.Http.Request.uri.Http.Uri.path

let test_request_parse_errors () =
  check_bool "empty" true (Result.is_error (Http.Request.parse ""));
  check_bool "bad line" true (Result.is_error (Http.Request.parse "GETX\r\n\r\n"));
  check_bool "bad method" true
    (Result.is_error (Http.Request.parse "BREW /x HTTP/1.0\r\n\r\n"));
  check_bool "bad header" true
    (Result.is_error (Http.Request.parse "GET /x HTTP/1.0\r\nnocolon\r\n\r\n"))

let test_request_content_length_truncates () =
  let raw = "POST /x HTTP/1.0\r\nContent-Length: 3\r\n\r\nabcdef" in
  let r = ok_or_fail "parse" (Http.Request.parse raw) in
  check_string "body truncated" "abc" r.Http.Request.body

let test_request_make_invalid () =
  Alcotest.check_raises "relative target"
    (Invalid_argument "Request.make: request-URI must be absolute (start with '/')")
    (fun () -> ignore (Http.Request.make Http.Meth.Get "nope"))

let test_cache_key_param_order_insensitive () =
  let a = Http.Request.get "/cgi?x=1&y=2" in
  let b = Http.Request.get "/cgi?y=2&x=1" in
  check_string "same key" (Http.Request.cache_key a) (Http.Request.cache_key b)

let test_cache_key_distinguishes () =
  let a = Http.Request.get "/cgi?x=1" in
  let b = Http.Request.get "/cgi?x=2" in
  let c = Http.Request.make Http.Meth.Head "/cgi?x=1" in
  check_bool "different args" true
    (Http.Request.cache_key a <> Http.Request.cache_key b);
  check_bool "different method" true
    (Http.Request.cache_key a <> Http.Request.cache_key c)

let test_request_wire_size () =
  let r = Http.Request.get "/x" in
  check_int "wire size" (String.length (Http.Request.to_wire r))
    (Http.Request.wire_size r)

let prop_request_roundtrip =
  let gen_path =
    QCheck.Gen.(
      map
        (fun segs -> "/" ^ String.concat "/" segs)
        (list_size (1 -- 3) (string_size ~gen:(char_range 'a' 'z') (1 -- 8))))
  in
  let gen_query =
    QCheck.Gen.(
      list_size (0 -- 3)
        (pair
           (string_size ~gen:(char_range 'a' 'z') (1 -- 5))
           (string_size ~gen:(char_range '0' '9') (0 -- 5))))
  in
  let gen =
    QCheck.Gen.(
      map2
        (fun path query ->
          Http.Uri.to_string { Http.Uri.path; query })
        gen_path gen_query)
  in
  QCheck.Test.make ~name:"request parse . to_wire = id" ~count:200
    (QCheck.make gen) (fun target ->
      let r = Http.Request.get target in
      match Http.Request.parse (Http.Request.to_wire r) with
      | Ok r' ->
          Http.Uri.equal r.Http.Request.uri r'.Http.Request.uri
          && Http.Meth.equal r.Http.Request.meth r'.Http.Request.meth
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Response *)

let test_response_ok () =
  let r = Http.Response.ok "<html/>" in
  check_int "200" 200 (Http.Status.code r.Http.Response.status);
  check_int "body size" 7 (Http.Response.body_size r)

let test_response_wire_adds_content_length () =
  let r = Http.Response.ok "abc" in
  let wire = Http.Response.to_wire r in
  let r' = ok_or_fail "parse" (Http.Response.parse wire) in
  Alcotest.(check (option int)) "content-length" (Some 3)
    (Http.Headers.content_length r'.Http.Response.headers);
  check_string "body" "abc" r'.Http.Response.body

let test_response_error_body () =
  let r = Http.Response.error Http.Status.Not_found "/missing" in
  check_bool "mentions path" true
    (String.length r.Http.Response.body > 0
    &&
    let b = r.Http.Response.body in
    let rec find i =
      i + 8 <= String.length b
      && (String.sub b i 8 = "/missing" || find (i + 1))
    in
    find 0)

let test_response_parse_errors () =
  check_bool "empty" true (Result.is_error (Http.Response.parse ""));
  check_bool "bad code" true
    (Result.is_error (Http.Response.parse "HTTP/1.0 abc Bad\r\n\r\n"));
  check_bool "unknown code" true
    (Result.is_error (Http.Response.parse "HTTP/1.0 418 Teapot\r\n\r\n"))

let test_response_roundtrip () =
  let r =
    Http.Response.make
      ~headers:(Http.Headers.of_list [ ("X-Cache", "HIT") ])
      ~body:"data" Http.Status.Ok
  in
  let r' = ok_or_fail "parse" (Http.Response.parse (Http.Response.to_wire r)) in
  check_string "body" "data" r'.Http.Response.body;
  Alcotest.(check (option string)) "header" (Some "HIT")
    (Http.Headers.get r'.Http.Response.headers "x-cache")

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "http"
    [
      ( "meth-status",
        [
          Alcotest.test_case "method roundtrip" `Quick test_meth_roundtrip;
          Alcotest.test_case "method case sensitivity" `Quick test_meth_case_sensitive;
          Alcotest.test_case "unknown method" `Quick test_meth_unknown;
          Alcotest.test_case "status codes" `Quick test_status_codes;
          Alcotest.test_case "status of_code" `Quick test_status_of_code;
        ] );
      ( "headers",
        [
          Alcotest.test_case "case-insensitive get" `Quick test_headers_case_insensitive;
          Alcotest.test_case "order and duplicates" `Quick test_headers_order_and_duplicates;
          Alcotest.test_case "replace and remove" `Quick test_headers_replace_remove;
          Alcotest.test_case "content-length" `Quick test_headers_content_length;
        ] );
      ( "uri",
        [
          Alcotest.test_case "basic parse" `Quick test_uri_parse_basic;
          Alcotest.test_case "no query" `Quick test_uri_parse_no_query;
          Alcotest.test_case "percent decoding" `Quick test_uri_percent_decoding;
          Alcotest.test_case "plus decodes to space" `Quick test_uri_plus_is_space;
          Alcotest.test_case "malformed inputs" `Quick test_uri_errors;
          Alcotest.test_case "roundtrip" `Quick test_uri_roundtrip;
          Alcotest.test_case "special chars roundtrip" `Quick test_uri_encode_special;
          Alcotest.test_case "canonical sorts query" `Quick test_uri_canonical_sorts;
        ] );
      qsuite "uri-props" [ prop_uri_decode_encode ];
      ( "request",
        [
          Alcotest.test_case "make + wire format" `Quick test_request_make_and_wire;
          Alcotest.test_case "parse roundtrip" `Quick test_request_parse_roundtrip;
          Alcotest.test_case "bare-LF tolerated" `Quick test_request_parse_bare_lf;
          Alcotest.test_case "parse errors" `Quick test_request_parse_errors;
          Alcotest.test_case "content-length truncates" `Quick
            test_request_content_length_truncates;
          Alcotest.test_case "invalid make raises" `Quick test_request_make_invalid;
          Alcotest.test_case "cache key ignores param order" `Quick
            test_cache_key_param_order_insensitive;
          Alcotest.test_case "cache key distinguishes" `Quick test_cache_key_distinguishes;
          Alcotest.test_case "wire size" `Quick test_request_wire_size;
        ] );
      qsuite "request-props" [ prop_request_roundtrip ];
      ( "response",
        [
          Alcotest.test_case "ok constructor" `Quick test_response_ok;
          Alcotest.test_case "wire adds content-length" `Quick
            test_response_wire_adds_content_length;
          Alcotest.test_case "error body" `Quick test_response_error_body;
          Alcotest.test_case "parse errors" `Quick test_response_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_response_roundtrip;
        ] );
    ]
