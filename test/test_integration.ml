(* Integration tests: full cluster runs via Cluster_runner and shape checks
   on the experiment drivers (small-scale versions of the paper's tables). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cluster_runner *)

let small_trace = lazy (Workload.Synthetic.coop ~seed:5 ~n:200 ~n_unique:120 ~n_hot:20 ())

let test_runner_counts_all_requests () =
  let trace = Lazy.force small_trace in
  let cfg = Swala.Config.make () in
  let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:4 () in
  check_int "sample count" 200 (Metrics.Sample.count r.Swala.Cluster_runner.response);
  check_int "server saw all" 200
    (Metrics.Counter.get r.Swala.Cluster_runner.counters Swala.Server.K.requests);
  check_bool "positive duration" true (r.Swala.Cluster_runner.duration > 0.)

let test_runner_hit_accounting () =
  let trace = Lazy.force small_trace in
  let cfg = Swala.Config.make () in
  let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:4 () in
  let upper = Workload.Analyzer.upper_bound_hits trace in
  check_bool "hits bounded by upper" true (r.Swala.Cluster_runner.hits <= upper);
  check_bool "most repeats hit" true
    (float_of_int r.Swala.Cluster_runner.hits > 0.8 *. float_of_int upper);
  (* hits + execs = total CGI requests *)
  let execs =
    Metrics.Counter.get r.Swala.Cluster_runner.counters Swala.Server.K.cgi_execs
  in
  check_int "conservation" 200 (r.Swala.Cluster_runner.hits + execs)

let test_runner_deterministic () =
  let trace = Lazy.force small_trace in
  let cfg = Swala.Config.make ~n_nodes:2 () in
  let r1 = Swala.Cluster_runner.run cfg ~trace ~n_streams:4 () in
  let r2 = Swala.Cluster_runner.run cfg ~trace ~n_streams:4 () in
  Alcotest.(check (float 0.)) "bit-identical mean"
    (Swala.Cluster_runner.mean_response r1)
    (Swala.Cluster_runner.mean_response r2);
  check_int "same hits" r1.Swala.Cluster_runner.hits r2.Swala.Cluster_runner.hits

let test_runner_coop_beats_standalone () =
  let trace = Lazy.force small_trace in
  let coop =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative ())
      ~trace ~n_streams:8 ()
  in
  let standalone =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Standalone ())
      ~trace ~n_streams:8 ()
  in
  check_bool "coop >= standalone hits" true
    (coop.Swala.Cluster_runner.hits >= standalone.Swala.Cluster_runner.hits)

let test_runner_caching_beats_no_cache () =
  let trace = Lazy.force small_trace in
  let cached =
    Swala.Cluster_runner.run (Swala.Config.make ()) ~trace ~n_streams:8 ()
  in
  let plain =
    Swala.Cluster_runner.run
      (Swala.Config.make ~cache_mode:Swala.Config.Disabled ())
      ~trace ~n_streams:8 ()
  in
  check_bool "caching reduces mean response" true
    (Swala.Cluster_runner.mean_response cached
    < Swala.Cluster_runner.mean_response plain)

let test_runner_utilisation_sane () =
  let trace = Lazy.force small_trace in
  let r =
    Swala.Cluster_runner.run (Swala.Config.make ~n_nodes:2 ()) ~trace
      ~n_streams:4 ()
  in
  Array.iter
    (fun u -> check_bool "0 <= u <= 1" true (u >= 0. && u <= 1.0 +. 1e-9))
    r.Swala.Cluster_runner.utilisation

let test_runner_file_and_cgi_split () =
  let trace = Workload.Synthetic.adl_scaled ~seed:8 ~n:300 in
  let r = Swala.Cluster_runner.run (Swala.Config.make ()) ~trace ~n_streams:4 () in
  check_int "split covers everything" 300
    (Metrics.Sample.count r.Swala.Cluster_runner.cgi_response
    + Metrics.Sample.count r.Swala.Cluster_runner.file_response)

let test_runner_warmup_runs_first () =
  let trace = Workload.Synthetic.coop ~seed:5 ~n:20 ~n_unique:1 ~n_hot:1 () in
  let item = List.hd trace in
  let req = Workload.Trace.to_request item in
  let r =
    Swala.Cluster_runner.run (Swala.Config.make ()) ~trace ~n_streams:2
      ~warmup:(fun cluster ->
        Swala.Server.preload cluster ~node:0 req ~exec_time:1.0)
      ()
  in
  (* Every request hits the warmed entry: no executions at all. *)
  check_int "no execs" 0
    (Metrics.Counter.get r.Swala.Cluster_runner.counters Swala.Server.K.cgi_execs);
  check_int "all hits" 20 r.Swala.Cluster_runner.hits

let test_runner_assign_override () =
  let trace = Lazy.force small_trace in
  let cfg = Swala.Config.make ~n_nodes:2 () in
  let r =
    Swala.Cluster_runner.run cfg ~trace ~n_streams:4 ~assign:(fun _ -> 1) ()
  in
  check_int "node 0 idle" 0
    (Metrics.Counter.get
       r.Swala.Cluster_runner.per_node_counters.(0)
       Swala.Server.K.requests);
  check_int "node 1 got all" 200
    (Metrics.Counter.get
       r.Swala.Cluster_runner.per_node_counters.(1)
       Swala.Server.K.requests)

(* ------------------------------------------------------------------ *)
(* Experiment shapes (small scale) *)

let test_exp_table1_shape () =
  let params =
    { Workload.Synthetic.default_adl with n_requests = 15_000; n_hot = 60 }
  in
  let summary, rows = Swala.Experiments.table1 ~params () in
  check_bool "~41% cgi" true
    (Float.abs (summary.Workload.Analyzer.cgi_fraction -. 0.413) < 0.03);
  (match rows with
  | r1 :: _ ->
      (* Substantial saving available at the lowest threshold. *)
      check_bool "saving > 10%" true (r1.Workload.Analyzer.saved_fraction > 0.10);
      check_bool "entries modest" true (r1.Workload.Analyzer.unique_repeats < 500)
  | [] -> Alcotest.fail "rows expected");
  (* Monotonicity: fewer qualifying requests at higher thresholds. *)
  let longs = List.map (fun r -> r.Workload.Analyzer.n_long) rows in
  let rec dec = function
    | a :: (b :: _ as rest) -> a >= b && dec rest
    | _ -> true
  in
  check_bool "n_long decreasing" true (dec longs)

let test_exp_table2_shape () =
  let rows =
    Swala.Experiments.table2 ~clients:[ 4; 32 ] ~requests_per_client:15 ()
  in
  List.iter
    (fun r ->
      (* HTTPd trails the threaded servers by 2-7x (paper's finding). *)
      check_bool "httpd slowest" true
        (r.Swala.Experiments.httpd > r.Swala.Experiments.swala
        && r.Swala.Experiments.httpd > r.Swala.Experiments.enterprise);
      let ratio = r.Swala.Experiments.httpd /. r.Swala.Experiments.swala in
      check_bool "ratio in band" true (ratio > 1.5 && ratio < 10.))
    rows;
  (* Enterprise wins at low client counts, Swala at high. *)
  (match rows with
  | [ low; high ] ->
      check_bool "enterprise faster at low load" true
        (low.Swala.Experiments.enterprise < low.Swala.Experiments.swala);
      check_bool "swala faster at high load" true
        (high.Swala.Experiments.swala < high.Swala.Experiments.enterprise)
  | _ -> Alcotest.fail "two rows")

let test_exp_figure3_shape () =
  let f = Swala.Experiments.figure3 ~requests_per_client:10 () in
  (* Paper: Swala no-cache comparable to HTTPd, faster than Enterprise;
     cache fetches are an order of magnitude cheaper; remote costs slightly
     more than local. *)
  check_bool "enterprise slowest" true
    (f.Swala.Experiments.enterprise_f3 > f.Swala.Experiments.httpd_f3);
  check_bool "no-cache below httpd" true
    (f.Swala.Experiments.swala_no_cache < f.Swala.Experiments.httpd_f3);
  check_bool "local below remote" true
    (f.Swala.Experiments.swala_local < f.Swala.Experiments.swala_remote);
  check_bool "remote far below exec" true
    (f.Swala.Experiments.swala_remote < 0.5 *. f.Swala.Experiments.swala_no_cache)

let test_exp_figure4_shape () =
  let rows =
    Swala.Experiments.figure4 ~node_counts:[ 1; 4 ] ~n_requests:1_200 ()
  in
  match rows with
  | [ one; four ] ->
      check_bool "caching helps (1 node)" true
        (one.Swala.Experiments.improvement > 0.10);
      check_bool "caching helps (4 nodes)" true
        (four.Swala.Experiments.improvement > 0.10);
      check_bool "scales" true (four.Swala.Experiments.speedup_no_cache > 3.0)
  | _ -> Alcotest.fail "two rows"

let test_exp_table3_shape () =
  let rows = Swala.Experiments.table3 ~node_counts:[ 2; 4 ] ~n_requests:60 () in
  List.iter
    (fun r ->
      (* Insert+broadcast overhead exists but is well under 1% of the 1 s
         request time, and roughly node-count independent. *)
      check_bool "overhead positive" true (r.Swala.Experiments.increase_t3 >= 0.);
      check_bool "overhead tiny" true (r.Swala.Experiments.increase_t3 < 0.01))
    rows;
  match rows with
  | [ a; b ] ->
      check_bool "independent of nodes" true
        (Float.abs (a.Swala.Experiments.increase_t3 -. b.Swala.Experiments.increase_t3)
        < 0.005)
  | _ -> Alcotest.fail "two rows"

let test_exp_table4_shape () =
  let rows = Swala.Experiments.table4 ~ups_list:[ 0; 40 ] ~n_requests:50 () in
  match rows with
  | [ base; loaded ] ->
      check_int "base applies nothing" 0 base.Swala.Experiments.updates_applied;
      check_bool "updates applied" true (loaded.Swala.Experiments.updates_applied > 0);
      check_bool "increase tiny" true
        (loaded.Swala.Experiments.increase_t4 < 0.05)
  | _ -> Alcotest.fail "two rows"

let test_exp_hit_ratio_large_cache () =
  let rows =
    Swala.Experiments.hit_ratio_table ~node_counts:[ 1; 4 ] ~n:400
      ~n_unique:280 ~cache_size:2000 ()
  in
  match rows with
  | [ one; four ] ->
      (* At this small scale, 16 simultaneous streams make concurrent false
         misses proportionally larger than in the full-size run, so the
         near-optimal band is a bit wider than the paper's 97%. *)
      check_bool "coop near optimal at 1" true (one.Swala.Experiments.coop_pct > 0.8);
      check_bool "coop near optimal at 4" true (four.Swala.Experiments.coop_pct > 0.8);
      check_bool "standalone drops with nodes" true
        (four.Swala.Experiments.standalone_pct < one.Swala.Experiments.standalone_pct);
      check_bool "coop beats standalone at 4" true
        (four.Swala.Experiments.coop_hits > four.Swala.Experiments.standalone_hits)
  | _ -> Alcotest.fail "two rows"

let test_exp_hit_ratio_small_cache () =
  let rows =
    Swala.Experiments.hit_ratio_table ~node_counts:[ 1; 4 ] ~n:400
      ~n_unique:280 ~cache_size:8 ()
  in
  match rows with
  | [ one; four ] ->
      (* Paper Table 6: with a tiny cache, cooperative hit ratio grows with
         the number of nodes (aggregate capacity grows). *)
      check_bool "coop grows with nodes" true
        (four.Swala.Experiments.coop_pct > one.Swala.Experiments.coop_pct);
      check_bool "coop beats standalone" true
        (four.Swala.Experiments.coop_hits >= four.Swala.Experiments.standalone_hits)
  | _ -> Alcotest.fail "two rows"

let test_exp_ablation_policy_ranks () =
  let rows = Swala.Experiments.ablation_policy ~cache_size:8 ~nodes:2 () in
  check_int "all policies" (List.length Cache.Policy.all) (List.length rows);
  List.iter
    (fun r ->
      check_bool "hits bounded" true
        (r.Swala.Experiments.hits_p <= r.Swala.Experiments.upper_p))
    rows

let test_exp_ablation_locking () =
  let rows = Swala.Experiments.ablation_locking ~nodes:2 () in
  check_int "three granularities" 3 (List.length rows);
  let find g =
    List.find (fun r -> r.Swala.Experiments.granularity = g) rows
  in
  let per_entry = find Cache.Directory.Per_entry in
  let per_table = find Cache.Directory.Per_table in
  check_bool "per-entry does more lock work" true
    (per_entry.Swala.Experiments.rd_locks > per_table.Swala.Experiments.rd_locks)

let test_exp_ablation_consistency () =
  let rows =
    Swala.Experiments.ablation_consistency ~latencies:[ 0.0002; 0.1 ] ~nodes:4 ()
  in
  match rows with
  | [ fast; slow ] ->
      (* Wider inconsistency window => at least as many anomalies. *)
      let anomalies r =
        r.Swala.Experiments.false_miss_duplicate_c + r.Swala.Experiments.false_hits
      in
      check_bool "latency widens anomaly window" true
        (anomalies slow >= anomalies fast);
      check_bool "anomalies rare at LAN latency" true
        (anomalies fast <= 20)
  | _ -> Alcotest.fail "two rows"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "integration"
    [
      ( "cluster-runner",
        [
          Alcotest.test_case "all requests measured" `Quick test_runner_counts_all_requests;
          Alcotest.test_case "hit accounting" `Quick test_runner_hit_accounting;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "coop >= standalone" `Quick test_runner_coop_beats_standalone;
          Alcotest.test_case "caching beats no-cache" `Quick
            test_runner_caching_beats_no_cache;
          Alcotest.test_case "utilisation sane" `Quick test_runner_utilisation_sane;
          Alcotest.test_case "file/cgi split" `Quick test_runner_file_and_cgi_split;
          Alcotest.test_case "warmup precedes clients" `Quick test_runner_warmup_runs_first;
          Alcotest.test_case "assign override" `Quick test_runner_assign_override;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 shape" `Quick test_exp_table1_shape;
          Alcotest.test_case "table2 shape" `Quick test_exp_table2_shape;
          Alcotest.test_case "figure3 shape" `Quick test_exp_figure3_shape;
          Alcotest.test_case "figure4 shape" `Slow test_exp_figure4_shape;
          Alcotest.test_case "table3 shape" `Quick test_exp_table3_shape;
          Alcotest.test_case "table4 shape" `Quick test_exp_table4_shape;
          Alcotest.test_case "hit ratios, large cache" `Quick
            test_exp_hit_ratio_large_cache;
          Alcotest.test_case "hit ratios, small cache" `Quick
            test_exp_hit_ratio_small_cache;
          Alcotest.test_case "policy ablation" `Quick test_exp_ablation_policy_ranks;
          Alcotest.test_case "locking ablation" `Quick test_exp_ablation_locking;
          Alcotest.test_case "consistency ablation" `Quick test_exp_ablation_consistency;
        ] );
    ]
