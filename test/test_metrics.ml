(* Tests for the metrics library: summaries, samples, counters, tables. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_empty () =
  let s = Metrics.Summary.create () in
  check_int "count" 0 (Metrics.Summary.count s);
  check_float "mean" 0. (Metrics.Summary.mean s);
  check_float "variance" 0. (Metrics.Summary.variance s);
  Alcotest.check_raises "min empty" (Invalid_argument "Summary.min: empty")
    (fun () -> ignore (Metrics.Summary.min s))

let test_summary_basic () =
  let s = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add s) [ 1.; 2.; 3.; 4. ];
  check_int "count" 4 (Metrics.Summary.count s);
  check_float "mean" 2.5 (Metrics.Summary.mean s);
  check_float "total" 10. (Metrics.Summary.total s);
  check_float "min" 1. (Metrics.Summary.min s);
  check_float "max" 4. (Metrics.Summary.max s);
  (* Unbiased sample variance of 1..4 is 5/3. *)
  check_float_eps 1e-9 "variance" (5. /. 3.) (Metrics.Summary.variance s)

let test_summary_single_value () =
  let s = Metrics.Summary.create () in
  Metrics.Summary.add s 7.;
  check_float "variance n=1" 0. (Metrics.Summary.variance s);
  check_float "stddev n=1" 0. (Metrics.Summary.stddev s)

let test_summary_merge_equals_combined () =
  let a = Metrics.Summary.create () and b = Metrics.Summary.create () in
  let all = Metrics.Summary.create () in
  List.iter
    (fun x ->
      Metrics.Summary.add all x;
      if x < 3. then Metrics.Summary.add a x else Metrics.Summary.add b x)
    [ 1.; 2.; 3.; 4.; 5.; 6. ];
  let m = Metrics.Summary.merge a b in
  check_int "count" (Metrics.Summary.count all) (Metrics.Summary.count m);
  check_float_eps 1e-9 "mean" (Metrics.Summary.mean all) (Metrics.Summary.mean m);
  check_float_eps 1e-9 "variance" (Metrics.Summary.variance all)
    (Metrics.Summary.variance m);
  check_float "min" 1. (Metrics.Summary.min m);
  check_float "max" 6. (Metrics.Summary.max m)

let test_summary_merge_with_empty () =
  let a = Metrics.Summary.create () and b = Metrics.Summary.create () in
  Metrics.Summary.add a 5.;
  let m1 = Metrics.Summary.merge a b in
  let m2 = Metrics.Summary.merge b a in
  check_float "a+empty" 5. (Metrics.Summary.mean m1);
  check_float "empty+a" 5. (Metrics.Summary.mean m2)

let test_summary_copy_independent () =
  let a = Metrics.Summary.create () in
  Metrics.Summary.add a 1.;
  let b = Metrics.Summary.copy a in
  Metrics.Summary.add b 3.;
  check_int "original untouched" 1 (Metrics.Summary.count a);
  check_int "copy grew" 2 (Metrics.Summary.count b)

let prop_summary_mean_matches_naive =
  QCheck.Test.make ~name:"welford mean equals naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Metrics.Summary.create () in
      List.iter (Metrics.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Metrics.Summary.mean s -. naive) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Sample *)

let test_sample_quantiles () =
  let s = Metrics.Sample.create () in
  List.iter (Metrics.Sample.add s) [ 4.; 1.; 3.; 2.; 5. ];
  check_float "median" 3. (Metrics.Sample.median s);
  check_float "q0" 1. (Metrics.Sample.quantile s 0.);
  check_float "q1" 5. (Metrics.Sample.quantile s 1.);
  check_float "q25" 2. (Metrics.Sample.quantile s 0.25);
  check_float "mean" 3. (Metrics.Sample.mean s)

let test_sample_interpolation () =
  let s = Metrics.Sample.create () in
  List.iter (Metrics.Sample.add s) [ 0.; 10. ];
  check_float "q50 interpolates" 5. (Metrics.Sample.quantile s 0.5)

let test_sample_add_after_query () =
  let s = Metrics.Sample.create () in
  Metrics.Sample.add s 2.;
  ignore (Metrics.Sample.median s);
  Metrics.Sample.add s 1.;
  check_float "resorted" 1. (Metrics.Sample.min s);
  check_float "median updated" 1.5 (Metrics.Sample.median s)

let test_sample_errors () =
  let s = Metrics.Sample.create () in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Sample.quantile: empty") (fun () ->
      ignore (Metrics.Sample.quantile s 0.5));
  Metrics.Sample.add s 1.;
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Sample.quantile: q out of [0,1]") (fun () ->
      ignore (Metrics.Sample.quantile s 1.5))

let test_sample_values_sorted () =
  let s = Metrics.Sample.create () in
  List.iter (Metrics.Sample.add s) [ 3.; 1.; 2. ];
  Alcotest.(check (array (float 1e-9))) "sorted" [| 1.; 2.; 3. |]
    (Metrics.Sample.values s)

let prop_sample_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:100
    QCheck.(list_of_size Gen.(2 -- 30) (float_bound_exclusive 100.))
    (fun xs ->
      QCheck.assume (List.length xs >= 2);
      let s = Metrics.Sample.create () in
      List.iter (Metrics.Sample.add s) xs;
      let qs = [ 0.; 0.25; 0.5; 0.75; 1.0 ] in
      let vals = List.map (Metrics.Sample.quantile s) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter_basic () =
  let c = Metrics.Counter.create () in
  check_int "untouched" 0 (Metrics.Counter.get c "x");
  Metrics.Counter.incr c "x";
  Metrics.Counter.incr c "x";
  Metrics.Counter.add c "y" 5;
  check_int "x" 2 (Metrics.Counter.get c "x");
  check_int "y" 5 (Metrics.Counter.get c "y");
  Alcotest.(check (list string)) "names" [ "x"; "y" ] (Metrics.Counter.names c)

let test_counter_merge () =
  let a = Metrics.Counter.create () and b = Metrics.Counter.create () in
  Metrics.Counter.add a "hits" 3;
  Metrics.Counter.add b "hits" 4;
  Metrics.Counter.add b "misses" 1;
  let m = Metrics.Counter.merge a b in
  check_int "summed" 7 (Metrics.Counter.get m "hits");
  check_int "only b" 1 (Metrics.Counter.get m "misses");
  (* merge must not alias its inputs *)
  Metrics.Counter.incr m "hits";
  check_int "a unchanged" 3 (Metrics.Counter.get a "hits")

let test_counter_negative_add () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.add c "x" (-2);
  check_int "negative allowed" (-2) (Metrics.Counter.get c "x")

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t =
    Metrics.Table.create ~title:"T"
      ~columns:[ ("name", Metrics.Table.Left); ("v", Metrics.Table.Right) ]
  in
  Metrics.Table.add_row t [ "alpha"; "1" ];
  Metrics.Table.add_row t [ "b"; "22" ];
  let out = Metrics.Table.render t in
  check_bool "has title" true (String.length out > 0 && String.sub out 0 1 = "T");
  (* Right-aligned numbers line up: " 1" and "22" both two wide. *)
  check_bool "right align" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "alpha   1") lines
     && List.exists (fun l -> l = "b      22") lines)

let test_table_row_arity () =
  let t =
    Metrics.Table.create ~title:"T" ~columns:[ ("a", Metrics.Table.Left) ]
  in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Metrics.Table.add_row t [ "x"; "y" ])

let test_table_formatters () =
  Alcotest.(check string) "float" "1.500" (Metrics.Table.fmt_f 1.5);
  Alcotest.(check string) "float decimals" "1.50" (Metrics.Table.fmt_f ~decimals:2 1.5);
  Alcotest.(check string) "pct" "12.5%" (Metrics.Table.fmt_pct 0.125);
  Alcotest.(check string) "int" "42" (Metrics.Table.fmt_i 42)

let test_table_rows_in_order () =
  let t =
    Metrics.Table.create ~title:"T" ~columns:[ ("a", Metrics.Table.Left) ]
  in
  Metrics.Table.add_row t [ "first" ];
  Metrics.Table.add_row t [ "second" ];
  let out = Metrics.Table.render t in
  let find sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length out then -1
      else if String.sub out i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  check_bool "order preserved" true (find "first" < find "second")

(* ------------------------------------------------------------------ *)
(* Timeseries *)

let test_timeseries_bucketing () =
  let ts = Metrics.Timeseries.create ~window:10. in
  Metrics.Timeseries.add ts ~time:1. 2.;
  Metrics.Timeseries.add ts ~time:9.9 4.;
  Metrics.Timeseries.add ts ~time:10. 10.;
  Metrics.Timeseries.add ts ~time:35. 1.;
  check_int "four windows" 4 (Metrics.Timeseries.n_buckets ts);
  let means = Metrics.Timeseries.bucket_means ts in
  check_float "window 0 mean" 3. means.(0);
  check_float "window 1 mean" 10. means.(1);
  check_bool "empty window is nan" true (Float.is_nan means.(2));
  check_float "window 3 mean" 1. means.(3);
  check_int "total count" 4 (Metrics.Summary.count (Metrics.Timeseries.total ts))

let test_timeseries_validation () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "Timeseries.create: window must be > 0") (fun () ->
      ignore (Metrics.Timeseries.create ~window:0.));
  let ts = Metrics.Timeseries.create ~window:1. in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Timeseries.add: negative time") (fun () ->
      Metrics.Timeseries.add ts ~time:(-1.) 0.)

let test_timeseries_empty () =
  let ts = Metrics.Timeseries.create ~window:1. in
  check_int "no buckets" 0 (Metrics.Timeseries.n_buckets ts);
  check_int "empty total" 0 (Metrics.Summary.count (Metrics.Timeseries.total ts))

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_table_to_csv () =
  let t =
    Metrics.Table.create ~title:"T"
      ~columns:[ ("name", Metrics.Table.Left); ("v", Metrics.Table.Right) ]
  in
  Metrics.Table.add_row t [ "plain"; "1" ];
  Metrics.Table.add_row t [ "with,comma"; "quote\"inside" ];
  Alcotest.(check string) "csv"
    "name,v\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
    (Metrics.Table.to_csv t)

let test_table_csv_newline () =
  let t =
    Metrics.Table.create ~title:"T"
      ~columns:[ ("name", Metrics.Table.Left); ("v", Metrics.Table.Right) ]
  in
  Metrics.Table.add_row t [ "line1\nline2"; "ok" ];
  Alcotest.(check string) "embedded newline quoted"
    "name,v\n\"line1\nline2\",ok\n"
    (Metrics.Table.to_csv t)

(* ------------------------------------------------------------------ *)
(* Timeseries gaps: a long stretch of empty windows must yield NaN means
   and zero-count summaries, not crash or invent zeros. *)

let test_timeseries_gap_windows () =
  let ts = Metrics.Timeseries.create ~window:1. in
  Metrics.Timeseries.add ts ~time:0.5 3.;
  Metrics.Timeseries.add ts ~time:6.5 7.;
  check_int "seven windows" 7 (Metrics.Timeseries.n_buckets ts);
  let means = Metrics.Timeseries.bucket_means ts in
  check_float "first mean" 3. means.(0);
  for i = 1 to 5 do
    check_bool
      (Printf.sprintf "window %d mean is nan" i)
      true
      (Float.is_nan means.(i))
  done;
  check_float "last mean" 7. means.(6);
  let buckets = Metrics.Timeseries.buckets ts in
  for i = 1 to 5 do
    check_int
      (Printf.sprintf "window %d empty" i)
      0
      (Metrics.Summary.count buckets.(i))
  done

(* ------------------------------------------------------------------ *)
(* Sample _opt accessors: total-order statistics over empty samples are
   None, never an exception or a made-up zero. *)

let test_sample_opt_empty () =
  let s = Metrics.Sample.create () in
  check_bool "quantile_opt" true (Metrics.Sample.quantile_opt s 0.5 = None);
  check_bool "median_opt" true (Metrics.Sample.median_opt s = None);
  check_bool "min_opt" true (Metrics.Sample.min_opt s = None);
  check_bool "max_opt" true (Metrics.Sample.max_opt s = None)

let test_sample_opt_filled () =
  let s = Metrics.Sample.create () in
  List.iter (Metrics.Sample.add s) [ 3.; 1.; 2. ];
  check_bool "median_opt" true (Metrics.Sample.median_opt s = Some 2.);
  check_bool "min_opt" true (Metrics.Sample.min_opt s = Some 1.);
  check_bool "max_opt" true (Metrics.Sample.max_opt s = Some 3.);
  check_bool "q0" true (Metrics.Sample.quantile_opt s 0. = Some 1.);
  check_bool "q1" true (Metrics.Sample.quantile_opt s 1. = Some 3.)

let test_sample_opt_range_checked () =
  let s = Metrics.Sample.create () in
  Metrics.Sample.add s 1.;
  Alcotest.check_raises "q > 1"
    (Invalid_argument "Sample.quantile_opt: q out of [0,1]") (fun () ->
      ignore (Metrics.Sample.quantile_opt s 1.5))

(* ------------------------------------------------------------------ *)
(* Fixed-bucket histograms *)

let test_histogram_basic () =
  let h = Metrics.Histogram.create ~bounds:[| 1.; 2.; 5. |] () in
  check_int "empty count" 0 (Metrics.Histogram.count h);
  check_float "empty mean" 0. (Metrics.Histogram.mean h);
  check_bool "empty quantile" true (Metrics.Histogram.quantile_opt h 0.5 = None);
  check_bool "empty min" true (Metrics.Histogram.min_opt h = None);
  List.iter (Metrics.Histogram.add h) [ 0.5; 1.5; 1.7; 3.0; 10.0 ];
  check_int "count" 5 (Metrics.Histogram.count h);
  check_float "total" 16.7 (Metrics.Histogram.total h);
  check_float "mean" (16.7 /. 5.) (Metrics.Histogram.mean h);
  check_bool "min exact" true (Metrics.Histogram.min_opt h = Some 0.5);
  check_bool "max exact" true (Metrics.Histogram.max_opt h = Some 10.0);
  match Metrics.Histogram.buckets h with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, c4) ] ->
      check_float "bound 1" 1. b1;
      check_int "bucket <=1" 1 c1;
      check_float "bound 2" 2. b2;
      check_int "bucket <=2" 2 c2;
      check_float "bound 5" 5. b3;
      check_int "bucket <=5" 1 c3;
      check_bool "overflow bound" true (binf = infinity);
      check_int "overflow count" 1 c4
  | other ->
      Alcotest.failf "expected 4 buckets, got %d" (List.length other)

let test_histogram_quantiles_clamped () =
  let h = Metrics.Histogram.create ~bounds:[| 1.; 2.; 5. |] () in
  (* All mass in one bucket: any quantile must stay inside [vmin, vmax]. *)
  List.iter (Metrics.Histogram.add h) [ 1.4; 1.5; 1.6 ];
  (match Metrics.Histogram.quantile_opt h 0. with
  | Some q -> check_bool "q0 >= vmin" true (q >= 1.4)
  | None -> Alcotest.fail "expected Some");
  (match Metrics.Histogram.quantile_opt h 1. with
  | Some q -> check_bool "q1 <= vmax" true (q <= 1.6)
  | None -> Alcotest.fail "expected Some");
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile_opt: q out of [0,1]") (fun () ->
      ignore (Metrics.Histogram.quantile_opt h 2.))

let test_histogram_merge () =
  let bounds = [| 1.; 10. |] in
  let a = Metrics.Histogram.create ~bounds () in
  let b = Metrics.Histogram.create ~bounds () in
  Metrics.Histogram.add a 0.5;
  Metrics.Histogram.add b 5.;
  Metrics.Histogram.add b 50.;
  let m = Metrics.Histogram.merge a b in
  check_int "merged count" 3 (Metrics.Histogram.count m);
  check_float "merged total" 55.5 (Metrics.Histogram.total m);
  check_bool "merged min" true (Metrics.Histogram.min_opt m = Some 0.5);
  check_bool "merged max" true (Metrics.Histogram.max_opt m = Some 50.);
  let c = Metrics.Histogram.create ~bounds:[| 2.; 20. |] () in
  Alcotest.check_raises "mismatched bounds"
    (Invalid_argument "Histogram.merge: bounds differ") (fun () ->
      ignore (Metrics.Histogram.merge a c))

let test_histogram_validation () =
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Histogram.create: bounds must be strictly increasing")
    (fun () -> ignore (Metrics.Histogram.create ~bounds:[| 1.; 1. |] ()))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "metrics"
    [
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "mean/var/min/max" `Quick test_summary_basic;
          Alcotest.test_case "single value" `Quick test_summary_single_value;
          Alcotest.test_case "merge equals combined stream" `Quick
            test_summary_merge_equals_combined;
          Alcotest.test_case "merge with empty" `Quick test_summary_merge_with_empty;
          Alcotest.test_case "copy independence" `Quick test_summary_copy_independent;
        ] );
      qsuite "summary-props" [ prop_summary_mean_matches_naive ];
      ( "sample",
        [
          Alcotest.test_case "quantiles" `Quick test_sample_quantiles;
          Alcotest.test_case "interpolation" `Quick test_sample_interpolation;
          Alcotest.test_case "add after query resorts" `Quick test_sample_add_after_query;
          Alcotest.test_case "error cases" `Quick test_sample_errors;
          Alcotest.test_case "values sorted" `Quick test_sample_values_sorted;
          Alcotest.test_case "_opt on empty" `Quick test_sample_opt_empty;
          Alcotest.test_case "_opt on data" `Quick test_sample_opt_filled;
          Alcotest.test_case "_opt range checked" `Quick
            test_sample_opt_range_checked;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets and stats" `Quick test_histogram_basic;
          Alcotest.test_case "quantiles clamped" `Quick
            test_histogram_quantiles_clamped;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "bounds validated" `Quick
            test_histogram_validation;
        ] );
      qsuite "sample-props" [ prop_sample_quantile_monotone ];
      ( "counter",
        [
          Alcotest.test_case "incr/add/get/names" `Quick test_counter_basic;
          Alcotest.test_case "merge" `Quick test_counter_merge;
          Alcotest.test_case "negative add" `Quick test_counter_negative_add;
        ] );
      ( "table",
        [
          Alcotest.test_case "render and alignment" `Quick test_table_render;
          Alcotest.test_case "row arity checked" `Quick test_table_row_arity;
          Alcotest.test_case "formatters" `Quick test_table_formatters;
          Alcotest.test_case "row order" `Quick test_table_rows_in_order;
          Alcotest.test_case "csv export" `Quick test_table_to_csv;
          Alcotest.test_case "csv newline quoting" `Quick
            test_table_csv_newline;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "bucketing" `Quick test_timeseries_bucketing;
          Alcotest.test_case "validation" `Quick test_timeseries_validation;
          Alcotest.test_case "empty" `Quick test_timeseries_empty;
          Alcotest.test_case "gap windows" `Quick test_timeseries_gap_windows;
        ] );
    ]
