(* Tests for network partitions and anti-entropy directory repair: the
   time-varying partition extension of Sim.Fault, the crash-interruptible
   broadcast fan-out, the out-of-order fetch_sync regression, the
   anti-entropy convergence guarantee (partition -> divergence -> heal ->
   element-wise identical replicas), router-level request retry, and the
   determinism of it all across seeds. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let action_to_string = function
  | Sim.Fault.Deliver -> "deliver"
  | Sim.Fault.Drop -> "drop"
  | Sim.Fault.Delay d -> Printf.sprintf "delay %.9f" d

let check_action msg a b =
  Alcotest.(check string) msg (action_to_string a) (action_to_string b)

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let halves ?(cut_at = 1.0) ?(heal_at = 9.0) () =
  { Sim.Fault.pname = "halves"; groups = [ [ 0; 1 ]; [ 2; 3 ] ]; cut_at; heal_at }

(* ------------------------------------------------------------------ *)
(* Profile validation *)

let test_partition_validation () =
  expect_invalid "negative cut_at" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make ~partitions:[ halves ~cut_at:(-1.) () ] ()));
  expect_invalid "heal before cut" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make ~partitions:[ halves ~cut_at:5. ~heal_at:5. () ] ()));
  expect_invalid "empty group" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make
           ~partitions:
             [ { Sim.Fault.pname = "e"; groups = [ [ 0 ]; [] ];
                 cut_at = 0.; heal_at = 1. } ]
           ()));
  expect_invalid "no groups" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make
           ~partitions:
             [ { Sim.Fault.pname = "n"; groups = []; cut_at = 0.; heal_at = 1. } ]
           ()));
  expect_invalid "overlapping groups" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make
           ~partitions:
             [ { Sim.Fault.pname = "o"; groups = [ [ 0; 1 ]; [ 1; 2 ] ];
                 cut_at = 0.; heal_at = 1. } ]
           ()));
  expect_invalid "negative node id" (fun () ->
      Sim.Fault.validate
        (Sim.Fault.make
           ~partitions:
             [ { Sim.Fault.pname = "neg"; groups = [ [ -1 ]; [ 0 ] ];
                 cut_at = 0.; heal_at = 1. } ]
           ()));
  Sim.Fault.validate (Sim.Fault.make ~partitions:[ halves () ] ());
  check_bool "partitions make a profile lossy" true
    (Sim.Fault.is_lossy (Sim.Fault.make ~partitions:[ halves () ] ()))

(* ------------------------------------------------------------------ *)
(* The partition window: who is cut from whom, and when *)

let test_partition_action_window () =
  let plan =
    Sim.Fault.create
      (Sim.Fault.make ~partitions:[ halves ~cut_at:2. ~heal_at:5. () ] ())
      ~rng:(Sim.Rng.create 3) ~nodes:4
  in
  check_action "before the cut" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:0 ~dst:2 ~now:1.9);
  check_action "cross-group while cut" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:2 ~now:2.);
  check_action "reverse direction too" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:3 ~dst:1 ~now:3.);
  check_action "same group unaffected" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:3.);
  check_action "other group internally fine" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:2 ~dst:3 ~now:3.);
  (* Endpoints not listed in any group share the implicit group. *)
  check_action "listed to unlisted is cut" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:7 ~now:3.);
  check_action "unlisted endpoints share a group" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:7 ~dst:8 ~now:3.);
  check_action "healed" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:0 ~dst:2 ~now:5.);
  check_bool "partitioned accessor agrees" true
    (Sim.Fault.partitioned plan ~src:0 ~dst:2 ~now:4.999);
  check_bool "healed accessor agrees" false
    (Sim.Fault.partitioned plan ~src:0 ~dst:2 ~now:5.);
  check_int "three partition drops" 3 (Sim.Fault.drops_partition plan);
  check_int "all drops were partition drops" 3 (Sim.Fault.drops plan);
  check_int "no link drops" 0 (Sim.Fault.drops_link plan);
  check_int "no down drops" 0 (Sim.Fault.drops_down plan)

(* Overlapping partitions compose; a message is dropped if any active
   split separates its endpoints. *)
let test_partitions_compose () =
  let p1 =
    { Sim.Fault.pname = "a"; groups = [ [ 0 ]; [ 1; 2 ] ];
      cut_at = 0.; heal_at = 10. }
  and p2 =
    { Sim.Fault.pname = "b"; groups = [ [ 1 ]; [ 2 ] ];
      cut_at = 5.; heal_at = 15. }
  in
  let plan =
    Sim.Fault.create
      (Sim.Fault.make ~partitions:[ p1; p2 ] ())
      ~rng:(Sim.Rng.create 4) ~nodes:3
  in
  check_action "first split active" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:1.);
  check_action "1-2 still together" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:1 ~dst:2 ~now:1.);
  check_action "second split cuts 1-2" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:1 ~dst:2 ~now:6.);
  check_action "first heals, second still cuts" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:1 ~dst:2 ~now:12.);
  (* Node 0 is unlisted in the second split, so while it is active the
     implicit group cuts 0 from both listed nodes... *)
  check_action "implicit group cut from listed nodes" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:12.);
  (* ...but unlisted endpoints still reach each other. *)
  check_action "unlisted endpoints stay together" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:0 ~dst:5 ~now:12.);
  check_action "all healed" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:1 ~dst:2 ~now:15.);
  check_action "implicit group healed too" Sim.Fault.Deliver
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:15.)

(* A message surviving every active partition still runs the link's
   stochastic gauntlet, and the drop buckets stay disjoint. *)
let test_partition_composes_with_links () =
  let plan =
    Sim.Fault.create
      (Sim.Fault.make
         ~link_overrides:
           [ ((0, 1), { Sim.Fault.drop = 1.; delay = 0.; delay_mean = 0. }) ]
         ~node_schedules:[ (3, [ (1., 100.) ]) ]
         ~partitions:[ halves ~cut_at:0. ~heal_at:100. () ] ())
      ~rng:(Sim.Rng.create 5) ~nodes:4
  in
  check_action "same-group link override still drops" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:1 ~now:0.5);
  check_action "cross-group partition drop" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:0 ~dst:2 ~now:0.5);
  check_action "down node drop" Sim.Fault.Drop
    (Sim.Fault.action plan ~src:2 ~dst:3 ~now:2.);
  check_int "one of each" 1 (Sim.Fault.drops_link plan);
  check_int "partition bucket" 1 (Sim.Fault.drops_partition plan);
  check_int "down bucket" 1 (Sim.Fault.drops_down plan);
  check_int "conservation: drops = down + partition + link" 3
    (Sim.Fault.drops plan)

(* ------------------------------------------------------------------ *)
(* Crash-interruptible broadcast fan-out *)

let test_broadcast_interruptible () =
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine ~n_endpoints:5 in
  let endpoints = Array.init 5 (fun node -> Cluster.Endpoint.make ~node) in
  let meta =
    Cache.Meta.make ~key:"GET /cgi-bin/q?x=1" ~owner:0 ~size:100 ~exec_time:0.5
      ~created:0. ~expires:None
  in
  let calls = ref 0 in
  let sent_partial = ref (-1) in
  let sent_full = ref (-1) in
  Sim.Engine.spawn engine (fun () ->
      (* Abort after two peers have been messaged: the predicate runs once
         per endpoint (including the source's own slot), so the fourth
         check fires after peers 1 and 2 heard the insert — and peers 3
         and 4 never do. A genuinely partial replica update. *)
      sent_partial :=
        Cluster.Broadcast.info
          ~should_abort:(fun () ->
            Stdlib.incr calls;
            !calls > 3)
          net endpoints ~src:0 (Cluster.Msg.Insert meta);
      sent_full :=
        Cluster.Broadcast.info net endpoints ~src:0 (Cluster.Msg.Insert meta));
  Sim.Engine.run engine;
  check_int "aborted fan-out reached two peers" 2 !sent_partial;
  check_int "unaborted fan-out reaches all four" 4 !sent_full;
  let queued i =
    Sim.Mailbox.length endpoints.(i).Cluster.Endpoint.info_mb
  in
  check_int "peer 1 heard both" 2 (queued 1);
  check_int "peer 2 heard both" 2 (queued 2);
  check_int "peer 3 heard only the full one" 1 (queued 3);
  check_int "peer 4 heard only the full one" 1 (queued 4)

(* ------------------------------------------------------------------ *)
(* fetch_sync out-of-order regression: a straggling reply to an abandoned
   attempt must not satisfy a later attempt. *)

let test_fetch_sync_out_of_order () =
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine ~n_endpoints:2 in
  let endpoints = Array.init 2 (fun node -> Cluster.Endpoint.make ~node) in
  let meta body =
    Cache.Meta.make ~key:"k" ~owner:1 ~size:(String.length body)
      ~exec_time:0.5 ~created:0. ~expires:None
  in
  (* A hand-written owner: the first request's reply is held back past the
     requester's timeout (and then sent anyway — a straggler); the second
     request is answered promptly with different content. *)
  Sim.Engine.spawn engine (fun () ->
      let first = Sim.Mailbox.recv endpoints.(1).Cluster.Endpoint.data_mb in
      Sim.Engine.spawn_child (fun () ->
          Sim.Engine.delay 2.0;
          Sim.Net.send net ~src:1 ~dst:0 ~bytes:64 first.Cluster.Msg.reply
            (Cluster.Msg.Hit { meta = meta "stale"; body = "stale" }));
      let second = Sim.Mailbox.recv endpoints.(1).Cluster.Endpoint.data_mb in
      Sim.Net.send net ~src:1 ~dst:0 ~bytes:64 second.Cluster.Msg.reply
        (Cluster.Msg.Hit { meta = meta "fresh"; body = "fresh" }));
  let result = ref None in
  Sim.Engine.spawn engine (fun () ->
      result :=
        Some
          (Cluster.Broadcast.fetch_sync net endpoints ~src:0 ~owner:1
             ~timeout:0.5 ~retries:1 ~backoff:2. "k"));
  Sim.Engine.run engine;
  match !result with
  | None -> Alcotest.fail "fetch_sync never returned"
  | Some (reply, n) -> (
      check_int "exactly one retry" 1 n;
      match reply with
      | Some (Cluster.Msg.Hit { body; _ }) ->
          Alcotest.(check string)
            "the straggler did not satisfy the retry" "fresh" body
      | Some (Cluster.Msg.Miss _) -> Alcotest.fail "unexpected miss"
      | None -> Alcotest.fail "retry should have been answered in time")

(* ------------------------------------------------------------------ *)
(* Cluster level *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(n * 7 / 10) ~n_hot:(n / 10) ()

let counters_equal msg a b =
  check_bool (msg ^ ": Counter.equal") true
    (Metrics.Counter.equal a b);
  (* and the long way round, for a readable diff on failure *)
  let names = Metrics.Counter.names a in
  Alcotest.(check (list string)) (msg ^ ": same counter set") names
    (Metrics.Counter.names b);
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "%s: counter %s" msg n)
        (Metrics.Counter.get a n) (Metrics.Counter.get b n))
    names

let query q = Http.Request.get (Printf.sprintf "/cgi-bin/query?q=%s&xd=0.2" q)

let run_cluster_script ~cfg ~registry ?(n_client_endpoints = 2) script =
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      script cluster;
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  cluster

(* The headline scenario: partition -> divergence -> heal -> convergence.

   Four cooperative nodes split into halves; inserts made on each side
   during the split never reach the other, so replicas diverge and the
   isolated half re-executes a script the other half already cached (a
   duplicate execution). After the heal, the anti-entropy daemon pulls the
   missing entries back; within a few periods every node's directory is
   element-wise identical, and the reconciliation itself surfaces the
   duplicate as a false miss. *)
let sorted_entries dir ~node =
  List.sort compare (Cache.Directory.entries dir ~node)

let test_partition_divergence_then_convergence () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~fault:
        (Some
           (Sim.Fault.make ~partitions:[ halves ~cut_at:0. ~heal_at:8. () ] ()))
      ~fetch_timeout:(Some 0.5)
      ~anti_entropy_period:(Some 1.0)
      ~seed:11 ()
  in
  let diverged = ref false in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        let dir i = Swala.Server.node_directory (Swala.Server.node cluster i) in
        (* Both halves cache results while split: "a"/"b" on the 0-1 side,
           and node 2 independently executes "a" (a duplicate, since the
           split hid node 0's insert) plus its own "c". *)
        Swala.Server.preload cluster ~node:0 (query "a") ~exec_time:0.3;
        Swala.Server.preload cluster ~node:1 (query "b") ~exec_time:0.3;
        Swala.Server.preload cluster ~node:2 (query "a") ~exec_time:0.3;
        Swala.Server.preload cluster ~node:3 (query "c") ~exec_time:0.3;
        Sim.Engine.delay 4.0;
        (* Mid-split: the halves disagree about each other's tables. *)
        diverged :=
          sorted_entries (dir 0) ~node:2 <> sorted_entries (dir 2) ~node:2
          || sorted_entries (dir 2) ~node:0 <> sorted_entries (dir 0) ~node:0;
        (* Outlive the heal (t=8) by several anti-entropy periods. *)
        Sim.Engine.delay 16.0;
        for i = 0 to 3 do
          for j = 0 to 3 do
            if
              sorted_entries (dir i) ~node:j <> sorted_entries (dir 0) ~node:j
            then
              Alcotest.failf
                "node %d's replica of table %d differs from node 0's after \
                 heal + anti-entropy"
                i j
          done
        done)
  in
  check_bool "replicas diverged during the split" true !diverged;
  let c = Swala.Server.merged_counters cluster in
  let get = Metrics.Counter.get c in
  check_int "the heal was observed" 1 (get Swala.Server.K.partitions_healed);
  check_bool "anti-entropy ran" true (get Swala.Server.K.anti_entropy_rounds > 0);
  check_bool "entries were pulled" true
    (get Swala.Server.K.anti_entropy_pulled > 0);
  check_bool "reconciliation surfaced the duplicate execution" true
    (get Swala.Server.K.false_miss_duplicate > 0)

(* Without anti-entropy the same scenario stays diverged: the split hides
   inserts and nothing repairs the replicas after the heal. *)
let test_no_anti_entropy_stays_diverged () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~fault:
        (Some
           (Sim.Fault.make ~partitions:[ halves ~cut_at:0. ~heal_at:8. () ] ()))
      ~fetch_timeout:(Some 0.5) ~seed:11 ()
  in
  let still_diverged = ref false in
  let (_ : Swala.Server.cluster) =
    run_cluster_script ~cfg ~registry (fun cluster ->
        let dir i = Swala.Server.node_directory (Swala.Server.node cluster i) in
        Swala.Server.preload cluster ~node:0 (query "a") ~exec_time:0.3;
        Swala.Server.preload cluster ~node:3 (query "c") ~exec_time:0.3;
        Sim.Engine.delay 24.0;
        still_diverged :=
          sorted_entries (dir 2) ~node:0 <> sorted_entries (dir 0) ~node:0)
  in
  check_bool "no repair without the daemon" true !still_diverged

(* ------------------------------------------------------------------ *)
(* Multi-seed conservation sweep: across >= 50 seeds, every request is
   answered, request accounting balances with router resubmissions, and
   the fault plan's drop buckets are conserved. *)

let test_multi_seed_conservation () =
  let n = 120 in
  for seed = 0 to 49 do
    let trace = coop_trace ~seed ~n in
    let cfg =
      Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
        ~fault:
          (Some
             (Sim.Fault.make
                ~partitions:[ halves ~cut_at:0.5 ~heal_at:3.0 () ]
                ~node_schedules:[ (1, [ (1.0, 2.0) ]) ]
                ()))
        ~fetch_timeout:(Some 0.5)
        ~anti_entropy_period:(Some 0.5)
        ~seed ()
    in
    let r =
      Swala.Cluster_runner.run cfg ~trace ~n_streams:8
        ~router:Swala.Router.Per_stream ()
    in
    let get = Metrics.Counter.get r.Swala.Cluster_runner.counters in
    check_int
      (Printf.sprintf "seed %d: every request answered" seed)
      n
      (Metrics.Sample.count r.Swala.Cluster_runner.response);
    (* Every client submission lands on some node's request counter: the
       originals plus each router resubmission. *)
    check_int
      (Printf.sprintf "seed %d: requests = n + router retries" seed)
      (n + get Swala.Server.K.router_retries)
      (get Swala.Server.K.requests);
    (* No stochastic link loss is configured, so every message the network
       lost is accounted to the partition or to the crashed node. *)
    check_bool
      (Printf.sprintf "seed %d: losses within partition+down budget" seed)
      true
      (r.Swala.Cluster_runner.net_lost
      >= r.Swala.Cluster_runner.net_lost_partition);
    check_bool
      (Printf.sprintf "seed %d: the partition actually cut traffic" seed)
      true
      (r.Swala.Cluster_runner.net_lost_partition > 0);
    check_int
      (Printf.sprintf "seed %d: heal observed" seed)
      1
      (get Swala.Server.K.partitions_healed)
  done

(* ------------------------------------------------------------------ *)
(* Determinism: same seed + same partition profile -> byte-identical
   metrics and the same fault trace. *)

let test_partition_replay_deterministic () =
  let trace = coop_trace ~seed:17 ~n:300 in
  let run () =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~fault:
           (Some
              (Sim.Fault.make
                 ~partitions:[ halves ~cut_at:0.5 ~heal_at:4.0 () ]
                 ~node:{ Sim.Fault.mtbf = 30.; mttr = 2. }
                 ~horizon:120. ()))
         ~fetch_timeout:(Some 0.5)
         ~anti_entropy_period:(Some 1.0)
         ~seed:17 ())
      ~trace ~n_streams:8 ~router:Swala.Router.Per_stream ()
  in
  let a = run () and b = run () in
  check_float "same makespan" a.Swala.Cluster_runner.duration
    b.Swala.Cluster_runner.duration;
  check_int "same losses" a.Swala.Cluster_runner.net_lost
    b.Swala.Cluster_runner.net_lost;
  check_int "same partition losses" a.Swala.Cluster_runner.net_lost_partition
    b.Swala.Cluster_runner.net_lost_partition;
  counters_equal "partition replay" a.Swala.Cluster_runner.counters
    b.Swala.Cluster_runner.counters;
  (* Byte-identical rendered metrics: the per-node counter tables agree. *)
  let render (r : Swala.Cluster_runner.result) =
    let t =
      Metrics.Table.create ~title:"per-node"
        ~columns:
          [ ("counter", Metrics.Table.Left); ("node", Metrics.Table.Right);
            ("value", Metrics.Table.Right) ]
    in
    Array.iteri
      (fun i c ->
        List.iter
          (fun name ->
            Metrics.Table.add_row t
              [ name; string_of_int i;
                string_of_int (Metrics.Counter.get c name) ])
          (Metrics.Counter.names c))
      r.Swala.Cluster_runner.per_node_counters;
    Metrics.Table.to_csv t
  in
  Alcotest.(check string) "byte-identical per-node tables" (render a) (render b);
  check_bool "the run was non-trivial" true
    (a.Swala.Cluster_runner.net_lost_partition > 0)

(* Enabling anti-entropy must not break the PR-1 guarantee that a zero
   fault plan is byte-identical to no plan at all: the daemon's RNG comes
   from its own salted root, and a healthy cluster pulls nothing. *)
let test_zero_fault_identity_with_anti_entropy () =
  let trace = coop_trace ~seed:5 ~n:300 in
  let run fault =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative ~fault
         ~fetch_timeout:(Some 0.5)
         ~anti_entropy_period:(Some 1.0) ~seed:5 ())
      ~trace ~n_streams:8 ()
  in
  let bare = run None and zero = run (Some Sim.Fault.none) in
  check_float "same makespan" bare.Swala.Cluster_runner.duration
    zero.Swala.Cluster_runner.duration;
  counters_equal "zero plan with anti-entropy"
    bare.Swala.Cluster_runner.counters zero.Swala.Cluster_runner.counters;
  (* A healthy cluster may still pull the odd entry whose broadcast was in
     flight when digests were compared — benign, and identical across the
     two runs (checked above). What matters here: the daemon ran, and the
     zero plan changed nothing. *)
  check_bool "the daemon did run" true
    (Metrics.Counter.get bare.Swala.Cluster_runner.counters
       Swala.Server.K.anti_entropy_rounds
    > 0)

(* ------------------------------------------------------------------ *)
(* The A9 sweep has the expected shape. *)

let test_ablation_partition_shape () =
  let rows =
    Swala.Experiments.ablation_partition ~seed:3 ~durations:[ 0.; 10. ]
      ~periods:[ 0.; 2. ] ()
  in
  check_int "grid size" 4 (List.length rows);
  List.iter
    (fun (r : Swala.Experiments.partition_row) ->
      if r.Swala.Experiments.duration_pt = 0. then begin
        check_int "no partition, nothing cut" 0
          r.Swala.Experiments.drops_partition_pt;
        (* Healthy halves may still pull a handful of in-flight entries
           (digests race broadcasts) — benign and deterministic, so only the
           partition-specific counters are asserted to be zero. *)
        check_int "no partition, nothing healed" 0 r.Swala.Experiments.healed_pt
      end
      else begin
        check_bool "the split cut traffic" true
          (r.Swala.Experiments.drops_partition_pt > 0);
        check_int "the heal fired" 1 r.Swala.Experiments.healed_pt;
        if r.Swala.Experiments.period_pt > 0. then
          check_bool "anti-entropy repaired entries" true
            (r.Swala.Experiments.ae_pulled_pt > 0)
      end;
      if r.Swala.Experiments.period_pt = 0. then
        check_int "daemon off, no rounds" 0 r.Swala.Experiments.ae_rounds_pt
      else
        check_bool "daemon on, rounds ran" true
          (r.Swala.Experiments.ae_rounds_pt > 0))
    rows

let () =
  Alcotest.run "partition"
    [
      ( "plan",
        [
          Alcotest.test_case "partition validation" `Quick
            test_partition_validation;
          Alcotest.test_case "partition action window" `Quick
            test_partition_action_window;
          Alcotest.test_case "overlapping partitions compose" `Quick
            test_partitions_compose;
          Alcotest.test_case "partitions compose with links and crashes" `Quick
            test_partition_composes_with_links;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "broadcast fan-out is crash-interruptible" `Quick
            test_broadcast_interruptible;
          Alcotest.test_case "fetch_sync ignores out-of-order straggler" `Quick
            test_fetch_sync_out_of_order;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "partition -> divergence -> heal -> convergence"
            `Quick test_partition_divergence_then_convergence;
          Alcotest.test_case "no anti-entropy, no repair" `Quick
            test_no_anti_entropy_stays_diverged;
        ] );
      ( "property",
        [
          Alcotest.test_case "50-seed conservation sweep" `Slow
            test_multi_seed_conservation;
          Alcotest.test_case "partition replay deterministic" `Quick
            test_partition_replay_deterministic;
          Alcotest.test_case "zero-fault identity with anti-entropy" `Quick
            test_zero_fault_identity_with_anti_entropy;
          Alcotest.test_case "A9 sweep shape" `Quick
            test_ablation_partition_shape;
        ] );
    ]
