(* Property tests for the replacement policies and the lazily-invalidated
   heap in Cache.Store.

   The heart of the suite is a model-based oracle: a naive full-scan
   shadow of the store that tracks, per live key, the access statistics
   and the priority-at-last-touch, and picks victims by a full scan for
   the minimum (priority, touch-version) pair — exactly the contract the
   lazy heap is supposed to implement in O(log n). Replaying random op
   sequences through both and comparing every eviction catches stale-item
   bugs (a heap item surviving a touch or a remove/re-insert of the same
   key) that example tests miss.

   QCheck_alcotest ignores QCHECK_COUNT, so the long-iteration CI job's
   knob is honoured here by hand. *)

let count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

(* ------------------------------------------------------------------ *)
(* Op sequences over a small key space *)

type op = Insert of int * int * float | Lookup of int

let key_of i = Printf.sprintf "GET /cgi-bin/s%d" i

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun k size exec -> Insert (k, size, exec))
            (int_range 0 7) (int_range 1 500)
            (oneofl [ 0.001; 0.01; 0.05; 0.2; 1.0 ]) );
        (2, map (fun k -> Lookup k) (int_range 0 7));
      ])

let ops_arbitrary =
  let print ops =
    String.concat ";"
      (List.map
         (function
           | Insert (k, s, e) -> Printf.sprintf "I(%d,%d,%g)" k s e
           | Lookup k -> Printf.sprintf "L(%d)" k)
         ops)
  in
  QCheck.make ~print QCheck.Gen.(list_size (1 -- 120) op_gen)

(* ------------------------------------------------------------------ *)
(* The naive shadow model *)

type mslot = {
  m_meta : Cache.Meta.t;
  mutable m_last : float;
  mutable m_hits : int;
  m_inserted : float;
  mutable m_ver : int;  (* version at last touch, mirrors Store's vgen *)
  mutable m_pr : float;  (* priority at last touch *)
}

type model = {
  m_cap : int;
  m_pol : Cache.Policy.t;
  m_tbl : (string, mslot) Hashtbl.t;
  mutable m_clock : float;  (* mirrors the store's gdsf aging clock *)
  mutable m_vgen : int;
}

let model_create ~capacity ~policy =
  { m_cap = capacity; m_pol = policy; m_tbl = Hashtbl.create 16;
    m_clock = 0.; m_vgen = 0 }

let m_priority m ~meta ~last ~hits ~inserted =
  Cache.Policy.priority m.m_pol ~clock:m.m_clock ~meta
    ~access:{ Cache.Policy.last_access = last; hits; inserted }

(* Full-scan victim: minimum (priority-at-last-touch, touch-version) —
   the spec the lazy heap must match, ties breaking towards the least
   recently touched slot. *)
let model_victim m =
  Hashtbl.fold
    (fun _ slot best ->
      match best with
      | None -> Some slot
      | Some b ->
          if
            slot.m_pr < b.m_pr
            || (slot.m_pr = b.m_pr && slot.m_ver < b.m_ver)
          then Some slot
          else best)
    m.m_tbl None

let model_remove m key =
  if Hashtbl.mem m.m_tbl key then begin
    Hashtbl.remove m.m_tbl key;
    m.m_vgen <- m.m_vgen + 1 (* delete_slot bumps the version generator *)
  end

(* Returns the predicted eviction sequence (victim priorities included,
   for the GDSF monotonicity property). *)
let model_insert m ~now meta =
  let key = meta.Cache.Meta.key in
  model_remove m key;
  let evicted = ref [] in
  while Hashtbl.length m.m_tbl >= m.m_cap do
    match model_victim m with
    | None -> assert false
    | Some v ->
        if Cache.Policy.uses_clock m.m_pol then m.m_clock <- v.m_pr;
        evicted := (v.m_meta.Cache.Meta.key, v.m_pr) :: !evicted;
        model_remove m v.m_meta.Cache.Meta.key
  done;
  m.m_vgen <- m.m_vgen + 1;
  let slot =
    {
      m_meta = meta;
      m_last = now;
      m_hits = 0;
      m_inserted = now;
      m_ver = m.m_vgen;
      m_pr = 0.;
    }
  in
  slot.m_pr <- m_priority m ~meta ~last:now ~hits:0 ~inserted:now;
  Hashtbl.add m.m_tbl key slot;
  List.rev !evicted

let model_lookup m ~now key =
  match Hashtbl.find_opt m.m_tbl key with
  | None -> false
  | Some slot ->
      slot.m_last <- now;
      slot.m_hits <- slot.m_hits + 1;
      m.m_vgen <- m.m_vgen + 1;
      slot.m_ver <- m.m_vgen;
      slot.m_pr <-
        m_priority m ~meta:slot.m_meta ~last:slot.m_last ~hits:slot.m_hits
          ~inserted:slot.m_inserted;
      true

let model_keys m =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.m_tbl []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Replay harness *)

let meta_of ~key ~size ~exec =
  Cache.Meta.make ~key ~owner:0 ~size ~exec_time:exec ~created:0.
    ~expires:None

(* Replay [ops] through a real store and the shadow model in lock-step;
   returns the victim-priority trace and raises a test failure on any
   divergence. Entries never expire here — expiry interacts with the
   heap only via delete_slot, which remove/re-insert already covers. *)
let replay ~policy ~capacity ops =
  let clock = ref 0. in
  let store =
    Cache.Store.create ~capacity ~policy
      ~clock:(fun () -> !clock)
      ~rng:(Sim.Rng.create 4242) ()
  in
  let m = model_create ~capacity ~policy in
  let victim_prs = ref [] in
  List.iteri
    (fun i op ->
      clock := float_of_int (i + 1);
      match op with
      | Insert (k, size, exec) ->
          let key = key_of k in
          let meta = meta_of ~key ~size ~exec in
          let evicted =
            List.map
              (fun (v : Cache.Meta.t) -> v.Cache.Meta.key)
              (Cache.Store.insert store meta (String.make 4 'x'))
          in
          let predicted = model_insert m ~now:!clock meta in
          victim_prs := List.rev_append (List.map snd predicted) !victim_prs;
          let predicted_keys = List.map fst predicted in
          if evicted <> predicted_keys then
            QCheck.Test.fail_reportf
              "op %d: store evicted [%s], oracle predicted [%s]" i
              (String.concat "; " evicted)
              (String.concat "; " predicted_keys)
      | Lookup k ->
          let key = key_of k in
          let store_hit = Cache.Store.lookup store key <> None in
          let model_hit = model_lookup m ~now:!clock key in
          if store_hit <> model_hit then
            QCheck.Test.fail_reportf "op %d: lookup %s hit=%b, oracle %b" i
              key store_hit model_hit)
    ops;
  if Cache.Store.keys store <> model_keys m then
    QCheck.Test.fail_reportf "final keys diverge: store [%s], oracle [%s]"
      (String.concat "; " (Cache.Store.keys store))
      (String.concat "; " (model_keys m));
  List.rev !victim_prs

let heap_policies =
  [
    Cache.Policy.Lru;
    Cache.Policy.Fifo;
    Cache.Policy.Lfu;
    Cache.Policy.Largest_size;
    Cache.Policy.Cheapest_recompute;
    Cache.Policy.Gdsf;
  ]

let oracle_tests =
  List.map
    (fun policy ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "eviction order matches full-scan oracle (%s)"
             (Cache.Policy.to_string policy))
        ~count
        QCheck.(pair (int_range 1 6) ops_arbitrary)
        (fun (capacity, ops) ->
          ignore (replay ~policy ~capacity ops : float list);
          true))
    heap_policies

(* GDSF aging: the clock is set to each victim's priority, and every
   pushed priority exceeds the clock, so the evicted-priority sequence
   must be nondecreasing — the "inflation" that lets old popular entries
   eventually age out. *)
let gdsf_monotone =
  QCheck.Test.make ~name:"gdsf evicted-priority sequence is nondecreasing"
    ~count
    QCheck.(pair (int_range 1 6) ops_arbitrary)
    (fun (capacity, ops) ->
      let prs = replay ~policy:Cache.Policy.Gdsf ~capacity ops in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | [ _ ] | [] -> true
      in
      if not (nondecreasing prs) then
        QCheck.Test.fail_reportf "victim priorities decreased: [%s]"
          (String.concat "; " (List.map (Printf.sprintf "%g") prs));
      true)

(* Random replacement has no eviction-order contract; check the bounds
   and membership invariants plus determinism under a fixed rng seed. *)
let random_invariants =
  QCheck.Test.make ~name:"random policy: capacity bound and determinism"
    ~count
    QCheck.(pair (int_range 1 6) ops_arbitrary)
    (fun (capacity, ops) ->
      let run () =
        let clock = ref 0. in
        let store =
          Cache.Store.create ~capacity ~policy:Cache.Policy.Random
            ~clock:(fun () -> !clock)
            ~rng:(Sim.Rng.create 77) ()
        in
        let evictions = ref [] in
        List.iteri
          (fun i op ->
            clock := float_of_int (i + 1);
            (match op with
            | Insert (k, size, exec) ->
                let meta = meta_of ~key:(key_of k) ~size ~exec in
                let ev = Cache.Store.insert store meta "body" in
                evictions :=
                  List.rev_append
                    (List.map (fun (m : Cache.Meta.t) -> m.Cache.Meta.key) ev)
                    !evictions;
                if not (Cache.Store.mem store (key_of k)) then
                  QCheck.Test.fail_reportf "op %d: inserted key absent" i
            | Lookup k -> ignore (Cache.Store.lookup store (key_of k)));
            if Cache.Store.length store > capacity then
              QCheck.Test.fail_reportf "op %d: length %d > capacity %d" i
                (Cache.Store.length store) capacity)
          ops;
        (List.rev !evictions, Cache.Store.keys store)
      in
      run () = run ())

(* Policy.priority is a pure function of its inputs, and the string
   round-trip is the identity — the properties the sim's determinism
   guarantees lean on. *)
let priority_deterministic =
  QCheck.Test.make ~name:"priority is deterministic and strings round-trip"
    ~count
    QCheck.(
      quad (int_range 1 500)
        (oneofl [ 0.001; 0.01; 0.05; 0.2; 1.0 ])
        (int_range 0 50) (float_bound_exclusive 100.))
    (fun (size, exec, hits, clock) ->
      let meta = meta_of ~key:"GET /cgi-bin/p" ~size ~exec in
      let access =
        { Cache.Policy.last_access = clock; hits; inserted = clock /. 2. }
      in
      List.for_all
        (fun p ->
          Cache.Policy.priority p ~clock ~meta ~access
          = Cache.Policy.priority p ~clock ~meta ~access
          && Cache.Policy.of_string (Cache.Policy.to_string p) = Ok p)
        Cache.Policy.all)

(* ------------------------------------------------------------------ *)
(* Lazy-heap invalidation regressions (deterministic examples) *)

(* A touched key's stale heap item must not get it evicted: after
   insert a, insert b, lookup a, the LRU victim is b. *)
let test_lazy_heap_touch () =
  let clock = ref 0. in
  let store =
    Cache.Store.create ~capacity:2 ~policy:Cache.Policy.Lru
      ~clock:(fun () -> !clock)
      ()
  in
  let ins key =
    ignore (Cache.Store.insert store (meta_of ~key ~size:1 ~exec:0.1) "b")
  in
  clock := 1.;
  ins "a";
  clock := 2.;
  ins "b";
  clock := 3.;
  (match Cache.Store.lookup store "a" with
  | Some _ -> ()
  | None -> Alcotest.fail "a should hit");
  clock := 4.;
  let evicted =
    Cache.Store.insert store (meta_of ~key:"c" ~size:1 ~exec:0.1) "b"
  in
  Alcotest.(check (list string))
    "victim is b, not the stale item for a"
    [ "b" ]
    (List.map (fun (m : Cache.Meta.t) -> m.Cache.Meta.key) evicted)

(* Remove/re-insert of the same key must invalidate the first insert's
   heap item: the re-inserted key is now the newest, so the other key is
   the victim. *)
let test_lazy_heap_reinsert () =
  let clock = ref 0. in
  let store =
    Cache.Store.create ~capacity:2 ~policy:Cache.Policy.Fifo
      ~clock:(fun () -> !clock)
      ()
  in
  let ins key =
    ignore (Cache.Store.insert store (meta_of ~key ~size:1 ~exec:0.1) "b")
  in
  clock := 1.;
  ins "a";
  clock := 2.;
  ins "b";
  clock := 3.;
  ins "a" (* replaces: a's FIFO position is now t=3, after b *);
  clock := 4.;
  let evicted =
    Cache.Store.insert store (meta_of ~key:"c" ~size:1 ~exec:0.1) "b"
  in
  Alcotest.(check (list string))
    "victim is b: a's original position died with the replace"
    [ "b" ]
    (List.map (fun (m : Cache.Meta.t) -> m.Cache.Meta.key) evicted)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "policy_props"
    [
      qsuite "oracle" oracle_tests;
      qsuite "gdsf" [ gdsf_monotone ];
      qsuite "random" [ random_invariants ];
      qsuite "priority" [ priority_deterministic ];
      ( "lazy-heap",
        [
          Alcotest.test_case "touch invalidates" `Quick test_lazy_heap_touch;
          Alcotest.test_case "reinsert invalidates" `Quick
            test_lazy_heap_reinsert;
        ] );
    ]
