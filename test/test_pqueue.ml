(* Property tests for the engine's binary heaps (Pqueue) and the
   cancellation machinery layered on them by Engine.

   The heaps power the hot loop, so they are tested model-based: random
   push/pop sequences replayed against a sorted-list oracle, for both
   the generic comparison heap and the (time, seq)-keyed Timed heap the
   event loop uses. The Timed properties pin down the determinism
   contract — ties in time pop in sequence (i.e. push) order — and that
   [compact] (the lazy-cancellation purge) preserves exactly the kept
   elements and their relative order. Deterministic cases cover the
   space-leak regression (capacity released on drain, shrunk on partial
   drain) and Engine-level cancel/compaction accounting.

   QCheck_alcotest ignores QCHECK_COUNT, so the long-iteration CI job's
   knob is honoured here by hand. *)

let count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

(* ------------------------------------------------------------------ *)
(* Generic heap vs a sorted-list model *)

let prop_heapsort =
  QCheck.Test.make ~count ~name:"drain pops a sorted sequence"
    QCheck.(list small_signed_int)
    (fun xs ->
      let h = Sim.Pqueue.create ~cmp:Int.compare in
      List.iter (Sim.Pqueue.push h) xs;
      let out = ref [] in
      Sim.Pqueue.drain h (fun x -> out := x :: !out);
      List.rev !out = List.sort Int.compare xs)

type gop = Push of int | Pop

let gops_arb =
  let print ops =
    String.concat ";"
      (List.map
         (function Push x -> Printf.sprintf "push %d" x | Pop -> "pop")
         ops)
  in
  QCheck.make ~print
    QCheck.Gen.(
      list_size (0 -- 200)
        (frequency
           [ (3, map (fun x -> Push x) (int_range (-50) 50)); (2, return Pop) ]))

let prop_interleaved =
  QCheck.Test.make ~count ~name:"interleaved push/pop matches the model"
    gops_arb
    (fun ops ->
      let h = Sim.Pqueue.create ~cmp:Int.compare in
      let model = ref [] in
      List.for_all
        (function
          | Push x ->
              Sim.Pqueue.push h x;
              model := List.sort Int.compare (x :: !model);
              true
          | Pop -> (
              match (Sim.Pqueue.pop h, !model) with
              | None, [] -> true
              | Some x, m :: rest when x = m ->
                  model := rest;
                  true
              | _ -> false))
        ops
      && Sim.Pqueue.length h = List.length !model)

(* The leak regression this PR fixed: a drained heap used to keep its
   peak-size backing array alive with the last popped element still
   reachable at data.(size). Now pops overwrite the freed slot, the
   array halves when occupancy falls below a quarter, and a fully
   drained heap releases the array entirely. *)
let test_capacity_release () =
  let h = Sim.Pqueue.create ~cmp:Int.compare in
  for i = 1 to 1024 do
    Sim.Pqueue.push h i
  done;
  Alcotest.(check bool) "grew" true (Sim.Pqueue.capacity h >= 1024);
  for _ = 1 to 1014 do
    ignore (Sim.Pqueue.pop h : int option)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "shrank towards occupancy (capacity %d)"
       (Sim.Pqueue.capacity h))
    true
    (Sim.Pqueue.capacity h <= 64);
  Sim.Pqueue.drain h (fun _ -> ());
  Alcotest.(check int) "drained heap releases the array" 0
    (Sim.Pqueue.capacity h)

(* ------------------------------------------------------------------ *)
(* Timed heap: the (time, seq) determinism contract *)

type top = TPush of float | TPop

let times = [ 0.; 0.25; 1.; 1.; 2.; 3.5 ]

let tops_arb =
  let print ops =
    String.concat ";"
      (List.map
         (function TPush t -> Printf.sprintf "push %g" t | TPop -> "pop")
         ops)
  in
  QCheck.make ~print
    QCheck.Gen.(
      list_size (0 -- 200)
        (frequency
           [ (3, map (fun t -> TPush t) (oneofl times)); (2, return TPop) ]))

let key_cmp (t1, s1) (t2, s2) =
  if t1 <> t2 then Float.compare t1 t2 else Int.compare s1 s2

let prop_timed =
  QCheck.Test.make ~count
    ~name:"Timed pops by (time, seq): ties resolve in push order" tops_arb
    (fun ops ->
      let h = Sim.Pqueue.Timed.create ~dummy:(-1) () in
      let seq = ref 0 in
      (* model: (time, seq) pairs, sorted; payload is the seq itself *)
      let model = ref [] in
      List.for_all
        (function
          | TPush time ->
              Sim.Pqueue.Timed.push h ~time ~seq:!seq !seq;
              model := List.sort key_cmp ((time, !seq) :: !model);
              incr seq;
              true
          | TPop -> (
              match !model with
              | [] -> Sim.Pqueue.Timed.is_empty h
              | (t, s) :: rest ->
                  let mt = Sim.Pqueue.Timed.min_time h in
                  let x = Sim.Pqueue.Timed.pop_min h in
                  model := rest;
                  mt = t && x = s))
        ops
      && Sim.Pqueue.Timed.length h = List.length !model)

let prop_compact =
  QCheck.Test.make ~count
    ~name:"compact keeps exactly the accepted elements, in order"
    QCheck.(list (oneofl times))
    (fun ts ->
      let h = Sim.Pqueue.Timed.create ~dummy:(-1) () in
      List.iteri (fun i t -> Sim.Pqueue.Timed.push h ~time:t ~seq:i i) ts;
      let keep x = x mod 3 <> 0 in
      Sim.Pqueue.Timed.compact h ~keep;
      let expected =
        List.mapi (fun i t -> (t, i)) ts
        |> List.filter (fun (_, i) -> keep i)
        |> List.sort key_cmp |> List.map snd
      in
      let out = ref [] in
      while not (Sim.Pqueue.Timed.is_empty h) do
        out := Sim.Pqueue.Timed.pop_min h :: !out
      done;
      List.rev !out = expected)

let test_timed_empty () =
  let h = Sim.Pqueue.Timed.create ~dummy:0 () in
  Alcotest.check_raises "pop_min on empty"
    (Invalid_argument "Pqueue.Timed.pop_min: empty heap") (fun () ->
      ignore (Sim.Pqueue.Timed.pop_min h : int));
  Alcotest.check_raises "min_time on empty"
    (Invalid_argument "Pqueue.Timed.min_time: empty heap") (fun () ->
      ignore (Sim.Pqueue.Timed.min_time h : float))

(* ------------------------------------------------------------------ *)
(* Engine-level cancellation: lazy deletion + compaction accounting *)

(* 300 timers over 30 distinct times (10-way ties), two thirds cancelled
   up front — enough to trip the lazy compaction threshold. Survivors
   must fire exactly once, ordered by (time, schedule order). *)
let test_engine_cancel_compact () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  let handles =
    Array.init 300 (fun i ->
        Sim.Engine.schedule_at e
          (float_of_int (i mod 30))
          (fun () -> fired := i :: !fired))
  in
  Array.iteri (fun i h -> if i mod 3 <> 0 then Sim.Engine.cancel h) handles;
  (* cancel is idempotent: a second pass must not skew the census *)
  Array.iteri (fun i h -> if i mod 3 <> 0 then Sim.Engine.cancel h) handles;
  Alcotest.(check int) "pending counts only live events" 100
    (Sim.Engine.pending e);
  Sim.Engine.run e;
  let expected =
    List.init 300 (fun i -> i)
    |> List.filter (fun i -> i mod 3 = 0)
    |> List.sort (fun a b -> key_cmp (float_of_int (a mod 30), a)
                               (float_of_int (b mod 30), b))
  in
  Alcotest.(check (list int)) "survivors fire in (time, seq) order" expected
    (List.rev !fired);
  Alcotest.(check int) "queue drained" 0 (Sim.Engine.pending e)

let test_engine_cancel_after_fire () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  let h = Sim.Engine.schedule_at e 1. (fun () -> incr n) in
  Sim.Engine.run e;
  Alcotest.(check int) "fired once" 1 !n;
  (* cancelling a fired event is a no-op and must not corrupt the
     cancelled-events census behind [pending] *)
  Sim.Engine.cancel h;
  Sim.Engine.cancel h;
  Alcotest.(check int) "pending stays 0" 0 (Sim.Engine.pending e);
  ignore (Sim.Engine.schedule_at e 2. (fun () -> incr n) : Sim.Engine.handle);
  Alcotest.(check int) "new event counted" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "second fired" 2 !n

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "pqueue"
    [
      qsuite "generic" [ prop_heapsort; prop_interleaved ];
      qsuite "timed" [ prop_timed; prop_compact ];
      ( "regressions",
        [
          Alcotest.test_case "capacity released on drain" `Quick
            test_capacity_release;
          Alcotest.test_case "empty Timed raises" `Quick test_timed_empty;
        ] );
      ( "engine-cancel",
        [
          Alcotest.test_case "mass cancel + compaction" `Quick
            test_engine_cancel_compact;
          Alcotest.test_case "cancel after fire" `Quick
            test_engine_cancel_after_fire;
        ] );
    ]
