(* Tests for time-varying workload scenarios: the Scenario overlay module
   itself (phases, flash intensity, diurnal inversion, tier assignment),
   its byte-identity guarantee in the cluster runner, determinism of full
   scenario runs, conservation under rolling churn, and the flash-crowd x
   hotspot-replication integration. *)

module Scenario = Workload.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float_eps eps = Alcotest.(check (float eps))

let crowd ?(at = 10.) ?(duration = 10.) ?decay ?(fraction = 0.8) ?(keys = 8)
    () =
  Scenario.flash_crowd ~at ~duration ?decay ~fraction ~keys ()

(* ------------------------------------------------------------------ *)
(* Overlay construction and validation *)

let test_inert_scenario () =
  let sc = Scenario.make ~duration:30. () in
  check_float_eps 1e-9 "duration" 30. (Scenario.duration sc);
  check_bool "no flash" true (Scenario.flash sc = None);
  check_bool "no diurnal" true (Scenario.diurnal sc = None);
  check_int "no tier overlay" 0 (Array.length (Scenario.tiers sc));
  check_int "single implicit tier" 1 (Scenario.n_tiers sc);
  check_float_eps 1e-9 "intensity 0" 0. (Scenario.flash_intensity sc ~now:5.);
  check_float_eps 1e-9 "rate 1" 1. (Scenario.envelope_rate sc ~now:5.);
  check_int "no arrivals" 0 (Array.length (Scenario.arrival_times sc ~n:100));
  match Scenario.phases sc with
  | [ ("steady", a, b) ] ->
      check_float_eps 1e-9 "start" 0. a;
      check_float_eps 1e-9 "stop" 30. b
  | _ -> Alcotest.fail "single steady phase expected"

let test_validation_rejects () =
  let inv f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "duration <= 0" true (inv (fun () -> Scenario.make ~duration:0. ()));
  check_bool "negative onset" true
    (inv (fun () ->
         Scenario.make ~duration:10.
           ~flash:(Scenario.flash_crowd ~at:(-1.) ~duration:2. ()) ()));
  check_bool "fraction > 1" true
    (inv (fun () ->
         Scenario.make ~duration:10. ~flash:(crowd ~fraction:1.5 ()) ()));
  check_bool "zero keys" true
    (inv (fun () -> Scenario.make ~duration:10. ~flash:(crowd ~keys:0 ()) ()));
  check_bool "bad trough" true
    (inv (fun () ->
         Scenario.make ~duration:10.
           ~diurnal:(Scenario.Sinusoid { period = 10.; trough = 2. })
           ()));
  check_bool "piecewise not increasing" true
    (inv (fun () ->
         Scenario.make ~duration:10.
           ~diurnal:(Scenario.Piecewise [ (0., 1.); (5., 2.); (4., 1.) ])
           ()));
  check_bool "negative tier weight" true
    (inv (fun () ->
         Scenario.make ~duration:10.
           ~tiers:[ Scenario.tier ~name:"x" ~rtt:0.01 ~weight:(-1.) ]
           ()))

(* ------------------------------------------------------------------ *)
(* Phase schedule *)

let test_phases_flash () =
  let sc = Scenario.make ~duration:60. ~flash:(crowd ~at:10. ~duration:10. ()) () in
  (match Scenario.phases sc with
  | [ ("pre", a0, a1); ("crowd", b0, b1); ("decay", c0, c1); ("post", d0, d1) ]
    ->
      check_float_eps 1e-9 "pre start" 0. a0;
      check_float_eps 1e-9 "pre stop" 10. a1;
      check_float_eps 1e-9 "crowd" 10. b0;
      check_float_eps 1e-9 "crowd stop" 20. b1;
      check_float_eps 1e-9 "decay" 20. c0;
      check_float_eps 1e-9 "decay stop" 30. c1;
      check_float_eps 1e-9 "post" 30. d0;
      check_float_eps 1e-9 "post stop" 60. d1
  | _ -> Alcotest.fail "four phases expected");
  check_string "phase_of pre" "pre" (Scenario.phase_of sc ~now:0.);
  check_string "phase_of crowd" "crowd" (Scenario.phase_of sc ~now:10.);
  check_string "phase_of decay" "decay" (Scenario.phase_of sc ~now:25.);
  check_string "phase_of post" "post" (Scenario.phase_of sc ~now:59.);
  check_string "past end falls in last" "post" (Scenario.phase_of sc ~now:1e6)

let test_phases_zero_decay_window () =
  (* A crowd with a zero-length decay window: the decay phase vanishes and
     the tiling stays gap-free. *)
  let sc =
    Scenario.make ~duration:20. ~flash:(crowd ~at:5. ~duration:5. ~decay:0. ()) ()
  in
  (match Scenario.phases sc with
  | [ ("pre", _, _); ("crowd", _, b1); ("post", d0, _) ] ->
      check_float_eps 1e-9 "no gap" b1 d0
  | _ -> Alcotest.fail "three phases expected");
  check_float_eps 1e-9 "intensity drops instantly" 0.
    (Scenario.flash_intensity sc ~now:10.000001)

let prop_phases_tile =
  (* Whatever the crowd geometry, phases are nonempty, ordered, gap-free
     and exactly cover [0, duration]. *)
  QCheck.Test.make ~name:"phases tile [0,duration] with no gap/overlap"
    ~count:200
    QCheck.(
      quad (float_range 1. 100.) (float_range 0. 0.99) (float_range 0.1 60.)
        (float_range 0. 60.))
    (fun (duration, at_frac, cd, decay) ->
      let at = at_frac *. duration in
      let sc =
        Scenario.make ~duration ~flash:(crowd ~at ~duration:cd ~decay ()) ()
      in
      let ph = Scenario.phases sc in
      ph <> []
      && List.for_all (fun (_, a, b) -> b > a -. 1e-12) ph
      && (match List.hd ph with _, a, _ -> Float.abs a < 1e-9)
      && (match List.nth ph (List.length ph - 1) with
         | _, _, b -> Float.abs (b -. duration) < 1e-9)
      &&
      let rec contiguous = function
        | (_, _, b) :: ((_, a, _) :: _ as rest) ->
            Float.abs (b -. a) < 1e-9 && contiguous rest
        | _ -> true
      in
      contiguous ph)

(* ------------------------------------------------------------------ *)
(* Flash crowd *)

let prop_flash_decays_to_baseline =
  (* Intensity is the peak fraction inside the window, nonincreasing across
     the decay tail, and exactly zero once the decay completes — the
     distribution returns to baseline. *)
  QCheck.Test.make ~name:"flash intensity decays back to baseline" ~count:200
    QCheck.(
      pair (float_range 0.1 1.) (pair (float_range 0.5 20.) (float_range 0. 20.)))
    (fun (fraction, (cd, decay)) ->
      let at = 5. in
      let sc =
        Scenario.make ~duration:(at +. cd +. decay +. 10.)
          ~flash:(crowd ~at ~duration:cd ~decay ~fraction ())
          ()
      in
      let i t = Scenario.flash_intensity sc ~now:t in
      Float.abs (i (at +. (cd /. 2.)) -. fraction) < 1e-9
      && i (at -. 0.001) = 0.
      && i (at +. cd +. decay +. 0.001) = 0.
      && i (at +. cd +. (decay /. 3.)) >= i (at +. cd +. (decay /. 2.)) -. 1e-9
      && i 1e9 = 0.)

let test_rewrite_only_in_window () =
  let sc = Scenario.make ~duration:40. ~flash:(crowd ~at:10. ~duration:10. ~fraction:1.0 ()) () in
  let rng = Sim.Rng.create 5 in
  let item =
    {
      Workload.Trace.id = 3;
      kind =
        Workload.Trace.Cgi
          { script = "/cgi-bin/q"; args = [ ("q", "base") ]; demand = 0.5; out_bytes = 64 };
    }
  in
  check_bool "before onset untouched" true
    (Scenario.rewrite sc ~rng ~now:2. item = None);
  (match Scenario.rewrite sc ~rng ~now:12. item with
  | Some item' ->
      check_int "id preserved" 3 item'.Workload.Trace.id;
      check_bool "crowd key recognisable" true
        (Scenario.is_crowd_key (Workload.Trace.key item'));
      check_bool "original key is not" false
        (Scenario.is_crowd_key (Workload.Trace.key item))
  | None -> Alcotest.fail "fraction 1.0 must redirect");
  let f = { Workload.Trace.id = 4; kind = Workload.Trace.File { path = "/a"; bytes = 10 } } in
  check_bool "files never redirected" true
    (Scenario.rewrite sc ~rng ~now:12. f = None)

let test_rewrite_deterministic () =
  let sc = Scenario.make ~duration:40. ~flash:(crowd ~at:0. ~duration:40. ~fraction:0.5 ()) () in
  let item =
    {
      Workload.Trace.id = 0;
      kind =
        Workload.Trace.Cgi
          { script = "/cgi-bin/q"; args = [ ("q", "k") ]; demand = 0.5; out_bytes = 64 };
    }
  in
  let replay seed =
    let rng = Sim.Rng.create seed in
    List.init 200 (fun i ->
        match Scenario.rewrite sc ~rng ~now:(float_of_int i /. 10.) item with
        | Some it -> Workload.Trace.key it
        | None -> "-")
  in
  check_bool "same seed same redirections" true (replay 9 = replay 9);
  check_bool "different seed differs" true (replay 9 <> replay 10)

(* ------------------------------------------------------------------ *)
(* Diurnal envelope *)

let prop_arrivals_shape =
  (* n nondecreasing release times inside [0, duration), for both envelope
     families. *)
  QCheck.Test.make ~name:"arrival times nondecreasing in [0,duration)"
    ~count:100
    QCheck.(pair (int_range 1 400) (pair (float_range 5. 100.) (float_range 0. 1.)))
    (fun (n, (duration, trough)) ->
      let sc =
        Scenario.make ~duration
          ~diurnal:(Scenario.Sinusoid { period = duration; trough })
          ()
      in
      let a = Scenario.arrival_times sc ~n in
      Array.length a = n
      && Array.for_all (fun t -> t >= 0. && t < duration +. 1e-9) a
      &&
      let ok = ref true in
      for i = 1 to n - 1 do
        if a.(i) < a.(i - 1) -. 1e-9 then ok := false
      done;
      !ok)

let prop_envelope_integrates_to_count =
  (* Quantile inversion: the number of arrivals in any prefix [0,t] matches
     the integral of the normalised envelope up to t, within one request. *)
  QCheck.Test.make ~name:"envelope integrates to request count (+-1)"
    ~count:50
    QCheck.(pair (int_range 50 500) (float_range 0.05 1.))
    (fun (n, trough) ->
      let duration = 50. in
      let sc =
        Scenario.make ~duration
          ~diurnal:(Scenario.Sinusoid { period = duration; trough })
          ()
      in
      let a = Scenario.arrival_times sc ~n in
      (* integral of rate over [0,t] by fine trapezoid *)
      let integral t =
        let steps = 2000 in
        let h = t /. float_of_int steps in
        let acc = ref 0. in
        for i = 0 to steps - 1 do
          let x0 = float_of_int i *. h and x1 = float_of_int (i + 1) *. h in
          acc :=
            !acc
            +. (h /. 2.)
               *. (Scenario.envelope_rate sc ~now:x0
                  +. Scenario.envelope_rate sc ~now:x1)
        done;
        !acc
      in
      let total = integral duration in
      List.for_all
        (fun frac ->
          let t = frac *. duration in
          let expected = float_of_int n *. integral t /. total in
          let got =
            Array.fold_left (fun c x -> if x <= t then c + 1 else c) 0 a
          in
          Float.abs (float_of_int got -. expected) <= 1.5)
        [ 0.25; 0.5; 0.75; 1.0 ])

let test_piecewise_burst () =
  (* All the rate mass in the first half => all arrivals in the first half. *)
  let sc =
    Scenario.make ~duration:10.
      ~diurnal:(Scenario.Piecewise [ (0., 1.); (5., 1.); (5.00001, 0.); (10., 0.) ])
      ()
  in
  let a = Scenario.arrival_times sc ~n:100 in
  check_bool "arrivals confined to the active half" true
    (Array.for_all (fun t -> t <= 5.1) a)

(* ------------------------------------------------------------------ *)
(* Geo tiers *)

let test_tier_assignment_proportional () =
  let sc =
    Scenario.make ~duration:10.
      ~tiers:
        [
          Scenario.tier ~name:"metro" ~rtt:0.002 ~weight:6.;
          Scenario.tier ~name:"regional" ~rtt:0.03 ~weight:3.;
          Scenario.tier ~name:"far" ~rtt:0.12 ~weight:1.;
        ]
      ()
  in
  check_int "three tiers" 3 (Scenario.n_tiers sc);
  let counts = Array.make 3 0 in
  let n_streams = 40 in
  for s = 0 to n_streams - 1 do
    let t = Scenario.tier_of_stream sc ~n_streams ~stream:s in
    counts.(t) <- counts.(t) + 1
  done;
  check_int "metro gets 6/10" 24 counts.(0);
  check_int "regional gets 3/10" 12 counts.(1);
  check_int "far gets 1/10" 4 counts.(2);
  check_float_eps 1e-9 "half rtt" 0.06 (Scenario.tier_extra_latency sc 2);
  check_string "name" "far" (Scenario.tier_name sc 2)

let test_tier_every_stream_assigned () =
  let sc =
    Scenario.make ~duration:10.
      ~tiers:
        [
          Scenario.tier ~name:"a" ~rtt:0.01 ~weight:1.;
          Scenario.tier ~name:"b" ~rtt:0.02 ~weight:1.;
        ]
      ()
  in
  (* Fewer streams than tiers and odd splits still map every stream. *)
  List.iter
    (fun n_streams ->
      for s = 0 to n_streams - 1 do
        let t = Scenario.tier_of_stream sc ~n_streams ~stream:s in
        check_bool "in range" true (t >= 0 && t < 2)
      done)
    [ 1; 2; 3; 7 ]

(* ------------------------------------------------------------------ *)
(* Cluster-runner integration *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(max 1 (n / 4)) ~n_hot:12
    ~zipf_s:1.1 ~demand:0.01 ()

let run ?scenario ?fault ?(seed = 11) ?(n = 400) ?(nodes = 3) ?fetch_timeout
    ?(dir_mode = Swala.Config.Replicated) ?(hotspot_threshold = 0.)
    () =
  let cfg =
    Swala.Config.make ~n_nodes:nodes ~cache_mode:Swala.Config.Cooperative
      ~cache_threshold:0.001 ~dir_mode ~hotspot_threshold
      ~hotspot_window:1.0 ~hotspot_replicas:2
      ?scenario:(Option.map Option.some scenario)
      ?fault:(Option.map Option.some fault)
      ?fetch_timeout:(Option.map Option.some fetch_timeout)
      ~seed ()
  in
  Swala.Cluster_runner.run cfg ~trace:(coop_trace ~seed ~n)
    ~n_streams:(2 * nodes) ~router:Swala.Router.Per_stream ()

let results_identical (a : Swala.Cluster_runner.result)
    (b : Swala.Cluster_runner.result) =
  Metrics.Counter.equal a.counters b.counters
  && Metrics.Sample.values a.response = Metrics.Sample.values b.response
  && a.hits = b.hits && a.duration = b.duration && a.net_lost = b.net_lost

let test_inert_scenario_byte_identical () =
  (* A configured-but-empty scenario must not perturb the simulation at
     all: same counters, same response times, same makespan as no
     scenario. This is the byte-identity guarantee the salted scenario RNG
     root exists for. *)
  let base = run () in
  let inert = run ~scenario:(Scenario.make ~duration:60. ()) () in
  check_bool "counters identical" true
    (Metrics.Counter.equal base.counters inert.counters);
  check_bool "responses identical" true
    (Metrics.Sample.values base.response = Metrics.Sample.values inert.response);
  check_float_eps 0. "makespan identical" base.duration inert.duration;
  check_bool "no scenario counters appear" true
    (List.for_all
       (fun n ->
         (not (String.length n >= 5 && String.sub n 0 5 = "tier_"))
         && n <> "scenario_flash_redirects")
       (Metrics.Counter.names inert.counters))

let test_scenario_run_deterministic () =
  let scenario () =
    Scenario.make ~duration:8.
      ~flash:(crowd ~at:1. ~duration:2. ~decay:2. ())
      ~diurnal:(Scenario.Sinusoid { period = 8.; trough = 0.3 })
      ~tiers:
        [
          Scenario.tier ~name:"near" ~rtt:0.002 ~weight:3.;
          Scenario.tier ~name:"far" ~rtt:0.05 ~weight:1.;
        ]
      ()
  in
  let fault () = Sim.Fault.make ~churn:(Sim.Fault.churn ~rate:0.5 ~downtime:0.5 ()) ~horizon:30. () in
  let go () =
    run ~scenario:(scenario ()) ~fault:(fault ()) ~fetch_timeout:0.2 ()
  in
  let a = go () and b = go () in
  check_bool "full scenario run replays identically" true (results_identical a b);
  check_bool "crowd redirections happened" true
    (Metrics.Counter.get a.counters "scenario_flash_redirects" > 0);
  check_int "tier counters cover every request" a.n_requests
    (Metrics.Counter.get a.counters "tier_near_requests"
    + Metrics.Counter.get a.counters "tier_far_requests");
  (* different seed => different run *)
  let c =
    run ~scenario:(scenario ()) ~fault:(fault ()) ~fetch_timeout:0.2 ~seed:12 ()
  in
  check_bool "seed matters" false (results_identical a c)

let test_churn_conservation_sweep () =
  (* 50 seeds of rolling churn: every request submitted comes back (the
     closed loop conserves requests — a crashed node answers 503, not
     silence), crashes match restarts within the in-flight tail, and the
     response sample holds exactly n observations. *)
  let total_crashes = ref 0 in
  for seed = 1 to 50 do
    let fault =
      Sim.Fault.make
        ~churn:
          (Sim.Fault.churn ~rate:2.0 ~downtime:0.3 ~poisson:(seed mod 2 = 0) ())
        ~horizon:60. ()
    in
    let r = run ~fault ~fetch_timeout:0.15 ~seed ~n:150 () in
    check_int
      (Printf.sprintf "seed %d: all responses observed" seed)
      150
      (Metrics.Sample.count r.response);
    let crashes = Metrics.Counter.get r.counters Swala.Server.K.crashes in
    let restarts = Metrics.Counter.get r.counters Swala.Server.K.restarts in
    total_crashes := !total_crashes + crashes;
    (* a node holds at most one pending restart when the run drains *)
    check_bool
      (Printf.sprintf "seed %d: restarts track crashes" seed)
      true
      (restarts <= crashes && crashes - restarts <= 3)
  done;
  check_bool "churn induced crashes across the sweep" true (!total_crashes > 0)

let test_flash_crowd_hotspot_integration () =
  (* Sharded plane + hotspot replication under a flash crowd: the crowd
     head concentrates lookups on a few shard homes, which must promote
     (replicate) the hot keys during the crowd and demote them after the
     decay returns traffic to baseline. *)
  let scenario =
    Scenario.make ~duration:12.
      ~flash:(crowd ~at:1. ~duration:4. ~decay:2. ~fraction:0.9 ~keys:4 ())
      ()
  in
  let r =
    run ~scenario ~seed:21 ~n:900 ~nodes:4 ~dir_mode:Swala.Config.Sharded
      ~hotspot_threshold:1.0 ()
  in
  let get = Metrics.Counter.get r.counters in
  check_bool "crowd redirected traffic" true
    (get "scenario_flash_redirects" > 100);
  check_bool "crowd promoted hot keys" true
    (get Swala.Server.K.hotspot_promotions > 0);
  check_bool "replicas pushed to successors" true
    (get Swala.Server.K.hotspot_replica_pushes > 0);
  check_bool "decay demoted them again" true
    (get Swala.Server.K.hotspot_demotions > 0);
  check_bool "cooperation still effective" true (r.hit_ratio > 0.3)

let test_geo_tiers_slow_far_clients () =
  let scenario =
    Scenario.make ~duration:10.
      ~tiers:
        [
          Scenario.tier ~name:"near" ~rtt:0.001 ~weight:1.;
          Scenario.tier ~name:"far" ~rtt:0.2 ~weight:1.;
        ]
      ()
  in
  let r = run ~scenario ~seed:31 () in
  match r.tier_response with
  | [ ("near", near); ("far", far) ] ->
      check_bool "both tiers observed traffic" true
        (Metrics.Sample.count near > 0 && Metrics.Sample.count far > 0);
      (* Every far response carries >= one extra RTT (0.2 s) over the wire. *)
      check_bool "far tier at least an RTT slower" true
        (Metrics.Sample.mean far >= Metrics.Sample.mean near +. 0.19)
  | other ->
      Alcotest.failf "two tier samples expected, got %d" (List.length other)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "scenario"
    [
      ( "overlays",
        [
          Alcotest.test_case "inert scenario" `Quick test_inert_scenario;
          Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
        ] );
      ( "phases",
        [
          Alcotest.test_case "flash phase schedule" `Quick test_phases_flash;
          Alcotest.test_case "zero-decay window" `Quick
            test_phases_zero_decay_window;
        ] );
      qsuite "phase-props" [ prop_phases_tile ];
      ( "flash",
        [
          Alcotest.test_case "rewrite only in window" `Quick
            test_rewrite_only_in_window;
          Alcotest.test_case "rewrite deterministic" `Quick
            test_rewrite_deterministic;
        ] );
      qsuite "flash-props" [ prop_flash_decays_to_baseline ];
      ( "diurnal",
        [ Alcotest.test_case "piecewise burst" `Quick test_piecewise_burst ] );
      qsuite "diurnal-props"
        [ prop_arrivals_shape; prop_envelope_integrates_to_count ];
      ( "tiers",
        [
          Alcotest.test_case "proportional assignment" `Quick
            test_tier_assignment_proportional;
          Alcotest.test_case "every stream assigned" `Quick
            test_tier_every_stream_assigned;
        ] );
      ( "runner",
        [
          Alcotest.test_case "inert scenario byte-identical" `Quick
            test_inert_scenario_byte_identical;
          Alcotest.test_case "scenario run deterministic" `Quick
            test_scenario_run_deterministic;
          Alcotest.test_case "churn conservation, 50 seeds" `Slow
            test_churn_conservation_sweep;
          Alcotest.test_case "flash crowd x hotspot replication" `Quick
            test_flash_crowd_hotspot_integration;
          Alcotest.test_case "geo tiers slow far clients" `Quick
            test_geo_tiers_slow_far_clients;
        ] );
    ]
